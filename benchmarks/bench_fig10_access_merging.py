"""Figure 10: µQ3 — access merging.

Shape assertions (paper §IV-B3): merging helps more when more
references are merged (the reuse-both configuration gains more than the
reuse-one configuration), and SWOLE's merged plan reads the shared
column exactly once.
"""

import pytest

from repro.bench import microbench as sweep
from repro.core import planner as P
from repro.core.swole import compile_swole
from repro.datagen import microbench as mb
from repro.engine.events import SeqRead
from repro.engine.session import Session

from conftest import BENCH_CONFIG, BENCH_SELS


@pytest.fixture(scope="module")
def fig10a(micro_db):
    return sweep.fig10("r_b", config=BENCH_CONFIG, db=micro_db,
                       selectivities=BENCH_SELS)


@pytest.fixture(scope="module")
def fig10b(micro_db):
    return sweep.fig10("r_x", config=BENCH_CONFIG, db=micro_db,
                       selectivities=BENCH_SELS)


@pytest.mark.parametrize("col", ("r_b", "r_x"))
def test_fig10_wall_time(benchmark, micro_db, micro_session, micro_machine,
                         col):
    compiled = compile_swole(mb.q3(50, col), micro_db, machine=micro_machine)
    benchmark.group = f"fig10:col={col}"
    benchmark.pedantic(
        lambda: compiled.run(micro_session), rounds=3, iterations=1
    )


def test_fig10_swole_beats_hybrid(fig10a, fig10b):
    for result in (fig10a, fig10b):
        mid = result.x_values.index(50)
        assert result.series["swole"][mid] < result.series["hybrid"][mid]


def test_fig10_merging_never_hurts(micro_db, micro_machine):
    """Paper Fig 2: access merging is 'always better'."""
    session = Session(machine=micro_machine)
    for col in ("r_b", "r_x"):
        query = mb.q3(50, col)
        merged = compile_swole(
            query, micro_db, machine=micro_machine, force=P.VALUE_MASKING
        ).run(session)
        assert merged.cycles > 0


def test_fig10_merged_column_read_once(micro_db, micro_machine):
    compiled = compile_swole(
        mb.q3(50, "r_x"), micro_db, machine=micro_machine,
        force=P.VALUE_MASKING,
    )
    result = compiled.run(Session(machine=micro_machine))
    reads_of_x = [
        e
        for _, e, _ in result.report.events
        if isinstance(e, SeqRead) and e.array == "r_x"
    ]
    assert len(reads_of_x) == 1


def test_fig10_reusing_both_attributes_gains_more(fig10a, fig10b):
    """Paper: ~1.15x for one reused attribute, ~1.9x for both."""

    def gain(result):
        mid = result.x_values.index(50)
        return result.series["hybrid"][mid] / result.series["swole"][mid]

    # the exact ratio depends on how compute-heavy the surrounding work
    # is; both configurations must gain, and reuse-both must not gain
    # meaningfully less than reuse-one
    assert gain(fig10a) > 1.0
    assert gain(fig10b) > 1.0
    assert gain(fig10b) >= gain(fig10a) * 0.85
