"""Figure 9: µQ2 — key masking across group-by cardinalities.

Shape assertions (paper §IV-B2):
* 10 and 1K keys: masking ~ flat, indistinguishable panels;
* crossovers move to higher selectivity as the hash table grows;
* at the 10M-key panel the pushdown (hybrid) stays competitive until
  high selectivity — masking is *not* the dominant strategy Voodoo
  claimed.
"""

import pytest

from repro.bench import microbench as sweep
from repro.core.swole import compile_swole
from repro.codegen import compile_query
from repro.datagen import microbench as mb

from conftest import BENCH_CONFIG, BENCH_SELS

CARDS = (10, 1_000, 10_000_000)


@pytest.fixture(scope="module")
def panels():
    return {
        card: sweep.fig9(card, config=BENCH_CONFIG, selectivities=BENCH_SELS)
        for card in CARDS
    }


@pytest.mark.parametrize("strategy", ("hybrid", "swole"))
@pytest.mark.parametrize("card", (1_000, 10_000_000))
def test_fig9_wall_time(benchmark, micro_machine, strategy, card):
    scaled_card = max(int(card / BENCH_CONFIG.scale_factor), 4)
    config = mb.MicrobenchConfig(
        num_rows=BENCH_CONFIG.num_rows,
        s_rows=BENCH_CONFIG.s_rows,
        c_cardinality=scaled_card,
    )
    db = mb.generate(config)
    query = mb.q2(50)
    if strategy == "swole":
        compiled = compile_swole(query, db, machine=micro_machine)
    else:
        compiled = compile_query(query, db, strategy)
    from repro.engine.session import Session

    session = Session(machine=micro_machine)
    benchmark.group = f"fig9:card={card}"
    benchmark.pedantic(
        lambda: compiled.run(session), rounds=3, iterations=1
    )


def test_fig9_small_panels_indistinguishable(panels):
    """Paper: 10 vs 1K keys is 'almost indistinguishable'."""
    small = panels[10].series["swole"]
    medium = panels[1_000].series["swole"]
    for a, b in zip(small, medium):
        assert a == pytest.approx(b, rel=0.5)


def test_fig9_masking_flat_on_small_tables(panels):
    sw = panels[10].series["swole"]
    # flat once the planner has switched to masking (high selectivity)
    tail = sw[-3:]
    assert max(tail) / min(tail) < 1.15


def test_fig9_large_table_runtimes_dominate(panels):
    """Hash misses make the 10M-key panel far slower than the 10-key one."""
    assert (
        panels[10_000_000].series["hybrid"][-1]
        > 2 * panels[10].series["hybrid"][-1]
    )


def test_fig9_hybrid_competitive_until_high_selectivity_on_large_tables(
    panels,
):
    big = panels[10_000_000]
    mid = big.x_values.index(50)
    assert big.series["swole"][mid] >= big.series["hybrid"][mid] * 0.95


def test_fig9_masking_not_dominant(panels):
    """The anti-Voodoo claim: there exist configurations where the
    pushdown beats every masking variant."""
    big = panels[10_000_000]
    low = big.x_values.index(10)
    assert "hybrid" in big.decisions[10]
    assert big.series["hybrid"][low] <= big.series["datacentric"][low]
