"""Figure 11: µQ4 — positional-bitmap semijoins.

Shape assertions (paper §IV-B4): bitmaps significantly outperform both
pushdown strategies in (almost) all configurations and are flat across
selectivity; the exception is the low-probe-selectivity corner where
few hash lookups happen anyway.
"""

import pytest

from repro.bench import microbench as sweep
from repro.core.swole import compile_swole
from repro.codegen import compile_query
from repro.datagen import microbench as mb
from repro.engine.session import Session

from conftest import BENCH_CONFIG, BENCH_SELS

CONFIGS = (("probe", 10), ("probe", 90), ("build", 10), ("build", 90))


@pytest.fixture(scope="module")
def panels():
    return {
        (side, fixed): sweep.fig11(
            side, fixed, config=BENCH_CONFIG, selectivities=BENCH_SELS
        )
        for side, fixed in CONFIGS
    }


@pytest.fixture(scope="module")
def join_db():
    s_rows = max(int(mb.PAPER_S_LARGE / BENCH_CONFIG.scale_factor), 64)
    return mb.generate(
        mb.MicrobenchConfig(
            num_rows=BENCH_CONFIG.num_rows,
            s_rows=s_rows,
            c_cardinality=BENCH_CONFIG.c_cardinality,
        )
    )


@pytest.mark.parametrize("strategy", ("hybrid", "swole"))
def test_fig11_wall_time(benchmark, join_db, micro_machine, strategy):
    query = mb.q4(90, 50)
    if strategy == "swole":
        compiled = compile_swole(query, join_db, machine=micro_machine)
    else:
        compiled = compile_query(query, join_db, strategy)
    session = Session(machine=micro_machine)
    benchmark.group = "fig11"
    benchmark.pedantic(
        lambda: compiled.run(session), rounds=3, iterations=1
    )


def test_fig11_bitmaps_flat_everywhere(panels):
    for result in panels.values():
        sw = result.series["swole"]
        assert max(sw) / min(sw) < 1.3


def test_fig11_bitmaps_win_high_probe_configs(panels):
    for key in (("probe", 90), ("build", 10), ("build", 90)):
        result = panels[key]
        for i in range(len(result.x_values)):
            if result.x_values[i] < 10:
                continue
            assert result.series["swole"][i] <= result.series["hybrid"][i] * 1.2


def test_fig11_low_probe_selectivity_is_the_exception(panels):
    """Paper: 'the only exception is the top left configuration'."""
    result = panels[("probe", 10)]
    hybrid_best = min(result.series["hybrid"])
    swole_flat = min(result.series["swole"])
    assert hybrid_best <= swole_flat * 1.5


def test_fig11_pushdowns_comparable(panels):
    """Paper: data-centric and hybrid perform comparably on this query."""
    result = panels[("build", 90)]
    mid = result.x_values.index(50)
    ratio = result.series["datacentric"][mid] / result.series["hybrid"][mid]
    assert 0.5 < ratio < 3.0
