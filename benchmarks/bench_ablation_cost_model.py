"""Ablation: cost-model-driven planning vs forced techniques.

DESIGN.md commits to quantifying the planner: across the microbenchmark
sweeps, compare SWOLE-with-planner against SWOLE forced to a single
technique, and measure the planner's regret (how much worse than the
measured-best choice it is).

This reproduces the paper's claim that *no technique dominates* —
forcing either masking variant everywhere loses somewhere — and that
the cost models pick well enough that the planner's regret stays small.
"""

import pytest

from repro.bench import microbench as sweep
from repro.core import planner as P
from repro.core.swole import compile_swole
from repro.codegen import compile_query
from repro.datagen import microbench as mb
from repro.engine.session import Session

from conftest import BENCH_CONFIG

SELS = (1, 10, 25, 50, 75, 90, 99)


@pytest.fixture(scope="module")
def costs(micro_db, micro_machine):
    """Measured cycles per (selectivity, variant) for µQ1-mul and -div."""
    session = Session(machine=micro_machine)
    out = {}
    for op in ("mul", "div"):
        for sel in SELS:
            query = mb.q1(sel, op)
            row = {}
            row["hybrid"] = (
                compile_query(query, micro_db, "hybrid").run(session).cycles
            )
            row["forced_vm"] = (
                compile_swole(
                    query, micro_db, machine=micro_machine,
                    force=P.VALUE_MASKING,
                )
                .run(session)
                .cycles
            )
            row["planned"] = (
                compile_swole(query, micro_db, machine=micro_machine)
                .run(session)
                .cycles
            )
            out[(op, sel)] = row
    return out


def test_no_single_technique_dominates(costs):
    """Forcing value masking everywhere loses on compute-bound queries;
    forcing hybrid everywhere loses on memory-bound ones."""
    vm_loses_somewhere = any(
        costs[("div", sel)]["forced_vm"]
        > costs[("div", sel)]["hybrid"] * 1.05
        for sel in SELS
    )
    hybrid_loses_somewhere = any(
        costs[("mul", sel)]["hybrid"]
        > costs[("mul", sel)]["forced_vm"] * 1.05
        for sel in SELS
    )
    assert vm_loses_somewhere
    assert hybrid_loses_somewhere


def test_planner_regret_is_bounded(costs):
    """The planned choice is within 25% of the measured-best variant at
    every sweep point (boundary points are allowed to be near-ties)."""
    for key, row in costs.items():
        best = min(row["hybrid"], row["forced_vm"])
        assert row["planned"] <= best * 1.25, key


def test_planner_picks_each_side_of_the_crossover(costs):
    assert costs[("mul", 50)]["planned"] == pytest.approx(
        costs[("mul", 50)]["forced_vm"], rel=0.02
    )
    assert costs[("div", 25)]["planned"] == pytest.approx(
        costs[("div", 25)]["hybrid"], rel=0.02
    )


def test_bench_planned_compile_and_run(benchmark, micro_db, micro_machine):
    session = Session(machine=micro_machine)

    def run():
        compiled = compile_swole(
            mb.q1(50), micro_db, machine=micro_machine
        )
        return compiled.run(session)

    benchmark.group = "ablation:cost-model"
    benchmark.pedantic(run, rounds=3, iterations=1)


def test_bench_bitmap_compression_tradeoff(benchmark, rng=None):
    """Packed vs block-compressed positional bitmaps (paper §III-D's
    size-vs-access tradeoff)."""
    import numpy as np

    from repro.storage.bitmap import BlockCompressedBitmap, bitmap_from_mask

    generator = np.random.default_rng(5)
    mask = np.zeros(1_000_000, dtype=bool)
    # clustered qualifying range (e.g. a date-correlated predicate):
    # most blocks are uniformly zero, so block compression pays off
    mask[200_000:205_000] = True
    packed = bitmap_from_mask(mask)
    compressed = BlockCompressedBitmap(packed, block_bits=4096)
    assert compressed.nbytes < packed.nbytes / 4  # sparse -> big win
    probes = generator.integers(0, 1_000_000, 100_000)
    assert np.array_equal(compressed.test(probes), packed.test(probes))

    benchmark.group = "ablation:bitmap-compression"
    benchmark.pedantic(
        lambda: compressed.test(probes), rounds=3, iterations=1
    )
