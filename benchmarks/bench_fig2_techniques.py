"""Figure 2: the SWOLE technique summary, as planner behaviour.

Verifies that the planner actually implements the Fig. 2 applicability
matrix — each technique is reachable on the operator classes the paper
lists — and benchmarks planning itself (it symbolically executes cost
models, so it should stay trivially cheap relative to execution).
"""

import pytest

from repro.core import planner as P
from repro.core.planner import plan_query, technique_matrix
from repro.datagen import microbench as mb


@pytest.fixture(scope="module")
def machine(micro_machine):
    return micro_machine


def test_fig2_matrix_rows():
    matrix = technique_matrix()
    assert len(matrix) == 5
    for info in matrix.values():
        assert {"section", "operators", "heuristics"} <= set(info)


def test_fig2_value_masking_reachable(micro_db, machine):
    plan = plan_query(mb.q1(50), micro_db, machine)
    assert plan.aggregation == P.VALUE_MASKING


def test_fig2_hybrid_fallback_reachable(micro_db, machine):
    plan = plan_query(mb.q1(20, "div"), micro_db, machine)
    assert plan.aggregation == P.HYBRID


def test_fig2_key_masking_reachable(machine):
    config = mb.MicrobenchConfig(
        num_rows=200_000, s_rows=2_000, c_cardinality=20_000
    )
    db = mb.generate(config)
    from repro.bench.microbench import scaled_machine

    found = False
    for sel in (60, 70, 80, 90, 99):
        plan = plan_query(mb.q2(sel), db, scaled_machine(config))
        if plan.aggregation == P.KEY_MASKING:
            found = True
            break
    assert found, "key masking unreachable on a large group-by"


def test_fig2_bitmaps_always_selected_for_semijoins(micro_db, machine):
    for sel1, sel2 in ((10, 10), (50, 50), (90, 90)):
        plan = plan_query(mb.q4(sel1, sel2), micro_db, machine)
        assert plan.semijoin_build is not None


def test_fig2_eager_aggregation_reachable(micro_db, machine):
    found = False
    for sel in (40, 60, 80, 99):
        plan = plan_query(mb.q5(sel), micro_db, machine)
        if plan.groupjoin_mode == P.EAGER:
            found = True
            break
    assert found


def test_fig2_access_merging_always_applied(micro_db, machine):
    plan = plan_query(mb.q3(50, "r_x"), micro_db, machine)
    assert plan.merged_columns == ("r_x",)


def test_planning_is_cheap(benchmark, micro_db, machine):
    benchmark.group = "fig2:planner"
    benchmark.pedantic(
        lambda: plan_query(mb.q2(50), micro_db, machine),
        rounds=5,
        iterations=1,
    )
