"""Figure 8: µQ1 — value masking vs data-centric vs hybrid.

Shape assertions (paper §IV-B1):
* 8a (multiplication, memory-bound): data-centric shows the branch-
  misprediction hump peaking near 50 %; value masking is flat and wins
  nearly everywhere.
* 8b (division, compute-bound): value masking only pays off near 100 %
  selectivity; the SWOLE planner falls back to hybrid below that.
"""

import pytest

from repro.bench import microbench as sweep
from repro.codegen import compile_query
from repro.core.swole import compile_swole
from repro.datagen import microbench as mb

from conftest import BENCH_CONFIG, BENCH_SELS


@pytest.fixture(scope="module")
def fig8a(micro_db):
    return sweep.fig8("mul", config=BENCH_CONFIG, db=micro_db,
                      selectivities=BENCH_SELS)


@pytest.fixture(scope="module")
def fig8b(micro_db):
    return sweep.fig8("div", config=BENCH_CONFIG, db=micro_db,
                      selectivities=BENCH_SELS)


@pytest.mark.parametrize("strategy", ("datacentric", "hybrid", "swole"))
@pytest.mark.parametrize("sel", (10, 50, 90))
def test_fig8_wall_time(benchmark, micro_db, micro_session, micro_machine,
                        strategy, sel):
    query = mb.q1(sel)
    if strategy == "swole":
        compiled = compile_swole(query, micro_db, machine=micro_machine)
    else:
        compiled = compile_query(query, micro_db, strategy)
    benchmark.group = f"fig8a:sel={sel}"
    benchmark.pedantic(
        lambda: compiled.run(micro_session), rounds=3, iterations=1
    )


def _at(result, strategy, sel):
    return result.series[strategy][result.x_values.index(sel)]


def test_fig8a_datacentric_hump_peaks_mid_selectivity(fig8a):
    dc = fig8a.series["datacentric"]
    peak_sel = fig8a.x_values[dc.index(max(dc))]
    assert 25 <= peak_sel <= 75
    assert max(dc) > 1.5 * dc[0]
    assert max(dc) > 1.5 * dc[-1]


def test_fig8a_value_masking_flat(fig8a):
    sw = fig8a.series["swole"]
    assert max(sw) / min(sw) < 1.1


def test_fig8a_masking_wins_nearly_everywhere(fig8a):
    for sel in (10, 25, 50, 75, 90, 99):
        assert _at(fig8a, "swole", sel) < _at(fig8a, "hybrid", sel)
        assert _at(fig8a, "swole", sel) < _at(fig8a, "datacentric", sel)


def test_fig8b_division_rises_for_pushdown_strategies(fig8b):
    for strategy in ("datacentric", "hybrid"):
        series = fig8b.series[strategy]
        assert series[-1] > 2 * series[0]


def test_fig8b_masking_only_near_full_selectivity(fig8b):
    # hybrid wins at mid selectivities; SWOLE matches it by falling back
    assert _at(fig8b, "swole", 50) == pytest.approx(
        _at(fig8b, "hybrid", 50), rel=0.02
    )
    assert "hybrid" in fig8b.decisions[50]
    assert "value_masking" in fig8b.decisions[99]


def test_fig8b_datacentric_does_not_recover_after_peak(fig8b):
    dc = fig8b.series["datacentric"]
    assert dc[-1] >= 0.9 * max(dc)  # no post-50% decline (paper 8b)
