"""Figure 12: µQ5 — eager aggregation vs the traditional groupjoin.

Shape assertions (paper §IV-B5): eager aggregation is ~flat across the
build-side selectivity (slightly improving toward 100 % as fewer
aggregates are deleted); the pushdown strategies pay hash lookups for
every probe tuple; the technique pays off earlier for the small build
table than the large one.
"""

import pytest

from repro.bench import microbench as sweep
from repro.core.eager_aggregation import groupjoin_pipeline
from repro.datagen import microbench as mb
from repro.engine.session import Session

from conftest import BENCH_CONFIG, BENCH_SELS


@pytest.fixture(scope="module")
def small_panel():
    return sweep.fig12(
        mb.PAPER_S_SMALL, config=BENCH_CONFIG, selectivities=BENCH_SELS
    )


@pytest.fixture(scope="module")
def large_panel():
    return sweep.fig12(
        mb.PAPER_S_LARGE, config=BENCH_CONFIG, selectivities=BENCH_SELS
    )


def test_fig12_wall_time_eager(benchmark, micro_db, micro_machine):
    session = Session(machine=micro_machine)
    benchmark.group = "fig12"
    benchmark.pedantic(
        lambda: groupjoin_pipeline(session, micro_db, mb.q5(50)),
        rounds=3,
        iterations=1,
    )


def _forced_eager_series(panel_s_rows):
    """Measure EA directly across the sweep (independent of the planner)."""
    s_rows = max(int(panel_s_rows / BENCH_CONFIG.scale_factor), 64)
    if panel_s_rows == mb.PAPER_S_SMALL:
        s_rows = min(mb.PAPER_S_SMALL, BENCH_CONFIG.num_rows)
    config = mb.MicrobenchConfig(
        num_rows=BENCH_CONFIG.num_rows, s_rows=s_rows,
        c_cardinality=BENCH_CONFIG.c_cardinality,
    )
    db = mb.generate(config)
    machine = sweep.scaled_machine(config)
    costs = []
    for sel in BENCH_SELS:
        session = Session(machine=machine)
        groupjoin_pipeline(session, db, mb.q5(sel))
        costs.append(session.tracer.report.total_cycles)
    return costs


def test_fig12_eager_flat_and_slightly_improving(small_panel):
    costs = _forced_eager_series(mb.PAPER_S_SMALL)
    assert max(costs) / min(costs) < 1.25
    assert costs[-1] <= costs[0]  # fewer deletions near 100%


def test_fig12_eager_wins_small_build_table(small_panel):
    mid = small_panel.x_values.index(50)
    assert (
        small_panel.series["swole"][mid]
        < small_panel.series["hybrid"][mid]
    )


def test_fig12_crossover_later_for_large_table(small_panel, large_panel):
    def first_eager_decision(panel):
        for sel in panel.x_values:
            if "eager" in panel.decisions[sel]:
                return sel
        return 101

    assert first_eager_decision(small_panel) <= first_eager_decision(
        large_panel
    )


def test_fig12_pushdowns_similar(large_panel):
    """Paper: data-centric and hybrid nearly identical on µQ5."""
    mid = large_panel.x_values.index(50)
    ratio = (
        large_panel.series["datacentric"][mid]
        / large_panel.series["hybrid"][mid]
    )
    assert 0.6 < ratio < 2.0
