"""Figure 6: TPC-H runtimes per strategy.

Wall-time benchmarks execute each compiled query program; the module
also runs the simulated-cycle report once and asserts the paper's
orderings (SWOLE never loses to hybrid, bitmap queries win big, the
headline >2.6x speedup exists). Print the full table with
``python -m repro.bench fig6``.
"""

import pytest

from repro.bench.tpch import PAPER_SWOLE_SPEEDUPS, run_fig6
from repro.tpch import compile_tpch, query_names

from conftest import BENCH_TPCH

QUERIES = tuple(query_names())
STRATEGIES = ("datacentric", "hybrid", "swole")


@pytest.fixture(scope="module")
def fig6_report(tpch_db):
    return run_fig6(BENCH_TPCH, db=tpch_db)


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("query", QUERIES)
def test_fig6_wall_time(benchmark, tpch_db, tpch_session, query, strategy):
    compiled = compile_tpch(query, strategy, tpch_db)
    benchmark.group = f"fig6:{query}"
    benchmark.pedantic(
        lambda: compiled.run(tpch_session), rounds=3, iterations=1
    )


def test_fig6_swole_never_flips_winner(fig6_report):
    for row in fig6_report.rows:
        assert row.seconds["swole"] <= row.seconds["hybrid"] * 1.10, row.query


def test_fig6_bitmap_queries_win(fig6_report):
    assert fig6_report.row("Q4").swole_speedup > 1.5
    assert fig6_report.row("Q5").swole_speedup > 1.5


def test_fig6_headline_speedup(fig6_report):
    best = max(row.swole_speedup for row in fig6_report.rows)
    assert best > 2.6  # the paper's headline number


def test_fig6_interpreter_is_sanity_floor(fig6_report):
    for row in fig6_report.rows:
        assert row.seconds["interpreter"] >= row.seconds["datacentric"]


def test_fig6_report_covers_paper_queries(fig6_report):
    assert {row.query for row in fig6_report.rows} == set(
        PAPER_SWOLE_SPEEDUPS
    )
