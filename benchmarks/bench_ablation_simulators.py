"""Ablation: closed-form access costs vs exact trace-driven simulators.

DESIGN.md commits to validating the analytic cost model against the
set-associative LRU cache simulator and the two-bit branch predictor.
These benches do that at small scale:

* the analytic conditional-read cost must track the simulated average
  latency *ordering* across densities;
* the analytic random-access capacity model must track simulated miss
  behaviour across structure sizes;
* the analytic branch model must match the simulated predictor within a
  few percent across the selectivity sweep.
"""

import numpy as np
import pytest

from repro.engine.branch import TwoBitPredictor, steady_state_mispredict_rate
from repro.engine.cache import (
    CacheHierarchy,
    SetAssociativeCache,
    conditional_trace,
    random_trace,
)
from repro.engine.costing import CostAccountant
from repro.engine.events import CondRead, RandomAccess
from repro.engine.machine import MachineModel

#: A miniature machine whose caches the trace simulator can hold.
TINY = MachineModel(
    l1_bytes=2 * 1024, l2_bytes=8 * 1024, llc_bytes=32 * 1024
)
ACC = CostAccountant(TINY)
ROWS = 16_384


def _hierarchy():
    return CacheHierarchy(
        [
            SetAssociativeCache(TINY.l1_bytes, ways=4),
            SetAssociativeCache(TINY.l2_bytes, ways=8),
            SetAssociativeCache(TINY.llc_bytes, ways=8),
        ],
        [TINY.lat_l1, TINY.lat_l2, TINY.lat_llc],
        TINY.lat_mem,
    )


def _simulated_cond_read(density, rng):
    selected = rng.random(ROWS) < density
    hier = _hierarchy()
    total = hier.run_trace(conditional_trace(0, ROWS, 8, selected))
    return total


def test_cond_read_ordering_matches_simulation(rng=np.random.default_rng(7)):
    densities = (0.02, 0.2, 0.9)
    simulated = [_simulated_cond_read(d, rng) for d in densities]
    analytic = [
        ACC.cond_read(
            CondRead(n_range=ROWS, n_selected=int(ROWS * d), width=8)
        )
        for d in densities
    ]
    assert simulated == sorted(simulated)
    assert analytic == sorted(analytic)


def test_random_access_capacity_cliff_matches_simulation():
    rng = np.random.default_rng(11)
    sizes = (1024, 16 * 1024, 512 * 1024)
    simulated = []
    for size in sizes:
        hier = _hierarchy()
        hier.run_trace(random_trace(0, size, 4000, 8, rng))
        simulated.append(hier.expected_latency())
    analytic = [TINY.random_latency(size) for size in sizes]
    assert simulated == sorted(simulated)
    assert analytic == sorted(analytic)
    # the cliff: the biggest structure is dramatically worse than the
    # smallest in both worlds
    assert simulated[-1] > 3 * simulated[0]
    assert analytic[-1] > 3 * analytic[0]


@pytest.mark.parametrize("p", (0.1, 0.3, 0.5, 0.7, 0.9))
def test_branch_model_matches_trace_simulator(p):
    rng = np.random.default_rng(13)
    outcomes = rng.random(30_000) < p
    simulated = TwoBitPredictor().run_trace(outcomes) / outcomes.shape[0]
    analytic = steady_state_mispredict_rate(p)
    assert simulated == pytest.approx(analytic, abs=0.03)


def test_bench_trace_simulation_speed(benchmark):
    """Wall-time of the exact simulator (why the hot path is analytic)."""
    rng = np.random.default_rng(3)
    trace = random_trace(0, 16 * 1024, 2000, 8, rng)

    def run():
        hier = _hierarchy()
        return hier.run_trace(trace)

    benchmark.group = "ablation:simulators"
    benchmark.pedantic(run, rounds=3, iterations=1)
