"""Shared benchmark fixtures.

Benchmarks measure two things:

* **wall time** (pytest-benchmark) of actually executing the compiled
  kernel programs at a small scale — a sanity check that the programs do
  real work;
* **simulated cycles** (the numbers the paper's figures are about),
  computed by sweep fixtures and asserted/reported per figure.

Scales are kept small so the whole suite runs in minutes; run
``python -m repro.bench all --rows 4000000`` for higher-fidelity sweeps.
"""

from __future__ import annotations

import pytest

from repro.bench import microbench as sweep
from repro.datagen import microbench as mb
from repro.datagen import tpch as tpchgen
from repro.engine.machine import PAPER_MACHINE
from repro.engine.session import Session

#: Microbench scale for benchmark runs (paper: 100M rows).
BENCH_CONFIG = mb.MicrobenchConfig(num_rows=200_000, s_rows=2_000,
                                   c_cardinality=256)
#: Sweep selectivities (coarser than the harness default, for speed).
BENCH_SELS = (1, 10, 25, 50, 75, 90, 99)
#: TPC-H scale for benchmark runs (paper: SF 10).
BENCH_TPCH = tpchgen.TpchConfig(scale_factor=0.005)


@pytest.fixture(scope="session")
def micro_db():
    return mb.generate(BENCH_CONFIG)


@pytest.fixture(scope="session")
def micro_machine():
    return sweep.scaled_machine(BENCH_CONFIG)


@pytest.fixture(scope="session")
def micro_session(micro_machine):
    return Session(machine=micro_machine)


@pytest.fixture(scope="session")
def tpch_db():
    return tpchgen.generate(BENCH_TPCH)


@pytest.fixture(scope="session")
def tpch_session():
    return Session(machine=PAPER_MACHINE.scaled(BENCH_TPCH.machine_scale))
