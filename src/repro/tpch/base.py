"""Shared scaffolding for the hand-coded TPC-H query programs.

The paper hand-coded each strategy in C "to eliminate any overheads from
tangential implementation differences"; these modules do the same in
kernel compositions. Every query module exposes:

* ``reference(db)`` — plain-NumPy ground truth;
* ``datacentric(db)`` / ``hybrid(db)`` / ``swole(db)`` — one
  :class:`~repro.engine.program.CompiledQuery` per strategy.

:func:`compile_tpch` resolves (query, strategy) pairs, adding the
``interpreter`` sanity baseline (data-centric access patterns plus
Volcano per-tuple dispatch) for every query.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

import numpy as np

from ..engine import kernels as K
from ..engine.program import CompiledQuery, ParallelPlan
from ..engine.session import Session
from ..errors import CodegenError
from ..storage.database import Database

#: Filled by the query modules at import time: name -> module.
QUERY_MODULES: Dict[str, Any] = {}

STRATEGIES = ("interpreter", "datacentric", "hybrid", "swole")


def register_query(name: str, module: Any) -> None:
    QUERY_MODULES[name] = module


def query_names() -> List[str]:
    return sorted(QUERY_MODULES, key=lambda name: int(name[1:]))


def compile_tpch(
    name: str,
    strategy: str,
    db: Database,
    machine=None,
    registry=None,
    backend: str = "instrumented",
    overrides=None,
    encoding: str = "auto",
) -> CompiledQuery:
    """Compile TPC-H query ``name`` under ``strategy`` against ``db``.

    Queries with a logical operator tree (:data:`~repro.tpch.plans.
    PIPELINE_QUERIES`) go through the generic staged lowering pipeline;
    the rest still use their hand-coded strategy modules. ``machine``,
    ``registry``, ``backend``, ``overrides`` (a measured-statistics
    :class:`~repro.engine.costing.StatsOverride` from the adaptive
    re-optimizer), and ``encoding`` (the ``"auto"``/``"off"``
    access-encoding knob) only affect the pipeline path (cost-model
    decisions, compile-stage spans, and the execution layer the program
    runs on); hand-coded programs are always instrumented and always
    read decoded values.
    """
    try:
        module = QUERY_MODULES[name]
    except KeyError as exc:
        raise CodegenError(
            f"unknown TPC-H query {name!r}; have {query_names()}"
        ) from exc
    if strategy not in STRATEGIES:
        raise CodegenError(
            f"unknown strategy {strategy!r}; have {list(STRATEGIES)}"
        )
    from . import plans
    if name in plans.PIPELINE_QUERIES:
        from ..codegen.pipeline import compile_pipeline

        return compile_pipeline(
            plans.logical_plan(name),
            db,
            strategy,
            machine=machine,
            registry=registry,
            backend=backend,
            overrides=overrides,
            encoding=encoding,
        )
    return oracle_tpch(name, strategy, db)


def oracle_tpch(name: str, strategy: str, db: Database) -> CompiledQuery:
    """Compile the hand-coded strategy program for ``name``.

    This is the pre-pipeline compiler, kept as the equivalence oracle:
    tests compare the staged pipeline's answers and costs against these
    curated kernel compositions.
    """
    try:
        module = QUERY_MODULES[name]
    except KeyError as exc:
        raise CodegenError(
            f"unknown TPC-H query {name!r}; have {query_names()}"
        ) from exc
    if strategy == "interpreter":
        return _interpreter(name, module, db)
    try:
        compiler = getattr(module, strategy)
    except AttributeError as exc:
        raise CodegenError(
            f"{name} has no strategy {strategy!r}"
        ) from exc
    return compiler(db)


def _interpreter(name: str, module: Any, db: Database) -> CompiledQuery:
    """Volcano baseline: data-centric program + per-tuple iterator cost."""
    inner = module.datacentric(db)
    touched = getattr(module, "TABLES", ("lineitem",))

    def run(session: Session) -> Dict[str, Any]:
        for table in touched:
            K.interpreter_overhead(session, db.table(table).num_rows, 2)
        return inner._fn(session)

    return CompiledQuery(
        name=name,
        strategy="interpreter",
        source=f"// Volcano iterator plan for {name}\n" + inner.source,
        _fn=run,
    )


def make(
    name: str,
    strategy: str,
    source: str,
    fn: Callable[[Session], Dict],
    parallel: ParallelPlan = None,
) -> CompiledQuery:
    return CompiledQuery(
        name=name, strategy=strategy, source=source, _fn=fn, parallel=parallel
    )


def scan_plan(
    cols: Dict[str, np.ndarray],
    run_view: Callable[[Session, Dict[str, np.ndarray]], Dict],
    table: str = "lineitem",
) -> ParallelPlan:
    """Parallel plan for a single-table scan query.

    ``run_view`` is the query's pipeline body parameterised by the
    scanned columns; each morsel runs it over a row-range slice and the
    executor merges the partial aggregates.
    """
    n_rows = int(next(iter(cols.values())).shape[0])

    def partial(session: Session, ctx, lo: int, hi: int) -> Dict:
        view = {name: values[lo:hi] for name, values in cols.items()}
        return run_view(session, view)

    return ParallelPlan(table=table, n_rows=n_rows, partial=partial)


def reference_result(name: str, db: Database) -> Dict[str, Any]:
    """Ground-truth answer for a query (plain NumPy)."""
    return QUERY_MODULES[name].reference(db)


def grouped(keys: np.ndarray, aggs: np.ndarray) -> Dict[str, np.ndarray]:
    """Normalise grouped output (ascending keys)."""
    keys = np.asarray(keys, dtype=np.int64)
    aggs = np.asarray(aggs, dtype=np.int64)
    if aggs.ndim == 1:
        aggs = aggs[:, None]
    order = np.argsort(keys, kind="stable")
    return {"keys": keys[order], "aggs": aggs[order]}
