"""TPC-H Q13: the customer distribution query.

A groupjoin between customer and orders — count each customer's orders
whose comment does not match ``'%special%requests%'`` (~98 % pass) —
followed by a distribution step (how many customers have each order
count). Customers without qualifying orders land in bucket zero.

Paper result: the complex string predicate dominates and cannot be
SIMD-vectorised; hybrid still gets 1.31x by splitting it into a prepass
loop; SWOLE applies **value masking** (little wasted work at 98 %) but
the strcmp wall means only a slight additional gain.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..engine import kernels as K
from ..engine.events import Branch, Compute, SeqRead
from ..engine.hashtable import HashTable
from ..engine.session import Session
from ..storage.database import Database
from . import base

NAME = "Q13"
TABLES = ("customer", "orders")

_SOURCE_DC = """\
// Q13 data-centric: per-tuple LIKE + branch, hash count per customer
for (i = 0; i < orders; i++)
    if (!like(o_comment[i], "%special%requests%"))
        ht_find(ht, o_custkey[i])->count += 1;
/* distribution pass over ht + zero-order customers */"""

_SOURCE_HY = """\
// Q13 hybrid: LIKE evaluated in a prepass loop (still scalar), selvec
for (i = 0; i < orders; i += TILE) {
    for (j = 0; j < len; j++) cmp[j] = !like(o_comment[i+j], pattern);
    for (j = 0; j < len; j++) { idx[k] = i + j; k += cmp[j]; }
    for (j = 0; j < k; j++) ht_find(ht, o_custkey[idx[j]])->count += 1;
}"""

_SOURCE_SW = """\
// Q13 SWOLE: value masking — unconditional count update, masked delta
for (i = 0; i < orders; i += TILE) {
    for (j = 0; j < len; j++) cmp[j] = !like(o_comment[i+j], pattern);
    for (j = 0; j < len; j++)
        ht_find(ht, o_custkey[i+j])->count += cmp[j];
}"""


def _data(db: Database) -> Dict[str, np.ndarray]:
    orders = db.table("orders")
    return {
        "custkey": orders["o_custkey"],
        "special": orders["o_comment_special"],
    }


def _distribution(
    session: Session, per_customer: np.ndarray, num_customers: int
) -> Dict[str, Any]:
    """Second aggregation: order-count -> number of customers.

    ``per_customer`` holds counts for customers with >= 1 scanned order;
    the remaining customers contribute to bucket zero. Identical across
    strategies (it runs over the tiny first-phase hash table).
    """
    session.tracer.emit(
        SeqRead(n=int(per_customer.shape[0]), width=8, array="ht(custkey)")
    )
    values, counts = np.unique(per_customer, return_counts=True)
    missing = num_customers - int(per_customer.shape[0])
    buckets = dict(zip(values.tolist(), counts.tolist()))
    if missing:
        buckets[0] = buckets.get(0, 0) + missing
    table = HashTable(expected_keys=len(buckets), num_aggs=1)
    K.ht_aggregate(
        session,
        table,
        np.asarray(list(buckets), dtype=np.int64),
        np.asarray(list(buckets.values()), dtype=np.int64),
    )
    return base.grouped(*table.items())


def reference(db: Database) -> Dict[str, Any]:
    data = _data(db)
    nc = db.table("customer").num_rows
    mask = data["special"] == 0
    custkeys = data["custkey"].astype(np.int64)
    unique, inverse = np.unique(custkeys, return_inverse=True)
    counts = np.zeros(unique.shape[0], dtype=np.int64)
    np.add.at(counts, inverse, mask.astype(np.int64))
    values, custdist = np.unique(counts, return_counts=True)
    buckets = dict(zip(values.tolist(), custdist.tolist()))
    missing = nc - unique.shape[0]
    if missing:
        buckets[0] = buckets.get(0, 0) + missing
    keys = np.asarray(sorted(buckets), dtype=np.int64)
    return base.grouped(
        keys, np.asarray([buckets[k] for k in keys], dtype=np.int64)
    )


def _first_phase_table(db: Database) -> int:
    return db.table("customer").num_rows


def datacentric(db: Database):
    data = _data(db)
    nc = _first_phase_table(db)

    def run(session: Session) -> Dict[str, Any]:
        n = int(data["custkey"].shape[0])
        with session.tracer.kernel("scan orders"), session.tracer.overlap():
            mask = data["special"] == 0
            K.string_match(session, mask, "o_comment")
            session.tracer.emit(
                Branch(n=n, taken_fraction=float(mask.mean()), site="like")
            )
            K.scalar_loop(session, n)
            K.conditional_read(session, data["custkey"], mask, "o_custkey")
            keys = data["custkey"][mask].astype(np.int64)
            table = HashTable(expected_keys=nc, num_aggs=1)
            K.ht_aggregate(
                session, table, keys, np.ones(keys.shape[0], dtype=np.int64)
            )
        with session.tracer.kernel("distribution"):
            _, aggs = table.items()
            return _distribution(session, aggs[:, 0], nc)

    return base.make(NAME, "datacentric", _SOURCE_DC, run)


def hybrid(db: Database):
    data = _data(db)
    nc = _first_phase_table(db)

    def run(session: Session) -> Dict[str, Any]:
        with session.tracer.kernel("scan orders"), session.tracer.overlap():
            mask = data["special"] == 0
            K.string_match(session, mask, "o_comment")
            idx = K.selection_vector(session, mask)
            keys = K.gather(session, data["custkey"], idx, "o_custkey")
            table = HashTable(expected_keys=nc, num_aggs=1)
            K.ht_aggregate(
                session,
                table,
                keys.astype(np.int64),
                np.ones(keys.shape[0], dtype=np.int64),
            )
        with session.tracer.kernel("distribution"):
            _, aggs = table.items()
            return _distribution(session, aggs[:, 0], nc)

    return base.make(NAME, "hybrid", _SOURCE_HY, run)


def swole(db: Database):
    data = _data(db)
    nc = _first_phase_table(db)

    def run(session: Session) -> Dict[str, Any]:
        n = int(data["custkey"].shape[0])
        with session.tracer.kernel("scan orders"), session.tracer.overlap():
            mask = data["special"] == 0
            K.string_match(session, mask, "o_comment")
            # value masking: every order updates its customer's entry,
            # with a masked 0/1 delta — no conditional custkey read.
            K.seq_read(session, data["custkey"], "o_custkey")
            session.tracer.emit(Compute(n=n, op="mul", simd=True, width=8))
            keys = data["custkey"].astype(np.int64)
            table = HashTable(expected_keys=nc, num_aggs=1)
            K.ht_aggregate(session, table, keys, mask.astype(np.int64))
        with session.tracer.kernel("distribution"):
            _, aggs = table.items()
            return _distribution(session, aggs[:, 0], nc)

    return base.make(NAME, "swole", _SOURCE_SW, run)
