"""TPC-H queries as logical operator trees.

These are the IR inputs to the staged lowering pipeline
(:func:`repro.codegen.pipeline.compile_pipeline`): database-independent
trees using placeholder dictionary predicates (``DictEq`` /
``DictPrefix``) that the binding pass resolves against a concrete
database. The hand-coded strategy modules (``q01.py`` etc.) remain as
equivalence oracles — :func:`repro.tpch.base.oracle_tpch` compiles them
directly, and the test suite asserts byte-identical answers.

Aggregate fixed-point conventions match the oracles: prices in cents,
discounts/taxes in percent points, products carrying the scale factors
(the presentation-time divisions are not part of the query).
"""

from __future__ import annotations

from typing import Dict

from ..datagen.tpch import (
    DATE_1994_01_01,
    DATE_1995_01_01,
    DATE_1995_03_15,
    DATE_1995_09_01,
    DATE_1995_10_01,
)
from ..errors import CodegenError
from ..plan.expressions import (
    And,
    Col,
    Const,
    DictEq,
    DictIn,
    DictPrefix,
    StrMatch,
)
from ..plan.logical import AggSpec
from ..plan.ops import (
    DisjunctJoin,
    ExistsJoin,
    Filter,
    GroupByAgg,
    Join,
    LogicalPlan,
    OuterGroupJoin,
    Project,
    Scan,
)

#: Queries compiled through the generic staged pipeline (the remaining
#: queries still go through their hand-coded strategy modules).
PIPELINE_QUERIES = ("Q1", "Q3", "Q4", "Q5", "Q6", "Q13", "Q14", "Q19")

Q1_CUTOFF = 10471  # 1998-12-01 minus 90 days, days since 1970-01-01
Q6_DISC_LO, Q6_DISC_HI = 5, 7
Q6_QTY_LIMIT = 24
Q3_SEGMENT = "BUILDING"
Q14_PREFIX = "PROMO"
Q4_DATE_LO = 8582  # 1993-07-01
Q4_DATE_HI = 8674  # 1993-10-01
Q5_REGION = "ASIA"
Q13_PATTERN = "%special%requests%"
#: (brand, containers, qty_lo, qty_hi, size_hi) per Q19 disjunct arm.
Q19_DISJUNCTS = (
    ("Brand#12", ("SM CASE", "SM BOX", "SM PACK", "SM PKG"), 1, 11, 5),
    ("Brand#23", ("MED BAG", "MED BOX", "MED PKG", "MED PACK"), 10, 20, 10),
    ("Brand#34", ("LG CASE", "LG BOX", "LG PACK", "LG PKG"), 20, 30, 15),
)
Q19_SHIPMODES = ("AIR", "REG AIR")
Q19_SHIPINSTRUCT = "DELIVER IN PERSON"


def q1_plan() -> LogicalPlan:
    """Q1: one ~98 %-pass predicate, six aggregates, six groups."""
    price = Col("l_extendedprice")
    disc_price = price * (Const(100) - Col("l_discount"))
    charge = disc_price * (Const(100) + Col("l_tax"))
    return LogicalPlan(
        name="Q1",
        root=GroupByAgg(
            child=Filter(
                child=Scan("lineitem"),
                predicate=Col("l_shipdate") <= Q1_CUTOFF,
            ),
            aggregates=(
                AggSpec("sum", Col("l_quantity"), "sum_qty"),
                AggSpec("sum", price, "sum_base"),
                AggSpec("sum", disc_price, "sum_disc_price"),
                AggSpec("sum", charge, "sum_charge"),
                AggSpec("sum", Col("l_discount"), "sum_disc"),
                AggSpec("count", None, "count"),
            ),
            key=Col("l_returnflag") * 2 + Col("l_linestatus"),
            key_name="returnflag_linestatus",
        ),
    )


def q6_plan() -> LogicalPlan:
    """Q6: three conjuncts (five compares), one revenue aggregate."""
    shipdate, disc, qty = (
        Col("l_shipdate"),
        Col("l_discount"),
        Col("l_quantity"),
    )
    return LogicalPlan(
        name="Q6",
        root=GroupByAgg(
            child=Filter(
                child=Scan("lineitem"),
                predicate=And(
                    [
                        And(
                            [
                                shipdate >= DATE_1994_01_01,
                                shipdate < DATE_1995_01_01,
                            ]
                        ),
                        And([disc >= Q6_DISC_LO, disc <= Q6_DISC_HI]),
                        qty < Q6_QTY_LIMIT,
                    ]
                ),
            ),
            aggregates=(
                AggSpec(
                    "sum", Col("l_extendedprice") * disc, "revenue"
                ),
            ),
        ),
    )


def q3_plan() -> LogicalPlan:
    """Q3: customer |X| orders |X| lineitem, revenue per order."""
    revenue = Col("l_extendedprice") * (
        Const(100) - Col("l_discount")
    )
    orders_side = Join(
        probe=Filter(
            child=Scan("orders"),
            predicate=Col("o_orderdate") < DATE_1995_03_15,
        ),
        build=Filter(
            child=Scan("customer"),
            predicate=DictEq("c_mktsegment", Q3_SEGMENT),
        ),
        fk_column="o_custkey",
        pk_column="c_custkey",
    )
    return LogicalPlan(
        name="Q3",
        root=GroupByAgg(
            child=Join(
                probe=Filter(
                    child=Scan("lineitem"),
                    predicate=Col("l_shipdate") > DATE_1995_03_15,
                ),
                build=orders_side,
                fk_column="l_orderkey",
                pk_column="o_orderkey",
            ),
            aggregates=(AggSpec("sum", revenue, "revenue"),),
            key=Col("l_orderkey"),
            key_name="l_orderkey",
        ),
    )


def q14_plan() -> LogicalPlan:
    """Q14: month filter, index join carrying the promo flag from part."""
    shipdate = Col("l_shipdate")
    revenue = Col("l_extendedprice") * (
        Const(100) - Col("l_discount")
    )
    return LogicalPlan(
        name="Q14",
        root=GroupByAgg(
            child=Join(
                probe=Filter(
                    child=Scan("lineitem"),
                    # One conjunct (two compares): the month window is a
                    # single branch site, like the hand-coded programs.
                    predicate=And(
                        [
                            And(
                                [
                                    shipdate >= DATE_1995_09_01,
                                    shipdate < DATE_1995_10_01,
                                ]
                            )
                        ]
                    ),
                ),
                build=Project(
                    child=Scan("part"),
                    outputs=(
                        ("promo", DictPrefix("p_type", Q14_PREFIX)),
                    ),
                ),
                fk_column="l_partkey",
                pk_column="p_partkey",
                carry=("promo",),
            ),
            aggregates=(
                AggSpec("sum", revenue * Col("promo"), "promo_revenue"),
                AggSpec("sum", revenue, "total_revenue"),
            ),
        ),
    )


def q4_plan() -> LogicalPlan:
    """Q4: EXISTS semijoin — late lineitems vote into an orders bitmap."""
    orderdate = Col("o_orderdate")
    return LogicalPlan(
        name="Q4",
        root=GroupByAgg(
            child=ExistsJoin(
                probe=Filter(
                    child=Scan("orders"),
                    # One conjunct (two compares): the quarter window is
                    # a single branch site, like the hand-coded programs.
                    predicate=And(
                        [
                            And(
                                [
                                    orderdate >= Q4_DATE_LO,
                                    orderdate < Q4_DATE_HI,
                                ]
                            )
                        ]
                    ),
                ),
                build=Filter(
                    child=Scan("lineitem"),
                    predicate=Col("l_commitdate") < Col("l_receiptdate"),
                ),
                pk_column="o_orderkey",
                fk_column="l_orderkey",
            ),
            aggregates=(AggSpec("count", None, "order_count"),),
            key=Col("o_orderpriority"),
            key_name="o_orderpriority",
        ),
    )


def q5_plan() -> LogicalPlan:
    """Q5: deep join chain with late-materialized nation keys.

    Region filters nation; nation semijoins customer and supplier;
    orders joins customer carrying ``c_nationkey``; lineitem joins
    orders (still carrying ``c_nationkey``) and supplier (carrying
    ``s_nationkey``); the local-supplier equality is a cross-carry
    filter and revenue groups by the supplier nation.
    """
    orderdate = Col("o_orderdate")
    revenue = Col("l_extendedprice") * (Const(100) - Col("l_discount"))
    nation = Join(
        probe=Scan("nation"),
        build=Filter(
            child=Scan("region"),
            predicate=DictEq("r_name", Q5_REGION),
        ),
        fk_column="n_regionkey",
        pk_column="r_regionkey",
    )
    customer_side = Join(
        probe=Scan("customer"),
        build=nation,
        fk_column="c_nationkey",
        pk_column="n_nationkey",
    )
    supplier_side = Join(
        probe=Scan("supplier"),
        build=nation,
        fk_column="s_nationkey",
        pk_column="n_nationkey",
    )
    orders_side = Join(
        probe=Filter(
            child=Scan("orders"),
            predicate=And(
                [
                    And(
                        [
                            orderdate >= DATE_1994_01_01,
                            orderdate < DATE_1995_01_01,
                        ]
                    )
                ]
            ),
        ),
        build=customer_side,
        fk_column="o_custkey",
        pk_column="c_custkey",
        carry=("c_nationkey",),
    )
    line = Join(
        probe=Join(
            probe=Scan("lineitem"),
            build=orders_side,
            fk_column="l_orderkey",
            pk_column="o_orderkey",
            carry=("c_nationkey",),
        ),
        build=supplier_side,
        fk_column="l_suppkey",
        pk_column="s_suppkey",
        carry=("s_nationkey",),
    )
    return LogicalPlan(
        name="Q5",
        root=GroupByAgg(
            child=Filter(
                child=line,
                predicate=Col("c_nationkey").eq(Col("s_nationkey")),
            ),
            aggregates=(AggSpec("sum", revenue, "revenue"),),
            key=Col("s_nationkey"),
            key_name="s_nationkey",
        ),
    )


def q13_plan() -> LogicalPlan:
    """Q13: outer groupjoin — orders-per-customer, keeping zeros —
    then a distribution over the per-customer counts."""
    return LogicalPlan(
        name="Q13",
        root=GroupByAgg(
            child=OuterGroupJoin(
                probe=Filter(
                    child=Scan("orders"),
                    predicate=StrMatch(
                        "o_comment",
                        Q13_PATTERN,
                        "o_comment_special",
                        negated=True,
                    ),
                ),
                build=Scan("customer"),
                fk_column="o_custkey",
                pk_column="c_custkey",
                count_name="c_count",
            ),
            aggregates=(AggSpec("count", None, "custdist"),),
            key=Col("c_count"),
            key_name="c_count",
        ),
    )


def q19_plan() -> LogicalPlan:
    """Q19: OR-of-conjunctions over an index join into part."""
    qty = Col("l_quantity")
    size = Col("p_size")
    revenue = Col("l_extendedprice") * (Const(100) - Col("l_discount"))
    disjuncts = tuple(
        (
            And(
                [
                    DictEq("p_brand", brand),
                    DictIn("p_container", containers),
                    And([size >= 1, size <= size_hi]),
                ]
            ),
            And([qty >= qty_lo, qty <= qty_hi]),
        )
        for brand, containers, qty_lo, qty_hi, size_hi in Q19_DISJUNCTS
    )
    return LogicalPlan(
        name="Q19",
        root=GroupByAgg(
            child=DisjunctJoin(
                probe=Filter(
                    child=Scan("lineitem"),
                    # One conjunct (three compares): the shipping checks
                    # share a single branch site, like the hand-coded
                    # programs' fused `shipmode_ok && shipinstruct_ok`.
                    predicate=And(
                        [
                            And(
                                [
                                    DictIn("l_shipmode", Q19_SHIPMODES),
                                    DictEq(
                                        "l_shipinstruct", Q19_SHIPINSTRUCT
                                    ),
                                ]
                            )
                        ]
                    ),
                ),
                build=Scan("part"),
                fk_column="l_partkey",
                pk_column="p_partkey",
                disjuncts=disjuncts,
            ),
            aggregates=(AggSpec("sum", revenue, "revenue"),),
        ),
    )


_BUILDERS = {
    "Q1": q1_plan,
    "Q3": q3_plan,
    "Q4": q4_plan,
    "Q5": q5_plan,
    "Q6": q6_plan,
    "Q13": q13_plan,
    "Q14": q14_plan,
    "Q19": q19_plan,
}

_CACHE: Dict[str, LogicalPlan] = {}


def logical_plan(name: str) -> LogicalPlan:
    """The logical operator tree for a pipeline-compiled TPC-H query."""
    try:
        builder = _BUILDERS[name]
    except KeyError as exc:
        raise CodegenError(
            f"no logical plan for {name!r}; have {sorted(_BUILDERS)}"
        ) from exc
    if name not in _CACHE:
        _CACHE[name] = builder()
    return _CACHE[name]


__all__ = [
    "PIPELINE_QUERIES",
    "logical_plan",
    "q1_plan",
    "q3_plan",
    "q4_plan",
    "q5_plan",
    "q6_plan",
    "q13_plan",
    "q14_plan",
    "q19_plan",
]
