"""TPC-H queries as logical operator trees.

These are the IR inputs to the staged lowering pipeline
(:func:`repro.codegen.pipeline.compile_pipeline`): database-independent
trees using placeholder dictionary predicates (``DictEq`` /
``DictPrefix``) that the binding pass resolves against a concrete
database. The hand-coded strategy modules (``q01.py`` etc.) remain as
equivalence oracles — :func:`repro.tpch.base.oracle_tpch` compiles them
directly, and the test suite asserts byte-identical answers.

Aggregate fixed-point conventions match the oracles: prices in cents,
discounts/taxes in percent points, products carrying the scale factors
(the presentation-time divisions are not part of the query).
"""

from __future__ import annotations

from typing import Dict

from ..datagen.tpch import (
    DATE_1994_01_01,
    DATE_1995_01_01,
    DATE_1995_03_15,
    DATE_1995_09_01,
    DATE_1995_10_01,
)
from ..errors import CodegenError
from ..plan.expressions import And, Col, Const, DictEq, DictPrefix
from ..plan.logical import AggSpec
from ..plan.ops import Filter, GroupByAgg, Join, LogicalPlan, Project, Scan

#: Queries compiled through the generic staged pipeline (the remaining
#: queries still go through their hand-coded strategy modules).
PIPELINE_QUERIES = ("Q1", "Q3", "Q6", "Q14")

Q1_CUTOFF = 10471  # 1998-12-01 minus 90 days, days since 1970-01-01
Q6_DISC_LO, Q6_DISC_HI = 5, 7
Q6_QTY_LIMIT = 24
Q3_SEGMENT = "BUILDING"
Q14_PREFIX = "PROMO"


def q1_plan() -> LogicalPlan:
    """Q1: one ~98 %-pass predicate, six aggregates, six groups."""
    price = Col("l_extendedprice")
    disc_price = price * (Const(100) - Col("l_discount"))
    charge = disc_price * (Const(100) + Col("l_tax"))
    return LogicalPlan(
        name="Q1",
        root=GroupByAgg(
            child=Filter(
                child=Scan("lineitem"),
                predicate=Col("l_shipdate") <= Q1_CUTOFF,
            ),
            aggregates=(
                AggSpec("sum", Col("l_quantity"), "sum_qty"),
                AggSpec("sum", price, "sum_base"),
                AggSpec("sum", disc_price, "sum_disc_price"),
                AggSpec("sum", charge, "sum_charge"),
                AggSpec("sum", Col("l_discount"), "sum_disc"),
                AggSpec("count", None, "count"),
            ),
            key=Col("l_returnflag") * 2 + Col("l_linestatus"),
            key_name="returnflag_linestatus",
        ),
    )


def q6_plan() -> LogicalPlan:
    """Q6: three conjuncts (five compares), one revenue aggregate."""
    shipdate, disc, qty = (
        Col("l_shipdate"),
        Col("l_discount"),
        Col("l_quantity"),
    )
    return LogicalPlan(
        name="Q6",
        root=GroupByAgg(
            child=Filter(
                child=Scan("lineitem"),
                predicate=And(
                    [
                        And(
                            [
                                shipdate >= DATE_1994_01_01,
                                shipdate < DATE_1995_01_01,
                            ]
                        ),
                        And([disc >= Q6_DISC_LO, disc <= Q6_DISC_HI]),
                        qty < Q6_QTY_LIMIT,
                    ]
                ),
            ),
            aggregates=(
                AggSpec(
                    "sum", Col("l_extendedprice") * disc, "revenue"
                ),
            ),
        ),
    )


def q3_plan() -> LogicalPlan:
    """Q3: customer |X| orders |X| lineitem, revenue per order."""
    revenue = Col("l_extendedprice") * (
        Const(100) - Col("l_discount")
    )
    orders_side = Join(
        probe=Filter(
            child=Scan("orders"),
            predicate=Col("o_orderdate") < DATE_1995_03_15,
        ),
        build=Filter(
            child=Scan("customer"),
            predicate=DictEq("c_mktsegment", Q3_SEGMENT),
        ),
        fk_column="o_custkey",
        pk_column="c_custkey",
    )
    return LogicalPlan(
        name="Q3",
        root=GroupByAgg(
            child=Join(
                probe=Filter(
                    child=Scan("lineitem"),
                    predicate=Col("l_shipdate") > DATE_1995_03_15,
                ),
                build=orders_side,
                fk_column="l_orderkey",
                pk_column="o_orderkey",
            ),
            aggregates=(AggSpec("sum", revenue, "revenue"),),
            key=Col("l_orderkey"),
            key_name="l_orderkey",
        ),
    )


def q14_plan() -> LogicalPlan:
    """Q14: month filter, index join carrying the promo flag from part."""
    shipdate = Col("l_shipdate")
    revenue = Col("l_extendedprice") * (
        Const(100) - Col("l_discount")
    )
    return LogicalPlan(
        name="Q14",
        root=GroupByAgg(
            child=Join(
                probe=Filter(
                    child=Scan("lineitem"),
                    # One conjunct (two compares): the month window is a
                    # single branch site, like the hand-coded programs.
                    predicate=And(
                        [
                            And(
                                [
                                    shipdate >= DATE_1995_09_01,
                                    shipdate < DATE_1995_10_01,
                                ]
                            )
                        ]
                    ),
                ),
                build=Project(
                    child=Scan("part"),
                    outputs=(
                        ("promo", DictPrefix("p_type", Q14_PREFIX)),
                    ),
                ),
                fk_column="l_partkey",
                pk_column="p_partkey",
                carry=("promo",),
            ),
            aggregates=(
                AggSpec("sum", revenue * Col("promo"), "promo_revenue"),
                AggSpec("sum", revenue, "total_revenue"),
            ),
        ),
    )


_BUILDERS = {
    "Q1": q1_plan,
    "Q3": q3_plan,
    "Q6": q6_plan,
    "Q14": q14_plan,
}

_CACHE: Dict[str, LogicalPlan] = {}


def logical_plan(name: str) -> LogicalPlan:
    """The logical operator tree for a pipeline-compiled TPC-H query."""
    try:
        builder = _BUILDERS[name]
    except KeyError as exc:
        raise CodegenError(
            f"no logical plan for {name!r}; have {sorted(_BUILDERS)}"
        ) from exc
    if name not in _CACHE:
        _CACHE[name] = builder()
    return _CACHE[name]


__all__ = [
    "PIPELINE_QUERIES",
    "logical_plan",
    "q1_plan",
    "q3_plan",
    "q6_plan",
    "q14_plan",
]
