"""TPC-H Q19: the discounted revenue query.

lineitem joins part under a three-way disjunctive condition: each
disjunct constrains part (brand, container set, size range) *and*
lineitem (quantity range), on top of two common lineitem predicates
(shipmode in {AIR, REG AIR}, shipinstruct = DELIVER IN PERSON). Only a
handful of tuples reach the aggregate.

Paper result: hybrid gets 1.78x over data-centric by SIMD-vectorising
the independent lineitem predicates, but cannot improve the join
condition. SWOLE gets another 2.07x: **three positional bitmaps** are
built in one sequential scan of part (one per disjunct's part
conditions), and the join resolves to a union of semijoins — each
lineitem tuple tests the bitmap for its part offset and ANDs in its
quantity range, all sequential or cache-resident work.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from ..engine import kernels as K
from ..engine.events import Branch, Compute, RandomAccess, SeqWrite
from ..engine.session import Session
from ..storage.database import Database
from . import base

NAME = "Q19"
TABLES = ("part", "lineitem")

#: (brand, containers, qty_lo, qty_hi, size_hi) per disjunct.
DISJUNCTS: Tuple[Tuple[str, Tuple[str, ...], int, int, int], ...] = (
    ("Brand#12", ("SM CASE", "SM BOX", "SM PACK", "SM PKG"), 1, 11, 5),
    ("Brand#23", ("MED BAG", "MED BOX", "MED PKG", "MED PACK"), 10, 20, 10),
    ("Brand#34", ("LG CASE", "LG BOX", "LG PACK", "LG PKG"), 20, 30, 15),
)
SHIPMODES_OK = ("AIR", "REG AIR")
SHIPINSTRUCT_OK = "DELIVER IN PERSON"

_SOURCE_DC = """\
// Q19 data-centric: per-tuple branches + index join per candidate
for (i = 0; i < lineitem; i++)
    if (shipmode_ok(i) && shipinstruct_ok(i)) {
        p = pk_offset(l_partkey[i]);      // index join (random)
        if (disjunct1(p, i) || disjunct2(p, i) || disjunct3(p, i))
            rev += l_extendedprice[i] * (100 - l_discount[i]);
    }"""

_SOURCE_HY = """\
// Q19 hybrid: SIMD prepass for the independent lineitem predicates,
// selection vector, then the join condition per staged tuple
/* cmp[j] = shipmode_ok & shipinstruct_ok;  idx; gather part attrs;
   evaluate the disjunction branch-free; sum */"""

_SOURCE_SW = """\
// Q19 SWOLE: three bitmaps from ONE sequential scan of part
for (i = 0; i < part; i++) {
    bm1[i] = (p_brand[i]==B12) & in(p_container[i], SM) & (p_size[i]<=5);
    bm2[i] = (p_brand[i]==B23) & in(p_container[i], MED) & (p_size[i]<=10);
    bm3[i] = (p_brand[i]==B34) & in(p_container[i], LG) & (p_size[i]<=15);
}
// union of semijoins, value-masked aggregation
for (i = 0; i < lineitem; i++) {
    common = shipmode_ok(i) & shipinstruct_ok(i);
    hit = (bm1[pk[i]] & qty1(i)) | (bm2[pk[i]] & qty2(i))
        | (bm3[pk[i]] & qty3(i));
    rev += l_extendedprice[i] * (100 - l_discount[i]) * (common & hit);
}"""


def _part_data(db: Database) -> Dict[str, np.ndarray]:
    part = db.table("part")
    return {
        "brand": part["p_brand"],
        "container": part["p_container"],
        "size": part["p_size"],
    }


def _line_data(db: Database) -> Dict[str, np.ndarray]:
    lineitem = db.table("lineitem")
    return {
        "qty": lineitem["l_quantity"],
        "price": lineitem["l_extendedprice"],
        "disc": lineitem["l_discount"],
        "shipmode": lineitem["l_shipmode"],
        "shipinstruct": lineitem["l_shipinstruct"],
    }


def _part_masks(db: Database) -> List[np.ndarray]:
    """Per-disjunct boolean mask over part rows."""
    part = db.table("part")
    brand_col = part.column("p_brand")
    container_col = part.column("p_container")
    data = _part_data(db)
    masks = []
    for brand, containers, _, _, size_hi in DISJUNCTS:
        brand_code = brand_col.code_for(brand)
        container_codes = [container_col.code_for(c) for c in containers]
        masks.append(
            (data["brand"] == brand_code)
            & np.isin(data["container"], container_codes)
            & (data["size"] >= 1)
            & (data["size"] <= size_hi)
        )
    return masks


def _common_mask(db: Database) -> np.ndarray:
    lineitem = db.table("lineitem")
    mode_col = lineitem.column("l_shipmode")
    instruct_col = lineitem.column("l_shipinstruct")
    data = _line_data(db)
    modes = [mode_col.code_for(m) for m in SHIPMODES_OK]
    return np.isin(data["shipmode"], modes) & (
        data["shipinstruct"] == instruct_col.code_for(SHIPINSTRUCT_OK)
    )


def _line_hit(db: Database) -> np.ndarray:
    """Full join+disjunction outcome per lineitem row (no common preds)."""
    data = _line_data(db)
    offsets = db.fk_index("lineitem", "l_partkey").offsets
    part_masks = _part_masks(db)
    hit = np.zeros(data["qty"].shape[0], dtype=bool)
    for mask, (_, _, qty_lo, qty_hi, _) in zip(part_masks, DISJUNCTS):
        hit |= mask[offsets] & (data["qty"] >= qty_lo) & (
            data["qty"] <= qty_hi
        )
    return hit


def reference(db: Database) -> Dict[str, Any]:
    data = _line_data(db)
    final = _common_mask(db) & _line_hit(db)
    revenue = data["price"][final].astype(np.int64) * (
        100 - data["disc"][final].astype(np.int64)
    )
    return {"revenue": int(revenue.sum())}


def datacentric(db: Database):
    data = _line_data(db)

    def run(session: Session) -> Dict[str, Any]:
        n = int(data["qty"].shape[0])
        nparts = db.table("part").num_rows
        with session.tracer.kernel("scan lineitem"), session.tracer.overlap():
            K.seq_read(session, data["shipmode"], "l_shipmode")
            session.tracer.emit(Compute(n=2 * n, op="cmp", simd=False))
            common = _common_mask(db)
            # short-circuit: shipinstruct only checked for shipmode hits
            session.tracer.emit(
                Branch(n=n, taken_fraction=float(common.mean()), site="common")
            )
            K.scalar_loop(session, n)
            k = int(common.sum())
            K.conditional_read(session, data["shipinstruct"], common,
                               "l_shipinstruct")
            K.conditional_read(session, data["qty"], common, "l_quantity")
            # index join + disjunction, candidate tuples only
            session.tracer.emit(
                RandomAccess(n=k, struct_bytes=nparts * 6, kind="index_join")
            )
            session.tracer.emit(Compute(n=9 * k, op="cmp", simd=False))
            hit = _line_hit(db)
            final = common & hit
            session.tracer.emit(
                Branch(
                    n=k,
                    taken_fraction=float(final.sum()) / k if k else 0.0,
                    site="disjunction",
                )
            )
            kf = int(final.sum())
            K.conditional_read(session, data["price"], final, "price")
            K.conditional_read(session, data["disc"], final, "disc")
            for op in ("sub", "mul", "add"):
                session.tracer.emit(Compute(n=kf, op=op, simd=False))
            revenue = data["price"][final].astype(np.int64) * (
                100 - data["disc"][final].astype(np.int64)
            )
            return {"revenue": int(revenue.sum())}

    return base.make(NAME, "datacentric", _SOURCE_DC, run)


def hybrid(db: Database):
    data = _line_data(db)

    def run(session: Session) -> Dict[str, Any]:
        n = int(data["qty"].shape[0])
        nparts = db.table("part").num_rows
        with session.tracer.kernel("scan lineitem"), session.tracer.overlap():
            # SIMD prepass for the two independent predicates
            K.seq_read(session, data["shipmode"], "l_shipmode")
            K.seq_read(session, data["shipinstruct"], "l_shipinstruct")
            session.tracer.emit(Compute(n=3 * n, op="cmp", simd=True, width=4))
            session.tracer.emit(Compute(n=n, op="and", simd=True, width=1))
            common = _common_mask(db)
            idx = K.selection_vector(session, common)
            k = int(idx.shape[0])
            K.gather(session, data["qty"], idx, "l_quantity")
            # join condition: random part fetches for the staged tuples
            session.tracer.emit(
                RandomAccess(n=k, struct_bytes=nparts * 6, kind="index_join")
            )
            session.tracer.emit(Compute(n=9 * k, op="cmp", simd=False))
            final = common & _line_hit(db)
            session.tracer.emit(Compute(n=k, op="select", simd=False))
            kf = int(final.sum())
            fidx = np.flatnonzero(final)
            K.gather(session, data["price"], fidx, "price")
            K.gather(session, data["disc"], fidx, "disc")
            for op in ("sub", "mul", "add"):
                session.tracer.emit(Compute(n=kf, op=op, simd=False))
            revenue = data["price"][final].astype(np.int64) * (
                100 - data["disc"][final].astype(np.int64)
            )
            return {"revenue": int(revenue.sum())}

    return base.make(NAME, "hybrid", _SOURCE_HY, run)


def swole(db: Database):
    data = _line_data(db)

    def run(session: Session) -> Dict[str, Any]:
        n = int(data["qty"].shape[0])
        nparts = db.table("part").num_rows
        part = _part_data(db)
        with session.tracer.kernel("bitmap build part"), session.tracer.overlap():
            # one sequential scan of part builds all three bitmaps
            for name in ("brand", "container", "size"):
                K.seq_read(session, part[name], f"p_{name}")
            session.tracer.emit(
                Compute(n=6 * nparts * 3, op="cmp", simd=True, width=4)
            )
            session.tracer.emit(
                SeqWrite(n=3 * max(nparts // 8, 1), width=1, array="bitmaps")
            )
            part_masks = _part_masks(db)
        offsets = db.fk_index("lineitem", "l_partkey").offsets
        with session.tracer.kernel("probe lineitem"), session.tracer.overlap():
            # common predicates + three quantity ranges, all SIMD prepass
            K.seq_read(session, data["shipmode"], "l_shipmode")
            K.seq_read(session, data["shipinstruct"], "l_shipinstruct")
            K.seq_read(session, data["qty"], "l_quantity")
            session.tracer.emit(Compute(n=9 * n, op="cmp", simd=True, width=4))
            common = _common_mask(db)
            idx = K.selection_vector(session, common)
            k = int(idx.shape[0])
            # union of semijoins: three cached bitmap tests per staged
            # tuple replace the hybrid strategy's random part fetches
            # and nine scalar comparisons
            K.gather(session, offsets, idx, "fkindex(l_partkey)")
            session.tracer.emit(
                RandomAccess(
                    n=3 * k,
                    struct_bytes=max(nparts // 8, 1),
                    kind="bitmap_test",
                )
            )
            session.tracer.emit(
                Compute(n=6 * k, op="and", simd=True, width=1)
            )
            hit = np.zeros(n, dtype=bool)
            for mask, (_, _, qty_lo, qty_hi, _) in zip(part_masks, DISJUNCTS):
                hit |= (
                    mask[offsets]
                    & (data["qty"] >= qty_lo)
                    & (data["qty"] <= qty_hi)
                )
            final = common & hit
            kf = int(final.sum())
            fidx = np.flatnonzero(final)
            K.gather(session, data["price"], fidx, "price")
            K.gather(session, data["disc"], fidx, "disc")
            for op in ("sub", "mul", "add"):
                session.tracer.emit(Compute(n=kf, op=op, simd=False))
            revenue = data["price"][final].astype(np.int64) * (
                100 - data["disc"][final].astype(np.int64)
            )
            return {"revenue": int(revenue.sum())}

    return base.make(NAME, "swole", _SOURCE_SW, run)
