"""TPC-H Q5: the local supplier volume query.

Six tables: region ('ASIA') -> nation -> {customer, supplier}, orders
filtered to one year, lineitem joining orders and supplier, with the
cross-condition ``c_nationkey = s_nationkey``; revenue grouped by
nation. The largest table (lineitem) has no predicate, so pushdown
strategies pay a hash lookup for every lineitem tuple.

Paper result: hybrid only 1.12x over data-centric (prepass on orders);
SWOLE 2.55x over hybrid by replacing **all joins with bitmap
semijoins** and using **late materialisation**: only the ~3 % of
lineitem tuples that survive every bitmap test pay the random accesses
that fetch nation keys and revenue inputs.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..engine import kernels as K
from ..engine.events import Branch, Compute, RandomAccess, SeqRead, SeqWrite
from ..engine.hashtable import HashTable
from ..engine.session import Session
from ..storage.database import Database
from . import base
from ..datagen.tpch import DATE_1994_01_01, DATE_1995_01_01

NAME = "Q5"
TABLES = ("region", "nation", "customer", "supplier", "orders", "lineitem")
REGION = "ASIA"

_SOURCE_DC = """\
// Q5 data-centric: chained hash joins, every lineitem tuple probes
/* nations in ASIA -> set; customers/suppliers -> key->nation tables */
for (i = 0; i < orders; i++)
    if (o_orderdate[i] in FY1994 && (cn = cust_nation(o_custkey[i])) >= 0)
        ht_insert(ord, o_orderkey[i], cn);
for (i = 0; i < lineitem; i++)
    if ((e = ht_find(ord, l_orderkey[i]))
        && (sn = supp_nation(l_suppkey[i])) == e->cnation)
        rev[sn] += l_extendedprice[i] * (100 - l_discount[i]);"""

_SOURCE_HY = """\
// Q5 hybrid: prepass on orders; lineitem still probes per tuple
/* identical join chain with selection vectors where predicates exist */"""

_SOURCE_SW = """\
// Q5 SWOLE: bitmap semijoins everywhere + late materialisation
/* nation bitmap from region; customer/supplier bitmaps via FK indexes;
   orders bitmap = date prepass & customer bit;
   lineitem mask = orders bit[l_orderkey] & supplier bit[l_suppkey];
   late materialisation: only survivors fetch s_nation, c_nation, price */"""


def _data(db: Database) -> Dict[str, Dict[str, np.ndarray]]:
    return {name: db.data(name) for name in TABLES}


def _asian_nations(db: Database) -> np.ndarray:
    region = db.table("region")
    nation = db.table("nation")
    region_code = region.column("r_name").code_for(REGION)
    region_ok = region["r_name"] == region_code
    offsets = db.fk_index("nation", "n_regionkey").offsets
    return region_ok[offsets]  # boolean per nation row


def reference(db: Database) -> Dict[str, Any]:
    data = _data(db)
    nation_ok = _asian_nations(db)
    cust_nation = data["customer"]["c_nationkey"].astype(np.int64)
    cust_ok = nation_ok[db.fk_index("customer", "c_nationkey").offsets]
    supp_nation = data["supplier"]["s_nationkey"].astype(np.int64)
    supp_ok = nation_ok[db.fk_index("supplier", "s_nationkey").offsets]

    orders = data["orders"]
    cust_off = db.fk_index("orders", "o_custkey").offsets
    order_ok = (
        (orders["o_orderdate"] >= DATE_1994_01_01)
        & (orders["o_orderdate"] < DATE_1995_01_01)
        & cust_ok[cust_off]
    )
    order_cnation = cust_nation[cust_off]

    line = data["lineitem"]
    ord_off = db.fk_index("lineitem", "l_orderkey").offsets
    supp_off = db.fk_index("lineitem", "l_suppkey").offsets
    line_ok = (
        order_ok[ord_off]
        & supp_ok[supp_off]
        & (order_cnation[ord_off] == supp_nation[supp_off])
    )
    keys = supp_nation[supp_off][line_ok]
    revenue = line["l_extendedprice"][line_ok].astype(np.int64) * (
        100 - line["l_discount"][line_ok].astype(np.int64)
    )
    unique, inverse = np.unique(keys, return_inverse=True)
    aggs = np.zeros(unique.shape[0], dtype=np.int64)
    np.add.at(aggs, inverse, revenue)
    return base.grouped(unique, aggs)


def _pushdown(db: Database, branching: bool, strategy: str, source: str):
    """Shared data-centric / hybrid implementation (they differ only in
    predicate evaluation style; the join chain is identical)."""
    data = _data(db)

    def run(session: Session) -> Dict[str, Any]:
        nation_ok = _asian_nations(db)
        cust_nation = data["customer"]["c_nationkey"].astype(np.int64)
        supp_nation = data["supplier"]["s_nationkey"].astype(np.int64)

        # --- small dimension pipelines -------------------------------
        with session.tracer.kernel("build dimensions"), session.tracer.overlap():
            for table, column in (
                ("nation", "n_regionkey"),
                ("customer", "c_nationkey"),
                ("supplier", "s_nationkey"),
            ):
                values = data[table][column]
                K.seq_read(session, values, column)
                n = int(values.shape[0])
                session.tracer.emit(
                    RandomAccess(n=n, struct_bytes=32 * 8, kind="ht_lookup")
                )
                if branching:
                    session.tracer.emit(
                        Branch(n=n, taken_fraction=0.2, site=table)
                    )
            cust_ok = nation_ok[db.fk_index("customer", "c_nationkey").offsets]
            supp_ok = nation_ok[db.fk_index("supplier", "s_nationkey").offsets]
            cust_table_bytes = int(cust_ok.sum()) * 16
            K.ht_insert_keys(
                session,
                HashTable(expected_keys=max(int(cust_ok.sum()), 1)),
                data["customer"]["c_custkey"][cust_ok].astype(np.int64),
            )
            K.ht_insert_keys(
                session,
                HashTable(expected_keys=max(int(supp_ok.sum()), 1)),
                data["supplier"]["s_suppkey"][supp_ok].astype(np.int64),
            )

        # --- orders pipeline ------------------------------------------
        orders = data["orders"]
        no = int(orders["o_orderdate"].shape[0])
        cust_off = db.fk_index("orders", "o_custkey").offsets
        with session.tracer.kernel("build orders"), session.tracer.overlap():
            if branching:
                K.seq_read(session, orders["o_orderdate"], "o_orderdate")
                session.tracer.emit(Compute(n=2 * no, op="cmp", simd=False))
                dmask = (orders["o_orderdate"] >= DATE_1994_01_01) & (
                    orders["o_orderdate"] < DATE_1995_01_01
                )
                session.tracer.emit(
                    Branch(n=no, taken_fraction=float(dmask.mean()), site="fy")
                )
                K.scalar_loop(session, no)
                K.conditional_read(session, orders["o_custkey"], dmask, "o_custkey")
            else:
                K.seq_read(session, orders["o_orderdate"], "o_orderdate")
                session.tracer.emit(
                    Compute(n=2 * no, op="cmp", simd=True, width=4)
                )
                dmask = (orders["o_orderdate"] >= DATE_1994_01_01) & (
                    orders["o_orderdate"] < DATE_1995_01_01
                )
                idx = K.selection_vector(session, dmask)
                K.gather(session, orders["o_custkey"], idx, "o_custkey")
            k = int(dmask.sum())
            session.tracer.emit(
                RandomAccess(
                    n=k, struct_bytes=max(cust_table_bytes, 64), op_cycles=2.0
                )
            )
            omask = dmask & cust_ok[cust_off]
            if branching:
                session.tracer.emit(
                    Branch(
                        n=k,
                        taken_fraction=float(omask.sum()) / k if k else 0.0,
                        site="cust-join",
                    )
                )
            order_table = HashTable(expected_keys=int(omask.sum()), num_aggs=1)
            K.conditional_read(session, orders["o_orderkey"], omask, "o_orderkey")
            K.ht_insert_keys(
                session, order_table, orders["o_orderkey"][omask].astype(np.int64)
            )
            order_cnation = cust_nation[cust_off]

        # --- lineitem pipeline: a lookup for EVERY tuple ----------------
        line = data["lineitem"]
        nl = int(line["l_orderkey"].shape[0])
        ord_off = db.fk_index("lineitem", "l_orderkey").offsets
        supp_off = db.fk_index("lineitem", "l_suppkey").offsets
        with session.tracer.kernel("probe lineitem"), session.tracer.overlap():
            K.seq_read(session, line["l_orderkey"], "l_orderkey")
            _, found = K.ht_lookup(
                session, order_table, line["l_orderkey"].astype(np.int64)
            )
            if branching:
                session.tracer.emit(
                    Branch(
                        n=nl,
                        taken_fraction=float(found.mean()),
                        site="order-join",
                    )
                )
            else:
                session.tracer.emit(
                    Compute(n=nl, op="select", simd=False)
                )
            K.scalar_loop(session, nl)
            order_hit = omask[ord_off]
            k1 = int(order_hit.sum())
            K.conditional_read(session, line["l_suppkey"], order_hit, "l_suppkey")
            session.tracer.emit(
                RandomAccess(
                    n=k1,
                    struct_bytes=max(int(supp_ok.sum()), 1) * 16,
                    op_cycles=2.0,
                )
            )
            supp_hit = order_hit & supp_ok[supp_off]
            if branching:
                session.tracer.emit(
                    Branch(
                        n=k1,
                        taken_fraction=float(supp_hit.sum()) / k1 if k1 else 0.0,
                        site="supp-join",
                    )
                )
            # nation equality check
            session.tracer.emit(Compute(n=int(supp_hit.sum()), op="cmp", simd=False))
            final = supp_hit & (
                order_cnation[ord_off] == supp_nation[supp_off]
            )
            kf = int(final.sum())
            K.conditional_read(session, line["l_extendedprice"], final, "price")
            K.conditional_read(session, line["l_discount"], final, "disc")
            for op in ("sub", "mul"):
                session.tracer.emit(Compute(n=kf, op=op, simd=False))
            keys = supp_nation[supp_off][final]
            revenue = line["l_extendedprice"][final].astype(np.int64) * (
                100 - line["l_discount"][final].astype(np.int64)
            )
            group = HashTable(expected_keys=25, num_aggs=1)
            K.ht_aggregate(session, group, keys, revenue)
            return base.grouped(*group.items())

    return base.make(NAME, strategy, source, run)


def datacentric(db: Database):
    return _pushdown(db, branching=True, strategy="datacentric",
                     source=_SOURCE_DC)


def hybrid(db: Database):
    return _pushdown(db, branching=False, strategy="hybrid", source=_SOURCE_HY)


def swole(db: Database):
    data = _data(db)

    def run(session: Session) -> Dict[str, Any]:
        nation_ok = _asian_nations(db)
        cust_nation = data["customer"]["c_nationkey"].astype(np.int64)
        supp_nation = data["supplier"]["s_nationkey"].astype(np.int64)
        nc = int(cust_nation.shape[0])
        ns = int(supp_nation.shape[0])

        # --- dimension bitmaps (all sequential) -------------------------
        with session.tracer.kernel("dimension bitmaps"), session.tracer.overlap():
            for table, column, rows in (
                ("nation", "n_regionkey", 25),
                ("customer", "c_nationkey", nc),
                ("supplier", "s_nationkey", ns),
            ):
                K.seq_read(session, data[table][column], column)
                session.tracer.emit(
                    RandomAccess(n=rows, struct_bytes=4, kind="bitmap_test")
                )
                session.tracer.emit(
                    SeqWrite(n=max(rows // 8, 1), width=1, array=f"bm({table})")
                )
            cust_ok = nation_ok[db.fk_index("customer", "c_nationkey").offsets]
            supp_ok = nation_ok[db.fk_index("supplier", "s_nationkey").offsets]

        # --- orders bitmap ----------------------------------------------
        orders = data["orders"]
        no = int(orders["o_orderdate"].shape[0])
        cust_off = db.fk_index("orders", "o_custkey").offsets
        with session.tracer.kernel("orders bitmap"), session.tracer.overlap():
            K.seq_read(session, orders["o_orderdate"], "o_orderdate")
            session.tracer.emit(Compute(n=2 * no, op="cmp", simd=True, width=4))
            dmask = (orders["o_orderdate"] >= DATE_1994_01_01) & (
                orders["o_orderdate"] < DATE_1995_01_01
            )
            session.tracer.emit(
                SeqRead(n=no, width=8, array="fkindex(o_custkey)")
            )
            session.tracer.emit(
                RandomAccess(
                    n=no, struct_bytes=max(nc // 8, 1), kind="bitmap_test"
                )
            )
            session.tracer.emit(Compute(n=no, op="and", simd=True, width=1))
            omask = dmask & cust_ok[cust_off]
            session.tracer.emit(
                SeqWrite(n=max(no // 8, 1), width=1, array="bm(orders)")
            )

        # --- lineitem: sequential bitmap probes, late materialisation ---
        line = data["lineitem"]
        nl = int(line["l_orderkey"].shape[0])
        ord_off = db.fk_index("lineitem", "l_orderkey").offsets
        supp_off = db.fk_index("lineitem", "l_suppkey").offsets
        with session.tracer.kernel("probe lineitem"), session.tracer.overlap():
            # two FK-index streams + two cached bitmap tests per tuple
            session.tracer.emit(
                SeqRead(n=nl, width=8, array="fkindex(l_orderkey)")
            )
            session.tracer.emit(
                RandomAccess(n=nl, struct_bytes=max(no // 8, 1),
                             kind="bitmap_test")
            )
            session.tracer.emit(
                SeqRead(n=nl, width=8, array="fkindex(l_suppkey)")
            )
            session.tracer.emit(
                RandomAccess(n=nl, struct_bytes=max(ns // 8, 1),
                             kind="bitmap_test")
            )
            session.tracer.emit(Compute(n=2 * nl, op="and", simd=True, width=1))
            survive = omask[ord_off] & supp_ok[supp_off]
            idx = K.selection_vector(session, survive)
            k = int(idx.shape[0])
            # late materialisation: survivors fetch nation keys + revenue
            session.tracer.emit(
                RandomAccess(n=k, struct_bytes=ns * 1, kind="gather(s_nation)")
            )
            session.tracer.emit(
                RandomAccess(n=k, struct_bytes=nc * 1, kind="gather(c_nation)")
            )
            session.tracer.emit(Compute(n=k, op="cmp", simd=False))
            final = survive & (
                cust_nation[cust_off][ord_off] == supp_nation[supp_off]
            )
            kf = int(final.sum())
            fidx = np.flatnonzero(final)
            K.gather(session, line["l_extendedprice"], fidx, "price")
            K.gather(session, line["l_discount"], fidx, "disc")
            for op in ("sub", "mul"):
                session.tracer.emit(Compute(n=kf, op=op, simd=False))
            keys = supp_nation[supp_off][final]
            revenue = line["l_extendedprice"][final].astype(np.int64) * (
                100 - line["l_discount"][final].astype(np.int64)
            )
            group = HashTable(expected_keys=25, num_aggs=1)
            K.ht_aggregate(session, group, keys, revenue)
            return base.grouped(*group.items())

    return base.make(NAME, "swole", _SOURCE_SW, run)
