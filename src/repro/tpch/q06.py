"""TPC-H Q6: the forecasting revenue change query.

A single scan of lineitem with three predicates (five comparisons over
three attributes) selecting ~2 % of tuples; the aggregate
``sum(l_extendedprice * l_discount)`` reuses ``l_discount`` from the
predicate.

Paper result: hybrid gets 2.33x over data-centric (SIMD prepass on the
multi-comparison predicate); SWOLE adds 1.38x via **access merging** on
``l_discount`` plus **value masking** — limited by ~98 % wasted work.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..engine import kernels as K
from ..engine.events import Branch, CondRead, Compute
from ..engine.session import Session
from ..storage.database import Database
from . import base
from ..datagen.tpch import DATE_1994_01_01, DATE_1995_01_01

NAME = "Q6"
TABLES = ("lineitem",)
DISC_LO, DISC_HI = 5, 7  # between 0.05 and 0.07, percent points
QTY_LIMIT = 24

_SOURCE_DC = """\
// Q6 data-centric: short-circuit conjuncts, conditional aggregate reads
for (i = 0; i < lineitem; i++) {
    if (l_shipdate[i] >= d1994 && l_shipdate[i] < d1995
        && l_discount[i] >= 5 && l_discount[i] <= 7
        && l_quantity[i] < 24)
        revenue += l_extendedprice[i] * l_discount[i];
}"""

_SOURCE_HY = """\
// Q6 hybrid: one SIMD prepass per conjunct, selection vector, gather
for (i = 0; i < lineitem; i += TILE) {
    for (j = 0; j < len; j++)
        cmp[j] = (l_shipdate[i+j] >= d1994) & (l_shipdate[i+j] < d1995)
               & (l_discount[i+j] >= 5) & (l_discount[i+j] <= 7)
               & (l_quantity[i+j] < 24);
    for (j = 0; j < len; j++) { idx[k] = i + j; k += cmp[j]; }
    for (j = 0; j < k; j++)
        revenue += l_extendedprice[idx[j]] * l_discount[idx[j]];
}"""

_SOURCE_SW = """\
// Q6 SWOLE: access merging on l_discount + value masking
for (i = 0; i < lineitem; i += TILE) {
    for (j = 0; j < len; j++)
        tmp[j] = l_discount[i+j]
               * ((l_shipdate[i+j] >= d1994) & (l_shipdate[i+j] < d1995)
                & (l_discount[i+j] >= 5) & (l_discount[i+j] <= 7)
                & (l_quantity[i+j] < 24));   // merged access
    for (j = 0; j < len; j++)
        revenue += l_extendedprice[i+j] * tmp[j];
}"""


def _columns(db: Database) -> Dict[str, np.ndarray]:
    table = db.table("lineitem")
    return {
        "shipdate": table["l_shipdate"],
        "disc": table["l_discount"],
        "qty": table["l_quantity"],
        "price": table["l_extendedprice"],
    }


def _mask(cols: Dict[str, np.ndarray]) -> np.ndarray:
    return (
        (cols["shipdate"] >= DATE_1994_01_01)
        & (cols["shipdate"] < DATE_1995_01_01)
        & (cols["disc"] >= DISC_LO)
        & (cols["disc"] <= DISC_HI)
        & (cols["qty"] < QTY_LIMIT)
    )


def reference(db: Database) -> Dict[str, Any]:
    cols = _columns(db)
    mask = _mask(cols)
    revenue = (
        cols["price"][mask].astype(np.int64)
        * cols["disc"][mask].astype(np.int64)
    ).sum()
    return {"revenue": int(revenue)}


#: Conjuncts in short-circuit order: (column, measured term mask builder).
_CONJUNCTS = (
    ("shipdate", lambda c: (c["shipdate"] >= DATE_1994_01_01)
     & (c["shipdate"] < DATE_1995_01_01), 2),
    ("disc", lambda c: (c["disc"] >= DISC_LO) & (c["disc"] <= DISC_HI), 2),
    ("qty", lambda c: c["qty"] < QTY_LIMIT, 1),
)


def datacentric(db: Database):
    cols = _columns(db)

    def _run(session: Session, view: Dict[str, np.ndarray]) -> Dict[str, Any]:
        with session.tracer.overlap():
            n = int(view["shipdate"].shape[0])
            remaining = np.ones(n, dtype=bool)
            survivors = n
            for i, (col, term_of, n_cmps) in enumerate(_CONJUNCTS):
                if i == 0:
                    K.seq_read(session, view[col], col)
                else:
                    session.tracer.emit(
                        CondRead(
                            n_range=n,
                            n_selected=survivors,
                            width=int(view[col].dtype.itemsize),
                            array=col,
                        )
                    )
                session.tracer.emit(
                    Compute(n=survivors * n_cmps, op="cmp", simd=False)
                )
                passed = remaining & term_of(view)
                new_survivors = int(passed.sum())
                taken = new_survivors / survivors if survivors else 0.0
                session.tracer.emit(
                    Branch(n=survivors, taken_fraction=taken, site=col)
                )
                remaining, survivors = passed, new_survivors
            K.scalar_loop(session, n)
            price = K.conditional_read(session, view["price"], remaining, "price")
            disc = K.conditional_read(session, view["disc"], remaining, "disc")
            session.tracer.emit(Compute(n=survivors, op="mul", simd=False))
            session.tracer.emit(Compute(n=survivors, op="add", simd=False))
            revenue = int(
                (price.astype(np.int64) * disc.astype(np.int64)).sum()
            )
            return {"revenue": revenue}

    def run(session: Session) -> Dict[str, Any]:
        return _run(session, cols)

    return base.make(
        NAME, "datacentric", _SOURCE_DC, run, parallel=base.scan_plan(cols, _run)
    )


def hybrid(db: Database):
    cols = _columns(db)

    def _run(session: Session, view: Dict[str, np.ndarray]) -> Dict[str, Any]:
        with session.tracer.overlap():
            n = int(view["shipdate"].shape[0])
            for col, _, n_cmps in _CONJUNCTS:
                K.seq_read(session, view[col], col)
                session.tracer.emit(
                    Compute(
                        n=n * n_cmps,
                        op="cmp",
                        simd=True,
                        width=int(view[col].dtype.itemsize),
                    )
                )
            session.tracer.emit(Compute(n=2 * n, op="and", simd=True, width=1))
            mask = _mask(view)
            idx = K.selection_vector(session, mask)
            price = K.gather(session, view["price"], idx, "price")
            disc = K.gather(session, view["disc"], idx, "disc")
            k = int(idx.shape[0])
            session.tracer.emit(Compute(n=k, op="mul", simd=False))
            session.tracer.emit(Compute(n=k, op="add", simd=False))
            revenue = int(
                (price.astype(np.int64) * disc.astype(np.int64)).sum()
            )
            return {"revenue": revenue}

    def run(session: Session) -> Dict[str, Any]:
        return _run(session, cols)

    return base.make(
        NAME, "hybrid", _SOURCE_HY, run, parallel=base.scan_plan(cols, _run)
    )


def swole(db: Database):
    cols = _columns(db)

    def _run(session: Session, view: Dict[str, np.ndarray]) -> Dict[str, Any]:
        with session.tracer.overlap():
            n = int(view["shipdate"].shape[0])
            # prepass; l_discount is read here once (merged with the agg)
            for col, _, n_cmps in _CONJUNCTS:
                K.seq_read(session, view[col], col)
                session.tracer.emit(
                    Compute(
                        n=n * n_cmps,
                        op="cmp",
                        simd=True,
                        width=int(view[col].dtype.itemsize),
                    )
                )
            session.tracer.emit(Compute(n=2 * n, op="and", simd=True, width=1))
            mask = _mask(view)
            # access merging: tmp = l_discount * cmp (no second read)
            session.tracer.emit(Compute(n=n, op="mul", simd=True, width=8))
            tmp = view["disc"].astype(np.int64) * mask
            K.seq_write(session, tmp, "tmp", resident=True)
            # value masking: sequential read of price, SIMD multiply-add
            K.seq_read(session, view["price"], "price")
            session.tracer.emit(Compute(n=n, op="mul", simd=True, width=8))
            session.tracer.emit(Compute(n=n, op="add", simd=True, width=8))
            revenue = int((view["price"].astype(np.int64) * tmp).sum())
            return {"revenue": revenue}

    def run(session: Session) -> Dict[str, Any]:
        return _run(session, cols)

    return base.make(
        NAME, "swole", _SOURCE_SW, run, parallel=base.scan_plan(cols, _run)
    )
