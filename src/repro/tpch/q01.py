"""TPC-H Q1: the pricing summary report.

A single scan of lineitem with one simple predicate that passes ~98 % of
tuples (``l_shipdate <= 1998-12-01 - 90 days``), grouped by
(returnflag, linestatus) — six groups — with the most compute-intensive
aggregation in TPC-H.

Paper result: hybrid barely helps (1.04x over data-centric); SWOLE adds
1.43x via **key masking** — the cost model prefers masking the single
group key over masking the many aggregate values, and the 98 %
selectivity means almost no wasted work.

Aggregates (fixed-point; divisions deferred to presentation):

* ``sum_qty``, ``sum_base`` (= sum extendedprice, cents)
* ``sum_disc_price`` = sum price * (100 - disc)     [cents * 1e2]
* ``sum_charge``     = sum price * (100 - disc) * (100 + tax)  [cents * 1e4]
* ``sum_disc``, ``count``
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..engine import kernels as K
from ..engine.events import Branch, Compute
from ..engine.hashtable import NULL_KEY, HashTable
from ..engine.session import Session
from ..storage.database import Database
from . import base

NAME = "Q1"
TABLES = ("lineitem",)
CUTOFF = 10471  # 1998-12-01 minus 90 days, as days since 1970-01-01
NUM_GROUPS = 6  # 3 returnflags x 2 linestatus

_SOURCE_DC = """\
// Q1 data-centric: fused loop, per-tuple branch, conditional reads
for (i = 0; i < lineitem; i++) {
    if (l_shipdate[i] <= 10471) {
        e = ht_find(ht, l_returnflag[i] * 2 + l_linestatus[i]);
        e->sum_qty   += l_quantity[i];
        e->sum_base  += l_extendedprice[i];
        e->sum_disc_price += l_extendedprice[i] * (100 - l_discount[i]);
        e->sum_charge += l_extendedprice[i] * (100 - l_discount[i])
                                            * (100 + l_tax[i]);
        e->sum_disc  += l_discount[i];
        e->count     += 1;
    }
}"""

_SOURCE_HY = """\
// Q1 hybrid: SIMD prepass + selection vector + conditional aggregation
for (i = 0; i < lineitem; i += TILE) {
    for (j = 0; j < len; j++) cmp[j] = l_shipdate[i+j] <= 10471;
    for (j = 0; j < len; j++) { idx[k] = i + j; k += cmp[j]; }
    for (j = 0; j < k; j++) { /* six aggregate updates via idx[j] */ }
}"""

_SOURCE_SW = """\
// Q1 SWOLE: key masking — mask the group key, aggregate every tuple
for (i = 0; i < lineitem; i += TILE) {
    for (j = 0; j < len; j++)
        key[j] = (l_shipdate[i+j] <= 10471)
               ? l_returnflag[i+j] * 2 + l_linestatus[i+j] : NULL_KEY;
    for (j = 0; j < len; j++) { /* six SIMD aggregate updates, all rows */ }
}
ht_drop(ht, NULL_KEY);"""


def _columns(db: Database) -> Dict[str, np.ndarray]:
    table = db.table("lineitem")
    return {
        "shipdate": table["l_shipdate"],
        "qty": table["l_quantity"],
        "price": table["l_extendedprice"],
        "disc": table["l_discount"],
        "tax": table["l_tax"],
        "rf": table["l_returnflag"],
        "ls": table["l_linestatus"],
    }


def _group_keys(cols: Dict[str, np.ndarray]) -> np.ndarray:
    return (cols["rf"].astype(np.int64) * 2 + cols["ls"]).astype(np.int64)


def _deltas(cols: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    price = cols["price"].astype(np.int64)
    disc = cols["disc"].astype(np.int64)
    tax = cols["tax"].astype(np.int64)
    disc_price = price * (100 - disc)
    return {
        "sum_qty": cols["qty"].astype(np.int64),
        "sum_base": price,
        "sum_disc_price": disc_price,
        "sum_charge": disc_price * (100 + tax),
        "sum_disc": disc,
        "count": np.ones(price.shape[0], dtype=np.int64),
    }


#: Arithmetic charged per tuple for the six aggregates (subs/mults/adds).
_AGG_OPS = ("sub", "mul", "sub", "mul", "mul") + ("add",) * 6


def reference(db: Database) -> Dict[str, Any]:
    cols = _columns(db)
    mask = cols["shipdate"] <= CUTOFF
    keys = _group_keys(cols)[mask]
    deltas = _deltas(cols)
    unique, inverse = np.unique(keys, return_inverse=True)
    aggs = np.zeros((unique.shape[0], 6), dtype=np.int64)
    for col, (name, values) in enumerate(deltas.items()):
        np.add.at(aggs[:, col], inverse, values[mask])
    return base.grouped(unique, aggs)


def _aggregate_into(
    session: Session,
    table: HashTable,
    keys: np.ndarray,
    deltas: Dict[str, np.ndarray],
    simd: bool,
) -> None:
    """Shared hash-update tail: one lookup, six scatter-adds."""
    n = int(keys.shape[0])
    for op in _AGG_OPS:
        session.tracer.emit(Compute(n=n, op=op, simd=simd, width=8))
    slots = None
    for i, values in enumerate(deltas.values()):
        if slots is None:
            K.ht_aggregate(session, table, keys, values, agg=i)
            slots, _ = table.lookup(keys)
        else:
            K.ht_add_at(session, table, slots, i, values)


def datacentric(db: Database):
    cols = _columns(db)

    def _run(session: Session, view: Dict[str, np.ndarray]) -> Dict[str, Any]:
        with session.tracer.overlap():
            n = int(view["shipdate"].shape[0])
            K.seq_read(session, view["shipdate"], "l_shipdate")
            session.tracer.emit(Compute(n=n, op="cmp", simd=False))
            mask = view["shipdate"] <= CUTOFF
            k = int(mask.sum())
            session.tracer.emit(
                Branch(n=n, taken_fraction=k / n if n else 0.0, site="shipdate")
            )
            K.scalar_loop(session, n)
            for name in ("rf", "ls", "qty", "price", "disc", "tax"):
                K.conditional_read(session, view[name], mask, name)
            sub = {name: values[mask] for name, values in view.items()}
            keys = _group_keys(sub)
            table = HashTable(expected_keys=NUM_GROUPS, num_aggs=6)
            _aggregate_into(session, table, keys, _deltas(sub), simd=False)
            return base.grouped(*table.items())

    def run(session: Session) -> Dict[str, Any]:
        return _run(session, cols)

    return base.make(
        NAME, "datacentric", _SOURCE_DC, run, parallel=base.scan_plan(cols, _run)
    )


def hybrid(db: Database):
    cols = _columns(db)

    def _run(session: Session, view: Dict[str, np.ndarray]) -> Dict[str, Any]:
        with session.tracer.overlap():
            mask = K.compare(session, view["shipdate"], "<=", CUTOFF, "l_shipdate")
            idx = K.selection_vector(session, mask)
            for name in ("rf", "ls", "qty", "price", "disc", "tax"):
                K.gather(session, view[name], idx, name)
            sub = {name: values[mask] for name, values in view.items()}
            keys = _group_keys(sub)
            table = HashTable(expected_keys=NUM_GROUPS, num_aggs=6)
            _aggregate_into(session, table, keys, _deltas(sub), simd=False)
            return base.grouped(*table.items())

    def run(session: Session) -> Dict[str, Any]:
        return _run(session, cols)

    return base.make(
        NAME, "hybrid", _SOURCE_HY, run, parallel=base.scan_plan(cols, _run)
    )


def swole(db: Database):
    cols = _columns(db)

    def _run(session: Session, view: Dict[str, np.ndarray]) -> Dict[str, Any]:
        with session.tracer.overlap():
            n = int(view["shipdate"].shape[0])
            mask = K.compare(session, view["shipdate"], "<=", CUTOFF, "l_shipdate")
            # key masking: read the two key columns sequentially, mask
            for name in ("rf", "ls"):
                K.seq_read(session, view[name], name)
            session.tracer.emit(Compute(n=n, op="mul", simd=True, width=8))
            session.tracer.emit(Compute(n=n, op="add", simd=True, width=8))
            raw_keys = _group_keys(view)
            session.tracer.emit(Compute(n=n, op="blend", simd=True, width=8))
            keys = np.where(mask, raw_keys, NULL_KEY)
            K.seq_write(session, keys, "key", resident=True)
            for name in ("qty", "price", "disc", "tax"):
                K.seq_read(session, view[name], name)
            table = HashTable(expected_keys=NUM_GROUPS + 1, num_aggs=6)
            _aggregate_into(session, table, keys, _deltas(view), simd=True)
            result_keys, aggs = table.items()
            keep = result_keys != NULL_KEY
            return base.grouped(result_keys[keep], aggs[keep])

    def run(session: Session) -> Dict[str, Any]:
        return _run(session, cols)

    return base.make(
        NAME, "swole", _SOURCE_SW, run, parallel=base.scan_plan(cols, _run)
    )
