"""TPC-H Q3: the shipping priority query.

customer (``c_mktsegment = 'BUILDING'``, 1/5 pass) joins orders
(``o_orderdate < 1995-03-15``, ~half pass) joins lineitem
(``l_shipdate > 1995-03-15``), revenue grouped by order.

Paper result: hybrid 1.19x over data-centric; SWOLE 1.48x over hybrid by
replacing the customer-orders hash join with a **positional bitmap**
probed through the ``o_custkey`` FK index. The cost model declines to
rewrite the orders-lineitem groupjoin as eager aggregation (too many
keys would be deleted), so that part stays hybrid-shaped.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..engine import kernels as K
from ..engine.events import Branch, Compute, RandomAccess, SeqRead, SeqWrite
from ..engine.hashtable import HashTable
from ..engine.session import Session
from ..storage.database import Database
from . import base
from ..datagen.tpch import DATE_1995_03_15

NAME = "Q3"
TABLES = ("customer", "orders", "lineitem")
SEGMENT = "BUILDING"

_SOURCE_DC = """\
// Q3 data-centric: two chained hash joins, per-tuple branches
for (i = 0; i < customer; i++)
    if (c_mktsegment[i] == BUILDING) ht_insert(cust, c_custkey[i]);
for (i = 0; i < orders; i++)
    if (o_orderdate[i] < d && ht_contains(cust, o_custkey[i]))
        ht_insert(ord, o_orderkey[i]);
for (i = 0; i < lineitem; i++)
    if (l_shipdate[i] > d && (e = ht_find(ord, l_orderkey[i])))
        e->revenue += l_extendedprice[i] * (100 - l_discount[i]);"""

_SOURCE_HY = """\
// Q3 hybrid: prepass + selection vectors feeding the same hash joins
/* per pipeline: SIMD cmp loop; no-branch selvec; gather; ht op */"""

_SOURCE_SW = """\
// Q3 SWOLE: positional bitmap for customer |X| orders, groupjoin kept
for (i = 0; i < customer; i++)            // sequential bitmap build
    bitmap_set(bm, i, c_mktsegment[i] == BUILDING);
for (i = 0; i < orders; i++) {            // probe via o_custkey FK index
    pass = (o_orderdate[i] < d) & bitmap_test(bm, cust_offset[i]);
    if (pass) ht_insert(ord, o_orderkey[i]);     // selvec insert
}
/* lineitem pipeline unchanged (cost model keeps the groupjoin) */"""


def _data(db: Database) -> Dict[str, Dict[str, np.ndarray]]:
    customer = db.table("customer")
    orders = db.table("orders")
    lineitem = db.table("lineitem")
    return {
        "customer": {
            "custkey": customer["c_custkey"],
            "segment": customer["c_mktsegment"],
        },
        "orders": {
            "orderkey": orders["o_orderkey"],
            "custkey": orders["o_custkey"],
            "date": orders["o_orderdate"],
        },
        "lineitem": {
            "orderkey": lineitem["l_orderkey"],
            "shipdate": lineitem["l_shipdate"],
            "price": lineitem["l_extendedprice"],
            "disc": lineitem["l_discount"],
        },
    }


def _segment_code(db: Database) -> int:
    return db.table("customer").column("c_mktsegment").code_for(SEGMENT)


def reference(db: Database) -> Dict[str, Any]:
    data = _data(db)
    seg = _segment_code(db)
    cust_ok = data["customer"]["segment"] == seg
    cust_offsets = db.fk_index("orders", "o_custkey").offsets
    order_ok = (data["orders"]["date"] < DATE_1995_03_15) & cust_ok[
        cust_offsets
    ]
    order_offsets = db.fk_index("lineitem", "l_orderkey").offsets
    line = data["lineitem"]
    line_ok = (line["shipdate"] > DATE_1995_03_15) & order_ok[order_offsets]
    keys = line["orderkey"][line_ok].astype(np.int64)
    revenue = line["price"][line_ok].astype(np.int64) * (
        100 - line["disc"][line_ok].astype(np.int64)
    )
    unique, inverse = np.unique(keys, return_inverse=True)
    aggs = np.zeros(unique.shape[0], dtype=np.int64)
    np.add.at(aggs, inverse, revenue)
    return base.grouped(unique, aggs)


def _lineitem_tail(
    session: Session,
    db: Database,
    table: HashTable,
    data: Dict[str, Dict[str, np.ndarray]],
    branching: bool,
) -> Dict[str, Any]:
    """Shared lineitem pipeline: filter by shipdate, probe orders table,
    scatter-add revenue. ``branching`` selects data-centric's per-tuple
    ifs vs. the prepass/selection-vector form."""
    line = data["lineitem"]
    n = int(line["shipdate"].shape[0])
    with session.tracer.kernel("probe lineitem"), session.tracer.overlap():
        if branching:
            K.seq_read(session, line["shipdate"], "l_shipdate")
            session.tracer.emit(Compute(n=n, op="cmp", simd=False))
            mask = line["shipdate"] > DATE_1995_03_15
            session.tracer.emit(
                Branch(n=n, taken_fraction=float(mask.mean()), site="shipdate")
            )
            K.scalar_loop(session, n)
            K.conditional_read(session, line["orderkey"], mask, "l_orderkey")
        else:
            mask = K.compare(
                session, line["shipdate"], ">", DATE_1995_03_15, "l_shipdate"
            )
            idx = K.selection_vector(session, mask)
            K.gather(session, line["orderkey"], idx, "l_orderkey")
        keys = line["orderkey"][mask].astype(np.int64)
        slots, found = K.ht_lookup(session, table, keys)
        if branching:
            session.tracer.emit(
                Branch(
                    n=int(mask.sum()),
                    taken_fraction=float(found.mean()) if found.size else 0.0,
                    site="join",
                )
            )
        else:
            session.tracer.emit(
                Compute(n=int(found.shape[0]), op="select", simd=False)
            )
        match = mask.copy()
        match[mask] = found
        k = int(match.sum())
        if branching:
            K.conditional_read(session, line["price"], match, "l_extendedprice")
            K.conditional_read(session, line["disc"], match, "l_discount")
        else:
            midx = np.flatnonzero(match)
            K.gather(session, line["price"], midx, "l_extendedprice")
            K.gather(session, line["disc"], midx, "l_discount")
        for op in ("sub", "mul"):
            session.tracer.emit(Compute(n=k, op=op, simd=False))
        revenue = line["price"][match].astype(np.int64) * (
            100 - line["disc"][match].astype(np.int64)
        )
        K.ht_add_at(session, table, slots[found], 0, revenue)
        K.ht_add_at(
            session, table, slots[found], 1, np.ones(k, dtype=np.int64)
        )
    keys_out, aggs = table.items()
    touched = aggs[:, 1] > 0
    return base.grouped(keys_out[touched], aggs[touched, :1])


def datacentric(db: Database):
    data = _data(db)
    seg = _segment_code(db)

    def run(session: Session) -> Dict[str, Any]:
        cust = data["customer"]
        nc = int(cust["custkey"].shape[0])
        with session.tracer.kernel("build customer"), session.tracer.overlap():
            K.seq_read(session, cust["segment"], "c_mktsegment")
            session.tracer.emit(Compute(n=nc, op="cmp", simd=False))
            cmask = cust["segment"] == seg
            session.tracer.emit(
                Branch(n=nc, taken_fraction=float(cmask.mean()), site="segment")
            )
            K.scalar_loop(session, nc)
            K.conditional_read(session, cust["custkey"], cmask, "c_custkey")
            cust_table = HashTable(expected_keys=int(cmask.sum()), num_aggs=0)
            K.ht_insert_keys(
                session, cust_table, cust["custkey"][cmask].astype(np.int64)
            )
        orders = data["orders"]
        no = int(orders["date"].shape[0])
        with session.tracer.kernel("build orders"), session.tracer.overlap():
            K.seq_read(session, orders["date"], "o_orderdate")
            session.tracer.emit(Compute(n=no, op="cmp", simd=False))
            dmask = orders["date"] < DATE_1995_03_15
            session.tracer.emit(
                Branch(n=no, taken_fraction=float(dmask.mean()), site="date")
            )
            K.scalar_loop(session, no)
            K.conditional_read(session, orders["custkey"], dmask, "o_custkey")
            _, found = K.ht_lookup(
                session, cust_table, orders["custkey"][dmask].astype(np.int64)
            )
            session.tracer.emit(
                Branch(
                    n=int(dmask.sum()),
                    taken_fraction=float(found.mean()) if found.size else 0.0,
                    site="cust-join",
                )
            )
            omask = dmask.copy()
            omask[dmask] = found
            K.conditional_read(session, orders["orderkey"], omask, "o_orderkey")
            order_table = HashTable(expected_keys=int(omask.sum()), num_aggs=2)
            K.ht_insert_keys(
                session, order_table, orders["orderkey"][omask].astype(np.int64)
            )
        return _lineitem_tail(session, db, order_table, data, branching=True)

    return base.make(NAME, "datacentric", _SOURCE_DC, run)


def hybrid(db: Database):
    data = _data(db)
    seg = _segment_code(db)

    def run(session: Session) -> Dict[str, Any]:
        cust = data["customer"]
        with session.tracer.kernel("build customer"), session.tracer.overlap():
            cmask = K.compare(session, cust["segment"], "==", seg, "c_mktsegment")
            idx = K.selection_vector(session, cmask)
            keys = K.gather(session, cust["custkey"], idx, "c_custkey")
            cust_table = HashTable(expected_keys=int(cmask.sum()), num_aggs=0)
            K.ht_insert_keys(session, cust_table, keys.astype(np.int64))
        orders = data["orders"]
        with session.tracer.kernel("build orders"), session.tracer.overlap():
            dmask = K.compare(
                session, orders["date"], "<", DATE_1995_03_15, "o_orderdate"
            )
            idx = K.selection_vector(session, dmask)
            ckeys = K.gather(session, orders["custkey"], idx, "o_custkey")
            _, found = K.ht_lookup(session, cust_table, ckeys.astype(np.int64))
            session.tracer.emit(
                Compute(n=int(found.shape[0]), op="select", simd=False)
            )
            omask = dmask.copy()
            omask[dmask] = found
            oidx = np.flatnonzero(omask)
            okeys = K.gather(session, orders["orderkey"], oidx, "o_orderkey")
            order_table = HashTable(expected_keys=int(omask.sum()), num_aggs=2)
            K.ht_insert_keys(session, order_table, okeys.astype(np.int64))
        return _lineitem_tail(session, db, order_table, data, branching=False)

    return base.make(NAME, "hybrid", _SOURCE_HY, run)


def swole(db: Database):
    data = _data(db)
    seg = _segment_code(db)
    cust_offsets = db.fk_index("orders", "o_custkey").offsets

    def run(session: Session) -> Dict[str, Any]:
        cust = data["customer"]
        nc = int(cust["custkey"].shape[0])
        with session.tracer.kernel("bitmap build customer"), \
                session.tracer.overlap():
            cmask = K.compare(session, cust["segment"], "==", seg, "c_mktsegment")
            session.tracer.emit(
                SeqWrite(n=max(nc // 8, 1), width=1, array="bitmap")
            )
        orders = data["orders"]
        no = int(orders["date"].shape[0])
        with session.tracer.kernel("build orders"), session.tracer.overlap():
            dmask = K.compare(
                session, orders["date"], "<", DATE_1995_03_15, "o_orderdate"
            )
            # probe the customer bitmap through the o_custkey FK index
            session.tracer.emit(
                SeqRead(n=no, width=8, array="fkindex(o_custkey)")
            )
            session.tracer.emit(
                RandomAccess(
                    n=no, struct_bytes=max(nc // 8, 1), kind="bitmap_test"
                )
            )
            session.tracer.emit(Compute(n=no, op="and", simd=True, width=1))
            omask = dmask & cmask[cust_offsets]
            idx = K.selection_vector(session, omask)
            okeys = K.gather(session, orders["orderkey"], idx, "o_orderkey")
            order_table = HashTable(expected_keys=int(omask.sum()), num_aggs=2)
            K.ht_insert_keys(session, order_table, okeys.astype(np.int64))
        return _lineitem_tail(session, db, order_table, data, branching=False)

    return base.make(NAME, "swole", _SOURCE_SW, run)
