"""Hand-coded TPC-H query programs (the paper's eight-query subset).

Mirrors the paper's methodology: every strategy is hand-coded per query
against the shared kernel library, so comparisons isolate the code
generation strategy alone.
"""

from . import base
from . import q01, q03, q04, q05, q06, q13, q14, q19
from .base import (
    STRATEGIES,
    compile_tpch,
    query_names,
    reference_result,
)

for _module in (q01, q03, q04, q05, q06, q13, q14, q19):
    base.register_query(_module.NAME, _module)

__all__ = [
    "STRATEGIES",
    "compile_tpch",
    "query_names",
    "reference_result",
]
