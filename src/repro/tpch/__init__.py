"""TPC-H query programs (the paper's eight-query subset).

Queries with logical operator trees (:mod:`repro.tpch.plans`) compile
through the generic staged lowering pipeline; the hand-coded per-query
strategy modules remain as equivalence oracles
(:func:`~repro.tpch.base.oracle_tpch`) and as the compilers for the
not-yet-migrated queries.
"""

from . import base
from . import q01, q03, q04, q05, q06, q13, q14, q19
from .base import (
    STRATEGIES,
    compile_tpch,
    oracle_tpch,
    query_names,
    reference_result,
)
from .plans import PIPELINE_QUERIES, logical_plan

for _module in (q01, q03, q04, q05, q06, q13, q14, q19):
    base.register_query(_module.NAME, _module)

__all__ = [
    "PIPELINE_QUERIES",
    "STRATEGIES",
    "compile_tpch",
    "logical_plan",
    "oracle_tpch",
    "query_names",
    "reference_result",
]
