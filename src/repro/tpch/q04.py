"""TPC-H Q4: the order priority checking query.

``orders`` filtered to one quarter (~3.8 % pass) semijoined against
``lineitem`` rows with ``l_commitdate < l_receiptdate`` (~most rows),
counting by ``o_orderpriority``. The runtime is dominated by building the
semijoin structure over lineitem.

Paper result: hybrid gets 1.5x over data-centric (prepass on both
scans); SWOLE replaces the hash semijoin with a **positional bitmap**
over order offsets — built by a sequential scan of lineitem (clustered
by orderkey) and probed positionally by the orders scan — for the
largest TPC-H speedup in the paper, 2.63x over hybrid.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from ..engine import kernels as K
from ..engine.events import Branch, Compute, SeqRead, SeqWrite
from ..engine.hashtable import NULL_KEY, HashTable
from ..engine.session import Session
from ..storage.database import Database
from . import base

NAME = "Q4"
TABLES = ("orders", "lineitem")
DATE_LO = 8582  # 1993-07-01
DATE_HI = 8674  # 1993-10-01
NUM_PRIORITIES = 5

_SOURCE_DC = """\
// Q4 data-centric: hash semijoin
for (i = 0; i < lineitem; i++)
    if (l_commitdate[i] < l_receiptdate[i]) ht_insert(ht, l_orderkey[i]);
for (i = 0; i < orders; i++)
    if (o_orderdate[i] >= d1 && o_orderdate[i] < d2)
        if (ht_contains(ht, o_orderkey[i]))
            counts[o_orderpriority[i]] += 1;"""

_SOURCE_HY = """\
// Q4 hybrid: prepass + selection vectors on both sides, hash semijoin
/* lineitem: cmp[j] = l_commitdate < l_receiptdate; idx; ht_insert */
/* orders:   cmp[j] = date in quarter; idx; ht probe; count */"""

_SOURCE_SW = """\
// Q4 SWOLE: positional bitmap semijoin
for (i = 0; i < lineitem; i++)            // clustered by orderkey:
    bm[fk_offset[i]] |= l_commitdate[i] < l_receiptdate[i];  // seq write
for (i = 0; i < orders; i++) {            // bit i <-> order row i
    pass = (o_orderdate[i] >= d1) & (o_orderdate[i] < d2) & bm[i];
    key[i] = pass ? o_orderpriority[i] : NULL_KEY;   // key masking
    ht_find(ht, key[i])->count += 1;
}"""


def _data(db: Database) -> Tuple[Dict[str, np.ndarray], Dict[str, np.ndarray]]:
    lineitem = db.table("lineitem")
    orders = db.table("orders")
    return (
        {
            "commit": lineitem["l_commitdate"],
            "receipt": lineitem["l_receiptdate"],
            "orderkey": lineitem["l_orderkey"],
        },
        {
            "orderkey": orders["o_orderkey"],
            "date": orders["o_orderdate"],
            "prio": orders["o_orderpriority"],
        },
    )


def _order_has_late_line(db: Database) -> np.ndarray:
    """Boolean per order row: exists line with commitdate < receiptdate."""
    line, orders = _data(db)
    offsets = db.fk_index("lineitem", "l_orderkey").offsets
    late = line["commit"] < line["receipt"]
    exists = np.zeros(orders["orderkey"].shape[0], dtype=bool)
    exists[offsets[late]] = True
    return exists


def reference(db: Database) -> Dict[str, Any]:
    _, orders = _data(db)
    exists = _order_has_late_line(db)
    mask = (orders["date"] >= DATE_LO) & (orders["date"] < DATE_HI) & exists
    keys = orders["prio"][mask].astype(np.int64)
    unique, counts = np.unique(keys, return_counts=True)
    return base.grouped(unique, counts.astype(np.int64))


def _count_selected(
    session: Session,
    orders: Dict[str, np.ndarray],
    mask: np.ndarray,
    conditional: bool,
) -> Dict[str, Any]:
    """Count qualifying orders per priority (pushdown tail)."""
    k = int(mask.sum())
    if conditional:
        K.conditional_read(session, orders["prio"], mask, "o_orderpriority")
    keys = orders["prio"][mask].astype(np.int64)
    table = HashTable(expected_keys=NUM_PRIORITIES, num_aggs=1)
    K.ht_aggregate(session, table, keys, np.ones(k, dtype=np.int64))
    return base.grouped(*table.items())


def datacentric(db: Database):
    line, orders = _data(db)

    def run(session: Session) -> Dict[str, Any]:
        n_line = int(line["commit"].shape[0])
        n_ord = int(orders["date"].shape[0])
        with session.tracer.kernel("build lineitem"), session.tracer.overlap():
            K.seq_read(session, line["commit"], "l_commitdate")
            K.seq_read(session, line["receipt"], "l_receiptdate")
            late = line["commit"] < line["receipt"]
            session.tracer.emit(Compute(n=n_line, op="cmp", simd=False))
            session.tracer.emit(
                Branch(n=n_line, taken_fraction=float(late.mean()), site="late")
            )
            K.scalar_loop(session, n_line)
            K.conditional_read(session, line["orderkey"], late, "l_orderkey")
            table = HashTable(expected_keys=n_ord, num_aggs=0)
            K.ht_insert_keys(
                session, table, line["orderkey"][late].astype(np.int64)
            )
        with session.tracer.kernel("probe orders"), session.tracer.overlap():
            K.seq_read(session, orders["date"], "o_orderdate")
            session.tracer.emit(Compute(n=2 * n_ord, op="cmp", simd=False))
            in_quarter = (orders["date"] >= DATE_LO) & (orders["date"] < DATE_HI)
            session.tracer.emit(
                Branch(
                    n=n_ord,
                    taken_fraction=float(in_quarter.mean()),
                    site="quarter",
                )
            )
            K.scalar_loop(session, n_ord)
            K.conditional_read(session, orders["orderkey"], in_quarter, "o_orderkey")
            keys = orders["orderkey"][in_quarter].astype(np.int64)
            _, found = K.ht_lookup(session, table, keys)
            session.tracer.emit(
                Branch(
                    n=int(in_quarter.sum()),
                    taken_fraction=float(found.mean()) if found.size else 0.0,
                    site="semijoin",
                )
            )
            mask = in_quarter.copy()
            mask[in_quarter] = found
            return _count_selected(session, orders, mask, conditional=True)

    return base.make(NAME, "datacentric", _SOURCE_DC, run)


def hybrid(db: Database):
    line, orders = _data(db)

    def run(session: Session) -> Dict[str, Any]:
        n_ord = int(orders["date"].shape[0])
        with session.tracer.kernel("build lineitem"), session.tracer.overlap():
            late = K.compare_columns(
                session,
                line["commit"],
                line["receipt"],
                "<",
                ("l_commitdate", "l_receiptdate"),
            )
            idx = K.selection_vector(session, late)
            keys = K.gather(session, line["orderkey"], idx, "l_orderkey")
            table = HashTable(expected_keys=n_ord, num_aggs=0)
            K.ht_insert_keys(session, table, keys.astype(np.int64))
        with session.tracer.kernel("probe orders"), session.tracer.overlap():
            K.seq_read(session, orders["date"], "o_orderdate")
            session.tracer.emit(
                Compute(n=2 * n_ord, op="cmp", simd=True, width=4)
            )
            in_quarter = (orders["date"] >= DATE_LO) & (orders["date"] < DATE_HI)
            idx = K.selection_vector(session, in_quarter)
            keys = K.gather(session, orders["orderkey"], idx, "o_orderkey")
            _, found = K.ht_lookup(session, table, keys.astype(np.int64))
            session.tracer.emit(
                Compute(n=int(found.shape[0]), op="select", simd=False)
            )
            mask = in_quarter.copy()
            mask[in_quarter] = found
            return _count_selected(session, orders, mask, conditional=True)

    return base.make(NAME, "hybrid", _SOURCE_HY, run)


def swole(db: Database):
    line, orders = _data(db)
    offsets = db.fk_index("lineitem", "l_orderkey").offsets

    def run(session: Session) -> Dict[str, Any]:
        n_line = int(line["commit"].shape[0])
        n_ord = int(orders["date"].shape[0])
        with session.tracer.kernel("bitmap build lineitem"), \
                session.tracer.overlap():
            late = K.compare_columns(
                session,
                line["commit"],
                line["receipt"],
                "<",
                ("l_commitdate", "l_receiptdate"),
            )
            # lineitem is clustered by orderkey, so the FK offsets ascend
            # and the bitmap OR-writes stream sequentially.
            session.tracer.emit(
                SeqRead(n=n_line, width=8, array="fkindex(l_orderkey)")
            )
            session.tracer.emit(Compute(n=n_line, op="or", simd=True, width=1))
            session.tracer.emit(
                SeqWrite(n=max(n_ord // 8, 1), width=1, array="bitmap")
            )
            exists = np.zeros(n_ord, dtype=bool)
            exists[offsets[late]] = True
        with session.tracer.kernel("probe orders"), session.tracer.overlap():
            K.seq_read(session, orders["date"], "o_orderdate")
            session.tracer.emit(
                Compute(n=2 * n_ord, op="cmp", simd=True, width=4)
            )
            in_quarter = (orders["date"] >= DATE_LO) & (orders["date"] < DATE_HI)
            # positional probe: bit i corresponds to order row i, so the
            # bitmap is read sequentially and ANDed with the prepass.
            session.tracer.emit(
                SeqRead(n=max(n_ord // 8, 1), width=1, array="bitmap")
            )
            session.tracer.emit(Compute(n=n_ord, op="and", simd=True, width=1))
            mask = in_quarter & exists
            # key masking for the tiny priority count table
            K.seq_read(session, orders["prio"], "o_orderpriority")
            session.tracer.emit(Compute(n=n_ord, op="blend", simd=True, width=8))
            keys = np.where(mask, orders["prio"].astype(np.int64), NULL_KEY)
            table = HashTable(expected_keys=NUM_PRIORITIES + 1, num_aggs=1)
            K.ht_aggregate(
                session, table, keys, np.ones(n_ord, dtype=np.int64)
            )
            result_keys, aggs = table.items()
            keep = result_keys != NULL_KEY
            return base.grouped(result_keys[keep], aggs[keep])

    return base.make(NAME, "swole", _SOURCE_SW, run)
