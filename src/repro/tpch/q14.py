"""TPC-H Q14: the promotion effect query.

Lineitem filtered to one month (~1.3 % pass) index-joined to part;
the ``p_type like 'PROMO%'`` predicate becomes a lookup in a tiny
code -> flag table computed on the fly from the dictionary during an
initial scan of part. Result: promo revenue numerator and total revenue
denominator (the percentage is presentation-time arithmetic).

Paper result: hybrid gets 2.43x over data-centric (SIMD prepass, only
~1 % of tuples survive); **SWOLE cannot further improve** — the index
join's random accesses are unavoidable at this selectivity, so SWOLE
falls back to the hybrid program.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..engine import kernels as K
from ..engine.events import Branch, Compute, RandomAccess
from ..engine.session import Session
from ..storage.database import Database
from . import base
from ..datagen.tpch import DATE_1995_09_01, DATE_1995_10_01

NAME = "Q14"
TABLES = ("part", "lineitem")

_SOURCE_DC = """\
// Q14 data-centric: per-tuple branch + index join into part
/* part scan: promo[code] = starts_with(p_type_dict[code], "PROMO") */
for (i = 0; i < lineitem; i++)
    if (l_shipdate[i] >= d1 && l_shipdate[i] < d2) {
        rev = l_extendedprice[i] * (100 - l_discount[i]);
        den += rev;
        num += rev * promo_flag[pk_offset(l_partkey[i])];
    }"""

_SOURCE_HY = """\
// Q14 hybrid: SIMD prepass on the month predicate, then index join
for (i = 0; i < lineitem; i += TILE) {
    for (j = 0; j < len; j++)
        cmp[j] = (l_shipdate[i+j] >= d1) & (l_shipdate[i+j] < d2);
    for (j = 0; j < len; j++) { idx[k] = i + j; k += cmp[j]; }
    for (j = 0; j < k; j++) {
        rev = l_extendedprice[idx[j]] * (100 - l_discount[idx[j]]);
        den += rev;
        num += rev * promo_flag[pk_offset(l_partkey[idx[j]])];
    }
}"""

_SOURCE_SW = (
    "// Q14 SWOLE: cost model finds no beneficial pullup (1% selectivity,\n"
    "// index-join bound) -> fall back to the hybrid program\n" + _SOURCE_HY
)


def _data(db: Database) -> Dict[str, np.ndarray]:
    lineitem = db.table("lineitem")
    return {
        "shipdate": lineitem["l_shipdate"],
        "price": lineitem["l_extendedprice"],
        "disc": lineitem["l_discount"],
        "partkey": lineitem["l_partkey"],
    }


def _promo_flags(db: Database) -> np.ndarray:
    """Per-part promo flag from the dictionary (the on-the-fly table)."""
    p_type = db.table("part").column("p_type")
    promo_codes = np.asarray(
        [
            code
            for code, text in enumerate(p_type.dictionary)
            if text.startswith("PROMO")
        ]
    )
    return np.isin(p_type.values, promo_codes)


def _month_mask(data: Dict[str, np.ndarray]) -> np.ndarray:
    return (data["shipdate"] >= DATE_1995_09_01) & (
        data["shipdate"] < DATE_1995_10_01
    )


def reference(db: Database) -> Dict[str, Any]:
    data = _data(db)
    mask = _month_mask(data)
    flags = _promo_flags(db)
    offsets = db.fk_index("lineitem", "l_partkey").offsets
    rev = data["price"][mask].astype(np.int64) * (
        100 - data["disc"][mask].astype(np.int64)
    )
    promo = flags[offsets[mask]]
    return {
        "promo_revenue": int(rev[promo].sum()),
        "total_revenue": int(rev.sum()),
    }


def _part_scan(session: Session, db: Database) -> np.ndarray:
    """Initial scan of part: dictionary-driven promo flag per row."""
    p_type = db.table("part").column("p_type")
    with session.tracer.kernel("scan part"), session.tracer.overlap():
        K.seq_read(session, p_type.values, "p_type")
        # one lookup per part into the 150-entry code -> flag table
        session.tracer.emit(
            RandomAccess(
                n=len(p_type.values),
                struct_bytes=len(p_type.dictionary),
                kind="lut",
            )
        )
        flags = _promo_flags(db)
        K.seq_write(session, flags.view(np.uint8), "promo_flag")
    return flags


def _index_join_tail(
    session: Session,
    db: Database,
    data: Dict[str, np.ndarray],
    mask: np.ndarray,
    flags: np.ndarray,
) -> Dict[str, Any]:
    """Shared tail: gather price/disc/partkey, probe part flags, sum."""
    k = int(mask.sum())
    offsets = db.fk_index("lineitem", "l_partkey").offsets
    idx = np.flatnonzero(mask)
    price = K.gather(session, data["price"], idx, "l_extendedprice")
    disc = K.gather(session, data["disc"], idx, "l_discount")
    K.gather(session, offsets, idx, "fkindex(l_partkey)")
    # the index join proper: random reads into the part flag array
    session.tracer.emit(
        RandomAccess(
            n=k, struct_bytes=int(flags.shape[0]), kind="index_join"
        )
    )
    promo = flags[offsets[idx]]
    for op in ("sub", "mul", "mul", "add", "add"):
        session.tracer.emit(Compute(n=k, op=op, simd=False))
    rev = price.astype(np.int64) * (100 - disc.astype(np.int64))
    return {
        "promo_revenue": int(rev[promo].sum()),
        "total_revenue": int(rev.sum()),
    }


def datacentric(db: Database):
    data = _data(db)

    def run(session: Session) -> Dict[str, Any]:
        flags = _part_scan(session, db)
        n = int(data["shipdate"].shape[0])
        with session.tracer.kernel("scan lineitem"), session.tracer.overlap():
            K.seq_read(session, data["shipdate"], "l_shipdate")
            session.tracer.emit(Compute(n=2 * n, op="cmp", simd=False))
            mask = _month_mask(data)
            session.tracer.emit(
                Branch(n=n, taken_fraction=float(mask.mean()), site="month")
            )
            K.scalar_loop(session, n)
            k = int(mask.sum())
            for name in ("price", "disc", "partkey"):
                K.conditional_read(session, data[name], mask, name)
            offsets = db.fk_index("lineitem", "l_partkey").offsets
            session.tracer.emit(
                RandomAccess(
                    n=k, struct_bytes=int(flags.shape[0]), kind="index_join"
                )
            )
            promo = flags[offsets[mask]]
            for op in ("sub", "mul", "mul", "add", "add"):
                session.tracer.emit(Compute(n=k, op=op, simd=False))
            rev = data["price"][mask].astype(np.int64) * (
                100 - data["disc"][mask].astype(np.int64)
            )
            return {
                "promo_revenue": int(rev[promo].sum()),
                "total_revenue": int(rev.sum()),
            }

    return base.make(NAME, "datacentric", _SOURCE_DC, run)


def hybrid(db: Database):
    data = _data(db)

    def run(session: Session) -> Dict[str, Any]:
        flags = _part_scan(session, db)
        n = int(data["shipdate"].shape[0])
        with session.tracer.kernel("scan lineitem"), session.tracer.overlap():
            K.seq_read(session, data["shipdate"], "l_shipdate")
            session.tracer.emit(Compute(n=2 * n, op="cmp", simd=True, width=4))
            mask = _month_mask(data)
            K.selection_vector(session, mask)
            return _index_join_tail(session, db, data, mask, flags)

    return base.make(NAME, "hybrid", _SOURCE_HY, run)


def swole(db: Database):
    """SWOLE falls back to hybrid for Q14 (paper §IV-A7)."""
    inner = hybrid(db)
    return base.make(NAME, "swole", _SOURCE_SW, inner._fn)
