"""Closed-loop re-optimization from production telemetry.

The static pipeline estimates, compiles, and caches; this package
watches what actually happens and feeds it back:

* :mod:`~repro.adaptive.feedback` — folds every execution's measured
  statistics (selectivities from the instrumented event stream, wall
  clock, simulated cycles, scan shape) into bounded per-fingerprint
  EWMA summaries;
* :mod:`~repro.adaptive.reopt` — detects drift between the estimates a
  cached plan was priced with and the measured values, and triggers a
  targeted invalidate + recompile with a measured-statistics override;
* :mod:`~repro.adaptive.chooser` — routes ``strategy="auto"`` requests
  through a deterministic explore/exploit loop over every strategy ×
  backend arm.

:class:`AdaptiveController` bundles the three behind the single object
the :class:`repro.Engine` facade holds; :class:`AdaptivePolicy` is its
frozen configuration knob.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import List, Mapping, Optional, Tuple, Union

from ..engine.costing import StatsOverride
from .chooser import ARM_CYCLE, DEFAULT_ARM_STRATEGY, StrategyChooser
from .feedback import (
    Arm,
    Ewma,
    FeedbackStore,
    FingerprintSummary,
    Observation,
    observation_from_run,
)
from .reopt import OVERRIDE_DECIMALS, ReOptimizer

#: Format version of the persisted feedback snapshot; bump on any
#: incompatible change to the snapshot/restore schema.
FEEDBACK_SNAPSHOT_VERSION = 1


@dataclass(frozen=True)
class AdaptivePolicy:
    """Tuning for the whole adaptive loop (all fields optional).

    alpha:
        EWMA smoothing factor for every folded statistic.
    max_fingerprints:
        Memory bound on the feedback store and chooser state.
    explore_every:
        Every Nth auto request explores the next strategy × backend
        arm; the rest exploit the measured-best one.
    drift_threshold:
        Relative estimated-vs-observed selectivity drift beyond which
        the re-optimizer invalidates and recompiles.
    min_observations:
        Selectivity samples required before drift can trigger.
    """

    alpha: float = 0.2
    max_fingerprints: int = 256
    explore_every: int = 8
    drift_threshold: float = 0.5
    min_observations: int = 5


class AdaptiveController:
    """The engine-facing bundle: store + chooser + re-optimizer.

    Construct one (optionally from an :class:`AdaptivePolicy`), hand it
    to ``Engine(adaptive=...)``; the engine calls :meth:`attach` with
    its plan cache and metrics registry, then :meth:`choose` on every
    ``strategy="auto"`` request and :meth:`observe` after every run.
    """

    def __init__(self, policy: Optional[AdaptivePolicy] = None) -> None:
        self.policy = policy if policy is not None else AdaptivePolicy()
        self.store = FeedbackStore(
            alpha=self.policy.alpha,
            max_fingerprints=self.policy.max_fingerprints,
        )
        self.chooser = StrategyChooser(
            self.store, explore_every=self.policy.explore_every
        )
        self.reopt = ReOptimizer(
            self.store,
            drift_threshold=self.policy.drift_threshold,
            min_observations=self.policy.min_observations,
        )
        self._lock = threading.Lock()
        self._plan_cache = None
        self._registry = None
        #: Last estimated-statistics block seen per fingerprint. Only
        #: pipeline-compiled programs carry estimates; caching them
        #: lets runs of hand-compiled arms (whose plans record none)
        #: still drive the drift check for the same query.
        self._estimates: dict = {}
        self.explorations = 0

    # -- engine wiring ---------------------------------------------------

    def attach(self, plan_cache, registry) -> None:
        """Bind the engine's plan cache and metrics registry (idempotent;
        the facade calls this from ``Engine.__init__``)."""
        self._plan_cache = plan_cache
        self._registry = registry

    def choose(
        self, fingerprint: str, default_backend: str
    ) -> Tuple[str, str]:
        """Route one ``strategy="auto"`` request to a (strategy,
        backend) arm, counting explorations."""
        strategy, backend, explored = self.chooser.choose(
            fingerprint, default_backend
        )
        if explored:
            with self._lock:
                self.explorations += 1
            if self._registry is not None:
                self._registry.counter(
                    "adaptive_explorations_total"
                ).inc()
        return strategy, backend

    def observe(
        self,
        fingerprint: str,
        strategy: str,
        backend: str,
        observation: Observation,
        estimated_stats: Optional[Mapping[str, float]] = None,
    ) -> bool:
        """Fold one completed run and run the drift check; returns True
        when the run triggered a re-optimization."""
        self.store.record(fingerprint, strategy, backend, observation)
        with self._lock:
            if estimated_stats:
                if (
                    fingerprint not in self._estimates
                    and len(self._estimates)
                    >= self.policy.max_fingerprints
                ):
                    self._estimates.clear()
                self._estimates[fingerprint] = dict(estimated_stats)
            else:
                estimated_stats = self._estimates.get(fingerprint)
        if self._plan_cache is None:
            return False
        return self.reopt.maybe_reoptimize(
            fingerprint,
            estimated_stats,
            self._plan_cache,
            self._registry,
        )

    def override_for(self, fingerprint: str) -> Optional[StatsOverride]:
        """Measured-statistics override the compiler should plan with."""
        return self.reopt.override_for(fingerprint)

    def min_parallel_rows(self) -> Optional[int]:
        """Measured serial-vs-parallel crossover for this host, once
        both modes have been sampled (else ``None``)."""
        return self.store.crossover_rows()

    # -- persistence -----------------------------------------------------

    def save_feedback(self, path: Union[str, Path]) -> Path:
        """Write the feedback store's state as a JSON snapshot.

        Atomic (write + rename) so a crash mid-save never leaves a
        truncated snapshot for the next engine to trip over. The
        chooser's explore-cycle position and the re-optimizer's live
        overrides are deliberately *not* persisted — a restarted engine
        re-derives both from the restored EWMAs within a few requests,
        and stale overrides against changed data would be worse than
        none.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        state = {
            "version": FEEDBACK_SNAPSHOT_VERSION,
            "feedback": self.store.snapshot(),
        }
        tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(state, indent=2, sort_keys=True))
        tmp.replace(path)
        return path

    def load_feedback(self, path: Union[str, Path]) -> int:
        """Restore a :meth:`save_feedback` snapshot into the store.

        Returns the number of fingerprints restored; ``0`` when the
        file is missing, unreadable, or from an incompatible snapshot
        version (all cold-start conditions, never errors)."""
        path = Path(path)
        try:
            state = json.loads(path.read_text())
        except (OSError, ValueError):
            return 0
        if state.get("version") != FEEDBACK_SNAPSHOT_VERSION:
            return 0
        feedback = state.get("feedback")
        if not isinstance(feedback, dict):
            return 0
        return self.store.restore(feedback)

    # -- introspection ---------------------------------------------------

    @property
    def recompiles(self) -> int:
        return self.reopt.recompiles

    def snapshot(self) -> dict:
        """JSON-safe state of the whole loop (registered as the
        ``adaptive`` stat source, so it shows up in the ``stats`` wire
        op and ``/metrics``)."""
        with self._lock:
            explorations = self.explorations
        return {
            "policy": {
                "alpha": self.policy.alpha,
                "max_fingerprints": self.policy.max_fingerprints,
                "explore_every": self.policy.explore_every,
                "drift_threshold": self.policy.drift_threshold,
                "min_observations": self.policy.min_observations,
            },
            "explorations": explorations,
            "feedback": self.store.snapshot(),
            "chooser": self.chooser.snapshot(),
            "reopt": self.reopt.snapshot(),
        }

    def explain_feedback(
        self, fingerprint: str, notes: Optional[Mapping] = None
    ) -> List[str]:
        """Render the ``== Feedback ==`` explain section for a
        fingerprint; empty before any observation (so explain output
        without feedback stays byte-identical to a static engine's).

        ``notes`` is the compiled plan's notes dict; when it carries
        ``pass_estimates`` the estimated total cycles are paired with
        the observed EWMA — the planner's prediction next to
        production's verdict.
        """
        summary = self.store.summary(fingerprint)
        if summary is None or summary.observations == 0:
            return []
        lines = [
            "== Feedback ==",
            f"observations: {summary.observations}",
            (
                "observed wall: "
                f"{summary.wall_seconds.value * 1e3:.3f} ms (ewma)"
            ),
        ]
        notes = notes or {}
        estimated_cycles = notes.get("estimated_cycles")
        if estimated_cycles is not None:
            lines.append(
                f"cycles: estimated {estimated_cycles:,.0f}"
                f" / observed {summary.total_cycles.value:,.0f} (ewma)"
            )
            for pass_name, cycles in notes.get("pass_estimates", []):
                lines.append(f"  {pass_name}: estimated {cycles:,.0f}")
        else:
            lines.append(
                f"cycles: observed {summary.total_cycles.value:,.0f}"
                " (ewma)"
            )
        estimated_stats = notes.get("estimated_stats") or {}
        estimated_survival = estimated_stats.get("survival")
        if summary.selectivity.count:
            observed = summary.selectivity.value
            if estimated_survival is not None:
                drift = abs(observed - estimated_survival) / max(
                    abs(estimated_survival), 1e-9
                )
                lines.append(
                    f"selectivity: estimated {estimated_survival:.4f}"
                    f" / observed {observed:.4f}"
                    f" (drift {drift * 100.0:.1f}%)"
                )
            else:
                lines.append(f"selectivity: observed {observed:.4f}")
        best = self.store.best_arm(fingerprint)
        if best is not None:
            lines.append(f"best arm: {best[0]}/{best[1]}")
        override = self.reopt.override_for(fingerprint)
        if override is not None:
            lines.append(f"active override: {override.describe()}")
        return lines


def resolve_adaptive(value) -> Optional[AdaptiveController]:
    """Coerce the ``Engine(adaptive=...)`` knob into a controller.

    ``None`` / ``False`` → disabled; ``True`` → default policy; an
    :class:`AdaptivePolicy` → controller with that policy; a ready
    :class:`AdaptiveController` passes through (sharable across
    engines in tests).
    """
    if value is None or value is False:
        return None
    if value is True:
        return AdaptiveController()
    if isinstance(value, AdaptivePolicy):
        return AdaptiveController(value)
    if isinstance(value, AdaptiveController):
        return value
    raise TypeError(
        "adaptive must be None, bool, AdaptivePolicy, or"
        f" AdaptiveController; got {type(value).__name__}"
    )


__all__ = [
    "ARM_CYCLE",
    "Arm",
    "FEEDBACK_SNAPSHOT_VERSION",
    "AdaptiveController",
    "AdaptivePolicy",
    "DEFAULT_ARM_STRATEGY",
    "Ewma",
    "FeedbackStore",
    "FingerprintSummary",
    "Observation",
    "OVERRIDE_DECIMALS",
    "ReOptimizer",
    "StatsOverride",
    "StrategyChooser",
    "observation_from_run",
    "resolve_adaptive",
]
