"""Per-fingerprint explore/exploit strategy selection.

``strategy="auto"`` historically meant "the paper's default"
(``swole`` on the engine's default backend). With a feedback store
attached, auto becomes a measurement-driven choice: each query
fingerprint runs a deterministic epsilon-greedy loop over every
(strategy, backend) arm, exploiting the arm with the best wall-clock
EWMA and periodically exploring the others.

Exploration is deterministic by design — every Nth request for a
fingerprint takes the next arm in a fixed cycle rather than a random
draw — so a replayed request sequence reproduces the exact same
choices, recompiles, and explain output (the subsystem's determinism
guarantee, tested in ``tests/test_adaptive.py``).

The cycle is ordered instrumented-first on the conditional-access
strategies: only instrumented hybrid / datacentric / interpreter runs
emit the ``CondRead`` / ``Branch`` events the feedback store measures
selectivity from, so the explore schedule keeps drift detection fed
even when the exploited winner is a masked SWOLE plan or a vectorized
kernel that emits no events at all.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Tuple

from ..errors import ReproError
from .feedback import Arm, FeedbackStore

#: Strategies whose instrumented runs measure predicate selectivity
#: (conditional access first), then the masked strategy, then the
#: event-free vectorized arms.
ARM_CYCLE: Tuple[Arm, ...] = (
    ("hybrid", "instrumented"),
    ("datacentric", "instrumented"),
    ("swole", "instrumented"),
    ("interpreter", "instrumented"),
    ("swole", "vectorized"),
    ("hybrid", "vectorized"),
    ("datacentric", "vectorized"),
    ("interpreter", "vectorized"),
)

#: What auto means before any feedback exists — mirrors
#: ``Engine.AUTO_STRATEGY``.
DEFAULT_ARM_STRATEGY = "swole"


class StrategyChooser:
    """Deterministic epsilon-greedy over strategy × backend arms.

    Every ``explore_every``-th request for a fingerprint (including the
    very first) explores the next arm in :data:`ARM_CYCLE`; all other
    requests exploit the feedback store's current best arm. State is
    two integers per fingerprint, bounded by the same cap as the store.
    """

    def __init__(
        self,
        store: FeedbackStore,
        *,
        explore_every: int = 8,
    ) -> None:
        if explore_every < 1:
            raise ReproError("explore_every must be at least 1")
        self.store = store
        self.explore_every = explore_every
        self._lock = threading.Lock()
        #: fingerprint -> [request_count, next_explore_arm_index]
        self._state: Dict[str, List[int]] = {}

    def choose(
        self, fingerprint: str, default_backend: str
    ) -> Tuple[str, str, bool]:
        """Pick ``(strategy, backend, explored)`` for one auto request.

        ``default_backend`` is the engine's configured backend — the
        fallback arm before any observation exists, and the backend of
        the very first (explore) request so request zero behaves like
        the non-adaptive engine would.
        """
        with self._lock:
            state = self._state.get(fingerprint)
            if state is None:
                if len(self._state) >= self.store.max_fingerprints:
                    self._state.clear()
                state = self._state[fingerprint] = [0, 0]
            count = state[0]
            state[0] += 1
            explore = count % self.explore_every == 0
            arm_index = state[1]
            if explore and count > 0:
                state[1] = (arm_index + 1) % len(ARM_CYCLE)
        if explore:
            if count == 0:
                # Request zero is the paper default on the engine's own
                # backend: an adaptive engine's first answer matches a
                # static engine's, and the baseline arm is measured
                # before any alternative. It does not consume an arm
                # from the cycle.
                return DEFAULT_ARM_STRATEGY, default_backend, True
            strategy, backend = ARM_CYCLE[arm_index]
            return strategy, backend, True
        best = self.store.best_arm(fingerprint)
        if best is None:
            return DEFAULT_ARM_STRATEGY, default_backend, False
        return best[0], best[1], False

    def requests(self, fingerprint: str) -> int:
        """How many auto requests this fingerprint has routed."""
        with self._lock:
            state = self._state.get(fingerprint)
            return state[0] if state is not None else 0

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "explore_every": self.explore_every,
                "fingerprints": {
                    fingerprint: {
                        "requests": state[0],
                        "next_arm": "/".join(
                            ARM_CYCLE[state[1] % len(ARM_CYCLE)]
                        ),
                    }
                    for fingerprint, state in self._state.items()
                },
            }


__all__ = ["ARM_CYCLE", "DEFAULT_ARM_STRATEGY", "StrategyChooser"]
