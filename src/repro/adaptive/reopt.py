"""Drift detection and re-optimization against measured statistics.

The SWOLE passes price pullups with estimates from a 64K-row prefix
sample (:data:`repro.plan.passes._SAMPLE_ROWS`); on clustered or
shifted data those estimates can be arbitrarily wrong, and a cached
plan keeps serving the stale decision forever. The re-optimizer closes
the loop: once enough instrumented observations accumulate for a
fingerprint, it compares the measured survival fraction against the
estimate the plan was priced with, and past a relative-drift threshold
it

1. registers a :class:`~repro.engine.costing.StatsOverride` carrying
   the measured selectivity (rounded, so repeated re-optimizations of
   the same workload produce byte-identical plans),
2. drops that fingerprint's plans from the cache — every strategy /
   machine / tile / backend cell — via the targeted
   :meth:`~repro.engine.plan_cache.PlanCache.invalidate`, and
3. ticks ``adaptive_recompiles_total`` and sets the per-fingerprint
   drift gauge.

The next request recompiles through the normal singleflight path with
the override threaded into :func:`~repro.plan.passes.run_passes`, so
the pullup decisions are re-priced with production cardinalities.

Drift is measured against the *active override* when one exists
(falling back to the plan's compile-time estimate before the first
re-optimization). Comparing to the override rather than the original
estimate is what makes the loop stable: a fingerprint whose measured
selectivity settles re-optimizes once and then stays quiet instead of
re-invalidating on every observation window.
"""

from __future__ import annotations

import threading
from typing import Dict, Mapping, Optional

from ..engine.costing import StatsOverride
from ..errors import ReproError
from .feedback import FeedbackStore

#: Observed selectivities are rounded to this many decimals before
#: entering an override, so EWMA jitter cannot produce two different
#: "re-optimized" plans for the same settled workload.
OVERRIDE_DECIMALS = 6


class ReOptimizer:
    """Compares estimated against observed statistics; invalidates on
    drift.

    ``drift_threshold`` is relative: 0.5 means re-optimize when the
    measured survival fraction is more than 50% away from the value the
    current plan was priced with. ``min_observations`` gates on the
    selectivity EWMA's sample count so one unlucky explore request
    cannot trigger a recompile.
    """

    def __init__(
        self,
        store: FeedbackStore,
        *,
        drift_threshold: float = 0.5,
        min_observations: int = 5,
    ) -> None:
        if drift_threshold <= 0.0:
            raise ReproError("drift threshold must be positive")
        if min_observations < 1:
            raise ReproError("min_observations must be at least 1")
        self.store = store
        self.drift_threshold = drift_threshold
        self.min_observations = min_observations
        self._lock = threading.Lock()
        self._overrides: Dict[str, StatsOverride] = {}
        self._drift: Dict[str, float] = {}
        self.recompiles = 0

    def override_for(self, fingerprint: str) -> Optional[StatsOverride]:
        """The active measured-statistics override for a fingerprint
        (``None`` while its estimates are still trusted)."""
        with self._lock:
            return self._overrides.get(fingerprint)

    def apply_override(
        self, fingerprint: str, override: StatsOverride
    ) -> None:
        """Install an override directly (tests / manual tuning)."""
        with self._lock:
            self._overrides[fingerprint] = override

    def drift(self, fingerprint: str) -> Optional[float]:
        """Last computed relative drift for a fingerprint."""
        with self._lock:
            return self._drift.get(fingerprint)

    def maybe_reoptimize(
        self,
        fingerprint: str,
        estimated_stats: Optional[Mapping[str, float]],
        plan_cache,
        registry=None,
    ) -> bool:
        """Run one drift check; returns True when plans were invalidated.

        ``estimated_stats`` is the compiled plan's recorded estimate
        block (``CompiledQuery.notes["estimated_stats"]``) — absent for
        hand-coded programs, which have no estimates to drift from.
        """
        if not estimated_stats:
            return False
        estimated = estimated_stats.get("survival")
        if estimated is None:
            return False
        measured = self.store.observed_selectivity(fingerprint)
        if measured is None:
            return False
        observed, samples = measured
        if samples < self.min_observations:
            return False
        # Measured join statistics ride along on the same override:
        # the recompile prices semijoin pullups with the observed
        # match fraction and sizes its hash tables from the observed
        # distinct group count, not just the sampled selectivity.
        match = self.store.observed_match_fraction(fingerprint)
        groups = self.store.observed_group_cardinality(fingerprint)
        with self._lock:
            active = self._overrides.get(fingerprint)
            baseline = (
                active.selectivity
                if active is not None and active.selectivity is not None
                else float(estimated)
            )
            drift = abs(observed - baseline) / max(abs(baseline), 1e-9)
            self._drift[fingerprint] = drift
            if drift <= self.drift_threshold:
                triggered = False
            else:
                self._overrides[fingerprint] = StatsOverride(
                    selectivity=round(observed, OVERRIDE_DECIMALS),
                    match_fraction=(
                        round(match[0], OVERRIDE_DECIMALS)
                        if match is not None
                        else None
                    ),
                    group_cardinality=(
                        max(int(round(groups[0])), 1)
                        if groups is not None
                        else None
                    ),
                )
                self.recompiles += 1
                triggered = True
        if registry is not None:
            registry.gauge(
                "adaptive_drift", fingerprint=fingerprint[:16]
            ).set(drift)
        if not triggered:
            return False
        plan_cache.invalidate(fingerprint)
        if registry is not None:
            registry.counter("adaptive_recompiles_total").inc()
        return True

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "recompiles": self.recompiles,
                "drift_threshold": self.drift_threshold,
                "min_observations": self.min_observations,
                "overrides": {
                    fingerprint: override.describe()
                    for fingerprint, override in self._overrides.items()
                },
                "drift": dict(self._drift),
            }


__all__ = ["OVERRIDE_DECIMALS", "ReOptimizer"]
