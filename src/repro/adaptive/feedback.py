"""Per-fingerprint feedback store: measured run statistics as EWMAs.

The engine already *measures* the quantities the planner only
*estimates*: the instrumented backend's event stream carries real
predicate selectivities (``CondRead.n_selected / n_range``), branch
outcome fractions, random-access counts and hash-table footprints,
and every run — either backend — reports wall clock, simulated
cycles, and scan shape through :class:`~repro.engine.metrics.RunMetrics`.

This module folds those observations into bounded per-fingerprint
summaries. Each statistic is an exponentially-weighted moving average,
so the store is O(1) per observation and per fingerprint, tracks
workload drift with a tunable horizon, and — crucially for the
re-optimizer's determinism guarantee — folds the same observation
sequence into exactly the same summary every time.

Vectorized runs have no event stream; they contribute wall-clock-only
observations. The strategy chooser's exploration keeps instrumented
arms sampled, so selectivity telemetry keeps flowing even when the
serving default is the vectorized backend.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..engine.events import Branch, CondRead, RandomAccess, StatSample
from ..errors import ReproError

#: Per-(strategy, backend) arm key.
Arm = Tuple[str, str]


@dataclass(frozen=True)
class Observation:
    """One execution's measured statistics, ready to fold.

    ``selectivity`` is the observed survival fraction of the probe
    spine, or ``None`` when the run produced no conditional-access
    events to measure it from (vectorized runs, fully masked SWOLE
    plans). ``match_fraction`` and ``group_cardinality`` come from the
    instrumented backend's zero-cost :class:`~repro.engine.events.
    StatSample` telemetry: the product of per-join semijoin hit
    fractions, and the distinct group count of the terminal
    aggregation.
    """

    wall_seconds: float
    total_cycles: float = 0.0
    scan_rows: int = 0
    parallel: bool = False
    selectivity: Optional[float] = None
    random_accesses: int = 0
    ht_bytes: int = 0
    events: int = 0
    match_fraction: Optional[float] = None
    group_cardinality: Optional[float] = None


def observation_from_run(report, metrics) -> Observation:
    """Extract an :class:`Observation` from one completed execution.

    ``report`` is the run's :class:`~repro.engine.costing.CostReport`,
    ``metrics`` its :class:`~repro.engine.metrics.RunMetrics` (may be
    ``None`` for plain ``CompiledQuery.run`` calls).

    Selectivity comes from conditional access, in preference order:

    * ``CondRead`` events over base arrays (``array_bytes == 0``):
      gathers driven by a selection vector report exactly the fraction
      of scanned rows that survived — the hybrid strategy's signal.
    * ``Branch`` events: the per-site taken fractions multiply into the
      conjunction's survival (each conjunct's branch only runs for the
      previous conjunct's survivors) — the data-centric signal.

    Masked plans read unconditionally (that is their point), so a pure
    SWOLE run may carry neither; the chooser's exploration of the
    conditional-access arms provides the telemetry instead.
    """
    cond_range = 0
    cond_selected = 0
    branch_sites: Dict[str, Tuple[float, float]] = {}
    join_sites: Dict[str, Tuple[float, float]] = {}
    group_cardinality: Optional[float] = None
    random_n = 0
    ht_bytes = 0
    n_events = 0
    for _, event, _ in report.events:
        n_events += 1
        if isinstance(event, CondRead):
            if not event.array_bytes:
                cond_range += event.n_range
                cond_selected += event.n_selected
        elif isinstance(event, Branch):
            n, taken = branch_sites.get(event.site, (0.0, 0.0))
            branch_sites[event.site] = (
                n + event.n,
                taken + event.n * event.taken_fraction,
            )
        elif isinstance(event, StatSample):
            # Zero-cost instrumented telemetry. Join probes report
            # (probes, hits) per join site; terminal aggregations
            # report their distinct group count (morsel partials each
            # report their own — the max is the best single-run
            # estimate, exact for serial runs).
            if event.kind == "join_match":
                n, hits = join_sites.get(event.site, (0.0, 0.0))
                join_sites[event.site] = (n + event.n, hits + event.value)
            elif event.kind == "group_cardinality":
                group_cardinality = max(
                    group_cardinality or 0.0, float(event.value)
                )
        elif isinstance(event, RandomAccess):
            random_n += event.n
            ht_bytes = max(ht_bytes, event.struct_bytes)
    selectivity: Optional[float] = None
    if cond_range > 0:
        selectivity = cond_selected / cond_range
    elif branch_sites:
        survival = 1.0
        for n, taken in branch_sites.values():
            if n > 0:
                survival *= taken / n
        selectivity = survival
    match_fraction: Optional[float] = None
    if join_sites:
        match_fraction = 1.0
        for n, hits in join_sites.values():
            if n > 0:
                match_fraction *= hits / n
    return Observation(
        wall_seconds=metrics.wall_seconds if metrics is not None else 0.0,
        total_cycles=float(report.total_cycles),
        scan_rows=metrics.scan_rows if metrics is not None else 0,
        parallel=bool(metrics.parallel) if metrics is not None else False,
        selectivity=selectivity,
        random_accesses=random_n,
        ht_bytes=ht_bytes,
        events=n_events,
        match_fraction=match_fraction,
        group_cardinality=group_cardinality,
    )


class Ewma:
    """An exponentially-weighted moving average with a sample count.

    The first sample seeds the average (no zero-bias warm-up), so a
    single observation is already a usable estimate.
    """

    __slots__ = ("value", "count")

    def __init__(self) -> None:
        self.value = 0.0
        self.count = 0

    def fold(self, sample: float, alpha: float) -> None:
        sample = float(sample)
        if self.count == 0:
            self.value = sample
        else:
            self.value += alpha * (sample - self.value)
        self.count += 1

    def snapshot(self) -> dict:
        return {"value": self.value, "n": self.count}

    @classmethod
    def from_snapshot(cls, state: dict) -> "Ewma":
        ewma = cls()
        ewma.value = float(state.get("value", 0.0))
        ewma.count = int(state.get("n", 0))
        return ewma


class FingerprintSummary:
    """Bounded summary of everything observed for one plan fingerprint."""

    __slots__ = (
        "observations",
        "wall_seconds",
        "total_cycles",
        "selectivity",
        "match_fraction",
        "group_cardinality",
        "random_accesses",
        "ht_bytes",
        "event_total",
        "arms",
    )

    def __init__(self) -> None:
        self.observations = 0
        self.wall_seconds = Ewma()
        self.total_cycles = Ewma()
        self.selectivity = Ewma()
        self.match_fraction = Ewma()
        self.group_cardinality = Ewma()
        self.random_accesses = Ewma()
        self.ht_bytes = 0
        self.event_total = 0
        #: Per-(strategy, backend) wall-clock EWMAs — the chooser's
        #: reward signal.
        self.arms: Dict[Arm, Ewma] = {}

    def snapshot(self) -> dict:
        return {
            "observations": self.observations,
            "wall_seconds": self.wall_seconds.snapshot(),
            "total_cycles": self.total_cycles.snapshot(),
            "selectivity": self.selectivity.snapshot(),
            "match_fraction": self.match_fraction.snapshot(),
            "group_cardinality": self.group_cardinality.snapshot(),
            "random_accesses": self.random_accesses.snapshot(),
            "ht_bytes": self.ht_bytes,
            "event_total": self.event_total,
            "arms": {
                f"{strategy}/{backend}": ewma.snapshot()
                for (strategy, backend), ewma in sorted(self.arms.items())
            },
        }

    @classmethod
    def from_snapshot(cls, state: dict) -> "FingerprintSummary":
        summary = cls()
        summary.observations = int(state.get("observations", 0))
        for name in (
            "wall_seconds",
            "total_cycles",
            "selectivity",
            "match_fraction",
            "group_cardinality",
            "random_accesses",
        ):
            if name in state:
                setattr(summary, name, Ewma.from_snapshot(state[name]))
        summary.ht_bytes = int(state.get("ht_bytes", 0))
        summary.event_total = int(state.get("event_total", 0))
        for arm_name, arm_state in state.get("arms", {}).items():
            strategy, _, backend = arm_name.partition("/")
            summary.arms[(strategy, backend)] = Ewma.from_snapshot(
                arm_state
            )
        return summary


class FeedbackStore:
    """Thread-safe, bounded store of per-fingerprint EWMA summaries.

    ``alpha`` is the EWMA smoothing factor (higher adapts faster,
    forgets faster); ``max_fingerprints`` bounds memory — the least
    recently *recorded* fingerprint is evicted past the cap, matching
    the plan cache's LRU discipline.

    Besides the per-fingerprint summaries, the store keeps a host-global
    serial-vs-parallel wall-clock ledger bucketed by scan size, from
    which :meth:`crossover_rows` derives the measured thread fan-out
    floor (the adaptive replacement for the hard-coded
    ``VECTORIZED_MIN_PARALLEL_ROWS`` constant).
    """

    def __init__(
        self, *, alpha: float = 0.2, max_fingerprints: int = 256
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ReproError("feedback alpha must be in (0, 1]")
        if max_fingerprints < 1:
            raise ReproError("feedback store needs capacity for at least 1")
        self.alpha = alpha
        self.max_fingerprints = max_fingerprints
        self._lock = threading.Lock()
        self._summaries: "OrderedDict[str, FingerprintSummary]" = (
            OrderedDict()
        )
        #: log2(scan_rows) bucket -> {parallel?: wall EWMA}.
        self._fanout: Dict[int, Dict[bool, Ewma]] = {}
        self._recorded = 0

    # -- recording -------------------------------------------------------

    def record(
        self,
        fingerprint: str,
        strategy: str,
        backend: str,
        observation: Observation,
    ) -> None:
        """Fold one execution's observation into the summaries.

        Safe under concurrent recording from service threads and pool
        workers; folds serialise on one lock (each fold is a handful of
        float ops, so the lock is never hot relative to a query).
        """
        alpha = self.alpha
        with self._lock:
            self._recorded += 1
            summary = self._summaries.get(fingerprint)
            if summary is None:
                summary = FingerprintSummary()
                self._summaries[fingerprint] = summary
                while len(self._summaries) > self.max_fingerprints:
                    self._summaries.popitem(last=False)
            else:
                self._summaries.move_to_end(fingerprint)
            summary.observations += 1
            summary.wall_seconds.fold(observation.wall_seconds, alpha)
            summary.total_cycles.fold(observation.total_cycles, alpha)
            if observation.selectivity is not None:
                summary.selectivity.fold(observation.selectivity, alpha)
            if observation.match_fraction is not None:
                summary.match_fraction.fold(
                    observation.match_fraction, alpha
                )
            if observation.group_cardinality is not None:
                summary.group_cardinality.fold(
                    observation.group_cardinality, alpha
                )
            summary.random_accesses.fold(
                observation.random_accesses, alpha
            )
            summary.ht_bytes = max(summary.ht_bytes, observation.ht_bytes)
            summary.event_total += observation.events
            arm = summary.arms.get((strategy, backend))
            if arm is None:
                arm = summary.arms[(strategy, backend)] = Ewma()
            arm.fold(observation.wall_seconds, alpha)
            if observation.scan_rows > 0:
                bucket = max(observation.scan_rows, 1).bit_length() - 1
                by_mode = self._fanout.setdefault(bucket, {})
                mode = by_mode.get(observation.parallel)
                if mode is None:
                    mode = by_mode[observation.parallel] = Ewma()
                mode.fold(observation.wall_seconds, alpha)

    # -- reads -----------------------------------------------------------

    def summary(self, fingerprint: str) -> Optional[FingerprintSummary]:
        """The live summary for a fingerprint (``None`` if unseen)."""
        with self._lock:
            return self._summaries.get(fingerprint)

    def observed_selectivity(
        self, fingerprint: str
    ) -> Optional[Tuple[float, int]]:
        """``(EWMA value, sample count)`` of the measured survival
        fraction, or ``None`` before any conditional-access run."""
        with self._lock:
            summary = self._summaries.get(fingerprint)
            if summary is None or summary.selectivity.count == 0:
                return None
            return summary.selectivity.value, summary.selectivity.count

    def observed_match_fraction(
        self, fingerprint: str
    ) -> Optional[Tuple[float, int]]:
        """``(EWMA value, sample count)`` of the measured semijoin
        match fraction, or ``None`` before any instrumented join run."""
        with self._lock:
            summary = self._summaries.get(fingerprint)
            if summary is None or summary.match_fraction.count == 0:
                return None
            return (
                summary.match_fraction.value,
                summary.match_fraction.count,
            )

    def observed_group_cardinality(
        self, fingerprint: str
    ) -> Optional[Tuple[float, int]]:
        """``(EWMA value, sample count)`` of the measured distinct
        group count, or ``None`` before any instrumented grouped run."""
        with self._lock:
            summary = self._summaries.get(fingerprint)
            if summary is None or summary.group_cardinality.count == 0:
                return None
            return (
                summary.group_cardinality.value,
                summary.group_cardinality.count,
            )

    def best_arm(self, fingerprint: str) -> Optional[Arm]:
        """The (strategy, backend) with the lowest wall-clock EWMA, or
        ``None`` before any observation. Ties break by arm name so the
        exploit choice is deterministic."""
        with self._lock:
            summary = self._summaries.get(fingerprint)
            if summary is None or not summary.arms:
                return None
            return min(
                summary.arms,
                key=lambda arm: (summary.arms[arm].value, arm),
            )

    def crossover_rows(self) -> Optional[int]:
        """Measured serial-vs-parallel crossover scan size for this host.

        The smallest power-of-two scan size at which the parallel wall
        EWMA beats the serial one (requires both modes sampled in that
        bucket); ``None`` until some bucket has both, or when serial
        wins everywhere that has been measured.
        """
        with self._lock:
            for bucket in sorted(self._fanout):
                by_mode = self._fanout[bucket]
                serial = by_mode.get(False)
                parallel = by_mode.get(True)
                if serial is None or parallel is None:
                    continue
                if parallel.value < serial.value:
                    return 1 << bucket
            return None

    def snapshot(self) -> dict:
        """JSON-safe view of the whole store (obs stat source)."""
        with self._lock:
            return {
                "recorded": self._recorded,
                "fingerprints": len(self._summaries),
                "capacity": self.max_fingerprints,
                "alpha": self.alpha,
                "summaries": {
                    fingerprint: summary.snapshot()
                    for fingerprint, summary in self._summaries.items()
                },
                "fanout": {
                    str(1 << bucket): {
                        ("parallel" if parallel else "serial"): (
                            ewma.snapshot()
                        )
                        for parallel, ewma in sorted(by_mode.items())
                    }
                    for bucket, by_mode in sorted(self._fanout.items())
                },
            }

    # -- persistence -----------------------------------------------------

    def restore(self, state: dict) -> int:
        """Rehydrate the store from a prior :meth:`snapshot`.

        Returns the number of fingerprints restored. Restored summaries
        replace any same-fingerprint state already in the store; the
        eviction order treats them as the oldest entries, and restoring
        past capacity keeps only the last ``max_fingerprints``. A
        malformed state raises nothing fatal — unparseable summaries
        are skipped, so a partially-corrupt snapshot degrades to a cold
        start rather than a crash.
        """
        restored = 0
        with self._lock:
            self._recorded = max(
                self._recorded, int(state.get("recorded", 0))
            )
            for fingerprint, raw in state.get("summaries", {}).items():
                try:
                    summary = FingerprintSummary.from_snapshot(raw)
                except (TypeError, ValueError, KeyError):
                    continue
                self._summaries[fingerprint] = summary
                self._summaries.move_to_end(fingerprint)
                restored += 1
                while len(self._summaries) > self.max_fingerprints:
                    self._summaries.popitem(last=False)
            for size, by_mode in state.get("fanout", {}).items():
                try:
                    bucket = max(int(size), 1).bit_length() - 1
                except (TypeError, ValueError):
                    continue
                modes = self._fanout.setdefault(bucket, {})
                for mode_name, raw in by_mode.items():
                    try:
                        modes[mode_name == "parallel"] = (
                            Ewma.from_snapshot(raw)
                        )
                    except (TypeError, ValueError):
                        continue
        return restored


__all__ = [
    "Arm",
    "Ewma",
    "FeedbackStore",
    "FingerprintSummary",
    "Observation",
    "observation_from_run",
]
