"""Closed-loop wall-clock throughput benchmark for the Engine.

Where the figure benches report *simulated* seconds (the paper's cost
models), this bench reports what the serving layer actually delivers:
real queries/sec and wall-latency percentiles of a warm
:class:`~repro.engine.facade.Engine` driven in a closed loop over
repeated mixed workloads (TPC-H Q1/Q6 plus the Fig. 7 microbenchmark
queries), per strategy.

It also isolates the tentpole claim — that a persistent worker pool
amortizes per-query thread-spawn cost — by running the identical
repeated-Q6 workload through two engines that differ *only* in thread
lifecycle (``use_pool=True`` vs ``False``), in interleaved rounds so OS
drift hits both sides equally. The comparison uses a deliberately short
query (small scale factor): per-query setup cost is precisely what
dominates short OLAP queries (Sirin & Ailamaki), so that regime is
where pooling must prove itself.

Datasets load through :mod:`repro.datagen.cache`, so only the first
invocation on a machine pays generation; reruns report disk/memory
hits. Results are written machine-readable to ``BENCH_throughput.json``
to seed the performance trajectory across PRs.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..datagen import microbench as mb
from ..datagen import tpch as tpchgen
from ..datagen.cache import DatasetCache, dataset_cache
from ..engine import Engine, ExecutionKnobs
from ..engine.machine import PAPER_MACHINE
from ..engine.program import results_equal
from ..errors import ReproError
from ..tpch import logical_plan

#: Strategies measured by default (the paper's main series).
DEFAULT_STRATEGIES = ("datacentric", "hybrid", "swole")

#: Scale factor of the short-query dataset used for the pool-vs-spawn
#: comparison (~12K lineitem rows: a few morsels per query, so thread
#: lifecycle is a visible fraction of each query's wall time).
SHORT_QUERY_SF = 0.002

#: Default output artifact.
DEFAULT_OUT = "BENCH_throughput.json"


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


@dataclass
class WorkloadResult:
    """Throughput of one (workload, strategy, backend) closed loop."""

    workload: str
    strategy: str
    workers: int
    iterations: int
    queries: int
    total_seconds: float
    latencies: List[float] = field(default_factory=list, repr=False)
    plan_cache: Dict[str, float] = field(default_factory=dict)
    pooled: bool = True
    backend: str = "vectorized"

    @property
    def qps(self) -> float:
        return self.queries / self.total_seconds if self.total_seconds else 0.0

    @property
    def p50_ms(self) -> float:
        return percentile(sorted(self.latencies), 0.50) * 1e3

    @property
    def p95_ms(self) -> float:
        return percentile(sorted(self.latencies), 0.95) * 1e3

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "strategy": self.strategy,
            "backend": self.backend,
            "workers": self.workers,
            "iterations": self.iterations,
            "queries": self.queries,
            "total_seconds": self.total_seconds,
            "qps": self.qps,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "plan_cache": self.plan_cache,
            "pooled": self.pooled,
        }

    def format_row(self) -> str:
        return (
            f"{self.workload:<14s} {self.strategy:<12s} "
            f"{self.backend:<12s} "
            f"{self.qps:>9.1f} q/s  p50 {self.p50_ms:>7.2f} ms  "
            f"p95 {self.p95_ms:>7.2f} ms  "
            f"plan-cache hit rate {self.plan_cache.get('hit_rate', 0.0):.2f}"
        )


def run_workload(
    engine: Engine,
    queries: Sequence[Tuple[str, object]],
    strategy: str,
    *,
    workers: int,
    iterations: int,
    warmup: int = 2,
    workload: str = "workload",
    backend: Optional[str] = None,
) -> WorkloadResult:
    """Drive ``engine`` in a closed loop over the query mix.

    One *iteration* issues every query in the mix once. ``warmup``
    iterations run first (filling the plan cache and starting the
    pool); plan-cache counters are snapshotted over the measured loop
    only. ``backend`` pins the execution backend per call (``None``
    uses the engine's default).
    """
    for _ in range(max(warmup, 0)):
        for _, query in queries:
            engine.execute(query, strategy, workers=workers, backend=backend)
    before = engine.cache_stats.snapshot()
    latencies: List[float] = []
    begin = time.perf_counter()
    for _ in range(iterations):
        for _, query in queries:
            start = time.perf_counter()
            engine.execute(query, strategy, workers=workers, backend=backend)
            latencies.append(time.perf_counter() - start)
    total = time.perf_counter() - begin
    after = engine.cache_stats.snapshot()
    hits = after["hits"] - before["hits"]
    misses = after["misses"] - before["misses"]
    return WorkloadResult(
        workload=workload,
        strategy=strategy,
        workers=workers,
        iterations=iterations,
        queries=len(latencies),
        total_seconds=total,
        latencies=latencies,
        plan_cache={
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        },
        pooled=engine.pool is not None,
        backend=backend if backend is not None else engine.knobs.backend,
    )


def pool_vs_spawn(
    db,
    machine,
    *,
    workers: int,
    iterations: int,
    rounds: int = 4,
    query: str = "Q6",
    strategy: str = "swole",
    backend: str = "vectorized",
) -> dict:
    """Repeated-``query`` throughput: persistent pool vs spawn-per-query.

    Both engines share the database and machine model and execute the
    identical query stream; they differ only in ``use_pool``.
    Measurement alternates between the two in ``rounds`` rounds so host
    noise and frequency drift hit both sides; the headline ``speedup``
    compares the *best* round per mode (standard microbenchmark
    practice — the best round is the least noise-contaminated sample of
    each mode's true cost), with the totals-based ratio reported
    alongside as ``speedup_total``.
    """
    per_round = max(iterations // rounds, 1)
    plan = logical_plan(query) if isinstance(query, str) else query
    round_seconds: Dict[str, List[float]] = {"pool": [], "spawn": []}
    # Pin the morsel size: the vectorized backend's fan-out floor would
    # otherwise run this deliberately short query serially on both
    # engines, and a comparison of thread lifecycles needs threads.
    knobs = ExecutionKnobs(morsel_rows=4096)
    with Engine(
        db, machine=machine, workers=workers, backend=backend, knobs=knobs
    ) as pooled:
        spawn = Engine(
            db,
            machine=machine,
            workers=workers,
            use_pool=False,
            backend=backend,
            knobs=knobs,
        )
        for engine in (pooled, spawn):  # warm plans + pool threads
            for _ in range(3):
                engine.execute(plan, strategy, workers=workers)
        for _ in range(rounds):
            for mode, engine in (("pool", pooled), ("spawn", spawn)):
                begin = time.perf_counter()
                for _ in range(per_round):
                    engine.execute(plan, strategy, workers=workers)
                round_seconds[mode].append(time.perf_counter() - begin)
    pool_qps = per_round / min(round_seconds["pool"])
    spawn_qps = per_round / min(round_seconds["spawn"])
    total_pool = sum(round_seconds["pool"])
    total_spawn = sum(round_seconds["spawn"])
    return {
        "workload": f"repeated-{query}",
        "strategy": strategy,
        "backend": backend,
        "workers": workers,
        "rounds": rounds,
        "queries_per_mode": per_round * rounds,
        "pool_qps": pool_qps,
        "spawn_qps": spawn_qps,
        "pool_qps_total": per_round * rounds / total_pool,
        "spawn_qps_total": per_round * rounds / total_spawn,
        "speedup": pool_qps / spawn_qps if spawn_qps else 0.0,
        "speedup_total": total_spawn / total_pool if total_pool else 0.0,
    }


def run_throughput(
    *,
    rows: int = 200_000,
    sf: float = 0.01,
    workers: int = 4,
    iterations: int = 30,
    warmup: int = 2,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    out_path: Optional[str] = DEFAULT_OUT,
    cache: Optional[DatasetCache] = None,
    baseline_sf: float = SHORT_QUERY_SF,
    baseline_iterations: Optional[int] = None,
    seed: Optional[int] = None,
    backend: str = "vectorized",
    compare_backends: bool = True,
    verbose: bool = True,
) -> dict:
    """Run the full throughput suite; return (and optionally write) the
    machine-readable report.

    ``seed`` overrides every dataset generator's seed (``None`` keeps
    each generator's own default), making a run byte-for-byte
    reproducible: the same seed yields the same fingerprints, datasets,
    and query answers.

    ``backend`` is the headline backend (the ``workloads`` section and
    the pool-vs-spawn isolation run on it). With ``compare_backends``
    (the default) every (workload, strategy) cell additionally runs on
    the *other* backend, and the report carries a ``backend_speedup``
    section: vectorized over instrumented qps per cell, with a
    byte-equality check of the two backends' answers on the way in.
    """
    cache = cache or dataset_cache()
    say = print if verbose else (lambda *_args, **_kw: None)

    if seed is None:
        micro_config = mb.MicrobenchConfig(num_rows=rows)
        tpch_config = tpchgen.TpchConfig(scale_factor=sf)
        short_config = tpchgen.TpchConfig(scale_factor=baseline_sf)
    else:
        micro_config = mb.MicrobenchConfig(num_rows=rows, seed=seed)
        tpch_config = tpchgen.TpchConfig(scale_factor=sf, seed=seed)
        short_config = tpchgen.TpchConfig(
            scale_factor=baseline_sf, seed=seed
        )

    sources: Dict[str, str] = {}
    micro_db = cache.load("microbench", micro_config)
    sources["microbench"] = cache.last_source
    tpch_db = cache.load("tpch", tpch_config)
    sources["tpch"] = cache.last_source
    short_db = cache.load("tpch", short_config)
    sources["tpch-short"] = cache.last_source
    say(
        "datasets: "
        + ", ".join(f"{name}={src}" for name, src in sources.items())
    )

    micro_machine = PAPER_MACHINE.scaled(micro_config.scale_factor)
    tpch_machine = PAPER_MACHINE.scaled(tpch_config.machine_scale)

    measured_backends = [backend]
    if compare_backends:
        measured_backends.append(
            "instrumented" if backend == "vectorized" else "vectorized"
        )

    workloads: List[WorkloadResult] = []
    comparison: List[WorkloadResult] = []
    backend_speedup: List[dict] = []

    def measure(engine: Engine, mix, workload_name: str) -> None:
        for strategy in strategies:
            by_backend: Dict[str, WorkloadResult] = {}
            for bend in measured_backends:
                result = run_workload(
                    engine, mix, strategy,
                    workers=workers, iterations=iterations, warmup=warmup,
                    workload=workload_name, backend=bend,
                )
                by_backend[bend] = result
                (workloads if bend == backend else comparison).append(result)
                say(result.format_row())
            if len(by_backend) < 2:
                continue
            # The speed comparison is only meaningful if the two
            # backends agree bit for bit; check before reporting.
            for query_name, query in mix:
                pair = [
                    engine.execute(
                        query, strategy, workers=workers, backend=bend
                    )
                    for bend in ("instrumented", "vectorized")
                ]
                if not results_equal(pair[0], pair[1]):
                    raise ReproError(
                        f"backend answers diverged on {workload_name}/"
                        f"{query_name} under {strategy}"
                    )
            inst = by_backend["instrumented"]
            vec = by_backend["vectorized"]
            speedup = vec.qps / inst.qps if inst.qps else 0.0
            backend_speedup.append(
                {
                    "workload": workload_name,
                    "strategy": strategy,
                    "instrumented_qps": inst.qps,
                    "vectorized_qps": vec.qps,
                    "speedup": speedup,
                }
            )
            say(
                f"  vectorized over instrumented ({workload_name}, "
                f"{strategy}): {speedup:.2f}x"
            )

    tpch_mix = [("Q1", logical_plan("Q1")), ("Q6", logical_plan("Q6"))]
    micro_mix = [
        ("uQ1-mul", mb.q1(30, "mul")),
        ("uQ1-div", mb.q1(30, "div")),
        ("uQ2", mb.q2(30)),
    ]
    with Engine(tpch_db, machine=tpch_machine, workers=workers) as engine:
        measure(engine, tpch_mix, "tpch-q1q6")
    with Engine(micro_db, machine=micro_machine, workers=workers) as engine:
        measure(engine, micro_mix, "micro-q1q2")

    baseline = pool_vs_spawn(
        short_db,
        PAPER_MACHINE.scaled(short_config.machine_scale),
        workers=workers,
        iterations=(
            baseline_iterations
            if baseline_iterations is not None
            else max(iterations * 4, 40)
        ),
        backend=backend,
    )
    say(
        f"pool vs spawn ({baseline['workload']}, "
        f"{baseline['workers']} workers): "
        f"{baseline['pool_qps']:.1f} vs {baseline['spawn_qps']:.1f} q/s "
        f"-> {baseline['speedup']:.2f}x"
    )

    report = {
        "bench": "throughput",
        "unix_time": time.time(),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "config": {
            "rows": rows,
            "sf": sf,
            "baseline_sf": baseline_sf,
            "workers": workers,
            "iterations": iterations,
            "warmup": warmup,
            "seed": seed,
            "strategies": list(strategies),
            "backend": backend,
            "compare_backends": compare_backends,
        },
        "dataset_cache": {
            "sources": sources,
            "stats": cache.stats.snapshot(),
            "dir": str(cache.cache_dir),
        },
        "workloads": [w.to_dict() for w in workloads],
        "backend_comparison": [w.to_dict() for w in comparison],
        "backend_speedup": backend_speedup,
        "pool_vs_spawn": baseline,
    }
    if out_path:
        Path(out_path).write_text(json.dumps(report, indent=1))
        say(f"wrote {out_path}")
    return report
