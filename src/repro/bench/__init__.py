"""Benchmark harnesses regenerating every table and figure in the paper."""

from .microbench import (
    DEFAULT_SELECTIVITIES,
    SweepResult,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    run_strategies,
    scaled_machine,
)
from .throughput import (
    WorkloadResult,
    pool_vs_spawn,
    run_throughput,
    run_workload,
)
from .tpch import FIG6_SERIES, PAPER_SWOLE_SPEEDUPS, TpchReport, run_fig6

__all__ = [
    "DEFAULT_SELECTIVITIES",
    "FIG6_SERIES",
    "PAPER_SWOLE_SPEEDUPS",
    "SweepResult",
    "TpchReport",
    "WorkloadResult",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "pool_vs_spawn",
    "run_fig6",
    "run_strategies",
    "run_throughput",
    "run_workload",
    "scaled_machine",
]
