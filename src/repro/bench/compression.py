"""Compression access-path benchmark (``--compression-bench``).

Three phases, written machine-readable to ``BENCH_compression.json``:

1. **Model sweep** — the access-encoding pass's own decision surface:
   modelled cycles of an encoded sequential scan (narrow code stream +
   late decode of survivors) against the decoded scan (full-width
   value stream), across code widths × predicate selectivities on the
   paper machine. The table EXPERIMENTS.md reproduces; the contract is
   that the encoded advantage *grows as the code width shrinks* and
   shrinks as more survivors pay the decode.

2. **TPC-H sweep** — every query × strategy cell compiles twice
   (``encoding="auto"`` vs ``encoding="off"``) and runs on the
   instrumented backend. Answers must be byte-identical; the report
   records the encoded/decoded cycle ratio per cell plus the
   access-encoding pass's decision line for every cell that serves
   code streams.

3. **Headline** — the access-bound Q6 × swole cell: a scan-dominated
   kernel where streaming 2-byte dates and 4-byte prices instead of
   8-byte values must win outright in modelled cycles. Compute-bound
   cells (Q1) legitimately show no advantage — the overlap model hides
   their streams under arithmetic — and the report says so per cell
   rather than averaging it away.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..core.cost_models import decoded_scan_cost, encoded_scan_cost
from ..datagen import tpch as tpchgen
from ..datagen.cache import load_dataset
from ..engine.machine import PAPER_MACHINE
from ..engine.program import results_equal
from ..engine.session import Session
from ..tpch.base import STRATEGIES, compile_tpch, query_names

#: Code widths of the model sweep — the byte widths the three codecs
#: actually produce (dict codes, null-suppressed ints, fixed-point),
#: with 8 as the decoded baseline width.
SWEEP_WIDTHS = (1, 2, 4, 8)

#: Survivor fractions of the model sweep: from needle-in-a-haystack to
#: decode-everything.
SWEEP_SELECTIVITIES = (0.01, 0.10, 0.50, 1.00)

#: The access-bound headline cell: scan-dominated, no joins, every
#: predicate column compressible.
HEADLINE = ("Q6", "swole")


def run_model_sweep(
    machine=PAPER_MACHINE, n: int = 1_000_000
) -> Dict[str, Any]:
    """Encoded vs decoded scan cycles across width × selectivity.

    ``advantage`` is decoded/encoded cycles (>1 means the code stream
    wins). The decoded baseline streams 8-byte values regardless of
    the code width under test — the comparison the access-encoding
    pass makes for an int64/decimal column.
    """
    rows: List[Dict[str, Any]] = []
    for width in SWEEP_WIDTHS:
        decoded = decoded_scan_cost(machine, n, 8)
        for selectivity in SWEEP_SELECTIVITIES:
            encoded = encoded_scan_cost(machine, n, width, selectivity)
            rows.append(
                {
                    "code_width": width,
                    "selectivity": selectivity,
                    "encoded_cycles": encoded,
                    "decoded_cycles": decoded,
                    "advantage": decoded / encoded if encoded else 0.0,
                }
            )
    return {"rows_scanned": n, "table": rows}


def _encoding_note(compiled) -> Optional[str]:
    for note in compiled.notes.get("passes", []):
        text = str(note)
        if text.startswith("[access-encoding] applied"):
            return text
    return None


def run_tpch_sweep(db, machine) -> Dict[str, Any]:
    """Every query × strategy cell, encoded vs decoded, instrumented.

    The gate is byte-identity of the answers; the cycle ratio and the
    chosen per-scan encodings are recorded per cell.
    """
    cells: List[Dict[str, Any]] = []
    identical = 0
    for name in query_names():
        for strategy in STRATEGIES:
            encoded_prog = compile_tpch(
                name, strategy, db, machine=machine, encoding="auto"
            )
            decoded_prog = compile_tpch(
                name, strategy, db, machine=machine, encoding="off"
            )
            encoded = encoded_prog.run(Session(machine=machine))
            decoded = decoded_prog.run(Session(machine=machine))
            same = results_equal(encoded, decoded)
            identical += bool(same)
            cells.append(
                {
                    "query": name,
                    "strategy": strategy,
                    "identical": same,
                    "encoded_cycles": encoded.cycles,
                    "decoded_cycles": decoded.cycles,
                    "ratio": (
                        encoded.cycles / decoded.cycles
                        if decoded.cycles
                        else 0.0
                    ),
                    "encoding": _encoding_note(encoded_prog),
                }
            )
    return {
        "cells": len(cells),
        "identical": identical,
        "table": cells,
    }


def run_compression_bench(
    *,
    sf: float = 0.01,
    seed: Optional[int] = None,
    out_path: str = "BENCH_compression.json",
) -> Dict[str, Any]:
    config = tpchgen.TpchConfig(
        scale_factor=sf, seed=seed if seed is not None else 42
    )
    machine = PAPER_MACHINE.scaled(config.machine_scale)
    db = load_dataset("tpch", config)

    print("== model sweep (encoded vs decoded scan cycles) ==")
    model = run_model_sweep(machine)
    print(
        f"  {'width':>5s} "
        + " ".join(f"sel={s:<5g}" for s in SWEEP_SELECTIVITIES)
    )
    by_width: Dict[int, List[float]] = {}
    for row in model["table"]:
        by_width.setdefault(row["code_width"], []).append(
            row["advantage"]
        )
    for width in SWEEP_WIDTHS:
        print(
            f"  {width:4d}B "
            + " ".join(f"{a:9.2f}" for a in by_width[width])
        )

    print(f"== tpch sweep (sf={sf}) ==")
    tpch_sweep = run_tpch_sweep(db, machine)
    print(
        f"  {tpch_sweep['identical']}/{tpch_sweep['cells']} cells "
        f"byte-identical encoded vs decoded"
    )
    worst = max(tpch_sweep["table"], key=lambda c: c["ratio"])
    best = min(tpch_sweep["table"], key=lambda c: c["ratio"])
    print(
        f"  best cell {best['query']}/{best['strategy']} "
        f"ratio {best['ratio']:.4f}; worst {worst['query']}/"
        f"{worst['strategy']} ratio {worst['ratio']:.4f}"
    )

    headline_cell = next(
        c
        for c in tpch_sweep["table"]
        if (c["query"], c["strategy"]) == HEADLINE
    )
    # The committed contract: narrow streams beat wide ones in the
    # model at every width below the baseline, the advantage is
    # monotone in width, and the access-bound cell wins end to end.
    narrow = [
        row
        for row in model["table"]
        if row["code_width"] < 8 and row["selectivity"] <= 0.10
    ]
    widths_at_low_sel = [
        row["advantage"]
        for row in model["table"]
        if row["selectivity"] == SWEEP_SELECTIVITIES[0]
    ]
    headline = {
        "headline_cell": f"{HEADLINE[0]}/{HEADLINE[1]}",
        "headline_ratio": headline_cell["ratio"],
        "headline_encoding": headline_cell["encoding"],
        "model_narrow_always_wins": all(
            row["advantage"] > 1.0 for row in narrow
        ),
        "model_advantage_monotone_in_width": all(
            a >= b
            for a, b in zip(widths_at_low_sel, widths_at_low_sel[1:])
        ),
        "equivalence_ok": (
            tpch_sweep["identical"] == tpch_sweep["cells"]
        ),
    }
    print(
        f"== headline: {headline['headline_cell']} encoded at "
        f"{headline['headline_ratio']:.4f}x of decoded cycles; model "
        f"advantage at sel={SWEEP_SELECTIVITIES[0]:g}: "
        + " > ".join(
            f"{w}B:{a:.2f}x"
            for w, a in zip(SWEEP_WIDTHS, widths_at_low_sel)
        )
        + " =="
    )

    report = {
        "bench": "compression",
        "unix_time": time.time(),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "config": {
            "sf": sf,
            "seed": config.seed,
            "sweep_widths": list(SWEEP_WIDTHS),
            "sweep_selectivities": list(SWEEP_SELECTIVITIES),
        },
        "model_sweep": model,
        "tpch_sweep": tpch_sweep,
        "headline": headline,
    }
    if out_path:
        Path(out_path).write_text(json.dumps(report, indent=1))
        print(f"wrote {out_path}")
    return report
