"""Closed-loop serving benchmark: qps, tail latency, shed and miss rates.

Where ``--throughput`` drives a bare :class:`~repro.engine.facade.Engine`
from one loop, this bench measures the *query service layer* the way a
client fleet would: ``clients`` closed-loop load generators (one thread
— and, over TCP, one connection — each) issue a mixed workload against
a :class:`~repro.server.service.QueryService` with configured
``concurrency`` and ``queue_depth``, every request carrying a deadline.
Reported per (workload, strategy):

* achieved queries/sec and p50/p95/p99 wall latency over completed
  requests;
* the **shed rate** (structured ``queue_full`` rejections / issued) and
  the **deadline-miss rate** (``deadline_exceeded`` responses plus
  requests that completed past their budget);
* a **serial baseline** — the identical request stream as plain
  sequential ``engine.execute`` calls — and the served-over-serial
  speedup, which is the tentpole claim: a warm concurrent server
  sustains more qps than library calls in a loop. The server's edge
  has two sources: **request coalescing** (duplicate queued requests
  are answered from one execution — a fleet hammering a small query
  mix is mostly duplicates, and a serial caller has no queue to
  coalesce), which holds on any host; and concurrent GIL-releasing
  kernels, which add on multi-core hosts. The per-cell ``coalesced``
  counts in ``service_stats`` make the first factor inspectable.

Two methodology details keep that comparison fair rather than flattering:

* The served scenarios size their service threads to the *host* —
  ``min(concurrency, os.cpu_count())`` — because compute threads beyond
  the core count only time-slice each other (on a single-core runner,
  four concurrent NumPy kernels finish no sooner than one at a time,
  but pay the context-switch thrash). Both the requested and effective
  values land in the report.
* Serial and served runs alternate for ``rounds`` interleaved rounds
  and the headline compares the **best round of each** (per-round qps
  is recorded alongside), the same discipline the throughput bench uses
  for its pool-vs-spawn isolation — a noise spike then has to be
  systematic to move the verdict.

A separate **shedding scenario** runs a deliberately undersized service
(``concurrency=1``, ``queue_depth=2``) under the same client fleet to
demonstrate overload behaviour: a healthy shed rate, zero transport
failures, and no hung workers.

``--connect host:port`` drives an already-running
``python -m repro.server`` over TCP instead of an in-process service
(the CI smoke job does); the shedding scenario is skipped there because
the remote queue cannot be resized.

Results are written machine-readable to ``BENCH_serving.json``.
"""

from __future__ import annotations

import json
import os
import platform
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..datagen import microbench as mb
from ..datagen import tpch as tpchgen
from ..datagen.cache import DatasetCache, dataset_cache
from ..engine import Engine
from ..engine.machine import PAPER_MACHINE
from ..errors import ReproError
from ..plan.serde import plan_to_wire
from ..server import (
    ERR_DEADLINE,
    ERR_QUEUE_FULL,
    QueryRequest,
    QueryResponse,
    QueryService,
    ServiceClient,
)
from ..tpch import logical_plan
from .throughput import percentile

#: Strategies measured by default (the paper's main series).
DEFAULT_STRATEGIES = ("datacentric", "hybrid", "swole")

#: Default output artifact.
DEFAULT_OUT = "BENCH_serving.json"

#: Generous per-request budget for the throughput scenarios (misses
#: should be rare unless the host is badly oversubscribed).
DEFAULT_DEADLINE = 2.0

#: Interleaved serial/served rounds per (workload, strategy); the
#: report keeps the best round of each side (plus all per-round qps).
DEFAULT_ROUNDS = 3


def effective_concurrency(requested: int) -> int:
    """Service threads actually used by the served scenarios: the
    requested count capped at the host's cores (compute threads beyond
    that only time-slice each other)."""
    return max(1, min(requested, os.cpu_count() or 1))

#: Wire-format workload mixes (shared by both transports). TPC-H
#: queries travel as plan envelopes — structural JSON + IR fingerprint
#: — the non-deprecated wire spelling.
WORKLOADS: Dict[str, List[Tuple[str, Any]]] = {
    "tpch-q1q6": [
        ("Q1", plan_to_wire(logical_plan("Q1"))),
        ("Q6", plan_to_wire(logical_plan("Q6"))),
    ],
    "micro-q1q2": [
        ("uQ1-mul", {"micro": "q1", "args": {"sel": 30, "op": "mul"}}),
        ("uQ1-div", {"micro": "q1", "args": {"sel": 30, "op": "div"}}),
        ("uQ2", {"micro": "q2", "args": {"sel": 30}}),
    ],
}

#: issue(spec, strategy, deadline) -> QueryResponse
IssueFn = Callable[[Any, str, Optional[float]], QueryResponse]


@dataclass
class LoadgenResult:
    """What the client fleet observed in one scenario."""

    scenario: str
    workload: str
    strategy: str
    clients: int
    concurrency: int
    queue_depth: int
    issued: int = 0
    ok: int = 0
    shed: int = 0
    timed_out: int = 0
    failed: int = 0
    #: ``ok`` responses that nevertheless finished past their budget
    #: (a serial kernel cannot be interrupted; the miss is reported).
    completed_late: int = 0
    total_seconds: float = 0.0
    latencies: List[float] = field(default_factory=list, repr=False)

    @property
    def qps(self) -> float:
        return self.ok / self.total_seconds if self.total_seconds else 0.0

    @property
    def shed_rate(self) -> float:
        return self.shed / self.issued if self.issued else 0.0

    @property
    def deadline_miss_rate(self) -> float:
        if not self.issued:
            return 0.0
        return (self.timed_out + self.completed_late) / self.issued

    def _pct(self, q: float) -> float:
        return percentile(sorted(self.latencies), q) * 1e3

    @property
    def p50_ms(self) -> float:
        return self._pct(0.50)

    @property
    def p95_ms(self) -> float:
        return self._pct(0.95)

    @property
    def p99_ms(self) -> float:
        return self._pct(0.99)

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "workload": self.workload,
            "strategy": self.strategy,
            "clients": self.clients,
            "concurrency": self.concurrency,
            "queue_depth": self.queue_depth,
            "issued": self.issued,
            "ok": self.ok,
            "shed": self.shed,
            "timed_out": self.timed_out,
            "failed": self.failed,
            "completed_late": self.completed_late,
            "total_seconds": self.total_seconds,
            "qps": self.qps,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "shed_rate": self.shed_rate,
            "deadline_miss_rate": self.deadline_miss_rate,
        }

    def format_row(self) -> str:
        return (
            f"{self.scenario:<10s} {self.workload:<12s} "
            f"{self.strategy:<12s} {self.qps:>8.1f} q/s  "
            f"p50 {self.p50_ms:>7.2f} p95 {self.p95_ms:>7.2f} "
            f"p99 {self.p99_ms:>7.2f} ms  "
            f"shed {self.shed_rate:>5.1%}  miss {self.deadline_miss_rate:>5.1%}"
        )


def drive_load(
    issue: IssueFn,
    mix: Sequence[Tuple[str, Any]],
    strategy: str,
    *,
    clients: int,
    requests_per_client: int,
    deadline: Optional[float],
    result: LoadgenResult,
) -> LoadgenResult:
    """Run the closed loop: each client thread issues its share of the
    mix back-to-back; counters and latencies merge under one lock."""
    lock = threading.Lock()
    start_barrier = threading.Barrier(clients + 1)

    def client_loop(offset: int) -> None:
        local: List[Tuple[str, float, bool]] = []
        start_barrier.wait()
        for i in range(requests_per_client):
            _, spec = mix[(offset + i) % len(mix)]
            begin = time.perf_counter()
            try:
                response = issue(spec, strategy, deadline)
            except ReproError:
                local.append(("transport", 0.0, False))
                continue
            elapsed = time.perf_counter() - begin
            if response.ok:
                late = bool(response.metrics.get("deadline_missed")) or (
                    deadline is not None and elapsed > deadline
                )
                local.append(("ok", elapsed, late))
            elif response.error_code == ERR_QUEUE_FULL:
                retry = (
                    response.error.retry_after
                    if response.error is not None
                    else None
                )
                local.append(("shed", retry or 0.0, False))
                if retry:
                    # A well-behaved client honours the hint (bounded,
                    # so an overloaded scenario still finishes quickly).
                    time.sleep(min(retry, 0.05))
            elif response.error_code == ERR_DEADLINE:
                local.append(("timeout", elapsed, False))
            else:
                local.append(("failed", elapsed, False))
        with lock:
            for kind, value, late in local:
                result.issued += 1
                if kind == "ok":
                    result.ok += 1
                    result.latencies.append(value)
                    if late:
                        result.completed_late += 1
                elif kind == "shed":
                    result.shed += 1
                elif kind == "timeout":
                    result.timed_out += 1
                else:
                    result.failed += 1

    threads = [
        threading.Thread(target=client_loop, args=(i,), daemon=True)
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    start_barrier.wait()
    begin = time.perf_counter()
    for thread in threads:
        thread.join()
    result.total_seconds = time.perf_counter() - begin
    return result


def run_serial_baseline(
    engine: Engine,
    mix: Sequence[Tuple[str, Any]],
    strategy: str,
    *,
    requests: int,
    workload: str,
    backend: Optional[str] = None,
) -> LoadgenResult:
    """The un-served baseline: the same request stream as sequential
    ``engine.execute`` calls on one thread (workers=1, no queue).
    ``backend`` overrides the engine's default execution backend."""
    from ..server.protocol import parse_query_spec

    result = LoadgenResult(
        scenario="serial",
        workload=workload,
        strategy=strategy,
        clients=1,
        concurrency=1,
        queue_depth=0,
    )
    queries = [parse_query_spec(spec) for _, spec in mix]
    # Warm the plan cache outside the measured loop.
    engine.execute(queries[0], strategy, workers=1, backend=backend)
    begin = time.perf_counter()
    for i in range(requests):
        start = time.perf_counter()
        engine.execute(
            queries[i % len(queries)], strategy, workers=1, backend=backend
        )
        result.latencies.append(time.perf_counter() - start)
        result.issued += 1
        result.ok += 1
    result.total_seconds = time.perf_counter() - begin
    return result


def service_issue_fn(
    service: QueryService, backend: Optional[str] = None
) -> IssueFn:
    def issue(spec, strategy, deadline):
        return service.execute(
            QueryRequest(
                query=spec,
                strategy=strategy,
                deadline=deadline,
                backend=backend,
            ),
            timeout=60.0,
        )

    return issue


def run_service_scenario(
    engine: Engine,
    mix: Sequence[Tuple[str, Any]],
    strategy: str,
    *,
    scenario: str,
    workload: str,
    clients: int,
    concurrency: int,
    queue_depth: int,
    requests_per_client: int,
    deadline: Optional[float],
    backend: Optional[str] = None,
) -> Tuple[LoadgenResult, dict]:
    """One in-process served scenario; returns the loadgen view and the
    service's own stats snapshot. ``backend`` pins every request's
    execution backend (``None`` serves the engine's default)."""
    result = LoadgenResult(
        scenario=scenario,
        workload=workload,
        strategy=strategy,
        clients=clients,
        concurrency=concurrency,
        queue_depth=queue_depth,
    )
    with QueryService(
        engine, concurrency=concurrency, queue_depth=queue_depth
    ) as service:
        # Warm the plan cache outside the measured loop (one request
        # per mix entry), as the throughput bench does.
        issue = service_issue_fn(service, backend)
        for _, spec in mix:
            issue(spec, strategy, None)
        drive_load(
            issue,
            mix,
            strategy,
            clients=clients,
            requests_per_client=requests_per_client,
            deadline=deadline,
            result=result,
        )
        stats = service.stats.snapshot()
    return result, stats


def run_serving_bench(
    *,
    rows: int = 200_000,
    sf: float = 0.01,
    seed: Optional[int] = None,
    engine_workers: int = 1,
    concurrency: int = 4,
    queue_depth: int = 64,
    clients: int = 8,
    requests_per_client: int = 40,
    deadline: float = DEFAULT_DEADLINE,
    rounds: int = DEFAULT_ROUNDS,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    backend: str = "vectorized",
    out_path: Optional[str] = DEFAULT_OUT,
    cache: Optional[DatasetCache] = None,
    connect: Optional[str] = None,
    connect_workload: str = "tpch-q1q6",
    verbose: bool = True,
) -> dict:
    """Run the serving suite; return (and optionally write) the report.

    ``backend`` is the execution backend the whole suite runs on:
    in-process engines are built with it, and over TCP every request
    carries it so the measurement does not depend on the remote
    server's default.
    """
    say = print if verbose else (lambda *_a, **_k: None)
    if rounds < 1:
        raise ReproError(f"rounds must be at least 1, got {rounds}")
    if connect is not None:
        report = _run_connect(
            connect,
            workload=connect_workload,
            strategies=strategies,
            clients=clients,
            requests_per_client=requests_per_client,
            deadline=deadline,
            rounds=rounds,
            backend=backend,
            say=say,
        )
    else:
        report = _run_in_process(
            rows=rows,
            sf=sf,
            seed=seed,
            engine_workers=engine_workers,
            concurrency=concurrency,
            queue_depth=queue_depth,
            clients=clients,
            requests_per_client=requests_per_client,
            deadline=deadline,
            rounds=rounds,
            strategies=strategies,
            backend=backend,
            cache=cache or dataset_cache(),
            say=say,
        )
    report["bench"] = "serving"
    report["unix_time"] = time.time()
    report["host"] = {
        "platform": platform.platform(),
        "python": platform.python_version(),
    }
    if out_path:
        Path(out_path).write_text(json.dumps(report, indent=1))
        say(f"wrote {out_path}")
    return report


def _run_in_process(
    *,
    rows: int,
    sf: float,
    seed: Optional[int],
    engine_workers: int,
    concurrency: int,
    queue_depth: int,
    clients: int,
    requests_per_client: int,
    deadline: float,
    rounds: int,
    strategies: Sequence[str],
    backend: str,
    cache: DatasetCache,
    say,
) -> dict:
    micro_config = (
        mb.MicrobenchConfig(num_rows=rows)
        if seed is None
        else mb.MicrobenchConfig(num_rows=rows, seed=seed)
    )
    tpch_config = (
        tpchgen.TpchConfig(scale_factor=sf)
        if seed is None
        else tpchgen.TpchConfig(scale_factor=sf, seed=seed)
    )
    sources: Dict[str, str] = {}
    databases = {}
    databases["micro-q1q2"] = (
        cache.load("microbench", micro_config),
        PAPER_MACHINE.scaled(micro_config.scale_factor),
    )
    sources["microbench"] = cache.last_source
    databases["tpch-q1q6"] = (
        cache.load("tpch", tpch_config),
        PAPER_MACHINE.scaled(tpch_config.machine_scale),
    )
    sources["tpch"] = cache.last_source
    say(
        "datasets: "
        + ", ".join(f"{name}={src}" for name, src in sources.items())
    )

    service_threads = effective_concurrency(concurrency)
    if service_threads != concurrency:
        say(
            f"service threads: {service_threads} "
            f"(requested {concurrency}, host has {os.cpu_count()} cores)"
        )

    scenarios: List[dict] = []
    speedups: List[dict] = []
    service_stats: List[dict] = []
    round_failures = 0
    for workload, (db, machine) in databases.items():
        mix = WORKLOADS[workload]
        with Engine(
            db, machine=machine, workers=engine_workers, backend=backend
        ) as engine:
            for strategy in strategies:
                serial_rounds: List[LoadgenResult] = []
                served_rounds: List[LoadgenResult] = []
                stats_rounds: List[dict] = []
                for _ in range(rounds):
                    serial = run_serial_baseline(
                        engine,
                        mix,
                        strategy,
                        requests=clients * requests_per_client,
                        workload=workload,
                    )
                    say(serial.format_row())
                    served, stats = run_service_scenario(
                        engine,
                        mix,
                        strategy,
                        scenario="served",
                        workload=workload,
                        clients=clients,
                        concurrency=service_threads,
                        queue_depth=queue_depth,
                        requests_per_client=requests_per_client,
                        deadline=deadline,
                    )
                    say(served.format_row())
                    serial_rounds.append(serial)
                    served_rounds.append(served)
                    stats_rounds.append(stats)
                    round_failures += serial.failed + served.failed
                serial = max(serial_rounds, key=lambda r: r.qps)
                best = max(
                    range(len(served_rounds)),
                    key=lambda i: served_rounds[i].qps,
                )
                served = served_rounds[best]
                scenarios.extend([serial.to_dict(), served.to_dict()])
                stats = stats_rounds[best]
                stats["workload"] = workload
                stats["strategy"] = strategy
                service_stats.append(stats)
                speedup = served.qps / serial.qps if serial.qps else 0.0
                speedups.append(
                    {
                        "workload": workload,
                        "strategy": strategy,
                        "serial_qps": serial.qps,
                        "served_qps": served.qps,
                        "speedup": speedup,
                        "serial_qps_rounds": [
                            r.qps for r in serial_rounds
                        ],
                        "served_qps_rounds": [
                            r.qps for r in served_rounds
                        ],
                    }
                )
                say(
                    f"  best of {rounds} round(s): serial {serial.qps:.1f}"
                    f" q/s, served {served.qps:.1f} q/s"
                    f" (speedup {speedup:.2f})"
                )

    shedding = _run_shedding_demo(
        databases["micro-q1q2"],
        clients=max(clients, 8),
        requests_per_client=requests_per_client,
        backend=backend,
        say=say,
    )

    # Count every round's failures, not just the kept best rounds.
    failures = round_failures + shedding["loadgen"]["failed"]
    return {
        "config": {
            "rows": rows,
            "sf": sf,
            "seed": seed,
            "engine_workers": engine_workers,
            "concurrency": concurrency,
            "service_threads": service_threads,
            "queue_depth": queue_depth,
            "clients": clients,
            "requests_per_client": requests_per_client,
            "deadline": deadline,
            "rounds": rounds,
            "strategies": list(strategies),
            "backend": backend,
            "transport": "in-process",
        },
        "dataset_cache": {
            "sources": sources,
            "stats": cache.stats.snapshot(),
            "dir": str(cache.cache_dir),
        },
        "scenarios": scenarios,
        "speedups": speedups,
        "service_stats": service_stats,
        "shedding": shedding,
        "failures": failures,
    }


def _run_shedding_demo(
    db_machine,
    *,
    clients: int,
    requests_per_client: int,
    backend: str,
    say,
) -> dict:
    """Deliberately undersized service under the full client fleet: the
    point is structured ``queue_full`` rejections with retry hints —
    not crashes, not hangs — and a queue that never exceeds its bound."""
    db, machine = db_machine
    mix = WORKLOADS["micro-q1q2"]
    with Engine(db, machine=machine, workers=1, backend=backend) as engine:
        result, stats = run_service_scenario(
            engine,
            mix,
            "swole",
            scenario="overload",
            workload="micro-q1q2",
            clients=clients,
            concurrency=1,
            queue_depth=2,
            requests_per_client=requests_per_client,
            deadline=0.5,
        )
    say(result.format_row())
    say(
        f"  overload demo: {result.shed}/{result.issued} shed "
        f"({result.shed_rate:.1%}), {result.timed_out} timed out, "
        f"{result.failed} failed"
    )
    return {"loadgen": result.to_dict(), "service_stats": stats}


def _run_connect(
    address: str,
    *,
    workload: str,
    strategies: Sequence[str],
    clients: int,
    requests_per_client: int,
    deadline: float,
    rounds: int,
    backend: str,
    say,
) -> dict:
    """Drive a remote ``python -m repro.server`` over TCP. Every
    request carries ``backend`` explicitly, so the measurement holds
    regardless of the remote server's ``--backend`` default."""
    host, _, port_text = address.partition(":")
    try:
        port = int(port_text)
    except ValueError:
        raise ReproError(
            f"--connect expects host:port, got {address!r}"
        ) from None
    if workload not in WORKLOADS:
        raise ReproError(
            f"unknown workload {workload!r}; known: {sorted(WORKLOADS)}"
        )
    mix = WORKLOADS[workload]

    scenarios: List[dict] = []
    speedups: List[dict] = []
    round_failures = 0
    for strategy in strategies:
        # Warm-up (plan cache on the server) and readiness probe in one:
        # the first client retries until the server is listening.
        warm = ServiceClient(host, port, connect_retry_window=30.0)
        for _, spec in mix:
            warm.request(spec, strategy=strategy, backend=backend)
        warm.close()

        serial_rounds: List[LoadgenResult] = []
        served_rounds: List[LoadgenResult] = []
        for _ in range(rounds):
            serial = LoadgenResult(
                scenario="serial-tcp",
                workload=workload,
                strategy=strategy,
                clients=1,
                concurrency=1,
                queue_depth=0,
            )
            with ServiceClient(host, port) as client:
                drive_load(
                    lambda spec, strat, dl: client.request(
                        spec, strategy=strat, deadline=dl, backend=backend
                    ),
                    mix,
                    strategy,
                    clients=1,
                    requests_per_client=requests_per_client,
                    deadline=deadline,
                    result=serial,
                )
            say(serial.format_row())

            served = LoadgenResult(
                scenario="served-tcp",
                workload=workload,
                strategy=strategy,
                clients=clients,
                concurrency=-1,  # the remote server's; unknown here
                queue_depth=-1,
            )
            conns = [ServiceClient(host, port) for _ in range(clients)]
            stack = list(conns)
            try:
                local = threading.local()

                def issue(spec, strat, dl, _stack=stack):
                    conn = getattr(local, "conn", None)
                    if conn is None:
                        conn = local.conn = _stack.pop()
                    return conn.request(
                        spec, strategy=strat, deadline=dl, backend=backend
                    )

                drive_load(
                    issue,
                    mix,
                    strategy,
                    clients=clients,
                    requests_per_client=requests_per_client,
                    deadline=deadline,
                    result=served,
                )
            finally:
                for conn in conns:
                    conn.close()
            say(served.format_row())
            serial_rounds.append(serial)
            served_rounds.append(served)
            round_failures += serial.failed + served.failed
        serial = max(serial_rounds, key=lambda r: r.qps)
        served = max(served_rounds, key=lambda r: r.qps)
        scenarios.extend([serial.to_dict(), served.to_dict()])
        speedups.append(
            {
                "workload": workload,
                "strategy": strategy,
                "serial_qps": serial.qps,
                "served_qps": served.qps,
                "speedup": served.qps / serial.qps if serial.qps else 0.0,
                "serial_qps_rounds": [r.qps for r in serial_rounds],
                "served_qps_rounds": [r.qps for r in served_rounds],
            }
        )

    # Scrape the server's telemetry into the report: plan-cache and
    # dataset-cache hit rates, pool utilization, span timings, shed
    # counts. Older servers without the stats op just omit the section.
    server_stats = None
    try:
        with ServiceClient(host, port) as scraper:
            server_stats = scraper.stats()
    except ReproError as exc:
        say(f"stats scrape unavailable: {exc}")

    return {
        "config": {
            "connect": address,
            "workload": workload,
            "clients": clients,
            "requests_per_client": requests_per_client,
            "deadline": deadline,
            "rounds": rounds,
            "strategies": list(strategies),
            "backend": backend,
            "transport": "tcp",
        },
        "scenarios": scenarios,
        "speedups": speedups,
        "shedding": None,
        "failures": round_failures,
        "server_stats": server_stats,
    }
