"""Closed-loop adaptation benchmark: ``python -m repro.bench --adapt-bench``.

Demonstrates the adaptive loop end to end against the failure mode it
was built for: the planner estimates predicate selectivities from a
64K-row *prefix* sample (:mod:`repro.plan.passes`), so on data
clustered by the filter column the estimates are wrong by construction
— the prefix only sees the low end of the value range. A fleet of
closed-loop clients drives ``strategy="auto"`` requests through an
in-process :class:`~repro.server.service.QueryService` backed by an
adaptive :class:`~repro.Engine` in three phases:

1. **baseline** — a warm workload at one selectivity; the loop
   explores the strategy × backend arms, measures the real survival
   fraction from the instrumented runs, re-optimizes past the drift
   threshold, and settles on a winner arm;
2. **post_shift** — the workload's selectivity shifts (a new filter
   constant, i.e. a new plan fingerprint whose prefix-sample estimate
   is wrong again); this window absorbs the fresh exploration and the
   drift-driven recompile;
3. **adapted** — the same shifted workload after the loop has
   converged again.

The report asserts the loop's contract: at least one recompile after
the shift, zero failed requests, post-adaptation throughput within
10% of the pre-shift baseline, and — the correctness bar — the
adaptive engine's answers byte-identical to a static engine's for
every strategy × backend cell, measured-statistics overrides active.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, List, Optional

import numpy as np

from ..adaptive import AdaptivePolicy
from ..datagen import microbench as mb
from ..datagen.cache import load_dataset
from ..engine import Engine
from ..engine.program import results_equal
from ..server.protocol import QueryRequest
from ..server.service import QueryService
from ..storage.database import Database
from ..storage.table import Column, Table
from ..tpch.base import STRATEGIES
from .microbench import scaled_machine

#: Selectivities (percent) before and after the mid-run shift. The
#: shift goes *down* so the shifted workload is no heavier than the
#: baseline: the recovery ratio then isolates the adaptation cost
#: (exploration + recompile) instead of mixing in extra selected rows.
BASELINE_SEL = 60
SHIFTED_SEL = 30

#: Bench policy: adapt fast — short EWMA horizon, explore every 4th
#: request, two selectivity samples arm the drift check.
BENCH_POLICY = AdaptivePolicy(
    alpha=0.5,
    explore_every=4,
    drift_threshold=0.3,
    min_observations=2,
)


def clustered_microbench(config: mb.MicrobenchConfig) -> Database:
    """The microbench database with R physically clustered on ``r_x``.

    Sorting by the filter column leaves every query's *answer*
    unchanged (uQ1 aggregates are order-insensitive) but breaks the
    planner's prefix sampling: the first 64K rows hold only the lowest
    ``r_x`` values, so a ``r_x < k`` estimate saturates toward 1.0
    while the true selectivity is ``k``%.
    """
    db = load_dataset("microbench", config)
    r = db.table("R")
    values = db.data("R")
    order = np.argsort(values["r_x"], kind="stable")
    clustered = Database()
    clustered.add_table(
        Table(
            "R",
            [
                Column(
                    col.name,
                    col.logical_type,
                    col.values[order],
                    col.dictionary,
                    col.scale,
                )
                for col in r.columns
            ],
        )
    )
    clustered.add_table(db.table("S"))
    clustered.add_foreign_key("R", "r_fk", "S", "s_pk")
    return clustered


def _drive_phase(
    service: QueryService,
    query,
    *,
    clients: int,
    requests_per_client: int,
    deadline: float,
) -> Dict[str, float]:
    """Run one closed-loop window; returns qps / ok / failed counts.

    In-process ``Query`` objects never coalesce, so every request is a
    real execution feeding the adaptive loop.
    """
    barrier = threading.Barrier(clients + 1)
    ok = [0] * clients
    failed = [0] * clients

    def client(idx: int) -> None:
        barrier.wait()
        for _ in range(requests_per_client):
            response = service.execute(
                QueryRequest(
                    query=query, strategy="auto", deadline=deadline
                ),
                timeout=deadline * 4,
            )
            if response is not None and response.ok:
                ok[idx] += 1
            else:
                failed[idx] += 1

    threads = [
        threading.Thread(target=client, args=(i,), daemon=True)
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    total_ok = sum(ok)
    return {
        "requests": clients * requests_per_client,
        "ok": total_ok,
        "failed": sum(failed),
        "wall_seconds": wall,
        "qps": total_ok / wall if wall > 0 else 0.0,
    }


def _equivalence_sweep(
    adaptive_engine: Engine, static_engine: Engine, queries
) -> List[dict]:
    """Compare the adaptive engine (overrides active) against a static
    engine for every query × strategy × backend cell."""
    cells = []
    for name, query in queries:
        for strategy in STRATEGIES:
            for backend in ("instrumented", "vectorized"):
                got = adaptive_engine.execute(
                    query, strategy, backend=backend
                )
                want = static_engine.execute(
                    query, strategy, backend=backend
                )
                cells.append(
                    {
                        "query": name,
                        "strategy": strategy,
                        "backend": backend,
                        "identical": results_equal(got, want),
                    }
                )
    return cells


def run_adapt_bench(
    *,
    rows: int = 400_000,
    seed: Optional[int] = None,
    clients: int = 4,
    requests_per_client: int = 24,
    concurrency: int = 2,
    deadline: float = 10.0,
    out_path: str = "BENCH_adaptive.json",
) -> dict:
    """Run the three-phase closed loop and write the JSON report.

    ``rows`` must comfortably exceed the planner's 64K-row prefix
    sample or clustering cannot bias the estimates and no drift
    exists to recover from.
    """
    config = mb.MicrobenchConfig(
        num_rows=rows,
        s_rows=500,
        c_cardinality=64,
        seed=seed if seed is not None else 7,
    )
    db = clustered_microbench(config)
    machine = scaled_machine(config)

    engine = Engine(
        db, machine=machine, workers=2, adaptive=BENCH_POLICY
    )
    static = Engine(db, machine=machine, workers=2)
    baseline_query = mb.q1(BASELINE_SEL)
    shifted_query = mb.q1(SHIFTED_SEL)

    print(
        f"adapt-bench: {rows:,} clustered rows, {clients} clients x "
        f"{requests_per_client} requests/phase-window, policy "
        f"explore_every={BENCH_POLICY.explore_every} "
        f"drift_threshold={BENCH_POLICY.drift_threshold}"
    )
    phases = []
    with engine, static:
        service = QueryService(
            engine, concurrency=concurrency, coalesce=False
        )
        try:
            # Phase 1 runs two windows: the first converges (explore,
            # measure, re-optimize), the second is the settled
            # *baseline* the recovery ratio is judged against.
            drive = dict(
                clients=clients,
                requests_per_client=requests_per_client,
                deadline=deadline,
            )
            before = engine.adaptive.recompiles
            _drive_phase(service, baseline_query, **drive)
            window = _drive_phase(service, baseline_query, **drive)
            window.update(
                name="baseline",
                selectivity=BASELINE_SEL,
                recompiles_during=engine.adaptive.recompiles - before,
            )
            phases.append(window)

            # Phase 2: the workload shifts. This window absorbs the new
            # fingerprint's exploration and the drift-driven recompile.
            at_shift = engine.adaptive.recompiles
            window = _drive_phase(service, shifted_query, **drive)
            window.update(
                name="post_shift",
                selectivity=SHIFTED_SEL,
                recompiles_during=(
                    engine.adaptive.recompiles - at_shift
                ),
            )
            phases.append(window)

            # Phase 3: same shifted workload, loop converged.
            before = engine.adaptive.recompiles
            window = _drive_phase(service, shifted_query, **drive)
            window.update(
                name="adapted",
                selectivity=SHIFTED_SEL,
                recompiles_during=engine.adaptive.recompiles - before,
            )
            phases.append(window)
        finally:
            service.drain()

        recompiles_after_shift = (
            engine.adaptive.recompiles - at_shift
        )
        equivalence = _equivalence_sweep(
            engine,
            static,
            [("q1_baseline", baseline_query), ("q1_shifted", shifted_query)],
        )
        snapshot = engine.adaptive.snapshot()
        winners = {
            name: engine.adaptive.store.best_arm(fingerprint)
            for name, fingerprint in (
                (
                    "q1_baseline",
                    _fingerprint(baseline_query),
                ),
                ("q1_shifted", _fingerprint(shifted_query)),
            )
        }

    baseline_qps = phases[0]["qps"]
    adapted_qps = phases[2]["qps"]
    report = {
        "bench": "adaptive",
        "config": {
            "rows": rows,
            "seed": config.seed,
            "clients": clients,
            "requests_per_client": requests_per_client,
            "concurrency": concurrency,
            "baseline_selectivity": BASELINE_SEL,
            "shifted_selectivity": SHIFTED_SEL,
        },
        "policy": {
            "alpha": BENCH_POLICY.alpha,
            "explore_every": BENCH_POLICY.explore_every,
            "drift_threshold": BENCH_POLICY.drift_threshold,
            "min_observations": BENCH_POLICY.min_observations,
        },
        "phases": phases,
        "recompiles_after_shift": recompiles_after_shift,
        "failed_requests": sum(p["failed"] for p in phases),
        "throughput_recovered": (
            adapted_qps / baseline_qps if baseline_qps > 0 else 0.0
        ),
        "winners": {
            name: (f"{arm[0]}/{arm[1]}" if arm else None)
            for name, arm in winners.items()
        },
        "equivalence": {
            "cells": len(equivalence),
            "identical": sum(
                1 for cell in equivalence if cell["identical"]
            ),
            "mismatches": [
                cell for cell in equivalence if not cell["identical"]
            ],
        },
        "plan_cache": engine.plan_cache.stats.snapshot(),
        "adaptive": snapshot,
    }
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    for phase in phases:
        print(
            f"  {phase['name']:<10s} sel={phase['selectivity']:>2d}%  "
            f"{phase['qps']:8.1f} qps  ok={phase['ok']} "
            f"failed={phase['failed']} "
            f"recompiles={phase['recompiles_during']}"
        )
    print(
        f"  recompiles after shift: {recompiles_after_shift}; "
        f"throughput recovered: {report['throughput_recovered']:.2f}x "
        f"of baseline; equivalence "
        f"{report['equivalence']['identical']}/"
        f"{report['equivalence']['cells']} cells identical"
    )
    print(f"  report -> {out_path}")
    return report


def _fingerprint(query) -> str:
    from ..engine.plan_cache import query_fingerprint

    return query_fingerprint(query)


__all__ = [
    "BASELINE_SEL",
    "BENCH_POLICY",
    "SHIFTED_SEL",
    "clustered_microbench",
    "run_adapt_bench",
]
