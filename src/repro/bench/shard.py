"""Closed-loop shard-executor benchmark (``--shard-bench``).

Three phases, written machine-readable to ``BENCH_shard.json``:

1. **Equivalence sweep** — every TPC-H query × strategy cell (all 32),
   on both execution backends, runs once serially and once sharded; the
   answers must match *byte-for-byte* (``repr`` equality, which for
   NumPy arrays includes every float bit printed, backed by the
   simulated-cycle totals agreeing too). This is the correctness gate
   the multi-process executor lives under: scatter/gather must be
   invisible in the answer.

2. **Throughput scenarios** — a closed-loop client fleet drives the
   same engine three ways over an identical request stream: ``serial``
   (one worker, no shards), ``threads`` (the thread-pool morsel
   executor at N workers — today's serving ceiling), and ``shards``
   (N worker processes over the memory-mapped columns). Reported per
   scenario: achieved qps and wall seconds. Headline:
   ``per_core_efficiency`` = (shard qps / serial qps) / usable cores,
   and ``speedup_vs_threads`` = shard qps / thread qps. Both are
   *host-honest*: ``usable cores`` is ``min(shards, os.cpu_count())``
   and the host's core count is recorded in the report — on a
   single-core container the shard fleet time-slices one core and the
   speedup columns say so; the CI gate asserts on its own multi-core
   run, never on committed numbers from a smaller machine.

3. **Crash drill** — mid-stream, the bench hard-kills a shard worker
   (SIGKILL, no warning) while queries are in flight. The contract:
   zero failed requests (the dead worker's morsel retries on a fresh
   process), at least one recorded restart, and the post-crash answers
   still byte-identical.
"""

from __future__ import annotations

import json
import os
import platform
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..datagen import tpch as tpchgen
from ..datagen.cache import load_dataset
from ..engine import Engine
from ..engine.machine import PAPER_MACHINE
from ..tpch import logical_plan
from ..tpch.base import STRATEGIES, query_names

#: The serving workload of the throughput phase: the two biggest
#: lineitem scans — the queries the serving bench also hammers.
WORKLOAD = ("Q1", "Q6")


def _build_engine(
    db, machine, *, workers: int = 1, shards: Optional[int] = None
) -> Engine:
    # min_parallel_rows=1: the bench runs at reduced scale factors, and
    # the question under test is executor scaling, not the fan-out
    # floor heuristic (which would park small scans on one core).
    return Engine(
        db,
        machine=machine,
        workers=workers,
        shards=shards,
        min_parallel_rows=1,
    )


def run_equivalence_sweep(
    db, machine, shards: int
) -> Dict[str, Any]:
    """Sharded vs serial byte-identity over every query × strategy
    cell, both backends. The gate is on the *answers* (``repr``
    equality — every float bit); simulated-cycle parity against the
    thread path at the same worker count is recorded alongside as a
    diagnostic (the instrumented cost model has a known, pre-existing
    str-hash-order sensitivity on string-keyed joins, so cycle parity
    across processes is informative, not contractual)."""
    serial = _build_engine(db, machine)
    threads = _build_engine(db, machine, workers=shards)
    sharded = _build_engine(db, machine, shards=shards)
    sharded.start_shards()
    cells = 0
    identical = 0
    sharded_runs = 0
    cycles_equal_runs = 0
    mismatches: List[str] = []
    try:
        for name in query_names():
            plan = logical_plan(name)
            for strategy in STRATEGIES:
                cells += 1
                cell_ok = True
                for backend in ("vectorized", "instrumented"):
                    a = serial.execute(plan, strategy, backend=backend)
                    t = threads.execute(plan, strategy, backend=backend)
                    b = sharded.execute(plan, strategy, backend=backend)
                    if b.report.metrics.sharded:
                        sharded_runs += 1
                    if abs(
                        t.report.total_cycles - b.report.total_cycles
                    ) < 1e-6:
                        cycles_equal_runs += 1
                    if repr(a.value) != repr(b.value) or (
                        repr(t.value) != repr(b.value)
                    ):
                        cell_ok = False
                        mismatches.append(
                            f"{name}/{strategy}/{backend}"
                        )
                if cell_ok:
                    identical += 1
    finally:
        sharded.shutdown()
        threads.shutdown()
        serial.shutdown()
    return {
        "cells": cells,
        "identical": identical,
        "sharded_runs": sharded_runs,
        "cycles_equal_runs": cycles_equal_runs,
        "mismatches": mismatches,
    }


def _drive(
    engine: Engine,
    plans,
    *,
    clients: int,
    requests_per_client: int,
) -> Dict[str, Any]:
    """Closed-loop fleet: each client thread issues its request stream
    back-to-back; returns qps over the whole fleet plus failures."""
    failures: List[str] = []
    lock = threading.Lock()

    def client_loop(offset: int) -> None:
        for i in range(requests_per_client):
            plan = plans[(offset + i) % len(plans)]
            try:
                engine.execute(plan, "swole")
            except Exception as exc:  # a failed request is the finding
                with lock:
                    failures.append(f"{type(exc).__name__}: {exc}")

    threads = [
        threading.Thread(target=client_loop, args=(i,), daemon=True)
        for i in range(clients)
    ]
    started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - started
    completed = clients * requests_per_client - len(failures)
    return {
        "completed": completed,
        "failures": failures,
        "wall_seconds": elapsed,
        "qps": completed / elapsed if elapsed > 0 else 0.0,
    }


def run_crash_drill(
    db, machine, shards: int, *, requests: int = 12
) -> Dict[str, Any]:
    """Kill a shard worker mid-stream; every request must still answer
    correctly (retried morsel on a fresh worker, zero failures)."""
    engine = _build_engine(db, machine, shards=shards)
    group = engine.start_shards()
    plans = [logical_plan(name) for name in WORKLOAD]
    failures: List[str] = []
    expected = [
        repr(engine.execute(plan, "swole").value) for plan in plans
    ]
    killed = threading.Event()

    def killer() -> None:
        time.sleep(0.01)  # let a request get morsels in flight
        if group.kill_worker(0):
            killed.set()

    thread = threading.Thread(target=killer, daemon=True)
    thread.start()
    wrong = 0
    for i in range(requests):
        plan = plans[i % len(plans)]
        try:
            result = engine.execute(plan, "swole")
            if repr(result.value) != expected[i % len(plans)]:
                wrong += 1
        except Exception as exc:
            failures.append(f"{type(exc).__name__}: {exc}")
    thread.join()
    snapshot = group.snapshot()
    engine.shutdown()
    return {
        "induced": killed.is_set(),
        "requests": requests,
        "failures": failures,
        "wrong_answers": wrong,
        "restarts": snapshot["restarts"],
        "retries": snapshot["retries"],
        "recovered": (
            killed.is_set()
            and not failures
            and wrong == 0
            and snapshot["restarts"] >= 1
        ),
    }


def run_shard_bench(
    *,
    sf: float = 0.05,
    seed: Optional[int] = None,
    shards: int = 4,
    clients: int = 4,
    requests_per_client: int = 10,
    out_path: str = "BENCH_shard.json",
) -> Dict[str, Any]:
    config = tpchgen.TpchConfig(
        scale_factor=sf, seed=seed if seed is not None else 42
    )
    machine = PAPER_MACHINE.scaled(config.machine_scale)
    db = load_dataset("tpch", config)
    host_cpus = os.cpu_count() or 1
    usable_cores = max(1, min(shards, host_cpus))

    print(f"== equivalence sweep (shards={shards}, sf={sf}) ==")
    equivalence = run_equivalence_sweep(db, machine, shards)
    print(
        f"  {equivalence['identical']}/{equivalence['cells']} cells "
        f"byte-identical ({equivalence['sharded_runs']} sharded runs, "
        f"{equivalence['cycles_equal_runs']} with exact simulated-cycle "
        f"parity vs the thread path)"
    )
    if equivalence["mismatches"]:
        print(f"  MISMATCHES: {equivalence['mismatches']}")

    plans = [logical_plan(name) for name in WORKLOAD]
    scenarios: Dict[str, Dict[str, Any]] = {}
    print("== throughput scenarios ==")
    for label, kwargs in (
        ("serial", {"workers": 1}),
        ("threads", {"workers": shards}),
        ("shards", {"shards": shards}),
    ):
        engine = _build_engine(db, machine, **kwargs)
        if "shards" in kwargs:
            engine.start_shards()
        # Warm the plan cache (and shard program caches) out of band.
        for plan in plans:
            engine.execute(plan, "swole")
        scenario = _drive(
            engine,
            plans,
            clients=clients,
            requests_per_client=requests_per_client,
        )
        if "shards" in kwargs:
            scenario["shard_stats"] = engine._shard_group.snapshot()
        engine.shutdown()
        scenarios[label] = scenario
        print(
            f"  {label:<8s} {scenario['qps']:8.1f} qps "
            f"({scenario['completed']} ok, "
            f"{len(scenario['failures'])} failed)"
        )

    print("== crash drill ==")
    crash = run_crash_drill(db, machine, shards)
    print(
        f"  induced={crash['induced']} recovered={crash['recovered']} "
        f"restarts={crash['restarts']} failures={len(crash['failures'])}"
    )

    serial_qps = scenarios["serial"]["qps"]
    shard_qps = scenarios["shards"]["qps"]
    thread_qps = scenarios["threads"]["qps"]
    failed = sum(
        len(s["failures"]) for s in scenarios.values()
    ) + len(crash["failures"])
    headline = {
        "speedup_vs_serial": shard_qps / serial_qps if serial_qps else 0.0,
        "speedup_vs_threads": (
            shard_qps / thread_qps if thread_qps else 0.0
        ),
        "per_core_efficiency": (
            (shard_qps / serial_qps) / usable_cores if serial_qps else 0.0
        ),
        "failed_requests": failed,
        "crash_recovered": crash["recovered"],
        "equivalence_ok": (
            equivalence["identical"] == equivalence["cells"]
            and not equivalence["mismatches"]
        ),
    }
    print(
        f"== headline: {headline['speedup_vs_serial']:.2f}x vs serial, "
        f"{headline['speedup_vs_threads']:.2f}x vs threads, "
        f"per-core efficiency {headline['per_core_efficiency']:.2f} "
        f"over {usable_cores} usable core(s) =="
    )

    report = {
        "bench": "shard",
        "unix_time": time.time(),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpus": host_cpus,
        },
        "config": {
            "sf": sf,
            "seed": config.seed,
            "shards": shards,
            "usable_cores": usable_cores,
            "clients": clients,
            "requests_per_client": requests_per_client,
            "workload": list(WORKLOAD),
        },
        "equivalence": equivalence,
        "scenarios": scenarios,
        "crash_drill": crash,
        "headline": headline,
    }
    if out_path:
        Path(out_path).write_text(json.dumps(report, indent=1))
        print(f"wrote {out_path}")
    return report
