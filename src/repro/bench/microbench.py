"""Microbenchmark sweep harness — regenerates paper Figures 8-12.

Each ``fig*`` function runs the corresponding microbenchmark
configuration across a selectivity sweep and returns a
:class:`SweepResult` with one simulated-runtime series per strategy.
Strategies and data sizes follow the paper; data is shrunk by
``config.scale_factor`` and the machine model's caches shrink by the
same factor, preserving every structure-size : cache-size ratio.

The module is import-light on purpose: the pytest-benchmark files under
``benchmarks/`` call these functions, and each also has a ``main`` that
prints the paper-style series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..core.swole import compile_swole
from ..datagen import microbench as mb
from ..datagen.cache import load_dataset
from ..engine.facade import Engine
from ..engine.machine import PAPER_MACHINE, MachineModel
from ..plan.logical import Query
from ..storage.database import Database

#: Selectivity sweep used by every figure (the paper plots 0-100 %).
DEFAULT_SELECTIVITIES = (1, 5, 10, 15, 20, 30, 40, 50, 60, 70, 80, 90, 95, 99)

#: Strategy series shown in the paper's microbenchmark figures.
PAPER_SERIES = ("datacentric", "hybrid", "swole")


@dataclass
class SweepResult:
    """One figure panel: simulated seconds per strategy per x value."""

    title: str
    x_label: str
    x_values: List[int] = field(default_factory=list)
    series: Dict[str, List[float]] = field(default_factory=dict)
    decisions: Dict[int, str] = field(default_factory=dict)
    #: Worker count the sweep ran with (seconds are the simulated
    #: critical path when > 1).
    workers: int = 1
    #: Plan-cache counters of the sweep's engine (hits/misses/...).
    cache_stats: Dict[str, float] = field(default_factory=dict)

    def add(self, x: int, strategy: str, seconds: float) -> None:
        if x not in self.x_values:
            self.x_values.append(x)
        self.series.setdefault(strategy, []).append(seconds)

    def format_table(self) -> str:
        names = list(self.series)
        title = self.title
        if self.workers > 1:
            title += f" [{self.workers} workers]"
        header = f"{self.x_label:>6s} " + " ".join(
            f"{name:>12s}" for name in names
        )
        lines = [title, header]
        for i, x in enumerate(self.x_values):
            row = f"{x:>6d} " + " ".join(
                f"{self.series[name][i]:>12.4f}" for name in names
            )
            if x in self.decisions:
                row += f"   [{self.decisions[x]}]"
            lines.append(row)
        if self.cache_stats:
            lines.append(
                "plan cache: hits={hits} misses={misses} "
                "evictions={evictions}".format(**self.cache_stats)
            )
        return "\n".join(lines)

    def crossover(self, a: str, b: str) -> Optional[int]:
        """First x where strategy ``a`` becomes cheaper than ``b``."""
        for i, x in enumerate(self.x_values):
            if self.series[a][i] < self.series[b][i]:
                return x
        return None


def scaled_machine(config: mb.MicrobenchConfig) -> MachineModel:
    """The paper's machine with caches shrunk to match the data shrink."""
    return PAPER_MACHINE.scaled(config.scale_factor)


def run_strategies(
    query: Query,
    db: Database,
    machine: MachineModel,
    strategies: Sequence[str] = PAPER_SERIES,
    workers: int = 1,
    engine: Optional[Engine] = None,
) -> Dict[str, float]:
    """Run ``query`` under each strategy; simulated seconds by name.

    With ``workers > 1`` the reported seconds are the simulated parallel
    critical path of the morsel schedule. Pass a shared ``engine`` to
    amortise compilation through its plan cache across calls.
    """
    if engine is None:
        # Simulated-cycle figures are the instrumented backend's job.
        engine = Engine(
            db, machine=machine, workers=workers, backend="instrumented"
        )
    out: Dict[str, float] = {}
    for strategy in strategies:
        result = engine.execute(query, strategy, workers=workers)
        out[strategy] = result.metrics.parallel_seconds
    return out


def _sweep(
    title: str,
    db: Database,
    machine: MachineModel,
    query_for: Callable[[int], Query],
    selectivities: Sequence[int],
    strategies: Sequence[str],
    workers: int = 1,
    plan_cache: str = "warm",
) -> SweepResult:
    engine = Engine(
        db, machine=machine, workers=workers, backend="instrumented"
    )
    result = SweepResult(title=title, x_label="sel%", workers=workers)
    for sel in selectivities:
        if plan_cache == "cold":
            engine.invalidate()
        query = query_for(sel)
        seconds = run_strategies(
            query, db, machine, strategies, workers=workers, engine=engine
        )
        for strategy, value in seconds.items():
            result.add(sel, strategy, value)
        swole_compiled = compile_swole(query, db, machine=machine)
        result.decisions[sel] = swole_compiled.notes.get("plan", "")
    result.cache_stats = engine.cache_stats.snapshot()
    return result


def fig8(
    op: str,
    config: mb.MicrobenchConfig = mb.MicrobenchConfig(),
    selectivities: Sequence[int] = DEFAULT_SELECTIVITIES,
    db: Optional[Database] = None,
    strategies: Sequence[str] = PAPER_SERIES,
    workers: int = 1,
    plan_cache: str = "warm",
) -> SweepResult:
    """Figure 8: µQ1 value masking, ``op`` in {'mul' (8a), 'div' (8b)}."""
    if db is None:
        db = load_dataset("microbench", config)
    machine = scaled_machine(config)
    return _sweep(
        f"Fig 8 ({op}): uQ1 value masking",
        db,
        machine,
        lambda sel: mb.q1(sel, op),
        selectivities,
        strategies,
        workers=workers,
        plan_cache=plan_cache,
    )


def fig9(
    paper_cardinality: int,
    config: Optional[mb.MicrobenchConfig] = None,
    selectivities: Sequence[int] = DEFAULT_SELECTIVITIES,
    strategies: Sequence[str] = PAPER_SERIES,
    workers: int = 1,
    plan_cache: str = "warm",
) -> SweepResult:
    """Figure 9: µQ2 key masking at a group-by cardinality.

    Paper panels use 10 / 1K / 100K / 10M keys at 100M rows. Pass the
    *paper* cardinality; it is shrunk by the same factor as the data (and
    the caches), preserving the hash-table : cache size ratios that drive
    the panel-to-panel crossovers.
    """
    if config is None:
        config = mb.MicrobenchConfig()
    c_cardinality = max(int(paper_cardinality / config.scale_factor), 4)
    config = mb.MicrobenchConfig(
        num_rows=config.num_rows,
        s_rows=config.s_rows,
        c_cardinality=c_cardinality,
        seed=config.seed,
    )
    db = load_dataset("microbench", config)
    machine = scaled_machine(config)
    return _sweep(
        f"Fig 9 (|r_c|={paper_cardinality} paper-scale -> "
        f"{c_cardinality}): uQ2 key masking",
        db,
        machine,
        mb.q2,
        selectivities,
        strategies,
        workers=workers,
        plan_cache=plan_cache,
    )


def fig10(
    col: str,
    config: mb.MicrobenchConfig = mb.MicrobenchConfig(),
    selectivities: Sequence[int] = DEFAULT_SELECTIVITIES,
    db: Optional[Database] = None,
    strategies: Sequence[str] = PAPER_SERIES,
    workers: int = 1,
    plan_cache: str = "warm",
) -> SweepResult:
    """Figure 10: µQ3 access merging, ``col`` in {'r_b' (10a), 'r_x' (10b)}."""
    if db is None:
        db = load_dataset("microbench", config)
    machine = scaled_machine(config)
    return _sweep(
        f"Fig 10 (COL={col}): uQ3 access merging",
        db,
        machine,
        lambda sel: mb.q3(sel, col),
        selectivities,
        strategies,
        workers=workers,
        plan_cache=plan_cache,
    )


def fig11(
    fixed_side: str,
    fixed_sel: int,
    config: Optional[mb.MicrobenchConfig] = None,
    selectivities: Sequence[int] = DEFAULT_SELECTIVITIES,
    strategies: Sequence[str] = PAPER_SERIES,
    workers: int = 1,
    plan_cache: str = "warm",
) -> SweepResult:
    """Figure 11: µQ4 positional bitmaps. ``fixed_side`` is 'probe' or
    'build'; the other side's selectivity sweeps. |S| is the 1M panel,
    scaled."""
    if config is None:
        config = mb.MicrobenchConfig()
    # |S| = 1M at paper scale -> same shrink as R
    s_rows = max(int(mb.PAPER_S_LARGE / config.scale_factor), 64)
    config = mb.MicrobenchConfig(
        num_rows=config.num_rows,
        s_rows=s_rows,
        c_cardinality=config.c_cardinality,
        seed=config.seed,
    )
    db = load_dataset("microbench", config)
    machine = scaled_machine(config)
    if fixed_side == "probe":
        query_for = lambda sel: mb.q4(fixed_sel, sel)  # noqa: E731
        title = f"Fig 11: uQ4 bitmaps, probe sel fixed {fixed_sel}%"
    elif fixed_side == "build":
        query_for = lambda sel: mb.q4(sel, fixed_sel)  # noqa: E731
        title = f"Fig 11: uQ4 bitmaps, build sel fixed {fixed_sel}%"
    else:
        raise ValueError("fixed_side must be 'probe' or 'build'")
    return _sweep(
        title,
        db,
        machine,
        query_for,
        selectivities,
        strategies,
        workers=workers,
        plan_cache=plan_cache,
    )


def fig12(
    s_rows_paper: int,
    config: Optional[mb.MicrobenchConfig] = None,
    selectivities: Sequence[int] = DEFAULT_SELECTIVITIES,
    strategies: Sequence[str] = PAPER_SERIES,
    workers: int = 1,
    plan_cache: str = "warm",
) -> SweepResult:
    """Figure 12: µQ5 eager aggregation, |S| in {1K (12a), 1M (12b)} at
    paper scale (scaled down with the data)."""
    if config is None:
        config = mb.MicrobenchConfig()
    s_rows = max(int(s_rows_paper / config.scale_factor), 64)
    if s_rows_paper == mb.PAPER_S_SMALL:
        # the small panel's table fits caches at any scale; keep 1K keys
        s_rows = min(mb.PAPER_S_SMALL, config.num_rows)
    config = mb.MicrobenchConfig(
        num_rows=config.num_rows,
        s_rows=s_rows,
        c_cardinality=config.c_cardinality,
        seed=config.seed,
    )
    db = load_dataset("microbench", config)
    machine = scaled_machine(config)
    return _sweep(
        f"Fig 12 (|S|={s_rows_paper} paper-scale): uQ5 eager aggregation",
        db,
        machine,
        mb.q5,
        selectivities,
        strategies,
        workers=workers,
        plan_cache=plan_cache,
    )
