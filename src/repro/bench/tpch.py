"""TPC-H benchmark harness — regenerates paper Figure 6.

Runs the paper's eight queries under every strategy at a configurable
scale factor (caches scale to keep SF-10 ratios) and reports simulated
runtimes plus the speedup columns the paper discusses (hybrid over
data-centric, SWOLE over hybrid).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..datagen import tpch as tpchgen
from ..datagen.cache import load_dataset
from ..engine.facade import Engine
from ..engine.machine import PAPER_MACHINE
from ..storage.database import Database
from ..tpch import query_names

#: Strategy series of Figure 6 (interpreter plays HyPer's sanity role).
FIG6_SERIES = ("interpreter", "datacentric", "hybrid", "swole")

#: Speedups over hybrid the paper reports per query (for EXPERIMENTS.md).
PAPER_SWOLE_SPEEDUPS = {
    "Q1": 1.43,
    "Q3": 1.48,
    "Q4": 2.63,
    "Q5": 2.55,
    "Q6": 1.38,
    "Q13": 1.0,
    "Q14": 1.0,
    "Q19": 2.07,
}


@dataclass
class TpchRow:
    """One query's simulated runtimes (seconds) per strategy."""

    query: str
    seconds: Dict[str, float]

    @property
    def hybrid_speedup(self) -> float:
        """Hybrid over data-centric (paper's second comparison)."""
        return self.seconds["datacentric"] / self.seconds["hybrid"]

    @property
    def swole_speedup(self) -> float:
        """SWOLE over hybrid (the paper's headline per-query number)."""
        return self.seconds["hybrid"] / self.seconds["swole"]


@dataclass
class TpchReport:
    """The full Figure 6 table."""

    scale_factor: float
    rows: List[TpchRow] = field(default_factory=list)
    workers: int = 1
    cache_stats: Dict[str, float] = field(default_factory=dict)

    def format_table(self) -> str:
        header = (
            f"{'query':>6s} "
            + " ".join(f"{name:>12s}" for name in FIG6_SERIES)
            + f" {'hy/dc':>7s} {'sw/hy':>7s} {'paper':>7s}"
        )
        suffix = f", {self.workers} workers" if self.workers > 1 else ""
        lines = [
            f"Fig 6: TPC-H (SF {self.scale_factor}, simulated "
            f"seconds{suffix})",
            header,
        ]
        for row in self.rows:
            cells = " ".join(
                f"{row.seconds[name]:>12.4f}" for name in FIG6_SERIES
            )
            lines.append(
                f"{row.query:>6s} {cells} {row.hybrid_speedup:>7.2f} "
                f"{row.swole_speedup:>7.2f} "
                f"{PAPER_SWOLE_SPEEDUPS[row.query]:>7.2f}"
            )
        best = max(row.swole_speedup for row in self.rows)
        lines.append(f"best SWOLE speedup over hybrid: {best:.2f}x "
                     f"(paper: 2.63x)")
        return "\n".join(lines)

    def row(self, query: str) -> TpchRow:
        for row in self.rows:
            if row.query == query:
                return row
        raise KeyError(query)


def run_fig6(
    config: tpchgen.TpchConfig = tpchgen.TpchConfig(scale_factor=0.01),
    queries: Optional[Sequence[str]] = None,
    strategies: Sequence[str] = FIG6_SERIES,
    db: Optional[Database] = None,
    workers: int = 1,
    plan_cache: str = "warm",
) -> TpchReport:
    """Run the Figure 6 experiment and return the report.

    With ``workers > 1`` the single-table scans (Q1, Q6) run
    morsel-parallel and their seconds are the simulated critical path;
    ``plan_cache="cold"`` drops compiled plans between queries.
    """
    if db is None:
        db = load_dataset("tpch", config)
    machine = PAPER_MACHINE.scaled(config.machine_scale)
    # Figure 6 reports simulated seconds: instrumented backend only.
    engine = Engine(
        db, machine=machine, workers=workers, backend="instrumented"
    )
    report = TpchReport(scale_factor=config.scale_factor, workers=workers)
    for name in queries or query_names():
        if plan_cache == "cold":
            engine.invalidate()
        seconds = {
            strategy: engine.execute(name, strategy).metrics.parallel_seconds
            for strategy in strategies
        }
        report.rows.append(TpchRow(query=name, seconds=seconds))
    report.cache_stats = engine.cache_stats.snapshot()
    return report
