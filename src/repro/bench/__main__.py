"""Command-line figure regenerator: ``python -m repro.bench <figure>``.

Figures: fig2, fig6, fig8, fig9, fig10, fig11, fig12, all.
Use ``--rows`` / ``--sf`` to trade fidelity for speed, ``--workers`` to
run partitionable scans morsel-parallel (seconds become the simulated
critical path), and ``--plan-cache cold`` to force recompilation between
sweep points. ``--quick`` runs a small smoke suite: one fig8 panel plus
a parallel-scan and plan-cache demonstration.

``--throughput`` runs the closed-loop wall-clock throughput suite
instead (warm Engine, mixed Q1/Q6/microbench workloads, persistent
worker pool vs per-query thread spawning) and writes the
machine-readable report to ``BENCH_throughput.json`` (``--out``).
``--serve-bench`` runs the query-service load generator instead
(closed-loop client fleet against an admission-controlled
:class:`~repro.server.service.QueryService`; pass ``--connect
host:port`` to drive a running ``python -m repro.server``) and writes
``BENCH_serving.json``. ``--seed`` pins every dataset generator's seed
so either report reproduces byte-for-byte. Generated datasets are
cached under ``$REPRO_CACHE_DIR`` (default ``~/.cache/repro/datasets``)
by every mode, so reruns skip datagen.
"""

from __future__ import annotations

import argparse

from ..datagen import microbench as mb
from ..datagen import tpch as tpchgen
from ..datagen.cache import load_dataset
from . import microbench as micro
from . import tpch as tpchbench


def _print(block: str) -> None:
    print(block)
    print()


def run_figure(
    name: str,
    rows: int,
    sf: float,
    workers: int = 1,
    plan_cache: str = "warm",
) -> None:
    config = mb.MicrobenchConfig(num_rows=rows)
    par = dict(workers=workers, plan_cache=plan_cache)
    if name == "fig2":
        from ..core.planner import technique_matrix

        print("Fig 2: SWOLE technique summary")
        for technique, info in technique_matrix().items():
            print(
                f"  {technique:<20s} §{info['section']:<6s} "
                f"{info['operators']:<40s} {info['heuristics']}"
            )
        print()
        return
    if name == "fig6":
        _print(
            tpchbench.run_fig6(
                tpchgen.TpchConfig(scale_factor=sf), **par
            ).format_table()
        )
        return
    if name == "fig8":
        for op in ("mul", "div"):
            _print(micro.fig8(op, config=config, **par).format_table())
        return
    if name == "fig9":
        for cardinality in (10, 1_000, 100_000, 10_000_000):
            _print(
                micro.fig9(cardinality, config=config, **par).format_table()
            )
        return
    if name == "fig10":
        for col in ("r_b", "r_x"):
            _print(micro.fig10(col, config=config, **par).format_table())
        return
    if name == "fig11":
        for side, fixed in (
            ("probe", 10),
            ("probe", 90),
            ("build", 10),
            ("build", 90),
        ):
            _print(
                micro.fig11(side, fixed, config=config, **par).format_table()
            )
        return
    if name == "fig12":
        for s_rows in (mb.PAPER_S_SMALL, mb.PAPER_S_LARGE):
            _print(micro.fig12(s_rows, config=config, **par).format_table())
        return
    raise SystemExit(f"unknown figure {name!r}")


def run_quick(workers: int, backend: str = "vectorized") -> None:
    """CI smoke run: tiny fig8 panel + executor and plan-cache demos."""
    from ..engine import Engine

    config = mb.MicrobenchConfig(num_rows=50_000, s_rows=500, c_cardinality=32)
    _print(
        micro.fig8(
            "mul", config=config, selectivities=(10, 50, 90)
        ).format_table()
    )

    db = load_dataset("microbench", config)
    machine = micro.scaled_machine(config)
    engine = Engine(db, machine=machine, workers=workers, backend=backend)
    query = mb.q1(50)

    serial = engine.execute(query, "swole", workers=1)
    parallel = engine.execute(query, "swole", workers=workers)
    assert serial.value == parallel.value, "parallel result diverged"
    print(f"morsel executor ({workers} workers, uQ1 scan):")
    print(parallel.metrics.describe())
    print()

    warm = engine.execute(query, "swole", workers=workers)
    stats = engine.cache_stats
    print(
        f"plan cache: first run {serial.metrics.plan_cache}, "
        f"warm run {warm.metrics.plan_cache} "
        f"(hits={stats.hits} misses={stats.misses} -> "
        f"{stats.misses} compilation(s) for "
        f"{stats.hits + stats.misses} executions)"
    )
    speedup = parallel.metrics.speedup
    print(f"simulated parallel speedup: {speedup:.2f}x at {workers} workers")


def main() -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench", description=__doc__
    )
    parser.add_argument(
        "figures",
        nargs="*",
        default=[],
        help="fig2 fig6 fig8 fig9 fig10 fig11 fig12, or 'all'",
    )
    parser.add_argument(
        "--rows",
        type=int,
        default=None,
        help="microbench R rows (paper: 100M; caches scale to match; "
        "default 1M for figures, 200K for --throughput)",
    )
    parser.add_argument(
        "--sf",
        type=float,
        default=0.01,
        help="TPC-H scale factor (paper: 10; caches scale to match)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker threads for partitionable scans (simulated critical "
        "path is reported when > 1)",
    )
    parser.add_argument(
        "--plan-cache",
        choices=("warm", "cold"),
        default="warm",
        help="'warm' reuses compiled plans across a sweep; 'cold' "
        "recompiles at every point",
    )
    parser.add_argument(
        "--backend",
        choices=("instrumented", "vectorized"),
        default="vectorized",
        help="execution backend for --quick/--throughput/--serve-bench "
        "(figures always use the instrumented backend: their y-axis is "
        "the paper's simulated seconds)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small smoke suite (CI): tiny fig8 + executor/cache demos; "
        "with --throughput, shrinks the throughput suite instead",
    )
    parser.add_argument(
        "--throughput",
        action="store_true",
        help="closed-loop wall-clock throughput suite (writes --out)",
    )
    parser.add_argument(
        "--serve-bench",
        action="store_true",
        help="query-service load generator: qps, tail latency, shed and "
        "deadline-miss rates (writes --out, default BENCH_serving.json)",
    )
    parser.add_argument(
        "--adapt-bench",
        action="store_true",
        help="closed-loop adaptation bench: clustered data defeats the "
        "prefix-sample estimates, a mid-run selectivity shift must "
        "trigger a drift-driven recompile and recover throughput "
        "(writes --out, default BENCH_adaptive.json)",
    )
    parser.add_argument(
        "--shard-bench",
        action="store_true",
        help="multi-process shard executor bench: byte-equivalence "
        "sweep vs serial, serial/threads/shards throughput scenarios, "
        "and an induced worker-crash recovery drill (writes --out, "
        "default BENCH_shard.json)",
    )
    parser.add_argument(
        "--compression-bench",
        action="store_true",
        help="compression access-path bench: encoded vs decoded scan "
        "cycles across code widths and selectivities, plus the full "
        "TPC-H encoded/decoded equivalence and cycle-ratio sweep "
        "(writes --out, default BENCH_compression.json)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=4,
        help="worker processes for --shard-bench",
    )
    parser.add_argument(
        "--iters",
        type=int,
        default=30,
        help="measured iterations per throughput workload",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="dataset generator seed for --throughput/--serve-bench "
        "(default: each generator's own; pin for byte-reproducible runs)",
    )
    parser.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="with --serve-bench: drive a running `python -m "
        "repro.server` over TCP instead of an in-process service",
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=8,
        help="closed-loop load-generator client threads (--serve-bench)",
    )
    parser.add_argument(
        "--concurrency",
        type=int,
        default=4,
        help="service threads of the in-process served scenarios",
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=64,
        help="admission-queue bound of the in-process served scenarios",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=2.0,
        help="per-request deadline in seconds (--serve-bench)",
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=40,
        help="requests per load-generator client (--serve-bench)",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=None,
        help="interleaved serial/served rounds per scenario; the report "
        "keeps the best of each (--serve-bench; default 3, 1 with "
        "--quick)",
    )
    parser.add_argument(
        "--serve-workload",
        default="tpch-q1q6",
        choices=("tpch-q1q6", "micro-q1q2"),
        help="workload mix for --serve-bench --connect (must match the "
        "remote server's dataset)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="output path of the throughput/serving report (defaults to "
        "BENCH_throughput.json / BENCH_serving.json)",
    )
    args = parser.parse_args()
    if args.workers < 1:
        parser.error("--workers must be at least 1")
    if args.iters < 1:
        parser.error("--iters must be at least 1")
    if args.rounds is not None and args.rounds < 1:
        parser.error("--rounds must be at least 1")
    if sum((
        args.throughput, args.serve_bench, args.adapt_bench,
        args.shard_bench, args.compression_bench,
    )) > 1:
        parser.error(
            "pick one of --throughput / --serve-bench / --adapt-bench "
            "/ --shard-bench / --compression-bench"
        )
    if args.compression_bench:
        from .compression import run_compression_bench

        run_compression_bench(
            sf=(
                (0.002 if args.sf == 0.01 else args.sf)
                if args.quick
                else args.sf
            ),
            seed=args.seed,
            out_path=args.out or "BENCH_compression.json",
        )
        return
    if args.shard_bench:
        from .shard import run_shard_bench

        if args.shards < 1:
            parser.error("--shards must be at least 1")
        if args.quick:
            run_shard_bench(
                sf=0.002 if args.sf == 0.01 else args.sf,
                seed=args.seed,
                shards=args.shards,
                clients=min(args.clients, 4),
                requests_per_client=min(args.requests, 8),
                out_path=args.out or "BENCH_shard.json",
            )
        else:
            run_shard_bench(
                # Heavier default than the other suites: per-query
                # compute must dominate the per-morsel pipe round-trip
                # for core-scaling numbers to measure the executor
                # rather than the IPC floor.
                sf=0.05 if args.sf == 0.01 else args.sf,
                seed=args.seed,
                shards=args.shards,
                clients=min(args.clients, 8),
                requests_per_client=args.requests,
                out_path=args.out or "BENCH_shard.json",
            )
        return
    if args.adapt_bench:
        from .adaptive import run_adapt_bench

        if args.quick:
            run_adapt_bench(
                rows=args.rows if args.rows is not None else 150_000,
                seed=args.seed,
                clients=min(args.clients, 4),
                requests_per_client=min(args.requests, 24),
                concurrency=min(args.concurrency, 2),
                out_path=args.out or "BENCH_adaptive.json",
            )
        else:
            run_adapt_bench(
                rows=args.rows if args.rows is not None else 400_000,
                seed=args.seed,
                clients=min(args.clients, 8),
                requests_per_client=args.requests,
                concurrency=args.concurrency,
                out_path=args.out or "BENCH_adaptive.json",
            )
        return
    if args.serve_bench:
        from .serving import run_serving_bench

        if args.quick:
            # CI smoke: small datasets, a short fleet, same scenarios.
            run_serving_bench(
                rows=args.rows if args.rows is not None else 50_000,
                sf=0.002 if args.sf == 0.01 else args.sf,
                seed=args.seed,
                concurrency=min(args.concurrency, 2),
                queue_depth=args.queue_depth,
                clients=min(args.clients, 4),
                requests_per_client=min(args.requests, 10),
                deadline=args.deadline,
                rounds=args.rounds if args.rounds is not None else 1,
                backend=args.backend,
                connect=args.connect,
                connect_workload=args.serve_workload,
                out_path=args.out or "BENCH_serving.json",
            )
        else:
            run_serving_bench(
                rows=args.rows if args.rows is not None else 200_000,
                sf=args.sf,
                seed=args.seed,
                concurrency=args.concurrency,
                queue_depth=args.queue_depth,
                clients=args.clients,
                requests_per_client=args.requests,
                deadline=args.deadline,
                rounds=args.rounds if args.rounds is not None else 3,
                backend=args.backend,
                connect=args.connect,
                connect_workload=args.serve_workload,
                out_path=args.out or "BENCH_serving.json",
            )
        return
    if args.throughput:
        from .throughput import run_throughput

        out = args.out or "BENCH_throughput.json"
        if args.quick:
            run_throughput(
                rows=50_000,
                sf=0.002,
                workers=max(args.workers, 4),
                iterations=min(args.iters, 10),
                baseline_iterations=40,
                seed=args.seed,
                backend=args.backend,
                out_path=out,
            )
        else:
            run_throughput(
                rows=args.rows if args.rows is not None else 200_000,
                sf=args.sf,
                workers=max(args.workers, 4),
                iterations=args.iters,
                seed=args.seed,
                backend=args.backend,
                out_path=out,
            )
        return
    if args.quick:
        run_quick(max(args.workers, 4), backend=args.backend)
        return
    figures = args.figures
    if not figures:
        parser.error("name at least one figure, or pass --quick")
    if figures == ["all"]:
        figures = ["fig2", "fig6", "fig8", "fig9", "fig10", "fig11", "fig12"]
    rows = args.rows if args.rows is not None else 1_000_000
    for figure in figures:
        run_figure(figure, rows, args.sf, args.workers, args.plan_cache)


if __name__ == "__main__":
    main()
