"""Command-line figure regenerator: ``python -m repro.bench <figure>``.

Figures: fig2, fig6, fig8, fig9, fig10, fig11, fig12, all.
Use ``--rows`` / ``--sf`` to trade fidelity for speed, ``--workers`` to
run partitionable scans morsel-parallel (seconds become the simulated
critical path), and ``--plan-cache cold`` to force recompilation between
sweep points. ``--quick`` runs a small smoke suite: one fig8 panel plus
a parallel-scan and plan-cache demonstration.

``--throughput`` runs the closed-loop wall-clock throughput suite
instead (warm Engine, mixed Q1/Q6/microbench workloads, persistent
worker pool vs per-query thread spawning) and writes the
machine-readable report to ``BENCH_throughput.json`` (``--out``).
Generated datasets are cached under ``$REPRO_CACHE_DIR`` (default
``~/.cache/repro/datasets``) by every mode, so reruns skip datagen.
"""

from __future__ import annotations

import argparse

from ..datagen import microbench as mb
from ..datagen import tpch as tpchgen
from ..datagen.cache import load_dataset
from . import microbench as micro
from . import tpch as tpchbench


def _print(block: str) -> None:
    print(block)
    print()


def run_figure(
    name: str,
    rows: int,
    sf: float,
    workers: int = 1,
    plan_cache: str = "warm",
) -> None:
    config = mb.MicrobenchConfig(num_rows=rows)
    par = dict(workers=workers, plan_cache=plan_cache)
    if name == "fig2":
        from ..core.planner import technique_matrix

        print("Fig 2: SWOLE technique summary")
        for technique, info in technique_matrix().items():
            print(
                f"  {technique:<20s} §{info['section']:<6s} "
                f"{info['operators']:<40s} {info['heuristics']}"
            )
        print()
        return
    if name == "fig6":
        _print(
            tpchbench.run_fig6(
                tpchgen.TpchConfig(scale_factor=sf), **par
            ).format_table()
        )
        return
    if name == "fig8":
        for op in ("mul", "div"):
            _print(micro.fig8(op, config=config, **par).format_table())
        return
    if name == "fig9":
        for cardinality in (10, 1_000, 100_000, 10_000_000):
            _print(
                micro.fig9(cardinality, config=config, **par).format_table()
            )
        return
    if name == "fig10":
        for col in ("r_b", "r_x"):
            _print(micro.fig10(col, config=config, **par).format_table())
        return
    if name == "fig11":
        for side, fixed in (
            ("probe", 10),
            ("probe", 90),
            ("build", 10),
            ("build", 90),
        ):
            _print(
                micro.fig11(side, fixed, config=config, **par).format_table()
            )
        return
    if name == "fig12":
        for s_rows in (mb.PAPER_S_SMALL, mb.PAPER_S_LARGE):
            _print(micro.fig12(s_rows, config=config, **par).format_table())
        return
    raise SystemExit(f"unknown figure {name!r}")


def run_quick(workers: int) -> None:
    """CI smoke run: tiny fig8 panel + executor and plan-cache demos."""
    from ..engine import Engine

    config = mb.MicrobenchConfig(num_rows=50_000, s_rows=500, c_cardinality=32)
    _print(
        micro.fig8(
            "mul", config=config, selectivities=(10, 50, 90)
        ).format_table()
    )

    db = load_dataset("microbench", config)
    machine = micro.scaled_machine(config)
    engine = Engine(db, machine=machine, workers=workers)
    query = mb.q1(50)

    serial = engine.execute(query, "swole", workers=1)
    parallel = engine.execute(query, "swole", workers=workers)
    assert serial.value == parallel.value, "parallel result diverged"
    print(f"morsel executor ({workers} workers, uQ1 scan):")
    print(parallel.metrics.describe())
    print()

    warm = engine.execute(query, "swole", workers=workers)
    stats = engine.cache_stats
    print(
        f"plan cache: first run {serial.metrics.plan_cache}, "
        f"warm run {warm.metrics.plan_cache} "
        f"(hits={stats.hits} misses={stats.misses} -> "
        f"{stats.misses} compilation(s) for "
        f"{stats.hits + stats.misses} executions)"
    )
    speedup = parallel.metrics.speedup
    print(f"simulated parallel speedup: {speedup:.2f}x at {workers} workers")


def main() -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench", description=__doc__
    )
    parser.add_argument(
        "figures",
        nargs="*",
        default=[],
        help="fig2 fig6 fig8 fig9 fig10 fig11 fig12, or 'all'",
    )
    parser.add_argument(
        "--rows",
        type=int,
        default=None,
        help="microbench R rows (paper: 100M; caches scale to match; "
        "default 1M for figures, 200K for --throughput)",
    )
    parser.add_argument(
        "--sf",
        type=float,
        default=0.01,
        help="TPC-H scale factor (paper: 10; caches scale to match)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker threads for partitionable scans (simulated critical "
        "path is reported when > 1)",
    )
    parser.add_argument(
        "--plan-cache",
        choices=("warm", "cold"),
        default="warm",
        help="'warm' reuses compiled plans across a sweep; 'cold' "
        "recompiles at every point",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small smoke suite (CI): tiny fig8 + executor/cache demos; "
        "with --throughput, shrinks the throughput suite instead",
    )
    parser.add_argument(
        "--throughput",
        action="store_true",
        help="closed-loop wall-clock throughput suite (writes --out)",
    )
    parser.add_argument(
        "--iters",
        type=int,
        default=30,
        help="measured iterations per throughput workload",
    )
    parser.add_argument(
        "--out",
        default="BENCH_throughput.json",
        help="output path of the throughput report",
    )
    args = parser.parse_args()
    if args.workers < 1:
        parser.error("--workers must be at least 1")
    if args.iters < 1:
        parser.error("--iters must be at least 1")
    if args.throughput:
        from .throughput import run_throughput

        if args.quick:
            run_throughput(
                rows=50_000,
                sf=0.002,
                workers=max(args.workers, 4),
                iterations=min(args.iters, 10),
                baseline_iterations=40,
                out_path=args.out,
            )
        else:
            run_throughput(
                rows=args.rows if args.rows is not None else 200_000,
                sf=args.sf,
                workers=max(args.workers, 4),
                iterations=args.iters,
                out_path=args.out,
            )
        return
    if args.quick:
        run_quick(max(args.workers, 4))
        return
    figures = args.figures
    if not figures:
        parser.error("name at least one figure, or pass --quick")
    if figures == ["all"]:
        figures = ["fig2", "fig6", "fig8", "fig9", "fig10", "fig11", "fig12"]
    rows = args.rows if args.rows is not None else 1_000_000
    for figure in figures:
        run_figure(figure, rows, args.sf, args.workers, args.plan_cache)


if __name__ == "__main__":
    main()
