"""Command-line figure regenerator: ``python -m repro.bench <figure>``.

Figures: fig2, fig6, fig8, fig9, fig10, fig11, fig12, all.
Use ``--rows`` / ``--sf`` to trade fidelity for speed.
"""

from __future__ import annotations

import argparse

from ..datagen import microbench as mb
from ..datagen import tpch as tpchgen
from . import microbench as micro
from . import tpch as tpchbench


def _print(block: str) -> None:
    print(block)
    print()


def run_figure(name: str, rows: int, sf: float) -> None:
    config = mb.MicrobenchConfig(num_rows=rows)
    if name == "fig2":
        from ..core.planner import technique_matrix

        print("Fig 2: SWOLE technique summary")
        for technique, info in technique_matrix().items():
            print(
                f"  {technique:<20s} §{info['section']:<6s} "
                f"{info['operators']:<40s} {info['heuristics']}"
            )
        print()
        return
    if name == "fig6":
        _print(
            tpchbench.run_fig6(
                tpchgen.TpchConfig(scale_factor=sf)
            ).format_table()
        )
        return
    if name == "fig8":
        for op in ("mul", "div"):
            _print(micro.fig8(op, config=config).format_table())
        return
    if name == "fig9":
        for cardinality in (10, 1_000, 100_000, 10_000_000):
            _print(micro.fig9(cardinality, config=config).format_table())
        return
    if name == "fig10":
        for col in ("r_b", "r_x"):
            _print(micro.fig10(col, config=config).format_table())
        return
    if name == "fig11":
        for side, fixed in (
            ("probe", 10),
            ("probe", 90),
            ("build", 10),
            ("build", 90),
        ):
            _print(micro.fig11(side, fixed, config=config).format_table())
        return
    if name == "fig12":
        for s_rows in (mb.PAPER_S_SMALL, mb.PAPER_S_LARGE):
            _print(micro.fig12(s_rows, config=config).format_table())
        return
    raise SystemExit(f"unknown figure {name!r}")


def main() -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench", description=__doc__
    )
    parser.add_argument(
        "figures",
        nargs="+",
        help="fig2 fig6 fig8 fig9 fig10 fig11 fig12, or 'all'",
    )
    parser.add_argument(
        "--rows",
        type=int,
        default=1_000_000,
        help="microbench R rows (paper: 100M; caches scale to match)",
    )
    parser.add_argument(
        "--sf",
        type=float,
        default=0.01,
        help="TPC-H scale factor (paper: 10; caches scale to match)",
    )
    args = parser.parse_args()
    figures = args.figures
    if figures == ["all"]:
        figures = ["fig2", "fig6", "fig8", "fig9", "fig10", "fig11", "fig12"]
    for figure in figures:
        run_figure(figure, args.rows, args.sf)


if __name__ == "__main__":
    main()
