"""Workload generators: microbenchmark (Fig. 7) and TPC-H."""

from .microbench import MicrobenchConfig, generate, q1, q2, q3, q4, q5

__all__ = ["MicrobenchConfig", "generate", "q1", "q2", "q3", "q4", "q5"]
