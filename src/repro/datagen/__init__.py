"""Workload generators: microbenchmark (Fig. 7) and TPC-H.

Generated datasets are deterministic functions of their config, so
:mod:`repro.datagen.cache` can fingerprint and reuse them across runs
(in-process LRU + on-disk ``.npy``/memmap store).
"""

from .cache import (
    DatasetCache,
    DatasetCacheStats,
    dataset_cache,
    dataset_fingerprint,
    load_dataset,
)
from .microbench import MicrobenchConfig, generate, q1, q2, q3, q4, q5

__all__ = [
    "DatasetCache",
    "DatasetCacheStats",
    "MicrobenchConfig",
    "dataset_cache",
    "dataset_fingerprint",
    "generate",
    "load_dataset",
    "q1",
    "q2",
    "q3",
    "q4",
    "q5",
]
