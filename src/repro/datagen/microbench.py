"""Microbenchmark workload generator (paper Fig. 7).

Table ``R`` (paper: 100M rows) and table ``S`` (paper: 1K or 1M rows),
with every value drawn uniformly — the paper's deliberate worst case for
hash tables ("a lookup in a large hash table with uniformly distributed
values will almost certainly result in a cache miss").

Columns follow the Fig. 7a schema:

=========  ======  ==========================================
column     type    cardinality
=========  ======  ==========================================
``r_a``    int8    100 (values 1..100; never zero, so Q1's
                   division configuration is well defined)
``r_b``    int8    100 (values 1..100)
``r_x``    int8    100 (values 0..99; ``r_x < SEL`` selects
                   exactly SEL %)
``r_y``    int8    1 (constant 1; the second conjunct of every
                   predicate, selectivity-neutral)
``r_c``    int32   configurable (10 .. 10M in the paper)
``r_fk``   int32   |S| (foreign key into ``s_pk``)
``s_pk``   int32   dense 0..|S|-1
``s_x``    int8    100 (values 0..99)
=========  ======  ==========================================

Query factories (:func:`q1` .. :func:`q5`) build the Fig. 7b queries with
their substitution parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DataGenError
from ..plan.expressions import And, Col, Const
from ..plan.logical import AggSpec, JoinSpec, Query
from ..storage.column import Column, LogicalType
from ..storage.database import Database
from ..storage.table import Table

#: Paper-scale row counts, used to derive scale factors for machine
#: scaling (``paper_rows / config.num_rows``).
PAPER_R_ROWS = 100_000_000
PAPER_S_SMALL = 1_000
PAPER_S_LARGE = 1_000_000


@dataclass(frozen=True)
class MicrobenchConfig:
    """Size and shape of the generated microbenchmark database."""

    num_rows: int = 2_000_000
    s_rows: int = 20_000
    c_cardinality: int = 1_000
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_rows <= 0 or self.s_rows <= 0:
            raise DataGenError("row counts must be positive")
        if self.c_cardinality <= 0:
            raise DataGenError("group-by cardinality must be positive")

    @property
    def scale_factor(self) -> float:
        """How much smaller R is than the paper's 100M rows."""
        return PAPER_R_ROWS / self.num_rows


def generate(config: MicrobenchConfig = MicrobenchConfig()) -> Database:
    """Generate the microbenchmark database for ``config``."""
    rng = np.random.default_rng(config.seed)
    n, sn = config.num_rows, config.s_rows

    r = Table(
        name="R",
        columns=(
            Column("r_a", LogicalType.INT8, rng.integers(1, 101, n)),
            Column("r_b", LogicalType.INT8, rng.integers(1, 101, n)),
            Column("r_x", LogicalType.INT8, rng.integers(0, 100, n)),
            Column("r_y", LogicalType.INT8, np.ones(n, dtype=np.int8)),
            Column(
                "r_c",
                LogicalType.INT32,
                rng.integers(0, config.c_cardinality, n),
            ),
            Column("r_fk", LogicalType.INT32, rng.integers(0, sn, n)),
        ),
    )
    s = Table(
        name="S",
        columns=(
            Column("s_pk", LogicalType.INT32, np.arange(sn, dtype=np.int32)),
            Column("s_x", LogicalType.INT8, rng.integers(0, 100, sn)),
        ),
    )
    db = Database()
    db.add_table(r)
    db.add_table(s)
    db.add_foreign_key("R", "r_fk", "S", "s_pk")
    return db


def _r_predicate(sel: int):
    """``r_x < sel and r_y = 1`` — the standard two-conjunct predicate."""
    return And([Col("r_x") < Const(sel), Col("r_y").eq(Const(1))])


def q1(sel: int, op: str = "mul") -> Query:
    """µQ1: ``select sum(r_a OP r_b) from R where r_x < SEL and r_y = 1``.

    ``op='mul'`` is the memory-bound configuration (Fig. 8a),
    ``op='div'`` the compute-bound one (Fig. 8b).
    """
    if op not in ("mul", "div"):
        raise DataGenError("Q1's OP parameter is 'mul' or 'div'")
    expr = (
        Col("r_a") * Col("r_b") if op == "mul" else Col("r_a") / Col("r_b")
    )
    return Query(
        table="R",
        predicate=_r_predicate(sel),
        aggregates=(AggSpec("sum", expr, name="sum"),),
        name=f"uQ1[{op},{sel}]",
    )


def q2(sel: int) -> Query:
    """µQ2: Q1's multiplication configuration grouped by ``r_c``
    (Fig. 9; the ``r_c`` cardinality comes from the generator config)."""
    return Query(
        table="R",
        predicate=_r_predicate(sel),
        aggregates=(AggSpec("sum", Col("r_a") * Col("r_b"), name="sum"),),
        group_by="r_c",
        name=f"uQ2[{sel}]",
    )


def q3(sel: int, col: str = "r_b") -> Query:
    """µQ3: ``select sum(r_x * COL) ...`` — the access-merging query.

    ``col='r_b'`` reuses one attribute (``r_x``, Fig. 10a);
    ``col='r_x'`` reuses both multiplicands (Fig. 10b).
    """
    if col not in ("r_b", "r_x"):
        raise DataGenError("Q3's COL parameter is 'r_b' or 'r_x'")
    return Query(
        table="R",
        predicate=_r_predicate(sel),
        aggregates=(AggSpec("sum", Col("r_x") * Col(col), name="sum"),),
        name=f"uQ3[{col},{sel}]",
    )


def q4(sel1: int, sel2: int) -> Query:
    """µQ4: the semijoin — ``R join S on r_fk = s_pk`` with predicates on
    both sides (Fig. 11). ``sel1`` filters the probe side (R), ``sel2``
    the build side (S)."""
    return Query(
        table="R",
        predicate=Col("r_x") < Const(sel1),
        aggregates=(AggSpec("sum", Col("r_a") * Col("r_b"), name="sum"),),
        join=JoinSpec(
            build_table="S",
            fk_column="r_fk",
            pk_column="s_pk",
            build_predicate=Col("s_x") < Const(sel2),
        ),
        name=f"uQ4[{sel1},{sel2}]",
    )


def q5(sel: int) -> Query:
    """µQ5: the groupjoin — group by the join key ``r_fk`` with a
    predicate on S only (Fig. 12; the paper's worst case for eager
    aggregation, which must aggregate every R tuple)."""
    return Query(
        table="R",
        predicate=None,
        aggregates=(AggSpec("sum", Col("r_a") * Col("r_b"), name="sum"),),
        group_by="r_fk",
        join=JoinSpec(
            build_table="S",
            fk_column="r_fk",
            pk_column="s_pk",
            build_predicate=Col("s_x") < Const(sel),
        ),
        name=f"uQ5[{sel}]",
    )
