"""Fingerprinted dataset cache: in-process LRU + on-disk column store.

Every bench or test invocation used to regenerate its TPC-H and
microbenchmark databases from scratch — by far the largest fixed cost of
a run once plans are cached and workers are pooled. Generation is fully
deterministic (generator + frozen config dataclass + seed), so the
result is cacheable by construction.

The cache has two layers, both keyed by a *fingerprint* of
``(format version, generator name, config repr)``:

* an in-process LRU of live :class:`~repro.storage.database.Database`
  objects (bounded entry count; repeated loads within one process are
  pointer-returns), and
* an on-disk layer under a cache directory: one subdirectory per
  fingerprint holding ``meta.json`` (schema: logical types,
  dictionaries, decimal scales, foreign keys, column encodings, and
  the originating config) plus one ``.npy`` file per column — and,
  for compressed columns, a second ``.codes.npy`` file holding the
  narrow code stream — loaded back with ``np.load(..., mmap_mode="r")``
  so a cold process maps both the values and the codes instead of
  re-randomizing (or re-``astype``-ing) them. Shard workers therefore
  serve encoded scans straight off the page cache: the narrow code
  pages are shared across every worker process, and no per-process
  decode copy is ever made.

The cache directory resolves, in order: the explicit ``cache_dir``
argument, the ``REPRO_CACHE_DIR`` environment variable, then
``~/.cache/repro/datasets``. Clear it with :meth:`DatasetCache.clear`
(or simply delete the directory).

Foreign-key offset indexes are *not* stored — they are pure arithmetic
over the loaded columns and are rebuilt eagerly on load, exactly as
:meth:`Database.add_foreign_key` does at generation time.

Cross-process safety: two processes missing on the same fingerprint
(CI matrix jobs, a server starting while a bench runs) coordinate
through a per-entry lock file taken with ``O_CREAT | O_EXCL`` — the
loser waits and then finds the winner's entry on disk instead of
generating the dataset a second time. The lock guards *work
duplication*; *correctness* never depends on it, because an entry only
ever appears via an atomic rename of a fully-written temp directory
(readers see a complete entry or none). Stale locks (a crashed holder)
are broken after a timeout, and a process that cannot acquire the lock
at all falls back to generating privately — worst case duplicated
work, never corruption.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..errors import DataGenError
from ..storage.column import Column, LogicalType
from ..storage.database import Database
from ..storage.table import Table
from . import microbench, tpch

#: Bump when the on-disk layout changes; old entries simply miss.
#: v2: per-column encoding metadata + persisted narrow code streams.
FORMAT_VERSION = 2

#: Registered generators addressable by name: name -> (generate, config
#: type). The config type is what :func:`load_dataset` validates against.
GENERATORS: Dict[str, Tuple[Callable, type]] = {
    "microbench": (microbench.generate, microbench.MicrobenchConfig),
    "tpch": (tpch.generate, tpch.TpchConfig),
}

_META_FILE = "meta.json"

#: A lock older than this is presumed to belong to a crashed process
#: and is broken (dataset generation takes seconds, not minutes).
_LOCK_STALE_SECONDS = 300.0

#: How long a process waits for another's in-progress store before
#: giving up and generating privately.
_LOCK_WAIT_SECONDS = 120.0

_LOCK_POLL_SECONDS = 0.05


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro/datasets``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "datasets"


def dataset_fingerprint(generator: str, config) -> str:
    """Stable fingerprint of one generated dataset.

    Configs are frozen dataclasses whose ``repr`` is a deterministic
    structural serialisation (it includes the seed), mirroring
    :func:`repro.engine.plan_cache.query_fingerprint`.
    """
    payload = f"v{FORMAT_VERSION}:{generator}:{config!r}"
    return hashlib.sha256(payload.encode()).hexdigest()[:24]


@dataclass
class DatasetCacheStats:
    """Hit/miss counters of one dataset cache."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.memory_hits + self.disk_hits + self.misses
        return (self.memory_hits + self.disk_hits) / total if total else 0.0

    def snapshot(self) -> dict:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


@dataclass
class DatasetCache:
    """Two-layer (memory LRU + disk) cache of generated databases.

    Parameters
    ----------
    cache_dir:
        On-disk location; ``None`` resolves via :func:`default_cache_dir`.
    memory_entries:
        Max live databases kept in the in-process LRU.
    mmap:
        Memory-map column files on disk load instead of reading them
        into fresh arrays (saves RSS and load time for large datasets).
    """

    cache_dir: Optional[Path] = None
    memory_entries: int = 4
    mmap: bool = True
    stats: DatasetCacheStats = field(default_factory=DatasetCacheStats)
    #: Where the most recent :meth:`load` was served from:
    #: ``"memory"`` / ``"disk"`` / ``"generated"``.
    last_source: Optional[str] = None
    _entries: "OrderedDict[str, Database]" = field(
        default_factory=OrderedDict
    )

    def __post_init__(self) -> None:
        if self.memory_entries < 1:
            raise DataGenError("dataset cache needs at least one entry")
        self.cache_dir = (
            Path(self.cache_dir)
            if self.cache_dir is not None
            else default_cache_dir()
        )

    # -- loading ---------------------------------------------------------

    def load(self, generator: str, config=None) -> Database:
        """Return the database for ``(generator, config)``, generating
        it only when neither cache layer has it."""
        generate, config_type = self._resolve(generator)
        if config is None:
            config = config_type()
        if not isinstance(config, config_type):
            raise DataGenError(
                f"generator {generator!r} expects a "
                f"{config_type.__name__}, got {type(config).__name__}"
            )
        key = dataset_fingerprint(generator, config)

        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            self.stats.memory_hits += 1
            self.last_source = "memory"
            return cached

        db = self._load_disk(key)
        if db is not None:
            self.stats.disk_hits += 1
            self.last_source = "disk"
        else:
            # Serialise concurrent first-loads of the same fingerprint
            # across processes: whoever wins the lock generates and
            # stores; waiters re-check the disk and find the entry.
            with self._entry_lock(key):
                db = self._load_disk(key)
                if db is not None:
                    self.stats.disk_hits += 1
                    self.last_source = "disk"
                else:
                    self.stats.misses += 1
                    self.last_source = "generated"
                    db = generate(config)
                    self._store_disk(key, generator, config, db)
        self._tag(db, key, generator=generator)
        self._remember(key, db)
        return db

    def load_fingerprint(self, key: str) -> Optional[Database]:
        """Load an existing on-disk entry directly by fingerprint.

        This is how shard worker processes bootstrap: the parent ships
        only the 24-hex fingerprint over the task protocol and each
        worker maps the same ``.npy`` files read-only — no column data
        ever crosses the pipe. Returns ``None`` when the entry is
        absent (the caller decides whether that is fatal); never
        generates.
        """
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            self.stats.memory_hits += 1
            self.last_source = "memory"
            return cached
        db = self._load_disk(key)
        if db is None:
            return None
        self.stats.disk_hits += 1
        self.last_source = "disk"
        self._tag(db, key)
        self._remember(key, db)
        return db

    def _tag(
        self, db: Database, key: str, generator: Optional[str] = None
    ) -> None:
        """Stamp dataset provenance onto the loaded database so
        downstream consumers (the shard executor) can address the same
        entry from another process."""
        if generator is not None:
            db.dataset_generator = generator
        db.dataset_fingerprint = key
        db.dataset_cache_dir = str(self.cache_dir)

    def _resolve(self, generator: str) -> Tuple[Callable, type]:
        try:
            return GENERATORS[generator]
        except KeyError as exc:
            raise DataGenError(
                f"unknown dataset generator {generator!r}; "
                f"known: {sorted(GENERATORS)}"
            ) from exc

    def _remember(self, key: str, db: Database) -> None:
        self._entries[key] = db
        self._entries.move_to_end(key)
        while len(self._entries) > self.memory_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    # -- disk layer ------------------------------------------------------

    def _entry_dir(self, key: str) -> Path:
        return self.cache_dir / key

    def _lock_path(self, key: str) -> Path:
        return self.cache_dir / f".{key}.lock"

    @contextmanager
    def _entry_lock(self, key: str):
        """Best-effort cross-process lock around one entry's generation.

        Acquired with ``O_CREAT | O_EXCL`` (atomic on every platform and
        on NFS since v3). Locks whose mtime exceeds
        ``_LOCK_STALE_SECONDS`` are presumed orphaned by a crashed
        holder and broken — but only after re-checking that the file at
        the lock path is still the *same* file that was judged stale
        (see :meth:`_break_stale_lock`): two waiters that both observed
        staleness must not both unlink, or the second unlink deletes
        the fresh lock the first breaker just re-acquired and a third
        process slips in. Only the waiter whose unlink actually removed
        the stale file retries the claim immediately; everyone else
        falls back to a normal poll tick. If the lock cannot be
        acquired within ``_LOCK_WAIT_SECONDS`` the caller proceeds
        *unlocked* — duplicated generation work at worst, since entries
        only ever appear via an atomic rename.
        """
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self._lock_path(key)
        flags = os.O_CREAT | os.O_EXCL | os.O_WRONLY
        acquired = False
        deadline = time.monotonic() + _LOCK_WAIT_SECONDS
        while time.monotonic() < deadline:
            try:
                fd = os.open(path, flags)
            except FileExistsError:
                try:
                    seen = path.stat()
                except OSError:
                    continue  # holder just released; retry immediately
                if time.time() - seen.st_mtime > _LOCK_STALE_SECONDS:
                    if self._break_stale_lock(path, seen):
                        continue  # we removed it: claim on the retry
                    # Another waiter broke it first (or its holder
                    # released and a fresh lock took the path): honour
                    # whoever claims next instead of racing the unlink.
                time.sleep(_LOCK_POLL_SECONDS)
            except OSError:
                break  # unwritable cache dir: fall through unlocked
            else:
                with os.fdopen(fd, "w") as handle:
                    handle.write(str(os.getpid()))
                acquired = True
                break
        try:
            yield
        finally:
            if acquired:
                try:
                    path.unlink()
                except OSError:
                    pass

    @staticmethod
    def _break_stale_lock(path: Path, seen: os.stat_result) -> bool:
        """Unlink ``path`` only if it is still the file judged stale.

        Between a waiter's staleness check and its ``unlink`` the stale
        lock may already have been broken by another waiter *and*
        replaced by that waiter's fresh lock; a blind unlink would then
        delete the fresh lock and let a third process claim, defeating
        the mutual exclusion. Re-stat and compare file identity
        (``st_ino`` + ``st_mtime_ns``) against the observation that
        justified the break; mismatch means someone else acted first.

        Returns ``True`` only when *this* caller performed the unlink —
        the one waiter allowed to retry the claim immediately.

        The residual stat→unlink window is microseconds (versus the
        300 s staleness horizon) and its worst case is the pre-existing
        documented fallback: duplicated generation, never corruption.
        """
        try:
            current = path.stat()
        except OSError:
            return False  # gone already: someone else broke it
        if (current.st_ino, current.st_mtime_ns) != (
            seen.st_ino,
            seen.st_mtime_ns,
        ):
            return False  # a fresh lock replaced the stale one
        try:
            path.unlink()
        except OSError:
            return False
        return True

    def _store_disk(self, key: str, generator: str, config, db) -> None:
        """Persist ``db`` atomically (write to a temp dir, then rename)."""
        entry = self._entry_dir(key)
        if entry.exists():
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        tables = []
        tmp = Path(
            tempfile.mkdtemp(prefix=f".{key}-", dir=self.cache_dir)
        )
        try:
            for name in db.catalog.table_names:
                table = db.table(name)
                columns = []
                for col in table.iter_columns():
                    filename = f"{name}__{col.name}.npy"
                    np.save(tmp / filename, col.values, allow_pickle=False)
                    col_meta = {
                        "name": col.name,
                        "logical_type": col.logical_type.value,
                        "file": filename,
                        "dictionary": (
                            list(col.dictionary)
                            if col.dictionary is not None
                            else None
                        ),
                        "scale": col.scale,
                    }
                    # Compressed columns persist their narrow code
                    # stream too, so loaders (shard workers above all)
                    # mmap codes instead of re-deriving them per
                    # process. Codec "none" needs no second file — its
                    # code stream aliases the values.
                    enc = col.encoding
                    if enc.compressed:
                        codes_file = f"{name}__{col.name}.codes.npy"
                        np.save(
                            tmp / codes_file,
                            col.encoded_values(),
                            allow_pickle=False,
                        )
                        col_meta["encoding"] = {
                            "codec": enc.codec,
                            "dtype": enc.dtype,
                            "width": enc.width,
                            "decoded_width": enc.decoded_width,
                            "codes_file": codes_file,
                        }
                    columns.append(col_meta)
                tables.append({"name": name, "columns": columns})
            meta = {
                "format_version": FORMAT_VERSION,
                "generator": generator,
                "config": repr(config),
                "tables": tables,
                "foreign_keys": [
                    {
                        "table": fk.table,
                        "column": fk.column,
                        "ref_table": fk.ref_table,
                        "ref_column": fk.ref_column,
                    }
                    for fk in db.catalog.foreign_keys()
                ],
            }
            (tmp / _META_FILE).write_text(json.dumps(meta, indent=1))
            try:
                tmp.rename(entry)
            except OSError:
                # A concurrent process stored the same entry first.
                shutil.rmtree(tmp, ignore_errors=True)
            self.stats.stores += 1
        except BaseException:
            shutil.rmtree(tmp, ignore_errors=True)
            raise

    def _load_disk(self, key: str) -> Optional[Database]:
        entry = self._entry_dir(key)
        meta_path = entry / _META_FILE
        if not meta_path.is_file():
            return None
        try:
            meta = json.loads(meta_path.read_text())
            if meta.get("format_version") != FORMAT_VERSION:
                return None
            db = Database()
            for table_meta in meta["tables"]:
                columns = []
                for col_meta in table_meta["columns"]:
                    values = np.load(
                        entry / col_meta["file"],
                        mmap_mode="r" if self.mmap else None,
                        allow_pickle=False,
                    )
                    column = Column(
                        name=col_meta["name"],
                        logical_type=LogicalType(
                            col_meta["logical_type"]
                        ),
                        values=values,
                        dictionary=(
                            tuple(col_meta["dictionary"])
                            if col_meta["dictionary"] is not None
                            else None
                        ),
                        scale=col_meta["scale"],
                    )
                    enc_meta = col_meta.get("encoding")
                    if enc_meta is not None:
                        from ..storage.compression import ColumnEncoding

                        codes = np.load(
                            entry / enc_meta["codes_file"],
                            mmap_mode="r" if self.mmap else None,
                            allow_pickle=False,
                        )
                        column.seed_encoded(
                            ColumnEncoding(
                                codec=enc_meta["codec"],
                                dtype=enc_meta["dtype"],
                                width=enc_meta["width"],
                                decoded_width=enc_meta["decoded_width"],
                            ),
                            codes,
                        )
                    columns.append(column)
                db.add_table(
                    Table(name=table_meta["name"], columns=tuple(columns))
                )
            for fk in meta["foreign_keys"]:
                db.add_foreign_key(
                    fk["table"], fk["column"], fk["ref_table"],
                    fk["ref_column"],
                )
            return db
        except (OSError, ValueError, KeyError):
            # Corrupt or truncated entry: treat as a miss (it will be
            # regenerated and re-stored under a temp dir + rename).
            return None

    # -- management ------------------------------------------------------

    def clear_memory(self) -> None:
        self._entries.clear()

    def clear_disk(self) -> None:
        if self.cache_dir.is_dir():
            shutil.rmtree(self.cache_dir, ignore_errors=True)

    def clear(self) -> None:
        """Drop both layers."""
        self.clear_memory()
        self.clear_disk()


_default_cache: Optional[DatasetCache] = None


def dataset_cache() -> DatasetCache:
    """The process-wide default cache (created on first use).

    The default cache's counters are registered as the
    ``dataset_cache`` stat source of the process-wide metrics registry,
    so its hit rates show up in ``stats`` snapshots alongside the plan
    cache and the service counters.
    """
    global _default_cache
    if _default_cache is None:
        _default_cache = DatasetCache()
        from ..obs import metrics_registry

        metrics_registry().register_source(
            "dataset_cache", _default_cache.stats.snapshot
        )
    return _default_cache


def load_dataset(
    generator: str, config=None, cache: Optional[DatasetCache] = None
) -> Database:
    """Convenience wrapper: load through ``cache`` (default: the
    process-wide cache)."""
    return (cache or dataset_cache()).load(generator, config)
