"""TPC-H data generator (the subset the paper's eight queries touch).

Generates region, nation, supplier, customer, part, orders, and lineitem
at a configurable scale factor with the TPC-H spec's cardinalities and
value distributions (uniform keys, the standard date ranges, the spec's
category strings). Storage follows the paper's evaluation setup:

* dictionary encoding for low-cardinality strings (flags, modes,
  priorities, types, brands, containers, segments);
* null suppression (narrow integers) for low-cardinality numerics;
* fixed-point int64 for decimals (prices, discounts as percent points).

Two deliberate deviations, both documented in DESIGN.md:

* keys are dense (``1..n`` without the spec's order-key gaps) so that
  referential-integrity FK indexes are pure arithmetic — the layout the
  positional-bitmap technique targets;
* comments are not generated as text; the Q13 ``not like
  '%special%requests%'`` predicate is materialised as a boolean column
  with the paper's measured ~2 % match rate (its cost is charged per
  tuple by the ``strcmp`` kernel, which is what dominates Q13).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DataGenError
from ..storage.column import Column, LogicalType
from ..storage.database import Database
from ..storage.table import Table

#: Days since 1970-01-01 for the TPC-H date constants.
DATE_1992_01_01 = 8035
DATE_1995_09_01 = 9374
DATE_1995_10_01 = 9404
DATE_1996_01_01 = 9496
DATE_1996_04_01 = 9587
DATE_1995_03_15 = 9204
DATE_1994_01_01 = 8766
DATE_1995_01_01 = 9131
DATE_1998_08_02 = 10440
DATE_1998_12_01 = 10561
DATE_1995_06_17 = 9298

#: Spec string domains (subset).
SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY")
PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW")
SHIPMODES = ("AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK")
SHIPINSTRUCT = (
    "COLLECT COD",
    "DELIVER IN PERSON",
    "NONE",
    "TAKE BACK RETURN",
)
RETURNFLAGS = ("A", "N", "R")
LINESTATUS = ("F", "O")
REGIONS = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")
NATIONS = (
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
)
TYPE_SYLLABLE_1 = ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO")
TYPE_SYLLABLE_2 = ("ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED")
TYPE_SYLLABLE_3 = ("TIN", "NICKEL", "BRASS", "STEEL", "COPPER")
CONTAINER_1 = ("SM", "LG", "MED", "JUMBO", "WRAP")
CONTAINER_2 = ("CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM")


@dataclass(frozen=True)
class TpchConfig:
    """Scale configuration. ``scale_factor=1.0`` is the 6M-lineitem SF1."""

    scale_factor: float = 0.01
    seed: int = 42

    def __post_init__(self) -> None:
        if self.scale_factor <= 0:
            raise DataGenError("scale factor must be positive")

    @property
    def customers(self) -> int:
        return max(int(150_000 * self.scale_factor), 50)

    @property
    def suppliers(self) -> int:
        return max(int(10_000 * self.scale_factor), 10)

    @property
    def parts(self) -> int:
        return max(int(200_000 * self.scale_factor), 50)

    @property
    def orders(self) -> int:
        return max(int(1_500_000 * self.scale_factor), 100)

    @property
    def machine_scale(self) -> float:
        """Cache shrink factor matching the paper's SF 10 evaluation."""
        return 10.0 / self.scale_factor


def _dict_column(name: str, codes: np.ndarray, dictionary) -> Column:
    return Column(
        name=name,
        logical_type=LogicalType.STRING,
        values=codes.astype(np.int32),
        dictionary=tuple(dictionary),
    )


def generate(config: TpchConfig = TpchConfig()) -> Database:
    """Generate the TPC-H database for ``config``."""
    rng = np.random.default_rng(config.seed)
    db = Database()

    # ------------------------------------------------------------ region
    db.add_table(
        Table(
            name="region",
            columns=(
                Column(
                    "r_regionkey", LogicalType.INT8, np.arange(5, dtype=np.int8)
                ),
                _dict_column(
                    "r_name", np.arange(len(REGIONS)), sorted(REGIONS)
                ),
            ),
        )
    )

    # ------------------------------------------------------------ nation
    nation_names = [name for name, _ in NATIONS]
    nation_dict = sorted(nation_names)
    nation_codes = np.asarray(
        [nation_dict.index(name) for name in nation_names]
    )
    db.add_table(
        Table(
            name="nation",
            columns=(
                Column(
                    "n_nationkey",
                    LogicalType.INT8,
                    np.arange(len(NATIONS), dtype=np.int8),
                ),
                _dict_column("n_name", nation_codes, nation_dict),
                Column(
                    "n_regionkey",
                    LogicalType.INT8,
                    np.asarray([region for _, region in NATIONS], np.int8),
                ),
            ),
        )
    )

    # ---------------------------------------------------------- supplier
    ns = config.suppliers
    db.add_table(
        Table(
            name="supplier",
            columns=(
                Column(
                    "s_suppkey", LogicalType.INT32,
                    np.arange(1, ns + 1, dtype=np.int32),
                ),
                Column(
                    "s_nationkey", LogicalType.INT8,
                    rng.integers(0, 25, ns).astype(np.int8),
                ),
            ),
        )
    )

    # ---------------------------------------------------------- customer
    nc = config.customers
    db.add_table(
        Table(
            name="customer",
            columns=(
                Column(
                    "c_custkey", LogicalType.INT32,
                    np.arange(1, nc + 1, dtype=np.int32),
                ),
                _dict_column(
                    "c_mktsegment",
                    rng.integers(0, len(SEGMENTS), nc),
                    sorted(SEGMENTS),
                ),
                Column(
                    "c_nationkey", LogicalType.INT8,
                    rng.integers(0, 25, nc).astype(np.int8),
                ),
            ),
        )
    )

    # -------------------------------------------------------------- part
    nparts = config.parts
    type1 = rng.integers(0, len(TYPE_SYLLABLE_1), nparts)
    type2 = rng.integers(0, len(TYPE_SYLLABLE_2), nparts)
    type3 = rng.integers(0, len(TYPE_SYLLABLE_3), nparts)
    type_strings = sorted(
        f"{a} {b} {c}"
        for a in TYPE_SYLLABLE_1
        for b in TYPE_SYLLABLE_2
        for c in TYPE_SYLLABLE_3
    )
    type_index = {name: i for i, name in enumerate(type_strings)}
    type_codes = np.asarray(
        [
            type_index[
                f"{TYPE_SYLLABLE_1[a]} {TYPE_SYLLABLE_2[b]} {TYPE_SYLLABLE_3[c]}"
            ]
            for a, b, c in zip(type1, type2, type3)
        ]
    )
    brand_codes = rng.integers(0, 25, nparts)
    brands = sorted(f"Brand#{m}{n}" for m in range(1, 6) for n in range(1, 6))
    container_strings = sorted(
        f"{a} {b}" for a in CONTAINER_1 for b in CONTAINER_2
    )
    db.add_table(
        Table(
            name="part",
            columns=(
                Column(
                    "p_partkey", LogicalType.INT32,
                    np.arange(1, nparts + 1, dtype=np.int32),
                ),
                _dict_column("p_brand", brand_codes, brands),
                _dict_column("p_type", type_codes, type_strings),
                Column(
                    "p_size", LogicalType.INT8,
                    rng.integers(1, 51, nparts).astype(np.int8),
                ),
                _dict_column(
                    "p_container",
                    rng.integers(0, len(container_strings), nparts),
                    container_strings,
                ),
            ),
        )
    )

    # ------------------------------------------------------------ orders
    no = config.orders
    o_orderdate = rng.integers(DATE_1992_01_01, DATE_1998_08_02 + 1, no)
    # Q13's predicate: o_comment not like '%special%requests%'. The spec's
    # comment generator yields ~2 % matches; we materialise the outcome.
    o_comment_special = rng.random(no) < 0.02
    db.add_table(
        Table(
            name="orders",
            columns=(
                Column(
                    "o_orderkey", LogicalType.INT32,
                    np.arange(1, no + 1, dtype=np.int32),
                ),
                Column(
                    "o_custkey", LogicalType.INT32,
                    rng.integers(1, nc + 1, no).astype(np.int32),
                ),
                Column("o_orderdate", LogicalType.DATE, o_orderdate),
                _dict_column(
                    "o_orderpriority",
                    rng.integers(0, len(PRIORITIES), no),
                    sorted(PRIORITIES),
                ),
                Column(
                    "o_shippriority", LogicalType.INT8,
                    np.zeros(no, dtype=np.int8),
                ),
                Column(
                    "o_comment_special", LogicalType.INT8,
                    o_comment_special.astype(np.int8),
                ),
            ),
        )
    )

    # ---------------------------------------------------------- lineitem
    # 1-7 lines per order (spec), so |lineitem| ~= 4 * |orders|.
    lines_per_order = rng.integers(1, 8, no)
    nl = int(lines_per_order.sum())
    l_orderkey = np.repeat(
        np.arange(1, no + 1, dtype=np.int32), lines_per_order
    )
    order_date_per_line = np.repeat(o_orderdate, lines_per_order)
    l_shipdate = order_date_per_line + rng.integers(1, 122, nl)
    l_commitdate = order_date_per_line + rng.integers(30, 91, nl)
    l_receiptdate = l_shipdate + rng.integers(1, 31, nl)
    l_quantity = rng.integers(1, 51, nl)
    # extendedprice ~ quantity * unit price in [900, 2000] dollars, cents
    unit_cents = rng.integers(90_000, 200_001, nl, dtype=np.int64)
    l_extendedprice = l_quantity.astype(np.int64) * unit_cents // 100
    db.add_table(
        Table(
            name="lineitem",
            columns=(
                Column("l_orderkey", LogicalType.INT32, l_orderkey),
                Column(
                    "l_partkey", LogicalType.INT32,
                    rng.integers(1, nparts + 1, nl).astype(np.int32),
                ),
                Column(
                    "l_suppkey", LogicalType.INT32,
                    rng.integers(1, ns + 1, nl).astype(np.int32),
                ),
                Column(
                    "l_quantity", LogicalType.INT8,
                    l_quantity.astype(np.int8),
                ),
                Column(
                    "l_extendedprice", LogicalType.DECIMAL,
                    l_extendedprice, scale=2,
                ),
                Column(
                    "l_discount", LogicalType.INT8,
                    rng.integers(0, 11, nl).astype(np.int8),
                ),
                Column(
                    "l_tax", LogicalType.INT8,
                    rng.integers(0, 9, nl).astype(np.int8),
                ),
                _dict_column(
                    "l_returnflag",
                    rng.integers(0, len(RETURNFLAGS), nl),
                    RETURNFLAGS,
                ),
                _dict_column(
                    "l_linestatus",
                    (l_shipdate > DATE_1995_06_17).astype(np.int32),
                    LINESTATUS,
                ),
                Column("l_shipdate", LogicalType.DATE, l_shipdate),
                Column("l_commitdate", LogicalType.DATE, l_commitdate),
                Column("l_receiptdate", LogicalType.DATE, l_receiptdate),
                _dict_column(
                    "l_shipinstruct",
                    rng.integers(0, len(SHIPINSTRUCT), nl),
                    SHIPINSTRUCT,
                ),
                _dict_column(
                    "l_shipmode",
                    rng.integers(0, len(SHIPMODES), nl),
                    SHIPMODES,
                ),
            ),
        )
    )

    # foreign keys (and their offset indexes, built eagerly)
    db.add_foreign_key("nation", "n_regionkey", "region", "r_regionkey")
    db.add_foreign_key("supplier", "s_nationkey", "nation", "n_nationkey")
    db.add_foreign_key("customer", "c_nationkey", "nation", "n_nationkey")
    db.add_foreign_key("orders", "o_custkey", "customer", "c_custkey")
    db.add_foreign_key("lineitem", "l_orderkey", "orders", "o_orderkey")
    db.add_foreign_key("lineitem", "l_partkey", "part", "p_partkey")
    db.add_foreign_key("lineitem", "l_suppkey", "supplier", "s_suppkey")
    return db
