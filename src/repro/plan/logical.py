"""Logical query plans for the generic code-generation path.

The generic path covers the query shapes of the paper's microbenchmark
(Fig. 7b) and of typical single-join OLAP aggregations:

* scan -> filter -> aggregate (optionally grouped) over one table;
* a foreign-key equijoin against a filtered build table, used either as a
  *semijoin* (no build attributes survive the join — µQ4) or a
  *groupjoin* (join key doubles as the group-by key — µQ5).

TPC-H's more intricate plans are hand-coded per strategy under
:mod:`repro.tpch`, mirroring how the paper hand-coded C for each.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import PlanError
from .expressions import Expr, conjuncts


@dataclass(frozen=True)
class AggSpec:
    """One aggregate: ``func(expr)`` with an output name.

    ``count`` ignores the expression (may be None).
    """

    func: str
    expr: Optional[Expr] = None
    name: str = "sum"

    def __post_init__(self) -> None:
        if self.func not in ("sum", "count"):
            raise PlanError(f"unsupported aggregate function {self.func!r}")
        if self.func == "sum" and self.expr is None:
            raise PlanError("sum aggregate requires an expression")


@dataclass(frozen=True)
class JoinSpec:
    """A foreign-key equijoin ``main.fk_column = build.pk_column``.

    ``build_predicate`` filters the build side. The generic path assumes
    the referential-integrity FK index from ``main.fk_column`` to the
    build table exists (the catalog builds it at load time), which is the
    precondition of the positional-bitmap technique.
    """

    build_table: str
    fk_column: str
    pk_column: str
    build_predicate: Optional[Expr] = None


@dataclass(frozen=True)
class Query:
    """A logical query over ``table`` (optionally joined to one build table).

    ``group_by`` names a column of ``table``; when it equals
    ``join.fk_column`` the query is a *groupjoin* (paper §III-E).
    """

    table: str
    aggregates: Tuple[AggSpec, ...]
    predicate: Optional[Expr] = None
    group_by: Optional[str] = None
    join: Optional[JoinSpec] = None
    name: str = "query"

    def __post_init__(self) -> None:
        if not self.aggregates:
            raise PlanError("query must compute at least one aggregate")
        object.__setattr__(self, "aggregates", tuple(self.aggregates))
        names = [agg.name for agg in self.aggregates]
        if len(set(names)) != len(names):
            raise PlanError("duplicate aggregate output names")

    @property
    def is_groupjoin(self) -> bool:
        return (
            self.join is not None
            and self.group_by is not None
            and self.group_by == self.join.fk_column
        )

    @property
    def is_semijoin(self) -> bool:
        """Join where no build attribute is needed beyond the join itself."""
        return self.join is not None and not self.is_groupjoin

    def predicate_conjuncts(self) -> Tuple[Expr, ...]:
        return conjuncts(self.predicate)

    def main_columns(self) -> Tuple[str, ...]:
        """All columns of ``table`` the query touches (sorted)."""
        cols = set()
        for term in self.predicate_conjuncts():
            cols |= term.columns()
        for agg in self.aggregates:
            if agg.expr is not None:
                cols |= agg.expr.columns()
        if self.group_by is not None:
            cols.add(self.group_by)
        if self.join is not None:
            cols.add(self.join.fk_column)
        return tuple(sorted(cols))

    def reused_columns(self) -> Tuple[str, ...]:
        """Columns referenced by both the predicate and an aggregate —
        the access-merging opportunity (paper §III-C)."""
        pred_cols = set()
        for term in self.predicate_conjuncts():
            pred_cols |= term.columns()
        agg_cols = set()
        for agg in self.aggregates:
            if agg.expr is not None:
                agg_cols |= agg.expr.columns()
        return tuple(sorted(pred_cols & agg_cols))


@dataclass
class QueryStats:
    """Optimizer statistics for a query, measured by sampling.

    Feeds the SWOLE cost models (paper §III). All fields are measured
    from data samples at plan time, never taken from query results.
    """

    num_rows: int
    selectivity: float
    group_cardinality: int = 1
    build_rows: int = 0
    build_selectivity: float = 1.0
    join_match_fraction: float = 1.0
    agg_ops: Tuple[str, ...] = ()
    column_widths: Dict[str, int] = field(default_factory=dict)


def sample_stats(query: Query, tables: Dict[str, Dict[str, np.ndarray]],
                 sample_rows: int = 65536) -> QueryStats:
    """Measure :class:`QueryStats` from a prefix sample of the data.

    A prefix sample is adequate because all generated workloads are
    row-order-independent (uniform random); the test suite checks the
    estimates against full-data truth within tolerance.
    """
    data = tables[query.table]
    any_column = next(iter(data.values()))
    num_rows = int(any_column.shape[0])
    take = min(sample_rows, num_rows)
    sample = {name: values[:take] for name, values in data.items()}

    if query.predicate is None:
        selectivity = 1.0
    else:
        mask = query.predicate.evaluate(sample)
        selectivity = float(mask.mean()) if take else 1.0

    group_cardinality = 1
    if query.group_by is not None:
        column = data[query.group_by]
        group_cardinality = int(np.unique(column[:take]).shape[0])
        if take < num_rows:
            # Prefix samples under-count distinct values; extrapolate with
            # the standard birthday-style estimator.
            seen_fraction = group_cardinality / take
            if seen_fraction > 0.95:
                group_cardinality = int(group_cardinality * num_rows / take)

    build_rows = 0
    build_selectivity = 1.0
    if query.join is not None:
        build = tables[query.join.build_table]
        build_any = next(iter(build.values()))
        build_rows = int(build_any.shape[0])
        if query.join.build_predicate is not None:
            btake = min(sample_rows, build_rows)
            bsample = {name: values[:btake] for name, values in build.items()}
            bmask = query.join.build_predicate.evaluate(bsample)
            build_selectivity = float(bmask.mean()) if btake else 1.0

    agg_ops: Tuple[str, ...] = ()
    for agg in query.aggregates:
        if agg.expr is not None:
            from .expressions import arith_ops

            agg_ops += arith_ops(agg.expr)

    widths = {name: int(values.dtype.itemsize) for name, values in data.items()}

    return QueryStats(
        num_rows=num_rows,
        selectivity=selectivity,
        group_cardinality=max(group_cardinality, 1),
        build_rows=build_rows,
        build_selectivity=build_selectivity,
        join_match_fraction=build_selectivity,
        agg_ops=agg_ops,
        column_widths=widths,
    )
