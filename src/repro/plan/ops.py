"""Composable logical operator trees — the generic plan IR.

The original :class:`~repro.plan.logical.Query` dataclass hard-codes one
shape (scan -> filter -> aggregate, plus at most one FK join). This
module generalises it to a small tree algebra so multi-join queries like
TPC-H Q3 and carried-column index joins like Q14 compile through the
same staged pipeline (logical plan -> strategy passes -> physical plan
-> kernel program) instead of being hand-coded per strategy:

* :class:`Scan` — a base table;
* :class:`Filter` — a conjunctive predicate over its child's stream;
* :class:`Project` — adds derived columns to the stream (e.g. Q14's
  dictionary-driven ``promo`` flag);
* :class:`Join` — a foreign-key equijoin. With no carried columns it is
  a *semijoin* (the build side only filters the probe stream); with
  ``carry`` it brings build-side columns into the probe stream through
  the FK index; when the enclosing :class:`GroupByAgg` groups by the
  join's FK column it is a *groupjoin* (paper §III-E);
* :class:`GroupByAgg` — the aggregation root (scalar when ``key`` is
  ``None``; the key may be an arbitrary expression, e.g. Q1's
  ``rf * 2 + ls``).

Trees are frozen dataclasses: hashable, ``repr``-stable, and therefore
fingerprintable — the plan cache keys compiled programs by
:func:`plan_fingerprint`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Sequence, Tuple, Union

from ..errors import PlanError
from .expressions import Col, Expr, conjuncts
from .logical import AggSpec, Query


class PlanNode:
    """Base class of logical operator-tree nodes."""

    def children(self) -> Tuple["PlanNode", ...]:
        return ()

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class Scan(PlanNode):
    """Scan of a base table."""

    table: str

    def describe(self) -> str:
        return f"Scan {self.table}"


@dataclass(frozen=True)
class Filter(PlanNode):
    """Conjunctive predicate over the child's stream."""

    child: PlanNode
    predicate: Expr

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def conjuncts(self) -> Tuple[Expr, ...]:
        return conjuncts(self.predicate)

    def describe(self) -> str:
        return f"Filter {self.predicate.to_c()}"


@dataclass(frozen=True)
class Project(PlanNode):
    """Adds derived columns (``name -> expr``) to the child's stream."""

    child: PlanNode
    outputs: Tuple[Tuple[str, Expr], ...]

    def __init__(
        self, child: PlanNode, outputs: Sequence[Tuple[str, Expr]]
    ) -> None:
        outputs = tuple((str(name), expr) for name, expr in outputs)
        if not outputs:
            raise PlanError("Project requires at least one output column")
        names = [name for name, _ in outputs]
        if len(set(names)) != len(names):
            raise PlanError("duplicate Project output names")
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "outputs", outputs)

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        cols = ", ".join(
            f"{name}={expr.to_c()}" for name, expr in self.outputs
        )
        return f"Project {cols}"


@dataclass(frozen=True)
class Join(PlanNode):
    """Foreign-key equijoin ``probe.fk_column = build.pk_column``.

    ``probe`` is the FK (large) side whose stream flows on; ``build`` is
    the PK side. ``carry`` names build-side stream columns pulled into
    the probe stream through the FK index (an *index join*); when empty
    the join is a pure semijoin.
    """

    probe: PlanNode
    build: PlanNode
    fk_column: str
    pk_column: str
    carry: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "carry", tuple(self.carry))

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.probe, self.build)

    @property
    def is_semijoin(self) -> bool:
        return not self.carry

    def describe(self) -> str:
        kind = "index" if self.carry else "semi"
        text = (
            f"Join[{kind}] {self.fk_column} = "
            f"{base_table(self.build)}.{self.pk_column}"
        )
        if self.carry:
            text += f" carry={list(self.carry)}"
        return text


@dataclass(frozen=True)
class ExistsJoin(PlanNode):
    """Existential (or anti-) semijoin ``EXISTS (build.fk = probe.pk)``.

    Unlike :class:`Join`, the *probe* stream is the PK (small) side and
    the build side scans the FK (large) side: a probe row survives when
    at least one build row references it (Q4's ``EXISTS`` subquery), or
    — with ``anti`` — when none does (``NOT EXISTS``).
    """

    probe: PlanNode
    build: PlanNode
    pk_column: str
    fk_column: str
    anti: bool = False

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.probe, self.build)

    def describe(self) -> str:
        kind = "anti" if self.anti else "exists"
        return (
            f"ExistsJoin[{kind}] {self.pk_column} = "
            f"{base_table(self.build)}.{self.fk_column}"
        )


@dataclass(frozen=True)
class OuterGroupJoin(PlanNode):
    """Outer groupjoin: count probe rows per build key, keeping zeros.

    The probe (FK) stream is counted into one slot per build-side key;
    build rows with no qualifying probe rows survive with count zero
    (Q13's zero-order customers). The node *rekeys* the stream: its
    output is one row per build key carrying ``count_name``.
    """

    probe: PlanNode
    build: PlanNode
    fk_column: str
    pk_column: str
    count_name: str = "count"

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.probe, self.build)

    def describe(self) -> str:
        return (
            f"OuterGroupJoin[outer] {self.fk_column} = "
            f"{base_table(self.build)}.{self.pk_column} "
            f"count={self.count_name}"
        )


@dataclass(frozen=True)
class DisjunctJoin(PlanNode):
    """OR-of-conjunctions join filter (Q19's shape, paper §III-F).

    Each disjunct pairs a build-side predicate with a probe-side
    predicate; a probe row survives when, for *some* disjunct, its FK
    partner satisfies the build predicate and the row itself satisfies
    the probe predicate:

    ``OR_i (build_pred_i(build[fk]) AND probe_pred_i(probe))``
    """

    probe: PlanNode
    build: PlanNode
    fk_column: str
    pk_column: str
    disjuncts: Tuple[Tuple[Expr, Expr], ...]

    def __post_init__(self) -> None:
        pairs = tuple(
            (build_pred, probe_pred)
            for build_pred, probe_pred in self.disjuncts
        )
        if not pairs:
            raise PlanError("DisjunctJoin requires at least one disjunct")
        object.__setattr__(self, "disjuncts", pairs)

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.probe, self.build)

    def describe(self) -> str:
        arms = " OR ".join(
            f"[{bp.to_c()} && {pp.to_c()}]"
            for bp, pp in self.disjuncts
        )
        return (
            f"DisjunctJoin {self.fk_column} = "
            f"{base_table(self.build)}.{self.pk_column} on {arms}"
        )


@dataclass(frozen=True)
class GroupByAgg(PlanNode):
    """Aggregation root: scalar when ``key`` is None, grouped otherwise.

    ``key`` is an arbitrary expression over the child stream (Q1 groups
    by ``l_returnflag * 2 + l_linestatus``); ``key_name`` labels the key
    in rendered plans.
    """

    child: PlanNode
    aggregates: Tuple[AggSpec, ...]
    key: Optional[Expr] = None
    key_name: str = "key"

    def __post_init__(self) -> None:
        object.__setattr__(self, "aggregates", tuple(self.aggregates))
        if not self.aggregates:
            raise PlanError("GroupByAgg needs at least one aggregate")
        names = [agg.name for agg in self.aggregates]
        if len(set(names)) != len(names):
            raise PlanError("duplicate aggregate output names")

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        aggs = ", ".join(
            f"{a.name}={a.func}"
            + (f"({a.expr.to_c()})" if a.expr is not None else "(*)")
            for a in self.aggregates
        )
        head = "Aggregate" if self.key is None else "GroupByAgg"
        key = "" if self.key is None else f" key[{self.key_name}]={self.key.to_c()}"
        return f"{head}{key} aggs=[{aggs}]"


@dataclass(frozen=True)
class LogicalPlan:
    """A named operator tree — the unit the staged pipeline compiles."""

    name: str
    root: PlanNode

    def describe(self) -> str:
        return render(self.root)


# ---------------------------------------------------------------------------
# Tree utilities
# ---------------------------------------------------------------------------


#: Nodes with a (probe, build) pair; the probe stream flows on.
JOIN_NODES = (Join, ExistsJoin, OuterGroupJoin, DisjunctJoin)


def base_table(node: PlanNode) -> str:
    """The scan table at the bottom of a node's probe spine."""
    while not isinstance(node, Scan):
        if isinstance(node, JOIN_NODES):
            node = node.probe
        elif isinstance(node, (Filter, Project, GroupByAgg)):
            node = node.child
        else:
            raise PlanError(f"cannot find base table under {node!r}")
    return node.table


def spine(node: PlanNode) -> Tuple[PlanNode, ...]:
    """The probe spine of a subtree, bottom (Scan) first.

    Join nodes appear on the spine; their build subtrees do not.
    """
    chain = []
    while True:
        chain.append(node)
        if isinstance(node, Scan):
            break
        if isinstance(node, JOIN_NODES):
            node = node.probe
        elif isinstance(node, (Filter, Project, GroupByAgg)):
            node = node.child
        else:
            raise PlanError(f"unknown plan node {node!r}")
    return tuple(reversed(chain))


def spine_filters(node: PlanNode) -> Tuple[Expr, ...]:
    """All filter conjuncts along a subtree's probe spine, in order."""
    terms: Tuple[Expr, ...] = ()
    for step in spine(node):
        if isinstance(step, Filter):
            terms += step.conjuncts()
    return terms


def spine_joins(node: PlanNode) -> Tuple[Join, ...]:
    """The joins along a subtree's probe spine, innermost first."""
    return tuple(
        step for step in spine(node) if isinstance(step, Join)
    )


def is_groupjoin(root: GroupByAgg) -> bool:
    """Whether the aggregation folds into its outermost spine join.

    True when the group key is exactly the FK column of the topmost
    semijoin on the child spine (paper §III-E's groupjoin shape).
    """
    if not isinstance(root.key, Col):
        return False
    top = root.child
    while isinstance(top, (Filter, Project)) and not isinstance(top, Join):
        # a Filter/Project *above* the join still leaves the join the
        # stream's key producer only if nothing rekeys the stream; the
        # simple IR has no rekeying ops, so walking down is safe
        top = top.child
    return (
        isinstance(top, Join)
        and top.is_semijoin
        and top.fk_column == root.key.name
    )


def validate(plan: LogicalPlan) -> None:
    """Structural checks the compiler relies on; raises ``PlanError``."""
    root = plan.root
    if not isinstance(root, GroupByAgg):
        raise PlanError(
            "the pipeline compiles aggregation queries: the plan root "
            f"must be GroupByAgg, got {type(root).__name__}"
        )

    def check(node: PlanNode) -> None:
        if isinstance(node, GroupByAgg) and node is not root:
            raise PlanError("GroupByAgg is only valid at the plan root")
        if isinstance(node, Join):
            if node.carry:
                # A carried column may be a Project output or an upstream
                # carry on the build spine, or a base column of the
                # build-side scan; the first two are checkable here, base
                # columns resolve against the database at bind time.
                names = [c for c in node.carry if not isinstance(c, str)]
                if names:
                    raise PlanError(
                        f"carried columns must be names, got {names}"
                    )
        for child in node.children():
            check(child)

    check(root)


def render(node: PlanNode, indent: int = 0) -> str:
    """Indented tree rendering (the ``explain`` logical-plan section)."""
    pad = "  " * indent
    lines = [pad + node.describe()]
    if isinstance(node, JOIN_NODES):
        lines.append(render(node.probe, indent + 1))
        lines.append(pad + "  build:")
        lines.append(render(node.build, indent + 2))
    else:
        for child in node.children():
            lines.append(render(child, indent + 1))
    return "\n".join(lines)


@lru_cache(maxsize=512)
def plan_fingerprint(plan: Union[LogicalPlan, PlanNode]) -> str:
    """Stable structural fingerprint of an operator tree.

    Frozen dataclasses have deterministic ``repr``s, so hashing the repr
    is a faithful structural digest. This is the plan-cache key for
    every query that reaches the staged pipeline (hand-coded TPC-H
    names resolve to their logical plan first, legacy ``Query`` objects
    convert via :func:`from_query`), so two spellings of the same tree
    share one cache entry.
    """
    digest = hashlib.sha256(repr(plan).encode()).hexdigest()[:16]
    return f"ir:{digest}"


@lru_cache(maxsize=256)
def from_query(query: Query) -> LogicalPlan:
    """Convert a legacy single-join :class:`Query` to an operator tree.

    The conversion is total: scalar/grouped aggregations, semijoins and
    groupjoins (group key == FK column) all map onto the tree shapes the
    staged pipeline understands.
    """
    node: PlanNode = Scan(query.table)
    if query.predicate is not None:
        node = Filter(node, query.predicate)
    if query.join is not None:
        join = query.join
        build: PlanNode = Scan(join.build_table)
        if join.build_predicate is not None:
            build = Filter(build, join.build_predicate)
        node = Join(
            probe=node,
            build=build,
            fk_column=join.fk_column,
            pk_column=join.pk_column,
        )
    key = Col(query.group_by) if query.group_by is not None else None
    key_name = query.group_by if query.group_by is not None else "key"
    root = GroupByAgg(
        child=node,
        aggregates=query.aggregates,
        key=key,
        key_name=key_name,
    )
    return LogicalPlan(name=query.name, root=root)
