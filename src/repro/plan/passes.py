"""Strategy passes over logical operator trees.

Stage 2 of the staged lowering pipeline (logical plan -> **passes** ->
physical plan -> kernel program). :func:`run_passes` takes a
:class:`~repro.plan.ops.LogicalPlan` and returns

* the *bound* plan — database-dependent placeholders (``DictEq``,
  ``DictPrefix``) resolved to dictionary codes;
* a :class:`Decisions` record the lowering stage consumes; and
* an ordered list of :class:`PassNote` entries — every rewrite that was
  applied, declined, or retained, with the cost-model estimates behind
  each cost-guided choice. ``Engine.explain`` renders these verbatim.

Pass ordering is fixed:

1. **bind-dictionary-literals** (all strategies) — must run first so the
   statistics passes can evaluate predicates on data samples;
2. **pushdown** (interpreter/datacentric/hybrid) — the baseline
   strategies keep every predicate at the scan, by construction;
3. **bitmap-semijoin** (swole, §III-D) — per pure semijoin, choose the
   positional-bitmap build flavour via the cost model;
4. **groupjoin** (swole, §III-E) — eager-aggregation rewrite when the
   cost model prefers it and the build side is a filtered scan;
5. **aggregation** (swole, §III-A/B) — value/key masking vs the hybrid
   fallback for the terminal aggregation;
6. **access-merging** (swole, §III-C) — only meaningful under masked
   aggregation, hence last.

Cost-guided passes call the public ``choose_*`` helpers of
:mod:`repro.core.planner`, so the pass framework and the legacy
``plan_query`` planner can never disagree about a decision. A new
technique registers here by appending a pass function to
``_SWOLE_PASSES`` (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core import cost_models as cm
from ..core import planner as P
from ..engine.costing import StatsOverride
from ..engine.machine import MachineModel
from ..errors import PlanError, StorageError
from ..plan.expressions import (
    And,
    Arith,
    Case,
    Col,
    Compare,
    Const,
    DictEq,
    DictIn,
    DictPrefix,
    Expr,
    InSet,
    Or,
    col_refs,
)
from ..storage.database import Database
from .ops import (
    JOIN_NODES,
    DisjunctJoin,
    ExistsJoin,
    Filter,
    GroupByAgg,
    Join,
    LogicalPlan,
    OuterGroupJoin,
    PlanNode,
    Project,
    Scan,
    base_table,
    is_groupjoin,
    spine,
    spine_filters,
    spine_joins,
    validate,
)

#: Aggregation lowering modes (physical vocabulary, per strategy).
CONDITIONAL = "conditional"  # branch + conditional reads (datacentric)
GATHERED = "gathered"  # selection vector + gathers (hybrid fallback)
VALUE_MASK = "value_mask"  # §III-A
KEY_MASK = "key_mask"  # §III-B

#: Join lowering modes.
HASH_JOIN = "hash"
BITMAP_MASK = P.BITMAP_MASK
BITMAP_OFFSETS = P.BITMAP_OFFSETS

_SAMPLE_ROWS = 65536


@dataclass(frozen=True)
class PassNote:
    """One pass outcome: applied / declined / retained, with estimates."""

    pass_name: str
    action: str
    detail: str = ""
    estimates: Tuple[Tuple[str, float], ...] = ()

    def describe(self) -> str:
        text = f"[{self.pass_name}] {self.action}"
        if self.detail:
            text += f" — {self.detail}"
        if self.estimates:
            costs = ", ".join(
                f"{name}={value:.1f}" for name, value in self.estimates
            )
            text += f" (est cycles: {costs})"
        return text

    @property
    def estimated_cycles(self) -> Optional[float]:
        """Cycle estimate of the candidate this pass chose.

        Cost-guided passes record every candidate's estimate; the
        chooser always picks the cheapest, so the minimum is the cycles
        the plan was priced with. ``None`` for passes without estimates
        (binding, unconditional rewrites). The adaptive loop pairs this
        with the observed cycles in ``Engine.explain()`` once feedback
        exists.
        """
        if not self.estimates:
            return None
        return min(value for _, value in self.estimates)


@dataclass
class Decisions:
    """What the lowering stage needs to know, one field per dimension."""

    agg_mode: str = CONDITIONAL
    merged_columns: Tuple[str, ...] = ()
    join_modes: Dict[PlanNode, str] = field(default_factory=dict)
    groupjoin_mode: Optional[str] = None  # P.GROUPJOIN | P.EAGER | None
    outer_mode: str = CONDITIONAL  # OuterGroupJoin count-delta mode
    has_outer: bool = False
    group_cardinality: int = 1
    #: Access-encoding choice: table -> ((column, codec description),
    #: ...) naming the columns the scan serves as physical codes, with
    #: decode deferred to materialization points. Lowering stamps these
    #: onto the table's pipelines.
    encodings: Dict[str, Tuple[Tuple[str, str], ...]] = field(
        default_factory=dict
    )
    #: Physical scan width of every encoded column — what the cost
    #: model should price a sequential read of that column at.
    encoded_widths: Dict[Tuple[str, str], int] = field(
        default_factory=dict
    )
    #: Statistics the root decisions were priced with (after any
    #: :class:`~repro.engine.costing.StatsOverride`); the adaptive
    #: re-optimizer compares these against measured values to detect
    #: drift. Informational — :meth:`describe` does not render them.
    estimated_stats: Dict[str, float] = field(default_factory=dict)

    def describe(self) -> str:
        parts = [f"aggregation={self.agg_mode}"]
        if self.merged_columns:
            parts.append(f"access_merging={list(self.merged_columns)}")
        for join, mode in self.join_modes.items():
            parts.append(f"join({join.fk_column})={mode}")
        if self.groupjoin_mode is not None:
            parts.append(f"groupjoin={self.groupjoin_mode}")
        if self.has_outer:
            parts.append(f"outer_groupjoin={self.outer_mode}")
        if self.encodings:
            encoded = {
                table: [column for column, _ in columns]
                for table, columns in sorted(self.encodings.items())
                if columns
            }
            if encoded:
                parts.append(f"encoded_scans={encoded}")
        return ", ".join(parts)


# ---------------------------------------------------------------------------
# Pass 1: bind dictionary literals
# ---------------------------------------------------------------------------


def _bind_expr(
    expr: Expr, table: str, db: Database, notes: List[PassNote]
) -> Expr:
    if isinstance(expr, DictEq):
        column = db.table(table).column(expr.column)
        try:
            code = column.code_for(expr.value)
        except StorageError:
            notes.append(
                PassNote(
                    "bind-dictionary-literals",
                    "folded",
                    f"{expr.column} == {expr.value!r}: not in dictionary, "
                    "always false",
                )
            )
            return InSet(Col(expr.column), ())
        notes.append(
            PassNote(
                "bind-dictionary-literals",
                "bound",
                f"{expr.column} == {expr.value!r} -> code {code}",
            )
        )
        return Compare(Col(expr.column), "==", Const(code))
    if isinstance(expr, DictIn):
        column = db.table(table).column(expr.column)
        codes = []
        for value in expr.values:
            try:
                codes.append(column.code_for(value))
            except StorageError:
                continue
        notes.append(
            PassNote(
                "bind-dictionary-literals",
                "bound",
                f"{expr.column} IN {list(expr.values)} -> "
                f"{len(codes)} codes",
            )
        )
        return InSet(Col(expr.column), tuple(codes))
    if isinstance(expr, DictPrefix):
        column = db.table(table).column(expr.column)
        if column.dictionary is None:
            raise PlanError(
                f"column {expr.column!r} has no dictionary to prefix-match"
            )
        codes = tuple(
            code
            for code, text in enumerate(column.dictionary)
            if text.startswith(expr.prefix)
        )
        notes.append(
            PassNote(
                "bind-dictionary-literals",
                "bound",
                f"{expr.column} LIKE {expr.prefix!r}% -> {len(codes)} of "
                f"{len(column.dictionary)} codes",
            )
        )
        return InSet(Col(expr.column), codes)
    if isinstance(expr, Compare):
        return Compare(
            _bind_expr(expr.left, table, db, notes),
            expr.op,
            _bind_expr(expr.right, table, db, notes),
        )
    if isinstance(expr, Arith):
        return Arith(
            expr.op,
            _bind_expr(expr.left, table, db, notes),
            _bind_expr(expr.right, table, db, notes),
        )
    if isinstance(expr, And):
        return And([_bind_expr(t, table, db, notes) for t in expr.terms])
    if isinstance(expr, Or):
        return Or([_bind_expr(t, table, db, notes) for t in expr.terms])
    if isinstance(expr, Case):
        return Case(
            [
                (
                    _bind_expr(cond, table, db, notes),
                    _bind_expr(value, table, db, notes),
                )
                for cond, value in expr.branches
            ],
            _bind_expr(expr.default, table, db, notes),
        )
    if isinstance(expr, InSet):
        return InSet(_bind_expr(expr.child, table, db, notes), expr.values)
    return expr


def _bind_node(
    node: PlanNode, db: Database, notes: List[PassNote]
) -> PlanNode:
    if isinstance(node, Scan):
        return node
    if isinstance(node, Filter):
        child = _bind_node(node.child, db, notes)
        table = base_table(child)
        return Filter(child, _bind_expr(node.predicate, table, db, notes))
    if isinstance(node, Project):
        child = _bind_node(node.child, db, notes)
        table = base_table(child)
        return Project(
            child,
            [
                (name, _bind_expr(expr, table, db, notes))
                for name, expr in node.outputs
            ],
        )
    if isinstance(node, (Join, ExistsJoin, OuterGroupJoin)):
        return replace(
            node,
            probe=_bind_node(node.probe, db, notes),
            build=_bind_node(node.build, db, notes),
        )
    if isinstance(node, DisjunctJoin):
        probe = _bind_node(node.probe, db, notes)
        build = _bind_node(node.build, db, notes)
        probe_table = base_table(probe)
        build_table = base_table(build)
        disjuncts = tuple(
            (
                _bind_expr(build_pred, build_table, db, notes),
                _bind_expr(probe_pred, probe_table, db, notes),
            )
            for build_pred, probe_pred in node.disjuncts
        )
        return replace(
            node, probe=probe, build=build, disjuncts=disjuncts
        )
    if isinstance(node, GroupByAgg):
        child = _bind_node(node.child, db, notes)
        table = base_table(child)
        aggregates = tuple(
            replace(agg, expr=_bind_expr(agg.expr, table, db, notes))
            if agg.expr is not None
            else agg
            for agg in node.aggregates
        )
        key = (
            _bind_expr(node.key, table, db, notes)
            if node.key is not None
            else None
        )
        return GroupByAgg(
            child=child,
            aggregates=aggregates,
            key=key,
            key_name=node.key_name,
        )
    raise PlanError(f"unknown plan node {node!r}")


# ---------------------------------------------------------------------------
# Statistics over the tree (prefix samples, like plan.logical.sample_stats)
# ---------------------------------------------------------------------------


@dataclass
class SpineStats:
    """Sampled statistics for one probe spine (a pipeline-to-be)."""

    table: str
    num_rows: int
    local_selectivity: float  # spine filters only
    match_fraction: float  # product of semijoin survival fractions

    @property
    def survival(self) -> float:
        """Fraction of scanned rows that reach the spine's consumer."""
        return self.local_selectivity * self.match_fraction


def _sample(db: Database, table: str) -> Dict[str, np.ndarray]:
    data = db.data(table)
    return {name: values[:_SAMPLE_ROWS] for name, values in data.items()}


def _local_selectivity(node: PlanNode, db: Database) -> float:
    """Selectivity of the spine's filters over a base-table prefix sample.

    Conjuncts referencing columns the base table does not have (carried
    or projected columns) contribute 1.0 — the join-match fraction
    accounts for those rows separately.
    """
    table = base_table(node)
    sample = _sample(db, table)
    if not sample or not next(iter(sample.values())).shape[0]:
        return 1.0
    selectivity = 1.0
    for term in spine_filters(node):
        if not term.columns() <= set(sample):
            continue
        selectivity *= float(
            np.asarray(term.evaluate(sample), dtype=bool).mean()
        )
    return selectivity


def spine_stats(node: PlanNode, db: Database) -> SpineStats:
    """Sampled statistics for a subtree's probe spine.

    The match fraction of a semijoin is the build side's *survival*
    fraction: with uniform FK references (true of all generated data),
    the probability a probe row's FK hits a surviving build row equals
    the fraction of build rows that survive.
    """
    table = base_table(node)
    num_rows = db.table(table).num_rows
    match = 1.0
    for step in spine(node):
        if isinstance(step, Join):
            match *= spine_stats(step.build, db).survival
        elif isinstance(step, ExistsJoin):
            # P(some referencing build row survives) under uniform FK
            # fan-out: 1 - (1 - s)^(builds per probe row).
            build = spine_stats(step.build, db)
            fanout = build.num_rows / max(num_rows, 1)
            miss = (1.0 - build.survival) ** fanout
            match *= miss if step.anti else 1.0 - miss
        elif isinstance(step, DisjunctJoin):
            match *= _disjunct_match_fraction(step, db)
        # OuterGroupJoin rekeys the stream rather than filtering it;
        # its statistics belong to the distribution scan, not here.
    return SpineStats(
        table=table,
        num_rows=num_rows,
        local_selectivity=_local_selectivity(node, db),
        match_fraction=match,
    )


def _override_stats(
    stats: SpineStats, overrides: Optional[StatsOverride]
) -> SpineStats:
    """Replace sampled spine statistics with measured ones, when given.

    A measured ``selectivity`` is the observed survival of the probe
    spine, so it substitutes for the sampled local selectivity (the
    match fraction stays unless measured separately).
    """
    if overrides is None:
        return stats
    local = (
        overrides.selectivity
        if overrides.selectivity is not None
        else stats.local_selectivity
    )
    match = (
        overrides.match_fraction
        if overrides.match_fraction is not None
        else stats.match_fraction
    )
    return SpineStats(
        table=stats.table,
        num_rows=stats.num_rows,
        local_selectivity=local,
        match_fraction=match,
    )


def _disjunct_match_fraction(join: DisjunctJoin, db: Database) -> float:
    """Sampled probability a probe row survives some disjunct."""
    build_sample = _sample(db, base_table(join.build))
    probe_sample = _sample(db, base_table(join.probe))
    if not build_sample or not probe_sample:
        return 1.0
    miss = 1.0
    for build_pred, probe_pred in join.disjuncts:
        build_sel = probe_sel = 1.0
        if build_pred.columns() <= set(build_sample):
            build_sel = float(
                np.asarray(
                    build_pred.evaluate(build_sample), dtype=bool
                ).mean()
            )
        if probe_pred.columns() <= set(probe_sample):
            probe_sel = float(
                np.asarray(
                    probe_pred.evaluate(probe_sample), dtype=bool
                ).mean()
            )
        miss *= 1.0 - build_sel * probe_sel
    return max(1.0 - miss, 0.0)


def _width_of(
    db: Database,
    table: str,
    column: str,
    decisions: Optional[Decisions] = None,
) -> int:
    """Physical byte width a scan of ``column`` streams at.

    When the access-encoding pass chose to serve the column as codes,
    the scan streams the *code* width, and every downstream cost
    estimate should price reads at that width. Derived (carried or
    projected) columns are 8 bytes.
    """
    if decisions is not None:
        encoded = decisions.encoded_widths.get((table, column))
        if encoded is not None:
            return encoded
    table_obj = db.table(table)
    if column in table_obj:
        return int(table_obj[column].dtype.itemsize)
    return 8


def _carried_origin_table(
    node: PlanNode, db: Database, column: str
) -> Optional[str]:
    """The base table that physically stores a (possibly carried) column.

    A group key over a carried column (Q5 groups lineitem by the
    carried ``s_nationkey``) is sampled on the build-side table the
    carry chain bottoms out in.
    """
    table = base_table(node)
    if column in db.table(table):
        return table
    for join in all_joins(node):
        if column in join.carry:
            found = _carried_origin_table(join.build, db, column)
            if found is not None:
                return found
    return None


def _group_cardinality(
    root: GroupByAgg, db: Database, table: str
) -> int:
    if root.key is None:
        return 1
    sample = _sample(db, table)
    if not root.key.columns() <= set(sample):
        key_cols = tuple(root.key.columns())
        origin = (
            _carried_origin_table(root.child, db, key_cols[0])
            if len(key_cols) == 1
            else None
        )
        if origin is None:
            return 1
        table = origin
        sample = _sample(db, table)
    take = int(next(iter(sample.values())).shape[0])
    if not take:
        return 1
    keys = np.asarray(root.key.evaluate(sample))
    cardinality = int(np.unique(keys).shape[0])
    num_rows = db.table(table).num_rows
    if take < num_rows:
        # Prefix samples under-count distinct values; extrapolate with
        # the standard birthday-style estimator (cf. sample_stats).
        if cardinality / take > 0.95:
            cardinality = int(cardinality * num_rows / take)
    return max(cardinality, 1)


def _root_model_inputs(
    root: GroupByAgg,
    db: Database,
    stats: SpineStats,
    decisions: Optional[Decisions] = None,
) -> cm.ModelInputs:
    """Model inputs for the terminal aggregation decision."""
    table = stats.table
    pred_widths = tuple(
        _width_of(db, table, name, decisions)
        for conj in spine_filters(root.child)
        for name in sorted(conj.columns())
    )
    agg_widths = tuple(
        _width_of(db, table, name, decisions)
        for agg in root.aggregates
        if agg.expr is not None
        for name in col_refs(agg.expr)
    )
    agg_ops: Tuple[str, ...] = ()
    for agg in root.aggregates:
        if agg.expr is not None:
            from .expressions import arith_ops

            agg_ops += arith_ops(agg.expr)
    merged = merged_columns(root)
    merged_widths = tuple(
        _width_of(db, table, name, decisions) for name in merged
    )
    key_cols = tuple(sorted(root.key.columns())) if root.key else ()
    group_width = max(
        (_width_of(db, table, name, decisions) for name in key_cols),
        default=8,
    )
    return cm.ModelInputs(
        num_rows=stats.num_rows,
        # Combined selectivity: the masked/conditional aggregation sees
        # rows surviving both local filters and upstream semijoins
        # (mirrors planner.semijoin_combined_inputs).
        selectivity=stats.survival,
        pred_widths=pred_widths,
        agg_widths=agg_widths,
        agg_ops=agg_ops,
        num_aggs=len(root.aggregates),
        group_width=group_width,
        group_cardinality=_group_cardinality(root, db, table),
        merged_widths=merged_widths,
    )


def merged_columns(root: GroupByAgg) -> Tuple[str, ...]:
    """Columns read by both the spine filters and an aggregate (§III-C)."""
    pred_cols = set()
    for term in spine_filters(root.child):
        pred_cols |= term.columns()
    agg_cols = set()
    for agg in root.aggregates:
        if agg.expr is not None:
            agg_cols |= agg.expr.columns()
    return tuple(sorted(pred_cols & agg_cols))


# ---------------------------------------------------------------------------
# Access-encoding pass (all strategies)
# ---------------------------------------------------------------------------


def _referenced_columns(node: PlanNode) -> set:
    """Every column name a subtree's pipelines will physically read."""
    cols: set = set()
    for term in spine_filters(node):
        cols |= term.columns()
    for step in spine(node):
        if isinstance(step, JOIN_NODES):
            cols.add(step.fk_column)
            cols.add(step.pk_column)
            cols |= _referenced_columns(step.build)
        if isinstance(step, Join):
            cols |= set(step.carry)
        elif isinstance(step, DisjunctJoin):
            for build_pred, probe_pred in step.disjuncts:
                cols |= build_pred.columns() | probe_pred.columns()
    return cols


def _pass_access_encoding(
    root: GroupByAgg,
    db: Database,
    machine: MachineModel,
    decisions: Decisions,
    notes: List[PassNote],
    stats: SpineStats,
) -> None:
    """Choose compressed vs decoded scans, per referenced column.

    Every codec here is value-preserving in code space (dictionary
    predicates were already translated to codes by the binding pass;
    null-suppressed ints and fixed-point decimals compare as the same
    integers at narrower width), so any predicate a decoded scan could
    answer, the encoded scan answers too. The choice is therefore
    purely cost-based: stream the narrow codes and pay a decode at each
    materialization point, or stream the decoded values. Runs for all
    strategies — access encoding is orthogonal to operator choice.
    """
    referenced = _referenced_columns(root.child)
    for agg in root.aggregates:
        if agg.expr is not None:
            referenced |= agg.expr.columns()
    if root.key is not None:
        referenced |= root.key.columns()

    tables: List[str] = []

    def walk(node: PlanNode) -> None:
        for step in spine(node):
            if isinstance(step, JOIN_NODES):
                walk(step.build)
        table = base_table(node)
        if table not in tables:
            tables.append(table)

    walk(root.child)

    for table in tables:
        table_obj = db.table(table)
        num_rows = table_obj.num_rows
        # The probe spine's survival bounds how many decoded values
        # ever materialize; build pipelines decode their full survivor
        # set, so price their decode term conservatively at 1.0.
        selectivity = stats.survival if table == stats.table else 1.0
        chosen: List[Tuple[str, str]] = []
        decoded: List[str] = []
        encoded_total = decoded_total = 0.0
        for col in table_obj.iter_columns():
            if col.name not in referenced:
                continue
            enc = col.encoding
            if not enc.compressed:
                continue
            enc_cost = cm.encoded_scan_cost(
                machine, num_rows, enc.width, selectivity
            )
            dec_cost = cm.decoded_scan_cost(
                machine, num_rows, enc.decoded_width
            )
            if enc_cost < dec_cost:
                chosen.append((col.name, enc.describe()))
                decisions.encoded_widths[(table, col.name)] = enc.width
                encoded_total += enc_cost
                decoded_total += dec_cost
            else:
                decoded.append(col.name)
        if chosen:
            decisions.encodings[table] = tuple(chosen)
            detail = (
                f"{table}: scan "
                f"{[f'{name} {desc}' for name, desc in chosen]} "
                "in code space, decode at materialization"
            )
            if decoded:
                detail += f"; {decoded} decode early"
            notes.append(
                PassNote(
                    "access-encoding",
                    "applied",
                    detail,
                    estimates=(
                        ("encoded", encoded_total),
                        ("decoded", decoded_total),
                    ),
                )
            )
        else:
            notes.append(
                PassNote(
                    "access-encoding",
                    "declined",
                    f"{table}: no referenced column compresses below "
                    "its stored width",
                )
            )


# ---------------------------------------------------------------------------
# Strategy passes
# ---------------------------------------------------------------------------


def _build_is_filtered_scan(node: PlanNode) -> bool:
    """Eager aggregation precondition: build side is Filter*(Scan)."""
    while isinstance(node, Filter):
        node = node.child
    return isinstance(node, Scan)


def _build_filters(node: PlanNode) -> bool:
    """Whether a build subtree restricts its stream at all."""
    return bool(spine_filters(node)) or bool(spine_joins(node))


def all_joins(node: PlanNode) -> Tuple[Join, ...]:
    """Every join in a subtree, build-nested joins before their owner."""
    found: List[Join] = []
    for join in spine_joins(node):
        found.extend(all_joins(join.build))
        found.append(join)
    return tuple(found)


def _pass_bitmap_semijoins(
    root: GroupByAgg,
    db: Database,
    machine: MachineModel,
    decisions: Decisions,
    notes: List[PassNote],
    overrides: Optional[StatsOverride] = None,
) -> None:
    """§III-D: replace hash semijoins with positional bitmaps.

    Visits *every* join in the tree — including ones on build-side
    spines (Q3's customer semijoin feeds the orders build pipeline) —
    not just the probe spine.
    """
    joins = spine_joins(root.child)
    groupjoin_target = (
        joins[-1] if joins and is_groupjoin(root) else None
    )
    for join in all_joins(root.child):
        if join is groupjoin_target:
            continue
        if not join.is_semijoin and not _build_filters(join.build):
            # An unfiltered index join (Q14's part lookup) keeps its
            # direct FK-index gather: a bitmap would cost a build scan
            # without filtering anything.
            notes.append(
                PassNote(
                    "bitmap-semijoin",
                    "declined",
                    f"{join.fk_column} index join has an unfiltered "
                    "build side; direct FK gather",
                )
            )
            continue
        probe_table = base_table(join.probe)
        if not db.has_fk_index(probe_table, join.fk_column):
            notes.append(
                PassNote(
                    "bitmap-semijoin",
                    "declined",
                    f"no FK index on {probe_table}.{join.fk_column}",
                )
            )
            continue
        build = spine_stats(join.build, db)
        inputs = cm.ModelInputs(
            num_rows=db.table(probe_table).num_rows,
            selectivity=1.0,
            build_rows=build.num_rows,
            build_selectivity=build.survival,
            build_pred_widths=tuple(
                _width_of(db, build.table, name, decisions)
                for conj in spine_filters(join.build)
                for name in sorted(conj.columns())
            ),
        )
        mode, estimates = P.choose_semijoin_build(machine, inputs)
        decisions.join_modes[join] = mode
        kind = (
            "semijoin"
            if join.is_semijoin
            else f"carry join, {list(join.carry)} gathered late"
        )
        notes.append(
            PassNote(
                "bitmap-semijoin",
                "applied",
                f"{probe_table}.{join.fk_column} {kind} -> positional "
                f"bitmap, {mode} build",
                estimates=tuple(sorted(estimates.items())),
            )
        )


def _pass_groupjoin(
    root: GroupByAgg,
    db: Database,
    machine: MachineModel,
    decisions: Decisions,
    notes: List[PassNote],
    overrides: Optional[StatsOverride] = None,
) -> None:
    """§III-E: eager-aggregation rewrite of the terminal groupjoin."""
    if not is_groupjoin(root):
        return
    joins = spine_joins(root.child)
    target = joins[-1]
    probe = _override_stats(spine_stats(root.child, db), overrides)
    build = spine_stats(target.build, db)
    if not _build_is_filtered_scan(target.build):
        decisions.groupjoin_mode = P.GROUPJOIN
        notes.append(
            PassNote(
                "eager-aggregation",
                "declined",
                "build side is not a filtered scan; keeping the "
                "hash groupjoin",
            )
        )
        return
    table = probe.table
    inputs = cm.ModelInputs(
        num_rows=probe.num_rows,
        selectivity=probe.local_selectivity,
        pred_widths=tuple(
            _width_of(db, table, name, decisions)
            for conj in spine_filters(root.child)
            for name in sorted(conj.columns())
        ),
        agg_widths=tuple(
            _width_of(db, table, name, decisions)
            for agg in root.aggregates
            if agg.expr is not None
            for name in col_refs(agg.expr)
        ),
        agg_ops=_root_model_inputs(root, db, probe, decisions).agg_ops,
        num_aggs=len(root.aggregates),
        build_rows=build.num_rows,
        build_selectivity=build.local_selectivity,
        build_pred_widths=tuple(
            _width_of(db, build.table, name, decisions)
            for conj in spine_filters(target.build)
            for name in sorted(conj.columns())
        ),
        pk_width=_width_of(db, build.table, target.pk_column, decisions),
        fk_width=_width_of(db, table, target.fk_column, decisions),
        join_match_fraction=build.local_selectivity,
    )
    mode, estimates = P.choose_groupjoin_mode(machine, inputs)
    decisions.groupjoin_mode = mode
    action = "applied" if mode == P.EAGER else "declined"
    detail = (
        "aggregate before the join, delete-cleanup after"
        if mode == P.EAGER
        else "hash groupjoin is cheaper on these statistics"
    )
    notes.append(
        PassNote(
            "eager-aggregation",
            action,
            detail,
            estimates=tuple(sorted(estimates.items())),
        )
    )


def _pass_aggregation(
    root: GroupByAgg,
    db: Database,
    machine: MachineModel,
    decisions: Decisions,
    notes: List[PassNote],
    overrides: Optional[StatsOverride] = None,
) -> None:
    """§III-A/§III-B: masked aggregation vs the hybrid fallback."""
    if decisions.groupjoin_mode is not None:
        # The groupjoin pass owns the terminal aggregation; the probe
        # adds into the build-side hash table either way.
        decisions.agg_mode = GATHERED
        return
    if decisions.has_outer:
        # An outer groupjoin rekeys the stream: the terminal grouping
        # runs over its count table (the distribution scan), which the
        # outer-groupjoin pass owns.
        decisions.agg_mode = GATHERED
        return
    stats = _override_stats(spine_stats(root.child, db), overrides)
    inputs = _root_model_inputs(root, db, stats, decisions)
    if overrides is not None and overrides.group_cardinality is not None:
        inputs = replace(
            inputs, group_cardinality=max(overrides.group_cardinality, 1)
        )
    decisions.group_cardinality = inputs.group_cardinality
    carried = _carried_columns(root)
    if root.key is None:
        choice, estimates = P.choose_aggregation_scalar(machine, inputs)
    else:
        choice, estimates = P.choose_aggregation_grouped(machine, inputs)
    mode = {
        P.HYBRID: GATHERED,
        P.VALUE_MASKING: VALUE_MASK,
        P.KEY_MASKING: KEY_MASK,
    }[choice]
    if mode in (VALUE_MASK, KEY_MASK) and carried:
        # Carried columns only exist for index-matched rows; masked
        # (unconditional) evaluation would read values that were never
        # gathered. Fall back to the selective path.
        notes.append(
            PassNote(
                "aggregation",
                "declined",
                f"masked evaluation needs full columns, but "
                f"{list(carried)} are index-carried; falling back to "
                "gathered",
                estimates=tuple(sorted(estimates.items())),
            )
        )
        decisions.agg_mode = GATHERED
        return
    decisions.agg_mode = mode
    action = "retained" if mode == GATHERED else "applied"
    detail = {
        GATHERED: "hybrid pushdown aggregation is cheapest",
        VALUE_MASK: "evaluate unconditionally, mask non-qualifying rows",
        KEY_MASK: "blend non-qualifying keys to the throwaway slot",
    }[mode]
    notes.append(
        PassNote(
            "aggregation",
            action,
            detail,
            estimates=tuple(sorted(estimates.items())),
        )
    )


def _carried_columns(root: GroupByAgg) -> Tuple[str, ...]:
    carried = set()
    for join in spine_joins(root.child):
        carried |= set(join.carry)
    used = set()
    for agg in root.aggregates:
        if agg.expr is not None:
            used |= agg.expr.columns()
    if root.key is not None:
        used |= root.key.columns()
    return tuple(sorted(carried & used))


def _pass_access_merging(
    root: GroupByAgg,
    db: Database,
    machine: MachineModel,
    decisions: Decisions,
    notes: List[PassNote],
    overrides: Optional[StatsOverride] = None,
) -> None:
    """§III-C: share reads between the prepass and the aggregation."""
    if decisions.agg_mode not in (VALUE_MASK, KEY_MASK):
        return
    merged = merged_columns(root)
    if not merged:
        return
    decisions.merged_columns = merged
    notes.append(
        PassNote(
            "access-merging",
            "applied",
            f"columns {list(merged)} read once for predicate and "
            "aggregate ('always better')",
        )
    )


def _pass_exists(
    root: GroupByAgg,
    db: Database,
    machine: MachineModel,
    decisions: Decisions,
    notes: List[PassNote],
    overrides: Optional[StatsOverride] = None,
) -> None:
    """Existential/anti semijoin (Q4): positional bitmap over the probe.

    The build side is the FK (large) side, so the bitmap is indexed by
    *probe* row position and set through the build table's FK index —
    the probe then tests one bit per row instead of probing a hash
    table of FK keys.
    """
    for step in spine(root.child):
        if not isinstance(step, ExistsJoin):
            continue
        build_table = base_table(step.build)
        probe_table = base_table(step.probe)
        if not db.has_fk_index(build_table, step.fk_column):
            notes.append(
                PassNote(
                    "exists-bitmap",
                    "declined",
                    f"no FK index on {build_table}.{step.fk_column}; "
                    "hash build over qualifying FK keys",
                )
            )
            continue
        build = spine_stats(step.build, db)
        inputs = cm.ModelInputs(
            num_rows=db.table(probe_table).num_rows,
            selectivity=1.0,
            build_rows=build.num_rows,
            build_selectivity=build.survival,
            build_pred_widths=tuple(
                _width_of(db, build.table, name, decisions)
                for conj in spine_filters(step.build)
                for name in sorted(conj.columns())
            ),
        )
        mode, estimates = P.choose_semijoin_build(machine, inputs)
        decisions.join_modes[step] = mode
        kind = "anti" if step.anti else "exists"
        notes.append(
            PassNote(
                "exists-bitmap",
                "applied",
                f"{probe_table}.{step.pk_column} {kind} semijoin -> "
                f"positional bitmap over probe rows, {mode} build",
                estimates=tuple(sorted(estimates.items())),
            )
        )


def _pass_outer_groupjoin(
    root: GroupByAgg,
    db: Database,
    machine: MachineModel,
    decisions: Decisions,
    notes: List[PassNote],
    overrides: Optional[StatsOverride] = None,
) -> None:
    """Outer groupjoin (Q13): masked count deltas vs selective counts.

    Unmatched build rows are preserved either way — the distribution
    scan folds hash-table misses into the zero bucket. The choice here
    is how the probe stream feeds the count table.
    """
    for step in spine(root.child):
        if not isinstance(step, OuterGroupJoin):
            continue
        probe = spine_stats(step.probe, db)
        build_table = base_table(step.build)
        inputs = cm.ModelInputs(
            num_rows=probe.num_rows,
            selectivity=probe.survival,
            pred_widths=tuple(
                _width_of(db, probe.table, name, decisions)
                for conj in spine_filters(step.probe)
                for name in sorted(conj.columns())
            ),
            num_aggs=1,
            group_width=_width_of(
                db, probe.table, step.fk_column, decisions
            ),
            group_cardinality=db.table(build_table).num_rows,
        )
        choice, estimates = P.choose_aggregation_grouped(machine, inputs)
        decisions.outer_mode = {
            P.HYBRID: GATHERED,
            P.VALUE_MASKING: VALUE_MASK,
            P.KEY_MASKING: KEY_MASK,
        }[choice]
        action = (
            "retained" if decisions.outer_mode == GATHERED else "applied"
        )
        notes.append(
            PassNote(
                "outer-groupjoin",
                action,
                f"count {probe.table} rows per {build_table} key with "
                f"{decisions.outer_mode} deltas; unmatched keys fold "
                "into the zero bucket",
                estimates=tuple(sorted(estimates.items())),
            )
        )


def _pass_disjunct(
    root: GroupByAgg,
    db: Database,
    machine: MachineModel,
    decisions: Decisions,
    notes: List[PassNote],
    overrides: Optional[StatsOverride] = None,
) -> None:
    """Disjunctive join filter (Q19): N bitmaps from one build scan.

    Each disjunct's build-side conjunction becomes one positional
    bitmap; all bitmaps are filled in a single sequential pass over the
    build table, and the probe tests its FK bit per disjunct alongside
    the matching probe-side predicate.
    """
    for step in spine(root.child):
        if not isinstance(step, DisjunctJoin):
            continue
        probe_table = base_table(step.probe)
        build_table = base_table(step.build)
        if not db.has_fk_index(probe_table, step.fk_column):
            notes.append(
                PassNote(
                    "disjunct-bitmaps",
                    "declined",
                    f"no FK index on {probe_table}.{step.fk_column}; "
                    "per-row index probes into the build table",
                )
            )
            continue
        build = spine_stats(step.build, db)
        build_cols = sorted(
            {
                name
                for build_pred, _ in step.disjuncts
                for name in build_pred.columns()
            }
        )
        inputs = cm.ModelInputs(
            num_rows=db.table(probe_table).num_rows,
            selectivity=1.0,
            build_rows=build.num_rows,
            build_selectivity=_disjunct_match_fraction(step, db),
            build_pred_widths=tuple(
                _width_of(db, build_table, name, decisions)
                for name in build_cols
            ),
        )
        _, estimates = P.choose_semijoin_build(machine, inputs)
        decisions.join_modes[step] = BITMAP_MASK
        notes.append(
            PassNote(
                "disjunct-bitmaps",
                "applied",
                f"{len(step.disjuncts)} disjunct bitmaps over "
                f"{build_table} filled by one sequential scan; "
                "per-disjunct probe access merged",
                estimates=tuple(sorted(estimates.items())),
            )
        )


#: Swole pass pipeline, in order. A new §III technique lands by
#: appending its pass function here (see DESIGN.md for the contract).
_SWOLE_PASSES = (
    _pass_bitmap_semijoins,
    _pass_exists,
    _pass_disjunct,
    _pass_groupjoin,
    _pass_outer_groupjoin,
    _pass_aggregation,
    _pass_access_merging,
)


def run_passes(
    plan: LogicalPlan,
    db: Database,
    machine: MachineModel,
    strategy: str,
    overrides: Optional[StatsOverride] = None,
    encoding: str = "auto",
) -> Tuple[LogicalPlan, Decisions, List[PassNote]]:
    """Run the strategy's pass pipeline over ``plan``.

    ``overrides`` replaces the prefix-sampled statistics of the probe
    spine with measured ones (the adaptive re-optimizer's hook): every
    cost-guided pass prices its candidates with the measured values,
    and ``decisions.estimated_stats`` records what the plan was priced
    with so later drift checks compare against it.

    ``encoding`` controls the access-encoding pass: ``"auto"`` chooses
    compressed vs decoded scans per referenced column by cost,
    ``"off"`` serves every scan decoded (the pre-compression access
    path, kept for apples-to-apples oracle comparison).

    Returns the bound plan, the lowering decisions, and the pass notes.
    """
    if encoding not in ("auto", "off"):
        raise PlanError(f"unknown encoding mode {encoding!r}")
    validate(plan)
    notes: List[PassNote] = []
    bound_root = _bind_node(plan.root, db, notes)
    bound = LogicalPlan(name=plan.name, root=bound_root)
    validate(bound)
    root = bound.root
    assert isinstance(root, GroupByAgg)

    decisions = Decisions()
    decisions.join_modes = {
        join: HASH_JOIN for join in spine_joins(root.child)
    }
    decisions.group_cardinality = _group_cardinality(
        root, db, base_table(root.child)
    )
    if overrides is not None and overrides.group_cardinality is not None:
        decisions.group_cardinality = max(overrides.group_cardinality, 1)
    if is_groupjoin(root):
        decisions.groupjoin_mode = P.GROUPJOIN
    decisions.has_outer = any(
        isinstance(step, OuterGroupJoin) for step in spine(root.child)
    )
    stats = _override_stats(spine_stats(root.child, db), overrides)
    decisions.estimated_stats = {
        "local_selectivity": stats.local_selectivity,
        "match_fraction": stats.match_fraction,
        "survival": stats.survival,
        "group_cardinality": float(decisions.group_cardinality),
    }

    if strategy in ("interpreter", "datacentric"):
        decisions.agg_mode = CONDITIONAL
        decisions.outer_mode = CONDITIONAL
        notes.append(
            PassNote(
                "pushdown",
                "retained",
                "predicates stay at the scan; tuple-at-a-time branches "
                "(HyPer-style)"
                + (
                    " under a Volcano interpreter"
                    if strategy == "interpreter"
                    else ""
                ),
            )
        )
    elif strategy == "hybrid":
        decisions.agg_mode = GATHERED
        decisions.outer_mode = GATHERED
        notes.append(
            PassNote(
                "pushdown",
                "retained",
                "vectorized prepass + selection vectors at the scan "
                "(Tupleware-style)",
            )
        )
    elif strategy == "swole":
        for pass_fn in _SWOLE_PASSES:
            pass_fn(root, db, machine, decisions, notes, overrides)
    else:
        raise PlanError(f"unknown strategy {strategy!r}")

    # Access-encoding runs last: the operator/mode choices above are
    # priced at stored widths (identical plans whichever way the knob
    # points), then each referenced column independently picks the
    # cheaper physical stream for the plan that will actually run.
    if encoding == "auto":
        _pass_access_encoding(root, db, machine, decisions, notes, stats)
    else:
        notes.append(
            PassNote(
                "access-encoding",
                "off",
                "serving decoded value streams (encoding knob off)",
            )
        )
    return bound, decisions, notes


def spine_tables(plan: LogicalPlan) -> Tuple[str, ...]:
    """Base tables of every pipeline the plan will lower to, probe last.

    Shared build subtrees (Q5 reaches the nation/region chain through
    both customer and supplier) are deduplicated, matching the lowered
    pipeline list.
    """
    tables: List[str] = []
    seen = set()

    def walk(node: PlanNode) -> None:
        for step in spine(node):
            if isinstance(step, JOIN_NODES):
                walk(step.build)
        table = base_table(node)
        if table not in seen:
            seen.add(table)
            tables.append(table)

    root = plan.root
    walk(root.child if isinstance(root, GroupByAgg) else root)
    return tuple(tables)


__all__ = [
    "CONDITIONAL",
    "GATHERED",
    "VALUE_MASK",
    "KEY_MASK",
    "HASH_JOIN",
    "BITMAP_MASK",
    "BITMAP_OFFSETS",
    "Decisions",
    "PassNote",
    "SpineStats",
    "merged_columns",
    "run_passes",
    "spine_stats",
    "spine_tables",
]
