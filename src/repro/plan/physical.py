"""Physical plans — stage 3 of the staged lowering pipeline.

A :class:`PhysicalPlan` is a strategy-specific, executable shape:
an ordered list of :class:`Pipeline` objects (build pipelines first,
the probe pipeline last), each a sequence of physical operators over
one base table's column stream. The lowering stage
(:mod:`repro.codegen.lower`) produces it from a bound logical plan
plus the pass :class:`~repro.plan.passes.Decisions`; the executor
(:mod:`repro.codegen.physexec`) interprets it into kernel calls that
do the real NumPy work and emit the priced access events.

The operator vocabulary is deliberately small — exactly the shapes the
paper's strategies generate:

========================  =================================================
operator                  lowers from
========================  =================================================
:class:`FilterStage`      Filter (branching or SIMD-prepass form)
:class:`SemiHashBuild`    semijoin build side (hash set of keys)
:class:`GroupBuild`       groupjoin build side (keys + aggregate slots)
:class:`BitmapBuild`      semijoin build side under §III-D
:class:`HashSemiProbe`    semijoin probe against a hash set
:class:`BitmapSemiProbe`  semijoin probe against a positional bitmap
:class:`ColumnMaterialize` build-side Project (full-length derived column)
:class:`IndexGather`      index join carrying build columns via FK index
:class:`GroupJoinAgg`     groupjoin probe adding straight into the build HT
:class:`ScalarAgg`        terminal scalar aggregation (per agg-mode)
:class:`GroupAgg`         terminal grouped aggregation (per agg-mode)
:class:`EagerAggregate`   groupjoin rewritten per §III-E (aggregate early,
                          delete-cleanup after)
========================  =================================================

``access`` distinguishes tuple-at-a-time branching code (datacentric /
interpreter) from selection-vector code (hybrid / swole); the masked
aggregation modes come from :mod:`repro.plan.passes`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .expressions import Expr, compare_count
from .logical import AggSpec, Query

#: Access styles for non-terminal operators.
BRANCH = "branch"  # tuple-at-a-time, conditional reads, branch events
VECTOR = "vector"  # selection vectors + gathers


class PhysicalOp:
    """Base class of physical operators; ``describe`` feeds explain."""

    def describe(self) -> str:
        raise NotImplementedError


def _aggs_text(aggregates: Tuple[AggSpec, ...]) -> str:
    return ", ".join(
        f"{a.name}={a.func}"
        + (f"({a.expr.to_c()})" if a.expr is not None else "(*)")
        for a in aggregates
    )


@dataclass(frozen=True)
class FilterStage(PhysicalOp):
    """Predicate evaluation over the pipeline's stream.

    ``mode == "branch"``: short-circuit conjuncts, conditional reads and
    a branch per conjunct (the data-centric form). ``mode == "prepass"``:
    SIMD evaluation of every conjunct over the whole column, ANDed into
    a 0/1 mask (the hybrid/SWOLE form).
    """

    conjuncts: Tuple[Expr, ...]
    mode: str  # "branch" | "prepass"

    def describe(self) -> str:
        n_cmps = sum(max(compare_count(c), 1) for c in self.conjuncts)
        preds = " AND ".join(c.to_c() for c in self.conjuncts)
        return (
            f"Filter[{self.mode}] {preds} "
            f"({len(self.conjuncts)} conjuncts, {n_cmps} compares)"
        )


@dataclass(frozen=True)
class SemiHashBuild(PhysicalOp):
    """Terminal build op: hash set of surviving keys (semijoin)."""

    state: str
    key_column: str
    access: str = VECTOR

    def describe(self) -> str:
        return (
            f"SemiHashBuild[{self.access}] keys={self.key_column} "
            f"-> ht[{self.state}]"
        )


@dataclass(frozen=True)
class GroupBuild(PhysicalOp):
    """Terminal build op: keys plus aggregate slots (hash groupjoin)."""

    state: str
    key_column: str
    num_aggs: int
    access: str = VECTOR

    def describe(self) -> str:
        return (
            f"GroupBuild[{self.access}] keys={self.key_column} "
            f"aggs={self.num_aggs}+count -> ht[{self.state}]"
        )


@dataclass(frozen=True)
class BitmapBuild(PhysicalOp):
    """Terminal build op: positional bitmap over build-row offsets."""

    state: str
    mode: str  # "mask" (unconditional write) | "offsets" (selective set)

    def describe(self) -> str:
        return f"BitmapBuild[{self.mode}] -> bitmap[{self.state}]"


@dataclass(frozen=True)
class HashSemiProbe(PhysicalOp):
    """Narrow the stream to rows whose FK hits the build hash set."""

    state: str
    fk_column: str
    access: str = VECTOR

    def describe(self) -> str:
        return (
            f"HashSemiProbe[{self.access}] {self.fk_column} "
            f"in ht[{self.state}]"
        )


@dataclass(frozen=True)
class BitmapSemiProbe(PhysicalOp):
    """Narrow the stream by testing bits at FK-index offsets (§III-D)."""

    state: str
    fk_column: str

    def describe(self) -> str:
        return (
            f"BitmapSemiProbe {self.fk_column} via fkindex "
            f"-> bitmap[{self.state}]"
        )


@dataclass(frozen=True)
class ColumnMaterialize(PhysicalOp):
    """Evaluate a derived column over the whole table into state.

    Build-side Projects lower to this (Q14's dictionary-driven ``promo``
    flag); probe pipelines later gather it through the FK index.
    """

    state: str
    column: str
    expr: Expr
    lut_entries: int = 0  # dictionary size when the expr is a dict probe

    def describe(self) -> str:
        text = f"ColumnMaterialize {self.column} = {self.expr.to_c()}"
        if self.lut_entries:
            text += f" (LUT over {self.lut_entries} codes)"
        return text + f" -> {self.state}.{self.column}"


@dataclass(frozen=True)
class IndexGather(PhysicalOp):
    """Pull carried build columns into the stream via the FK index."""

    state: str
    fk_column: str
    columns: Tuple[str, ...]
    access: str = VECTOR

    def describe(self) -> str:
        return (
            f"IndexGather[{self.access}] {list(self.columns)} "
            f"via fkindex({self.fk_column}) from {self.state}"
        )


@dataclass(frozen=True)
class GroupJoinAgg(PhysicalOp):
    """Groupjoin probe: look up the FK, add deltas into the build HT."""

    state: str
    fk_column: str
    aggregates: Tuple[AggSpec, ...]
    access: str = VECTOR

    def describe(self) -> str:
        return (
            f"GroupJoinAgg[{self.access}] key={self.fk_column} "
            f"into ht[{self.state}] aggs=[{_aggs_text(self.aggregates)}]"
        )


@dataclass(frozen=True)
class ScalarAgg(PhysicalOp):
    """Terminal scalar aggregation under one of the agg modes."""

    aggregates: Tuple[AggSpec, ...]
    mode: str  # conditional | gathered | value_mask

    def describe(self) -> str:
        return f"ScalarAgg[{self.mode}] [{_aggs_text(self.aggregates)}]"


@dataclass(frozen=True)
class GroupAgg(PhysicalOp):
    """Terminal grouped aggregation under one of the agg modes."""

    key: Expr
    key_name: str
    aggregates: Tuple[AggSpec, ...]
    mode: str  # conditional | gathered | value_mask | key_mask
    expected_groups: int = 1

    def describe(self) -> str:
        return (
            f"GroupAgg[{self.mode}] key[{self.key_name}]={self.key.to_c()} "
            f"(~{self.expected_groups} groups) "
            f"[{_aggs_text(self.aggregates)}]"
        )


@dataclass(frozen=True)
class EagerAggregate(PhysicalOp):
    """§III-E rewrite: unconditional FK-grouped aggregation of the probe
    table, then a build-side cleanup scan deleting non-qualifying keys.

    Carries the equivalent single-join :class:`Query` so execution can
    reuse the morsel-splittable kernels in
    :mod:`repro.core.eager_aggregation`.
    """

    query: Query

    def describe(self) -> str:
        join = self.query.join
        return (
            f"EagerAggregate key={join.fk_column} "
            f"(cleanup scan over {join.build_table})"
        )


@dataclass(frozen=True)
class Pipeline:
    """One fused loop over one base table's columns."""

    label: str
    table: str
    ops: Tuple[PhysicalOp, ...]
    merged: Tuple[str, ...] = ()  # §III-C: columns read once, shared

    def describe(self) -> str:
        lines = [f"pipeline {self.label!r} over {self.table}:"]
        if self.merged:
            lines.append(f"  merged reads: {list(self.merged)}")
        for op in self.ops:
            lines.append(f"  {op.describe()}")
        return "\n".join(lines)


@dataclass(frozen=True)
class PhysicalPlan:
    """Executable plan: build pipelines first, the probe pipeline last."""

    strategy: str
    pipelines: Tuple[Pipeline, ...]
    interpreted: bool = False
    notes: Tuple[str, ...] = ()

    def describe(self) -> str:
        head = f"PhysicalPlan[{self.strategy}]"
        if self.interpreted:
            head += " (Volcano per-tuple dispatch on every scan)"
        lines = [head]
        for pipe in self.pipelines:
            for line in pipe.describe().splitlines():
                lines.append("  " + line)
        return "\n".join(lines)


__all__ = [
    "BRANCH",
    "VECTOR",
    "BitmapBuild",
    "BitmapSemiProbe",
    "ColumnMaterialize",
    "EagerAggregate",
    "FilterStage",
    "GroupAgg",
    "GroupBuild",
    "GroupJoinAgg",
    "HashSemiProbe",
    "IndexGather",
    "PhysicalOp",
    "PhysicalPlan",
    "Pipeline",
    "ScalarAgg",
    "SemiHashBuild",
]
