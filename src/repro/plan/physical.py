"""Physical plans — stage 3 of the staged lowering pipeline.

A :class:`PhysicalPlan` is a strategy-specific, executable shape:
an ordered list of :class:`Pipeline` objects (build pipelines first,
the probe pipeline last), each a sequence of physical operators over
one base table's column stream. The lowering stage
(:mod:`repro.codegen.lower`) produces it from a bound logical plan
plus the pass :class:`~repro.plan.passes.Decisions`; the executor
(:mod:`repro.codegen.physexec`) interprets it into kernel calls that
do the real NumPy work and emit the priced access events.

The operator vocabulary is deliberately small — exactly the shapes the
paper's strategies generate:

========================  =================================================
operator                  lowers from
========================  =================================================
:class:`FilterStage`      Filter (branching or SIMD-prepass form)
:class:`SemiHashBuild`    semijoin build side (hash set of keys)
:class:`GroupBuild`       groupjoin build side (keys + aggregate slots)
:class:`BitmapBuild`      semijoin build side under §III-D
:class:`HashSemiProbe`    semijoin probe against a hash set
:class:`BitmapSemiProbe`  semijoin probe against a positional bitmap
:class:`ColumnMaterialize` build-side Project (full-length derived column)
:class:`IndexGather`      index join carrying build columns via FK index
:class:`GroupJoinAgg`     groupjoin probe adding straight into the build HT
:class:`ScalarAgg`        terminal scalar aggregation (per agg-mode)
:class:`GroupAgg`         terminal grouped aggregation (per agg-mode)
:class:`EagerAggregate`   groupjoin rewritten per §III-E (aggregate early,
                          delete-cleanup after)
:class:`ExistsBitmapBuild` ExistsJoin build under SWOLE: probe-positional
                          bitmap set through the build FK index
:class:`ExistsBitmapProbe` ExistsJoin probe: one bit test per probe row
:class:`JoinBuild`        carry-join build side: hash keys + payload
:class:`HashJoinCarryProbe` carry-join probe: narrow + attach payload
:class:`CarriedGather`    late materialization of bitmap-carried columns
:class:`OuterGroupJoinAgg` outer groupjoin probe: count deltas per FK
:class:`GroupDistribution` outer groupjoin tail: count-of-counts scan
                          folding unmatched build keys into bucket zero
:class:`MultiBitmapBuild` DisjunctJoin build: N bitmaps from one scan
:class:`DisjunctIndexProbe` DisjunctJoin probe via per-row FK index reads
:class:`DisjunctBitmapProbe` DisjunctJoin probe via the disjunct bitmaps
========================  =================================================

``access`` distinguishes tuple-at-a-time branching code (datacentric /
interpreter) from selection-vector code (hybrid / swole); the masked
aggregation modes come from :mod:`repro.plan.passes`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .expressions import Expr, compare_count
from .logical import AggSpec, Query

#: Access styles for non-terminal operators.
BRANCH = "branch"  # tuple-at-a-time, conditional reads, branch events
VECTOR = "vector"  # selection vectors + gathers


class PhysicalOp:
    """Base class of physical operators; ``describe`` feeds explain."""

    def describe(self) -> str:
        raise NotImplementedError


def _aggs_text(aggregates: Tuple[AggSpec, ...]) -> str:
    return ", ".join(
        f"{a.name}={a.func}"
        + (f"({a.expr.to_c()})" if a.expr is not None else "(*)")
        for a in aggregates
    )


@dataclass(frozen=True)
class FilterStage(PhysicalOp):
    """Predicate evaluation over the pipeline's stream.

    ``mode == "branch"``: short-circuit conjuncts, conditional reads and
    a branch per conjunct (the data-centric form). ``mode == "prepass"``:
    SIMD evaluation of every conjunct over the whole column, ANDed into
    a 0/1 mask (the hybrid/SWOLE form).
    """

    conjuncts: Tuple[Expr, ...]
    mode: str  # "branch" | "prepass"

    def describe(self) -> str:
        n_cmps = sum(max(compare_count(c), 1) for c in self.conjuncts)
        preds = " AND ".join(c.to_c() for c in self.conjuncts)
        return (
            f"Filter[{self.mode}] {preds} "
            f"({len(self.conjuncts)} conjuncts, {n_cmps} compares)"
        )


@dataclass(frozen=True)
class SemiHashBuild(PhysicalOp):
    """Terminal build op: hash set of surviving keys (semijoin).

    ``expected_from`` names the table whose row count sizes the hash
    table (an ExistsJoin build inserts FK values drawn from the *probe*
    table's key domain); empty means size by the surviving keys.
    """

    state: str
    key_column: str
    access: str = VECTOR
    expected_from: str = ""

    def describe(self) -> str:
        return (
            f"SemiHashBuild[{self.access}] keys={self.key_column} "
            f"-> ht[{self.state}]"
        )


@dataclass(frozen=True)
class GroupBuild(PhysicalOp):
    """Terminal build op: keys plus aggregate slots (hash groupjoin)."""

    state: str
    key_column: str
    num_aggs: int
    access: str = VECTOR

    def describe(self) -> str:
        return (
            f"GroupBuild[{self.access}] keys={self.key_column} "
            f"aggs={self.num_aggs}+count -> ht[{self.state}]"
        )


@dataclass(frozen=True)
class BitmapBuild(PhysicalOp):
    """Terminal build op: positional bitmap over build-row offsets.

    ``carry`` names stream columns stashed full-length alongside the
    bitmap; downstream pipelines materialize them late with
    :class:`CarriedGather` after all semijoin filtering.
    """

    state: str
    mode: str  # "mask" (unconditional write) | "offsets" (selective set)
    carry: Tuple[str, ...] = ()

    def describe(self) -> str:
        text = f"BitmapBuild[{self.mode}] -> bitmap[{self.state}]"
        if self.carry:
            text += f" carrying {list(self.carry)}"
        return text


@dataclass(frozen=True)
class HashSemiProbe(PhysicalOp):
    """Narrow the stream to rows whose FK hits the build hash set.

    ``negate`` inverts the test (anti-join: keep rows with *no* build
    partner).
    """

    state: str
    fk_column: str
    access: str = VECTOR
    negate: bool = False

    def describe(self) -> str:
        op = "not in" if self.negate else "in"
        return (
            f"HashSemiProbe[{self.access}] {self.fk_column} "
            f"{op} ht[{self.state}]"
        )


@dataclass(frozen=True)
class BitmapSemiProbe(PhysicalOp):
    """Narrow the stream by testing bits at FK-index offsets (§III-D)."""

    state: str
    fk_column: str

    def describe(self) -> str:
        return (
            f"BitmapSemiProbe {self.fk_column} via fkindex "
            f"-> bitmap[{self.state}]"
        )


@dataclass(frozen=True)
class ExistsBitmapBuild(PhysicalOp):
    """ExistsJoin build: set a probe-positional bit per surviving FK row.

    The build side is the FK (large) side; its FK index maps each
    surviving build row to the probe row it references, so the bitmap
    is indexed by probe position (`probe_table` sizes it).
    """

    state: str
    fk_column: str
    probe_table: str
    mode: str = "mask"  # "mask" | "offsets", as BitmapBuild

    def describe(self) -> str:
        return (
            f"ExistsBitmapBuild[{self.mode}] fkindex({self.fk_column}) "
            f"-> bitmap over {self.probe_table} rows [{self.state}]"
        )


@dataclass(frozen=True)
class ExistsBitmapProbe(PhysicalOp):
    """ExistsJoin probe: AND the stream mask with one bit per row."""

    state: str
    anti: bool = False

    def describe(self) -> str:
        kind = "anti" if self.anti else "exists"
        return f"ExistsBitmapProbe[{kind}] bitmap[{self.state}]"


@dataclass(frozen=True)
class JoinBuild(PhysicalOp):
    """Carry-join build: hash surviving keys plus payload columns.

    Like :class:`SemiHashBuild` but the probe later attaches ``carry``
    columns from the build stream (through the FK index) instead of
    only narrowing.
    """

    state: str
    key_column: str
    carry: Tuple[str, ...]
    access: str = VECTOR

    def describe(self) -> str:
        return (
            f"JoinBuild[{self.access}] keys={self.key_column} "
            f"payload={list(self.carry)} -> ht[{self.state}]"
        )


@dataclass(frozen=True)
class HashJoinCarryProbe(PhysicalOp):
    """Carry-join probe: narrow to matched rows, attach build payload."""

    state: str
    fk_column: str
    carry: Tuple[str, ...]
    access: str = VECTOR

    def describe(self) -> str:
        return (
            f"HashJoinCarryProbe[{self.access}] {self.fk_column} "
            f"in ht[{self.state}] attach {list(self.carry)}"
        )


@dataclass(frozen=True)
class CarriedGather(PhysicalOp):
    """Late materialization of bitmap-carried build columns.

    ``priced=False`` composes carried arrays through the FK index for
    free (build pipelines merely thread the values along);
    ``priced=True`` charges one random gather per surviving row — the
    point of late materialization is that this runs after *all*
    semijoin filtering.
    """

    state: str
    fk_column: str
    columns: Tuple[str, ...]
    priced: bool = True

    def describe(self) -> str:
        when = "after all semijoins" if self.priced else "composed free"
        return (
            f"CarriedGather {list(self.columns)} via "
            f"fkindex({self.fk_column}) from {self.state} ({when})"
        )


@dataclass(frozen=True)
class OuterGroupJoinAgg(PhysicalOp):
    """Outer groupjoin probe: count stream rows per build key.

    ``mode`` prices the count deltas: conditional reads, gathered
    reads, masked (unconditional) adds, or key-masked blends.
    """

    state: str
    fk_column: str
    count_name: str
    mode: str  # conditional | gathered | value_mask | key_mask
    build_table: str

    def describe(self) -> str:
        return (
            f"OuterGroupJoinAgg[{self.mode}] count by {self.fk_column} "
            f"over {self.build_table} keys -> ht[{self.state}]"
        )


@dataclass(frozen=True)
class GroupDistribution(PhysicalOp):
    """Outer groupjoin tail: group the per-key counts themselves.

    Scans the count table, folds build keys that never appeared
    (unmatched rows of the outer join) into the zero bucket, and
    aggregates count-of-counts (Q13's distribution).
    """

    state: str
    key_name: str
    agg_name: str

    def describe(self) -> str:
        return (
            f"GroupDistribution {self.agg_name} per {self.key_name} "
            f"from ht[{self.state}] (unmatched keys -> bucket 0)"
        )


@dataclass(frozen=True)
class MultiBitmapBuild(PhysicalOp):
    """DisjunctJoin build: one bitmap per disjunct from a single scan.

    Reads the union of build-side predicate columns once and fills
    ``len(disjuncts)`` positional bitmaps in the same pass (§III-F's
    three-bitmaps-from-one-scan shape).
    """

    state: str
    disjuncts: Tuple[Expr, ...]  # build-side conjunction per disjunct

    def describe(self) -> str:
        arms = "; ".join(d.to_c() for d in self.disjuncts)
        return (
            f"MultiBitmapBuild {len(self.disjuncts)} bitmaps from one "
            f"scan [{arms}] -> bitmaps[{self.state}]"
        )


@dataclass(frozen=True)
class DisjunctIndexProbe(PhysicalOp):
    """DisjunctJoin probe without bitmaps: per-row FK index lookups.

    For each surviving probe row, read the build row through the FK
    index and evaluate every (build_pred AND probe_pred) arm with
    short-circuit compares.
    """

    state: str
    fk_column: str
    disjuncts: Tuple[Tuple[Expr, Expr], ...]
    access: str = VECTOR

    def describe(self) -> str:
        return (
            f"DisjunctIndexProbe[{self.access}] {self.fk_column} -> "
            f"{self.state} rows, {len(self.disjuncts)} disjuncts"
        )


@dataclass(frozen=True)
class DisjunctBitmapProbe(PhysicalOp):
    """DisjunctJoin probe against the per-disjunct bitmaps.

    Tests one bit per disjunct at the FK-index offset and ANDs each
    with its probe-side predicate; a row survives if any arm holds.
    """

    state: str
    fk_column: str
    disjuncts: Tuple[Tuple[Expr, Expr], ...]

    def describe(self) -> str:
        return (
            f"DisjunctBitmapProbe {self.fk_column} over "
            f"{len(self.disjuncts)} bitmaps[{self.state}]"
        )


@dataclass(frozen=True)
class ColumnMaterialize(PhysicalOp):
    """Evaluate a derived column over the whole table into state.

    Build-side Projects lower to this (Q14's dictionary-driven ``promo``
    flag); probe pipelines later gather it through the FK index.
    """

    state: str
    column: str
    expr: Expr
    lut_entries: int = 0  # dictionary size when the expr is a dict probe

    def describe(self) -> str:
        text = f"ColumnMaterialize {self.column} = {self.expr.to_c()}"
        if self.lut_entries:
            text += f" (LUT over {self.lut_entries} codes)"
        return text + f" -> {self.state}.{self.column}"


@dataclass(frozen=True)
class IndexGather(PhysicalOp):
    """Pull carried build columns into the stream via the FK index."""

    state: str
    fk_column: str
    columns: Tuple[str, ...]
    access: str = VECTOR

    def describe(self) -> str:
        return (
            f"IndexGather[{self.access}] {list(self.columns)} "
            f"via fkindex({self.fk_column}) from {self.state}"
        )


@dataclass(frozen=True)
class GroupJoinAgg(PhysicalOp):
    """Groupjoin probe: look up the FK, add deltas into the build HT."""

    state: str
    fk_column: str
    aggregates: Tuple[AggSpec, ...]
    access: str = VECTOR

    def describe(self) -> str:
        return (
            f"GroupJoinAgg[{self.access}] key={self.fk_column} "
            f"into ht[{self.state}] aggs=[{_aggs_text(self.aggregates)}]"
        )


@dataclass(frozen=True)
class ScalarAgg(PhysicalOp):
    """Terminal scalar aggregation under one of the agg modes."""

    aggregates: Tuple[AggSpec, ...]
    mode: str  # conditional | gathered | value_mask

    def describe(self) -> str:
        return f"ScalarAgg[{self.mode}] [{_aggs_text(self.aggregates)}]"


@dataclass(frozen=True)
class GroupAgg(PhysicalOp):
    """Terminal grouped aggregation under one of the agg modes."""

    key: Expr
    key_name: str
    aggregates: Tuple[AggSpec, ...]
    mode: str  # conditional | gathered | value_mask | key_mask
    expected_groups: int = 1

    def describe(self) -> str:
        return (
            f"GroupAgg[{self.mode}] key[{self.key_name}]={self.key.to_c()} "
            f"(~{self.expected_groups} groups) "
            f"[{_aggs_text(self.aggregates)}]"
        )


@dataclass(frozen=True)
class EagerAggregate(PhysicalOp):
    """§III-E rewrite: unconditional FK-grouped aggregation of the probe
    table, then a build-side cleanup scan deleting non-qualifying keys.

    Carries the equivalent single-join :class:`Query` so execution can
    reuse the morsel-splittable kernels in
    :mod:`repro.core.eager_aggregation`.
    """

    query: Query

    def describe(self) -> str:
        join = self.query.join
        return (
            f"EagerAggregate key={join.fk_column} "
            f"(cleanup scan over {join.build_table})"
        )


@dataclass(frozen=True)
class Pipeline:
    """One fused loop over one base table's columns."""

    label: str
    table: str
    ops: Tuple[PhysicalOp, ...]
    merged: Tuple[str, ...] = ()  # §III-C: columns read once, shared
    #: Access-encoding decision: ``(column, codec description)`` pairs
    #: naming the columns this pipeline streams as physical codes, with
    #: decode deferred to the materialization points.
    encodings: Tuple[Tuple[str, str], ...] = ()

    def describe(self) -> str:
        lines = [f"pipeline {self.label!r} over {self.table}:"]
        if self.encodings:
            codes = ", ".join(
                f"{column} {desc}" for column, desc in self.encodings
            )
            lines.append(f"  encoding= {codes} (decode late)")
        if self.merged:
            lines.append(f"  merged reads: {list(self.merged)}")
        for op in self.ops:
            lines.append(f"  {op.describe()}")
        return "\n".join(lines)


@dataclass(frozen=True)
class PhysicalPlan:
    """Executable plan: build pipelines first, the probe pipeline last."""

    strategy: str
    pipelines: Tuple[Pipeline, ...]
    interpreted: bool = False
    notes: Tuple[str, ...] = ()

    def describe(self) -> str:
        head = f"PhysicalPlan[{self.strategy}]"
        if self.interpreted:
            head += " (Volcano per-tuple dispatch on every scan)"
        lines = [head]
        for pipe in self.pipelines:
            for line in pipe.describe().splitlines():
                lines.append("  " + line)
        return "\n".join(lines)


__all__ = [
    "BRANCH",
    "VECTOR",
    "BitmapBuild",
    "BitmapSemiProbe",
    "CarriedGather",
    "ColumnMaterialize",
    "DisjunctBitmapProbe",
    "DisjunctIndexProbe",
    "EagerAggregate",
    "ExistsBitmapBuild",
    "ExistsBitmapProbe",
    "FilterStage",
    "GroupAgg",
    "GroupBuild",
    "GroupDistribution",
    "GroupJoinAgg",
    "HashJoinCarryProbe",
    "HashSemiProbe",
    "IndexGather",
    "JoinBuild",
    "MultiBitmapBuild",
    "OuterGroupJoinAgg",
    "PhysicalOp",
    "PhysicalPlan",
    "Pipeline",
    "ScalarAgg",
    "SemiHashBuild",
]
