"""Scalar expression IR for logical plans.

Expressions are built over the columns of a single table (the paper's
microbenchmark queries and the generic codegen path never need
cross-table expressions; hand-coded TPC-H programs handle those cases
directly). Every node can:

* report the columns it touches (``columns()``) — the input to access
  merging, which fires when a column is referenced by both the predicate
  and an aggregate;
* evaluate itself over raw NumPy arrays (``evaluate``) — used by the
  reference interpreter and by strategies after they have accounted the
  reads themselves;
* pretty-print as C (``to_c``) — used by the code emitters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Sequence, Tuple, Union

import numpy as np

from ..errors import PlanError

#: Comparison operators accepted by :class:`Compare`.
COMPARE_OPS = ("<", "<=", ">", ">=", "==", "!=")
#: Arithmetic operators accepted by :class:`Arith`.
ARITH_OPS = ("add", "sub", "mul", "div")
_ARITH_SYMBOL = {"add": "+", "sub": "-", "mul": "*", "div": "/"}


class Expr:
    """Base class for expression nodes."""

    def columns(self) -> FrozenSet[str]:
        raise NotImplementedError

    def evaluate(self, data: Dict[str, np.ndarray]) -> np.ndarray:
        raise NotImplementedError

    def to_c(self) -> str:
        raise NotImplementedError

    # Sugar for building expressions fluently in examples/tests.
    def __lt__(self, other) -> "Compare":
        return Compare(self, "<", _lift(other))

    def __le__(self, other) -> "Compare":
        return Compare(self, "<=", _lift(other))

    def __gt__(self, other) -> "Compare":
        return Compare(self, ">", _lift(other))

    def __ge__(self, other) -> "Compare":
        return Compare(self, ">=", _lift(other))

    def eq(self, other) -> "Compare":
        """Equality predicate (named method: ``__eq__`` stays identity)."""
        return Compare(self, "==", _lift(other))

    def ne(self, other) -> "Compare":
        return Compare(self, "!=", _lift(other))

    def __add__(self, other) -> "Arith":
        return Arith("add", self, _lift(other))

    def __sub__(self, other) -> "Arith":
        return Arith("sub", self, _lift(other))

    def __mul__(self, other) -> "Arith":
        return Arith("mul", self, _lift(other))

    def __truediv__(self, other) -> "Arith":
        return Arith("div", self, _lift(other))


def _lift(value) -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, np.integer)):
        return Const(int(value))
    raise PlanError(f"cannot use {value!r} in an expression")


@dataclass(frozen=True)
class Col(Expr):
    """Reference to a column of the plan's table."""

    name: str

    def columns(self) -> FrozenSet[str]:
        return frozenset([self.name])

    def evaluate(self, data: Dict[str, np.ndarray]) -> np.ndarray:
        try:
            return data[self.name]
        except KeyError as exc:
            raise PlanError(f"column {self.name!r} not bound") from exc

    def to_c(self) -> str:
        return f"{self.name}[i]"


@dataclass(frozen=True)
class Const(Expr):
    """Integer literal (all stored data is integer-typed; see storage)."""

    value: int

    def columns(self) -> FrozenSet[str]:
        return frozenset()

    def evaluate(self, data: Dict[str, np.ndarray]) -> np.ndarray:
        return np.int64(self.value)

    def to_c(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Compare(Expr):
    """``left <op> right`` producing a boolean vector."""

    left: Expr
    op: str
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in COMPARE_OPS:
            raise PlanError(f"unknown comparison operator {self.op!r}")

    def columns(self) -> FrozenSet[str]:
        return self.left.columns() | self.right.columns()

    def evaluate(self, data: Dict[str, np.ndarray]) -> np.ndarray:
        lhs = self.left.evaluate(data)
        rhs = self.right.evaluate(data)
        ufunc = {
            "<": np.less,
            "<=": np.less_equal,
            ">": np.greater,
            ">=": np.greater_equal,
            "==": np.equal,
            "!=": np.not_equal,
        }[self.op]
        return ufunc(lhs, rhs)

    def to_c(self) -> str:
        return f"{self.left.to_c()} {self.op} {self.right.to_c()}"


@dataclass(frozen=True)
class And(Expr):
    """Conjunction of boolean terms."""

    terms: Tuple[Expr, ...]

    def __init__(self, terms: Sequence[Expr]) -> None:
        if not terms:
            raise PlanError("And requires at least one term")
        object.__setattr__(self, "terms", tuple(terms))

    def columns(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for term in self.terms:
            result |= term.columns()
        return result

    def evaluate(self, data: Dict[str, np.ndarray]) -> np.ndarray:
        result = self.terms[0].evaluate(data)
        for term in self.terms[1:]:
            result = result & term.evaluate(data)
        return result

    def to_c(self) -> str:
        return " && ".join(term.to_c() for term in self.terms)


@dataclass(frozen=True)
class Or(Expr):
    """Disjunction of boolean terms."""

    terms: Tuple[Expr, ...]

    def __init__(self, terms: Sequence[Expr]) -> None:
        if not terms:
            raise PlanError("Or requires at least one term")
        object.__setattr__(self, "terms", tuple(terms))

    def columns(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for term in self.terms:
            result |= term.columns()
        return result

    def evaluate(self, data: Dict[str, np.ndarray]) -> np.ndarray:
        result = self.terms[0].evaluate(data)
        for term in self.terms[1:]:
            result = result | term.evaluate(data)
        return result

    def to_c(self) -> str:
        return " || ".join(f"({term.to_c()})" for term in self.terms)


@dataclass(frozen=True)
class Arith(Expr):
    """Arithmetic expression; ``div`` truncates (integer semantics)."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in ARITH_OPS:
            raise PlanError(f"unknown arithmetic operator {self.op!r}")

    def columns(self) -> FrozenSet[str]:
        return self.left.columns() | self.right.columns()

    def evaluate(self, data: Dict[str, np.ndarray]) -> np.ndarray:
        lhs = self.left.evaluate(data)
        rhs = self.right.evaluate(data)
        # Arithmetic is computed at aggregate width (int64) regardless of
        # the narrow compressed storage width, matching the paper's
        # "all aggregates are stored as 64-bit integers".
        if isinstance(lhs, np.ndarray):
            lhs = lhs.astype(np.int64, copy=False)
        if isinstance(rhs, np.ndarray):
            rhs = rhs.astype(np.int64, copy=False)
        if self.op == "add":
            return lhs + rhs
        if self.op == "sub":
            return lhs - rhs
        if self.op == "mul":
            return lhs * rhs
        rhs_array = np.asarray(rhs)
        if rhs_array.size and (rhs_array == 0).any():
            raise PlanError("division by zero in expression")
        return np.floor_divide(lhs, rhs)

    def to_c(self) -> str:
        return (
            f"({self.left.to_c()} {_ARITH_SYMBOL[self.op]} {self.right.to_c()})"
        )

    def op_sequence(self) -> Tuple[str, ...]:
        """Flattened arithmetic ops, used by compute-cost estimation."""
        ops: Tuple[str, ...] = ()
        for side in (self.left, self.right):
            if isinstance(side, Arith):
                ops += side.op_sequence()
        return ops + (self.op,)


@dataclass(frozen=True)
class Case(Expr):
    """SQL ``CASE WHEN cond THEN value ... ELSE default END``.

    The paper (§III-A) points out that CASE normally compiles to a chain
    of branching if-else expressions, but value masking can instead
    evaluate *every* arm unconditionally and mask the non-qualifying
    results — see :mod:`repro.core.case_masking` for the two compiled
    forms and the cost check.
    """

    branches: Tuple[Tuple[Expr, Expr], ...]
    default: Expr

    def __init__(self, branches, default: Expr) -> None:
        branches = tuple((cond, value) for cond, value in branches)
        if not branches:
            raise PlanError("Case requires at least one WHEN branch")
        object.__setattr__(self, "branches", branches)
        object.__setattr__(self, "default", default)

    def columns(self) -> FrozenSet[str]:
        result = self.default.columns()
        for cond, value in self.branches:
            result |= cond.columns() | value.columns()
        return result

    def evaluate(self, data: Dict[str, np.ndarray]) -> np.ndarray:
        conditions = [
            np.asarray(cond.evaluate(data), dtype=bool)
            for cond, _ in self.branches
        ]
        values = [
            np.asarray(value.evaluate(data), dtype=np.int64) + np.int64(0)
            for _, value in self.branches
        ]
        default = np.asarray(self.default.evaluate(data), dtype=np.int64)
        return np.select(conditions, values, default=default)

    def to_c(self) -> str:
        parts = []
        for cond, value in self.branches:
            parts.append(f"({cond.to_c()}) ? {value.to_c()} : ")
        return "".join(parts) + self.default.to_c()

    def branch_ops(self) -> Tuple[Tuple[str, ...], ...]:
        """Arithmetic per arm (condition + value), for cost models."""
        return tuple(
            arith_ops(cond) + arith_ops(value)
            for cond, value in self.branches
        )


@dataclass(frozen=True)
class InSet(Expr):
    """``child IN (v1, v2, ...)`` — an OR of equality comparisons.

    Evaluated with one SIMD comparison per member (the
    :func:`repro.engine.kernels.isin` cost convention).
    """

    child: Expr
    values: Tuple[int, ...]

    def __init__(self, child: Expr, values: Sequence[int]) -> None:
        object.__setattr__(self, "child", child)
        object.__setattr__(
            self, "values", tuple(int(v) for v in values)
        )

    def columns(self) -> FrozenSet[str]:
        return self.child.columns()

    def evaluate(self, data: Dict[str, np.ndarray]) -> np.ndarray:
        values = np.asarray(self.child.evaluate(data))
        return np.isin(values, np.asarray(self.values, dtype=np.int64))

    def to_c(self) -> str:
        members = ", ".join(str(v) for v in self.values)
        return f"in_set({self.child.to_c()}, {{{members}}})"


@dataclass(frozen=True)
class DictEq(Expr):
    """``column = 'literal'`` over a dictionary-encoded string column.

    A *placeholder* node: the logical plan stays database-independent,
    and the binding pass resolves the literal to its dictionary code
    (producing a plain :class:`Compare`) at compile time. Evaluating an
    unbound node is an error.
    """

    column: str
    value: str

    def columns(self) -> FrozenSet[str]:
        return frozenset([self.column])

    def evaluate(self, data: Dict[str, np.ndarray]) -> np.ndarray:
        raise PlanError(
            f"dictionary literal {self.column} == {self.value!r} must be "
            "bound to a code before evaluation (run the binding pass)"
        )

    def to_c(self) -> str:
        return f"{self.column}[i] == dict({self.value!r})"


@dataclass(frozen=True)
class DictPrefix(Expr):
    """``column LIKE 'prefix%'`` over a dictionary-encoded column.

    Binds to an :class:`InSet` of every dictionary code whose decoded
    text starts with ``prefix`` (the paper's Q14 ``PROMO%`` pattern
    becomes a tiny code -> flag lookup table).
    """

    column: str
    prefix: str

    def columns(self) -> FrozenSet[str]:
        return frozenset([self.column])

    def evaluate(self, data: Dict[str, np.ndarray]) -> np.ndarray:
        raise PlanError(
            f"dictionary prefix {self.column} LIKE {self.prefix!r}% must "
            "be bound to codes before evaluation (run the binding pass)"
        )

    def to_c(self) -> str:
        return f"starts_with(dict[{self.column}[i]], {self.prefix!r})"


@dataclass(frozen=True)
class DictIn(Expr):
    """``column IN ('v1', 'v2', ...)`` over a dictionary-encoded column.

    A placeholder like :class:`DictEq`: the binding pass resolves each
    literal to its dictionary code, producing an :class:`InSet` over the
    raw codes.
    """

    column: str
    values: Tuple[str, ...]

    def __init__(self, column: str, values: Sequence[str]) -> None:
        object.__setattr__(self, "column", str(column))
        object.__setattr__(
            self, "values", tuple(str(v) for v in values)
        )

    def columns(self) -> FrozenSet[str]:
        return frozenset([self.column])

    def evaluate(self, data: Dict[str, np.ndarray]) -> np.ndarray:
        raise PlanError(
            f"dictionary set {self.column} IN {self.values!r} must be "
            "bound to codes before evaluation (run the binding pass)"
        )

    def to_c(self) -> str:
        members = ", ".join(repr(v) for v in self.values)
        return f"in_set(dict[{self.column}[i]], {{{members}}})"


@dataclass(frozen=True)
class StrMatch(Expr):
    """``column [NOT] LIKE '%pattern%'`` backed by a precomputed flag.

    Complex substring patterns (Q13's ``%special%requests%``) cannot be
    dictionary-bound; the storage layer precomputes a per-row match flag
    (``flag_column``, nonzero = the text matches). The node evaluates
    against that flag, but the executor prices it as a per-tuple
    ``strcmp`` over the *display* column — the paper's point is exactly
    that this predicate stays scalar under every strategy.
    """

    column: str  #: display column holding the text, e.g. ``o_comment``
    pattern: str
    flag_column: str  #: precomputed match flag, e.g. ``o_comment_special``
    negated: bool = False

    def columns(self) -> FrozenSet[str]:
        return frozenset([self.flag_column])

    def evaluate(self, data: Dict[str, np.ndarray]) -> np.ndarray:
        try:
            flags = data[self.flag_column]
        except KeyError as exc:
            raise PlanError(
                f"match flag column {self.flag_column!r} not bound"
            ) from exc
        matched = flags != 0
        return ~matched if self.negated else matched

    def to_c(self) -> str:
        bang = "!" if self.negated else ""
        return f"{bang}like({self.column}[i], {self.pattern!r})"


def conjuncts(predicate: Union[Expr, None]) -> Tuple[Expr, ...]:
    """Split a predicate into top-level AND terms (one per prepass loop)."""
    if predicate is None:
        return ()
    if isinstance(predicate, And):
        return predicate.terms
    return (predicate,)


def col_refs(expr: Union[Expr, None]) -> Tuple[str, ...]:
    """Every column *reference* in an expression (with repetitions).

    Unlike ``columns()`` (a set), repeated references are repeated here —
    cost models charge one read per reference unless merging removes it.
    """
    if expr is None:
        return ()
    if isinstance(expr, Col):
        return (expr.name,)
    if isinstance(expr, Const):
        return ()
    if isinstance(expr, (Compare, Arith)):
        return col_refs(expr.left) + col_refs(expr.right)
    if isinstance(expr, (And, Or)):
        result: Tuple[str, ...] = ()
        for term in expr.terms:
            result += col_refs(term)
        return result
    if isinstance(expr, Case):
        result = ()
        for cond, value in expr.branches:
            result += col_refs(cond) + col_refs(value)
        return result + col_refs(expr.default)
    if isinstance(expr, InSet):
        return col_refs(expr.child)
    if isinstance(expr, (DictEq, DictPrefix, DictIn)):
        return (expr.column,)
    if isinstance(expr, StrMatch):
        return (expr.flag_column,)
    raise PlanError(f"cannot walk expression {expr!r}")


def arith_ops(expr: Expr) -> Tuple[str, ...]:
    """All arithmetic ops in an expression (compute-bound detection)."""
    if isinstance(expr, Arith):
        return expr.op_sequence()
    if isinstance(expr, (Compare,)):
        return arith_ops(expr.left) + arith_ops(expr.right)
    if isinstance(expr, (And, Or)):
        result: Tuple[str, ...] = ()
        for term in expr.terms:
            result += arith_ops(term)
        return result
    if isinstance(expr, Case):
        # value masking evaluates every arm, so all ops count (plus one
        # comparison per arm, charged by the caller as cmp events)
        result = ()
        for ops in expr.branch_ops():
            result += ops
        return result + arith_ops(expr.default)
    if isinstance(expr, InSet):
        return arith_ops(expr.child)
    return ()


def compare_count(expr: Expr) -> int:
    """Number of elementwise comparisons one evaluation of ``expr`` costs.

    An :class:`InSet` counts one comparison per member (the OR-of-
    equalities form); unbound dictionary placeholders count one.
    """
    if isinstance(expr, Compare):
        return 1 + compare_count(expr.left) + compare_count(expr.right)
    if isinstance(expr, (And, Or)):
        return sum(compare_count(term) for term in expr.terms)
    if isinstance(expr, InSet):
        return max(len(expr.values), 1) + compare_count(expr.child)
    if isinstance(expr, DictIn):
        return max(len(expr.values), 1)
    if isinstance(expr, (DictEq, DictPrefix, StrMatch)):
        return 1
    if isinstance(expr, Case):
        return sum(
            compare_count(cond) + compare_count(value)
            for cond, value in expr.branches
        ) + compare_count(expr.default)
    if isinstance(expr, Arith):
        return compare_count(expr.left) + compare_count(expr.right)
    return 0
