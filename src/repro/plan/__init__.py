"""Plan IR: expressions, legacy queries, operator trees, physical plans.

Three layers, oldest first:

* :mod:`~repro.plan.logical` — the legacy single-join :class:`Query`
  dataclass (still the microbench vocabulary);
* :mod:`~repro.plan.ops` — the composable logical operator tree
  (:class:`LogicalPlan`), the input of the staged lowering pipeline;
  :func:`from_query` converts legacy queries onto it;
* :mod:`~repro.plan.passes` / :mod:`~repro.plan.physical` — the strategy
  pass framework and the physical operator vocabulary it lowers to.
"""

from .builder import PlanBuilder, scan
from .expressions import (
    And,
    Arith,
    Col,
    Compare,
    Const,
    DictEq,
    DictIn,
    DictPrefix,
    Expr,
    InSet,
    Or,
    StrMatch,
    arith_ops,
    conjuncts,
)
from .logical import AggSpec, JoinSpec, Query, QueryStats, sample_stats
from .ops import (
    DisjunctJoin,
    ExistsJoin,
    Filter,
    GroupByAgg,
    Join,
    LogicalPlan,
    OuterGroupJoin,
    Project,
    Scan,
    from_query,
    plan_fingerprint,
)
from .physical import PhysicalPlan, Pipeline
from .serde import plan_from_dict, plan_from_wire, plan_to_dict, plan_to_wire

__all__ = [
    "AggSpec",
    "And",
    "Arith",
    "Col",
    "Compare",
    "Const",
    "DictEq",
    "DictIn",
    "DictPrefix",
    "DisjunctJoin",
    "ExistsJoin",
    "Expr",
    "Filter",
    "GroupByAgg",
    "InSet",
    "Join",
    "JoinSpec",
    "LogicalPlan",
    "Or",
    "OuterGroupJoin",
    "PhysicalPlan",
    "Pipeline",
    "PlanBuilder",
    "Project",
    "Query",
    "QueryStats",
    "Scan",
    "StrMatch",
    "arith_ops",
    "conjuncts",
    "from_query",
    "plan_fingerprint",
    "plan_from_dict",
    "plan_from_wire",
    "plan_to_dict",
    "plan_to_wire",
    "sample_stats",
    "scan",
]
