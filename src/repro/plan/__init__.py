"""Plan IR: expressions, legacy queries, operator trees, physical plans.

Three layers, oldest first:

* :mod:`~repro.plan.logical` — the legacy single-join :class:`Query`
  dataclass (still the microbench vocabulary);
* :mod:`~repro.plan.ops` — the composable logical operator tree
  (:class:`LogicalPlan`), the input of the staged lowering pipeline;
  :func:`from_query` converts legacy queries onto it;
* :mod:`~repro.plan.passes` / :mod:`~repro.plan.physical` — the strategy
  pass framework and the physical operator vocabulary it lowers to.
"""

from .expressions import (
    And,
    Arith,
    Col,
    Compare,
    Const,
    DictEq,
    DictPrefix,
    Expr,
    InSet,
    Or,
    arith_ops,
    conjuncts,
)
from .logical import AggSpec, JoinSpec, Query, QueryStats, sample_stats
from .ops import (
    Filter,
    GroupByAgg,
    Join,
    LogicalPlan,
    Project,
    Scan,
    from_query,
    plan_fingerprint,
)
from .physical import PhysicalPlan, Pipeline

__all__ = [
    "AggSpec",
    "And",
    "Arith",
    "Col",
    "Compare",
    "Const",
    "DictEq",
    "DictPrefix",
    "Expr",
    "Filter",
    "GroupByAgg",
    "InSet",
    "Join",
    "JoinSpec",
    "LogicalPlan",
    "Or",
    "PhysicalPlan",
    "Pipeline",
    "Project",
    "Query",
    "QueryStats",
    "Scan",
    "arith_ops",
    "conjuncts",
    "from_query",
    "plan_fingerprint",
    "sample_stats",
]
