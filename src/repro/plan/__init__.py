"""Logical plans and expressions for the generic code-generation path."""

from .expressions import (
    And,
    Arith,
    Col,
    Compare,
    Const,
    Expr,
    Or,
    arith_ops,
    conjuncts,
)
from .logical import AggSpec, JoinSpec, Query, QueryStats, sample_stats

__all__ = [
    "AggSpec",
    "And",
    "Arith",
    "Col",
    "Compare",
    "Const",
    "Expr",
    "JoinSpec",
    "Or",
    "Query",
    "QueryStats",
    "arith_ops",
    "conjuncts",
    "sample_stats",
]
