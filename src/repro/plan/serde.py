"""Structural JSON serde for logical plans — the wire form of the IR.

The query service accepts operator trees over the wire as plain JSON:
every expression and plan node maps to a dict tagged with ``"t"``, and
the envelope pairs the structural payload with the plan's IR
fingerprint so the receiver can verify the tree decoded faithfully::

    {"plan": {"name": "q6", "root": {"t": "group_by_agg", ...}},
     "fingerprint": "ir:4be1..."}

Encoding and decoding are exact inverses over the frozen dataclasses of
:mod:`repro.plan.expressions` / :mod:`repro.plan.ops`, so a round trip
preserves structural equality — and therefore the plan-cache key
(:func:`~repro.plan.ops.plan_fingerprint`). A decoded plan that hashes
differently from the envelope's fingerprint is rejected.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from ..errors import PlanError
from .expressions import (
    And,
    Arith,
    Case,
    Col,
    Compare,
    Const,
    DictEq,
    DictIn,
    DictPrefix,
    Expr,
    InSet,
    Or,
    StrMatch,
)
from .logical import AggSpec
from .ops import (
    DisjunctJoin,
    ExistsJoin,
    Filter,
    GroupByAgg,
    Join,
    LogicalPlan,
    OuterGroupJoin,
    PlanNode,
    Project,
    Scan,
    plan_fingerprint,
)

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


def expr_to_dict(expr: Expr) -> dict:
    """One expression node as a ``"t"``-tagged JSON-safe dict."""
    if isinstance(expr, Col):
        return {"t": "col", "name": expr.name}
    if isinstance(expr, Const):
        return {"t": "const", "value": expr.value}
    if isinstance(expr, Compare):
        return {
            "t": "cmp",
            "op": expr.op,
            "left": expr_to_dict(expr.left),
            "right": expr_to_dict(expr.right),
        }
    if isinstance(expr, (And, Or)):
        return {
            "t": "and" if isinstance(expr, And) else "or",
            "terms": [expr_to_dict(term) for term in expr.terms],
        }
    if isinstance(expr, Arith):
        return {
            "t": "arith",
            "op": expr.op,
            "left": expr_to_dict(expr.left),
            "right": expr_to_dict(expr.right),
        }
    if isinstance(expr, Case):
        return {
            "t": "case",
            "branches": [
                [expr_to_dict(cond), expr_to_dict(value)]
                for cond, value in expr.branches
            ],
            "default": expr_to_dict(expr.default),
        }
    if isinstance(expr, InSet):
        return {
            "t": "in_set",
            "child": expr_to_dict(expr.child),
            "values": list(expr.values),
        }
    if isinstance(expr, DictEq):
        return {"t": "dict_eq", "column": expr.column, "value": expr.value}
    if isinstance(expr, DictPrefix):
        return {
            "t": "dict_prefix",
            "column": expr.column,
            "prefix": expr.prefix,
        }
    if isinstance(expr, DictIn):
        return {
            "t": "dict_in",
            "column": expr.column,
            "values": list(expr.values),
        }
    if isinstance(expr, StrMatch):
        return {
            "t": "str_match",
            "column": expr.column,
            "pattern": expr.pattern,
            "flag_column": expr.flag_column,
            "negated": expr.negated,
        }
    raise PlanError(f"cannot serialise expression {type(expr).__name__}")


def _tagged(payload: Any, kind: str) -> dict:
    if not isinstance(payload, dict):
        raise PlanError(f"a {kind} payload must be an object, got {payload!r}")
    tag = payload.get("t")
    if not isinstance(tag, str):
        raise PlanError(f"a {kind} payload needs a 't' type tag")
    return payload


def _field(payload: dict, name: str) -> Any:
    try:
        return payload[name]
    except KeyError as exc:
        raise PlanError(
            f"{payload.get('t')!r} payload is missing field {name!r}"
        ) from exc


_EXPR_DECODERS: Dict[str, Callable[[dict], Expr]] = {
    "col": lambda d: Col(str(_field(d, "name"))),
    "const": lambda d: Const(int(_field(d, "value"))),
    "cmp": lambda d: Compare(
        expr_from_dict(_field(d, "left")),
        str(_field(d, "op")),
        expr_from_dict(_field(d, "right")),
    ),
    "and": lambda d: And(
        [expr_from_dict(term) for term in _field(d, "terms")]
    ),
    "or": lambda d: Or(
        [expr_from_dict(term) for term in _field(d, "terms")]
    ),
    "arith": lambda d: Arith(
        str(_field(d, "op")),
        expr_from_dict(_field(d, "left")),
        expr_from_dict(_field(d, "right")),
    ),
    "case": lambda d: Case(
        [
            (expr_from_dict(cond), expr_from_dict(value))
            for cond, value in _field(d, "branches")
        ],
        expr_from_dict(_field(d, "default")),
    ),
    "in_set": lambda d: InSet(
        expr_from_dict(_field(d, "child")), _field(d, "values")
    ),
    "dict_eq": lambda d: DictEq(
        str(_field(d, "column")), str(_field(d, "value"))
    ),
    "dict_prefix": lambda d: DictPrefix(
        str(_field(d, "column")), str(_field(d, "prefix"))
    ),
    "dict_in": lambda d: DictIn(
        str(_field(d, "column")), _field(d, "values")
    ),
    "str_match": lambda d: StrMatch(
        column=str(_field(d, "column")),
        pattern=str(_field(d, "pattern")),
        flag_column=str(_field(d, "flag_column")),
        negated=bool(d.get("negated", False)),
    ),
}


def expr_from_dict(payload: Any) -> Expr:
    """Decode one expression payload; raises ``PlanError`` when malformed."""
    payload = _tagged(payload, "expression")
    decoder = _EXPR_DECODERS.get(payload["t"])
    if decoder is None:
        raise PlanError(
            f"unknown expression type {payload['t']!r}; known: "
            f"{sorted(_EXPR_DECODERS)}"
        )
    try:
        return decoder(payload)
    except (TypeError, ValueError) as exc:
        raise PlanError(
            f"malformed {payload['t']!r} payload: {exc}"
        ) from exc


# ---------------------------------------------------------------------------
# Plan nodes
# ---------------------------------------------------------------------------


def _agg_to_dict(agg: AggSpec) -> dict:
    payload: dict = {"func": agg.func, "name": agg.name}
    if agg.expr is not None:
        payload["expr"] = expr_to_dict(agg.expr)
    return payload


def _agg_from_dict(payload: Any) -> AggSpec:
    if not isinstance(payload, dict):
        raise PlanError(f"an aggregate payload must be an object: {payload!r}")
    expr = payload.get("expr")
    return AggSpec(
        func=str(_field(payload, "func")),
        expr=expr_from_dict(expr) if expr is not None else None,
        name=str(_field(payload, "name")),
    )


def node_to_dict(node: PlanNode) -> dict:
    """One plan node (and its subtree) as a tagged JSON-safe dict."""
    if isinstance(node, Scan):
        return {"t": "scan", "table": node.table}
    if isinstance(node, Filter):
        return {
            "t": "filter",
            "child": node_to_dict(node.child),
            "predicate": expr_to_dict(node.predicate),
        }
    if isinstance(node, Project):
        return {
            "t": "project",
            "child": node_to_dict(node.child),
            "outputs": [
                [name, expr_to_dict(expr)] for name, expr in node.outputs
            ],
        }
    if isinstance(node, Join):
        return {
            "t": "join",
            "probe": node_to_dict(node.probe),
            "build": node_to_dict(node.build),
            "fk_column": node.fk_column,
            "pk_column": node.pk_column,
            "carry": list(node.carry),
        }
    if isinstance(node, ExistsJoin):
        return {
            "t": "exists_join",
            "probe": node_to_dict(node.probe),
            "build": node_to_dict(node.build),
            "pk_column": node.pk_column,
            "fk_column": node.fk_column,
            "anti": node.anti,
        }
    if isinstance(node, OuterGroupJoin):
        return {
            "t": "outer_group_join",
            "probe": node_to_dict(node.probe),
            "build": node_to_dict(node.build),
            "fk_column": node.fk_column,
            "pk_column": node.pk_column,
            "count_name": node.count_name,
        }
    if isinstance(node, DisjunctJoin):
        return {
            "t": "disjunct_join",
            "probe": node_to_dict(node.probe),
            "build": node_to_dict(node.build),
            "fk_column": node.fk_column,
            "pk_column": node.pk_column,
            "disjuncts": [
                [expr_to_dict(bp), expr_to_dict(pp)]
                for bp, pp in node.disjuncts
            ],
        }
    if isinstance(node, GroupByAgg):
        payload = {
            "t": "group_by_agg",
            "child": node_to_dict(node.child),
            "aggregates": [_agg_to_dict(agg) for agg in node.aggregates],
            "key_name": node.key_name,
        }
        if node.key is not None:
            payload["key"] = expr_to_dict(node.key)
        return payload
    raise PlanError(f"cannot serialise plan node {type(node).__name__}")


_NODE_DECODERS: Dict[str, Callable[[dict], PlanNode]] = {
    "scan": lambda d: Scan(str(_field(d, "table"))),
    "filter": lambda d: Filter(
        node_from_dict(_field(d, "child")),
        expr_from_dict(_field(d, "predicate")),
    ),
    "project": lambda d: Project(
        node_from_dict(_field(d, "child")),
        [
            (str(name), expr_from_dict(expr))
            for name, expr in _field(d, "outputs")
        ],
    ),
    "join": lambda d: Join(
        probe=node_from_dict(_field(d, "probe")),
        build=node_from_dict(_field(d, "build")),
        fk_column=str(_field(d, "fk_column")),
        pk_column=str(_field(d, "pk_column")),
        carry=tuple(str(c) for c in d.get("carry", ())),
    ),
    "exists_join": lambda d: ExistsJoin(
        probe=node_from_dict(_field(d, "probe")),
        build=node_from_dict(_field(d, "build")),
        pk_column=str(_field(d, "pk_column")),
        fk_column=str(_field(d, "fk_column")),
        anti=bool(d.get("anti", False)),
    ),
    "outer_group_join": lambda d: OuterGroupJoin(
        probe=node_from_dict(_field(d, "probe")),
        build=node_from_dict(_field(d, "build")),
        fk_column=str(_field(d, "fk_column")),
        pk_column=str(_field(d, "pk_column")),
        count_name=str(d.get("count_name", "count")),
    ),
    "disjunct_join": lambda d: DisjunctJoin(
        probe=node_from_dict(_field(d, "probe")),
        build=node_from_dict(_field(d, "build")),
        fk_column=str(_field(d, "fk_column")),
        pk_column=str(_field(d, "pk_column")),
        disjuncts=tuple(
            (expr_from_dict(bp), expr_from_dict(pp))
            for bp, pp in _field(d, "disjuncts")
        ),
    ),
    "group_by_agg": lambda d: GroupByAgg(
        child=node_from_dict(_field(d, "child")),
        aggregates=tuple(
            _agg_from_dict(agg) for agg in _field(d, "aggregates")
        ),
        key=(
            expr_from_dict(d["key"]) if d.get("key") is not None else None
        ),
        key_name=str(d.get("key_name", "key")),
    ),
}


def node_from_dict(payload: Any) -> PlanNode:
    """Decode one plan-node payload; raises ``PlanError`` when malformed."""
    payload = _tagged(payload, "plan node")
    decoder = _NODE_DECODERS.get(payload["t"])
    if decoder is None:
        raise PlanError(
            f"unknown plan node type {payload['t']!r}; known: "
            f"{sorted(_NODE_DECODERS)}"
        )
    try:
        return decoder(payload)
    except (TypeError, ValueError) as exc:
        raise PlanError(
            f"malformed {payload['t']!r} payload: {exc}"
        ) from exc


# ---------------------------------------------------------------------------
# Plans and the wire envelope
# ---------------------------------------------------------------------------


def plan_to_dict(plan: LogicalPlan) -> dict:
    """A :class:`LogicalPlan` as a JSON-safe structural dict."""
    return {"name": plan.name, "root": node_to_dict(plan.root)}


def plan_from_dict(payload: Any) -> LogicalPlan:
    """Inverse of :func:`plan_to_dict`."""
    if not isinstance(payload, dict):
        raise PlanError("a plan payload must be an object")
    return LogicalPlan(
        name=str(payload.get("name", "plan")),
        root=node_from_dict(_field(payload, "root")),
    )


def plan_to_wire(plan: LogicalPlan) -> dict:
    """The wire envelope: structural JSON plus the IR fingerprint."""
    return {
        "plan": plan_to_dict(plan),
        "fingerprint": plan_fingerprint(plan),
    }


def plan_from_wire(wire: Any) -> LogicalPlan:
    """Decode a wire envelope, verifying its fingerprint when present."""
    if not isinstance(wire, dict):
        raise PlanError("a plan envelope must be an object")
    plan = plan_from_dict(_field(wire, "plan"))
    claimed = wire.get("fingerprint")
    if claimed is not None and claimed != plan_fingerprint(plan):
        raise PlanError(
            f"plan envelope fingerprint {claimed!r} does not match the "
            f"decoded tree ({plan_fingerprint(plan)}); the payload was "
            "altered or produced by an incompatible serde"
        )
    return plan


__all__ = [
    "expr_from_dict",
    "expr_to_dict",
    "node_from_dict",
    "node_to_dict",
    "plan_from_dict",
    "plan_from_wire",
    "plan_to_dict",
    "plan_to_wire",
]
