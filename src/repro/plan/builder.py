"""Fluent construction of logical operator trees.

:class:`PlanBuilder` is the front-door spelling of the plan IR: each
method wraps the current :class:`~repro.plan.ops.PlanNode` in the next
operator and returns a new builder, so a query reads top to bottom like
its own plan::

    from repro import PlanBuilder
    from repro.plan.expressions import Col, DictEq

    plan = (
        PlanBuilder.scan("lineitem")
        .filter(Col("l_shipdate") < 10471)
        .join("part", fk_column="l_partkey", pk_column="p_partkey",
              carry=("p_type",))
        .group_agg(AggSpec("sum", Col("l_extendedprice"), name="revenue"),
                   key="p_type")
        .build("revenue-by-type")
    )

``build()`` validates the finished tree (the staged pipeline requires a
:class:`~repro.plan.ops.GroupByAgg` root) and returns a
:class:`~repro.plan.ops.LogicalPlan` ready for ``Engine.execute`` /
``Engine.explain`` or the wire protocol (:mod:`repro.plan.serde`).

Build sides of the join constructors accept another builder, a raw
plan node, or a bare table name (shorthand for ``Scan``). Builders are
immutable: every method returns a fresh builder, so prefixes can be
shared between queries.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple, Union

from ..errors import PlanError
from .expressions import And, Col, Expr
from .logical import AggSpec
from .ops import (
    DisjunctJoin,
    ExistsJoin,
    Filter,
    GroupByAgg,
    Join,
    LogicalPlan,
    OuterGroupJoin,
    PlanNode,
    Project,
    Scan,
    validate,
)

#: Anything accepted as the build side of a join: another builder, a
#: finished plan node, or a table name (shorthand for ``Scan(name)``).
BuildSide = Union["PlanBuilder", PlanNode, str]


def _as_node(side: BuildSide) -> PlanNode:
    if isinstance(side, PlanBuilder):
        return side.node
    if isinstance(side, PlanNode):
        return side
    if isinstance(side, str):
        return Scan(side)
    raise PlanError(
        f"a build side must be a PlanBuilder, a PlanNode, or a table "
        f"name, got {type(side).__name__}"
    )


def scan(table: str) -> "PlanBuilder":
    """Start a builder at a base-table scan (module-level shorthand)."""
    return PlanBuilder(Scan(table))


class PlanBuilder:
    """A partially-built operator tree; see the module docstring."""

    __slots__ = ("_node",)

    def __init__(self, node: PlanNode) -> None:
        if not isinstance(node, PlanNode):
            raise PlanError(
                f"PlanBuilder wraps plan nodes, got {type(node).__name__}"
            )
        self._node = node

    @property
    def node(self) -> PlanNode:
        """The operator tree built so far."""
        return self._node

    @classmethod
    def scan(cls, table: str) -> "PlanBuilder":
        """Start a plan at a base-table scan."""
        return cls(Scan(table))

    # -- stream operators ------------------------------------------------

    def filter(self, *predicates: Expr) -> "PlanBuilder":
        """Keep rows satisfying every predicate (ANDed when several).

        Each argument becomes its own conjunct — one branch site (or
        prepass loop) per argument under the baseline strategies. To
        make several comparisons share a single site, pass one
        ``And([...])`` argument instead.
        """
        if not predicates:
            raise PlanError("filter() needs at least one predicate")
        for pred in predicates:
            if not isinstance(pred, Expr):
                raise PlanError(
                    f"filter() takes expressions, got {type(pred).__name__}"
                )
        predicate = (
            predicates[0]
            if len(predicates) == 1
            else And(list(predicates))
        )
        return PlanBuilder(Filter(self._node, predicate))

    def project(self, **outputs: Expr) -> "PlanBuilder":
        """Add derived columns ``name=expr`` to the stream."""
        return PlanBuilder(Project(self._node, tuple(outputs.items())))

    # -- joins (the current stream is always the probe side) -------------

    def join(
        self,
        build: BuildSide,
        *,
        fk_column: str,
        pk_column: str,
        carry: Sequence[str] = (),
    ) -> "PlanBuilder":
        """FK equijoin against ``build``; ``carry`` pulls build columns
        into the stream (an index join), empty means pure semijoin."""
        return PlanBuilder(
            Join(
                probe=self._node,
                build=_as_node(build),
                fk_column=fk_column,
                pk_column=pk_column,
                carry=tuple(carry),
            )
        )

    def exists_join(
        self,
        build: BuildSide,
        *,
        pk_column: str,
        fk_column: str,
        anti: bool = False,
    ) -> "PlanBuilder":
        """Existential semijoin: keep stream rows referenced by at least
        one build row (Q4's ``EXISTS``); ``anti`` inverts it."""
        return PlanBuilder(
            ExistsJoin(
                probe=self._node,
                build=_as_node(build),
                pk_column=pk_column,
                fk_column=fk_column,
                anti=anti,
            )
        )

    def anti_join(
        self, build: BuildSide, *, pk_column: str, fk_column: str
    ) -> "PlanBuilder":
        """``NOT EXISTS`` — sugar for ``exists_join(anti=True)``."""
        return self.exists_join(
            build, pk_column=pk_column, fk_column=fk_column, anti=True
        )

    def outer_group_join(
        self,
        build: BuildSide,
        *,
        fk_column: str,
        pk_column: str,
        count_name: str = "count",
    ) -> "PlanBuilder":
        """Count stream rows per build key, keeping zero-count build
        rows (Q13). Rekeys the stream to one row per build key."""
        return PlanBuilder(
            OuterGroupJoin(
                probe=self._node,
                build=_as_node(build),
                fk_column=fk_column,
                pk_column=pk_column,
                count_name=count_name,
            )
        )

    def disjunct_join(
        self,
        build: BuildSide,
        *,
        fk_column: str,
        pk_column: str,
        disjuncts: Iterable[Tuple[Expr, Expr]],
    ) -> "PlanBuilder":
        """OR-of-conjunctions join filter (Q19): each disjunct pairs a
        build-side predicate with a probe-side predicate."""
        return PlanBuilder(
            DisjunctJoin(
                probe=self._node,
                build=_as_node(build),
                fk_column=fk_column,
                pk_column=pk_column,
                disjuncts=tuple(disjuncts),
            )
        )

    # -- aggregation root ------------------------------------------------

    def group_agg(
        self,
        *aggregates: AggSpec,
        key: Union[Expr, str, None] = None,
        key_name: Optional[str] = None,
    ) -> "PlanBuilder":
        """Aggregate the stream: scalar without ``key``, grouped with.

        ``key`` may be a column name (shorthand for ``Col(name)``, which
        also names the key) or any expression; ``key_name`` labels
        expression keys in rendered plans.
        """
        key_expr: Optional[Expr]
        if isinstance(key, str):
            key_expr = Col(key)
            key_name = key_name if key_name is not None else key
        elif key is None or isinstance(key, Expr):
            key_expr = key
            if key_name is None:
                key_name = key.name if isinstance(key, Col) else "key"
        else:
            raise PlanError(
                f"group key must be a column name or expression, "
                f"got {type(key).__name__}"
            )
        return PlanBuilder(
            GroupByAgg(
                child=self._node,
                aggregates=tuple(aggregates),
                key=key_expr,
                key_name=key_name,
            )
        )

    # -- finish ----------------------------------------------------------

    def build(self, name: str) -> LogicalPlan:
        """Validate the finished tree and return the named plan."""
        plan = LogicalPlan(name=str(name), root=self._node)
        validate(plan)
        return plan

    def describe(self) -> str:
        """Rendering of the tree built so far (for interactive use)."""
        return LogicalPlan(name="<building>", root=self._node).describe()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PlanBuilder({self._node!r})"


__all__ = ["BuildSide", "PlanBuilder", "scan"]
