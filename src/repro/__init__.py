"""SWOLE: access-aware code generation with predicate pullups.

Reproduction of Crotty, Galakatos & Kraska (ICDE 2020). See README.md for
the public API tour and DESIGN.md for the architecture.

The unified entry point is :class:`Engine` — compile (with plan caching),
execute (morsel-parallel), inspect run metrics::

    from repro import Engine
    from repro.datagen import microbench as mb

    db = mb.generate(mb.MicrobenchConfig(num_rows=1_000_000))
    engine = Engine(db, workers=4)
    result = engine.execute(mb.q1(13))
    print(result.scalar(), result.metrics.describe())

The historical free functions ``compile_query`` / ``compile_swole``
remain as deprecated wrappers; prefer ``Engine.compile``.
"""

__version__ = "1.1.0"

import warnings as _warnings

from .codegen import available_strategies
from .codegen import compile_query as _compile_query
from .core import compile_swole as _compile_swole
from .core import plan_query
from .engine import (
    Engine,
    ExecutionKnobs,
    MachineModel,
    MorselExecutor,
    PAPER_MACHINE,
    PlanCache,
    RunMetrics,
    Session,
    WorkerPool,
)
from .errors import ReproError
from .plan import AggSpec, Col, Const, JoinSpec, Query
from .storage import Database


def compile_query(query, db, strategy):
    """Deprecated: use :meth:`Engine.compile` instead.

    ``Engine(db).compile(query, strategy)`` adds plan caching and pairs
    with morsel-parallel execution; this wrapper compiles uncached.
    """
    _warnings.warn(
        "repro.compile_query is deprecated; use repro.Engine(db)"
        ".compile(query, strategy)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _compile_query(query, db, strategy)


def compile_swole(query, db, machine=None, stats=None, force=None):
    """Deprecated: use :meth:`Engine.compile` instead.

    ``Engine(db, machine=...).compile(query)`` resolves to SWOLE by
    default; keep using :func:`repro.core.swole.compile_swole` directly
    for the ``stats``/``force`` research knobs.
    """
    _warnings.warn(
        "repro.compile_swole is deprecated; use repro.Engine(db, "
        "machine=...).compile(query)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _compile_swole(query, db, machine=machine, stats=stats, force=force)


__all__ = [
    "AggSpec",
    "Col",
    "Const",
    "Database",
    "Engine",
    "ExecutionKnobs",
    "JoinSpec",
    "MachineModel",
    "MorselExecutor",
    "PAPER_MACHINE",
    "PlanCache",
    "Query",
    "ReproError",
    "RunMetrics",
    "Session",
    "WorkerPool",
    "__version__",
    "available_strategies",
    "compile_query",
    "compile_swole",
    "plan_query",
]
