"""SWOLE: access-aware code generation with predicate pullups.

Reproduction of Crotty, Galakatos & Kraska (ICDE 2020). See README.md for
the public API tour and DESIGN.md for the architecture.

The unified entry point is :class:`Engine` — compile (with plan caching),
execute (morsel-parallel), inspect run metrics::

    from repro import Engine
    from repro.datagen import microbench as mb

    db = mb.generate(mb.MicrobenchConfig(num_rows=1_000_000))
    engine = Engine(db, workers=4)
    result = engine.execute(mb.q1(13))
    print(result.scalar(), result.metrics.describe())

Operator-tree plans are the primary query API: build one fluently with
:class:`PlanBuilder` (or look up a TPC-H plan via
``repro.tpch.logical_plan``) and hand it to ``Engine.execute`` /
``Engine.explain`` — or to a remote query server, which carries the
same plan over the wire as structural JSON plus its IR fingerprint
(:mod:`repro.plan.serde`). Addressing TPC-H queries by bare name string
still works but is deprecated.

``Engine.explain(query, strategy)`` renders the staged lowering pipeline
(logical plan -> passes -> physical plan) for any query with an operator
tree. The pre-1.2 module-level ``compile_query`` / ``compile_swole``
wrappers have been removed; call ``Engine.compile`` (or the underlying
``repro.codegen.base.compile_query`` / ``repro.core.swole.compile_swole``
for the research knobs).
"""

__version__ = "1.6.0"

from .codegen import available_strategies
from .core import plan_query
from .engine import (
    Engine,
    ExecutionKnobs,
    MachineModel,
    MorselExecutor,
    PAPER_MACHINE,
    PlanCache,
    RunMetrics,
    Session,
    WorkerPool,
)
from .errors import ReproError
from .plan import (
    AggSpec,
    Col,
    Const,
    JoinSpec,
    LogicalPlan,
    PlanBuilder,
    Query,
    from_query,
)
from .storage import Database

__all__ = [
    "AggSpec",
    "Col",
    "Const",
    "Database",
    "Engine",
    "ExecutionKnobs",
    "JoinSpec",
    "LogicalPlan",
    "MachineModel",
    "MorselExecutor",
    "PAPER_MACHINE",
    "PlanBuilder",
    "PlanCache",
    "Query",
    "ReproError",
    "RunMetrics",
    "Session",
    "WorkerPool",
    "__version__",
    "available_strategies",
    "from_query",
    "plan_query",
]
