"""SWOLE: access-aware code generation with predicate pullups.

Reproduction of Crotty, Galakatos & Kraska (ICDE 2020). See README.md for
the public API tour and DESIGN.md for the architecture.

Typical entry points::

    from repro import Session, compile_query, compile_swole
    from repro.datagen import microbench as mb

    db = mb.generate(mb.MicrobenchConfig(num_rows=1_000_000))
    program = compile_swole(mb.q1(13), db)
    result = program.run(Session())
"""

__version__ = "1.0.0"

from .codegen import available_strategies, compile_query
from .core import compile_swole, plan_query
from .engine import MachineModel, PAPER_MACHINE, Session
from .errors import ReproError
from .plan import AggSpec, Col, Const, JoinSpec, Query
from .storage import Database

__all__ = [
    "AggSpec",
    "Col",
    "Const",
    "Database",
    "JoinSpec",
    "MachineModel",
    "PAPER_MACHINE",
    "Query",
    "ReproError",
    "Session",
    "__version__",
    "available_strategies",
    "compile_query",
    "compile_swole",
    "plan_query",
]
