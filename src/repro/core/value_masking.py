"""Value masking (paper §III-A, Fig. 3).

Instead of filtering early, evaluate the predicate into a 0/1 ``cmp``
array, then *unconditionally* read the aggregation columns sequentially
and multiply each value by its predicate result before accumulating.
The conditional read of the pushdown strategies becomes a sequential
read; the price is wasted work on masked tuples.

Two pipelines live here:

* :func:`scalar_pipeline` — single aggregate, optionally with access
  merging (paper Fig. 5);
* :func:`grouped_pipeline` — the value-masked group-by of paper Fig. 4
  (top): every tuple performs a hash lookup with its *real* key and the
  aggregated value is masked. Requires the extra bookkeeping flag the
  paper describes (a count column marking entries that received at least
  one unmasked tuple).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Set

import numpy as np

from ..codegen.common import (
    agg_exprs_columns,
    emit_expr_compute,
    emit_seq_reads,
    grouped_result,
    prepass_predicate,
)
from ..engine import kernels as K
from ..engine.events import Compute
from ..engine.hashtable import HashTable
from ..engine.session import Session
from ..plan.logical import Query


def _masked_deltas(
    session: Session,
    data: Dict[str, np.ndarray],
    query: Query,
    mask: np.ndarray,
    already_read: Optional[Set[str]],
) -> Dict[str, np.ndarray]:
    """Unconditionally compute each aggregate's deltas, masked by ``mask``.

    Reads every aggregate column sequentially (skipping columns already
    read by a merged prepass), computes the expression with SIMD over all
    rows, and multiplies by the 0/1 predicate result.
    """
    n = int(mask.shape[0])
    cols = agg_exprs_columns(query.aggregates)
    emit_seq_reads(session, data, cols, already_read=already_read)
    mask_int = mask.astype(np.int64)
    deltas: Dict[str, np.ndarray] = {}
    for agg in query.aggregates:
        if agg.func == "count":
            session.tracer.emit(Compute(n=n, op="add", simd=True))
            deltas[agg.name] = mask_int
            continue
        emit_expr_compute(session, agg.expr, n, simd=True)
        session.tracer.emit(Compute(n=n, op="mul", simd=True))  # masking
        values = np.asarray(agg.expr.evaluate(data), dtype=np.int64)
        deltas[agg.name] = values * mask_int
    return deltas


def scalar_pipeline(
    session: Session,
    data: Dict[str, np.ndarray],
    query: Query,
    already_read: Optional[Set[str]] = None,
    mask: Optional[np.ndarray] = None,
) -> Dict[str, Any]:
    """Value-masked scalar aggregation.

    ``mask`` may be supplied by a caller that already evaluated the
    predicate (e.g. the bitmap semijoin combines its bit tests with the
    probe-side prepass); otherwise the prepass runs here.
    """
    conjs = query.predicate_conjuncts()
    with session.tracer.overlap():
        if mask is None:
            if conjs:
                mask = prepass_predicate(
                    session, data, conjs, already_read=already_read
                )
            else:
                n = int(next(iter(data.values())).shape[0])
                mask = np.ones(n, dtype=bool)
        deltas = _masked_deltas(session, data, query, mask, already_read)
        result: Dict[str, Any] = {}
        n = int(mask.shape[0])
        for agg in query.aggregates:
            session.tracer.emit(Compute(n=n, op="add", simd=True))
            result[agg.name] = int(np.sum(deltas[agg.name], dtype=np.int64))
    if any(agg.func == "count" for agg in query.aggregates):
        # counts were produced by summing the mask itself
        for agg in query.aggregates:
            if agg.func == "count":
                result[agg.name] = int(mask.sum())
    return result


def grouped_pipeline(
    session: Session,
    data: Dict[str, np.ndarray],
    query: Query,
) -> Dict[str, Any]:
    """Value-masked group-by (paper Fig. 4 top).

    Every tuple looks up its *real* group key — an unconditional hash
    access — and adds its masked delta. A trailing count column (the
    bookkeeping flag) records how many unmasked tuples each entry saw, so
    entries created only by masked tuples are dropped from the result.
    """
    conjs = query.predicate_conjuncts()
    with session.tracer.overlap():
        if conjs:
            mask = prepass_predicate(session, data, conjs)
        else:
            n = int(next(iter(data.values())).shape[0])
            mask = np.ones(n, dtype=bool)
        return _vm_grouped_body(session, data, query, mask)


def _vm_grouped_body(session, data, query, mask):
    with session.tracer.kernel("vm group-by"):
        emit_seq_reads(session, data, [query.group_by])
        keys = data[query.group_by].astype(np.int64)
        num_aggs = len(query.aggregates) + 1
        table = HashTable(
            expected_keys=_distinct_estimate(keys), num_aggs=num_aggs
        )
        deltas = _masked_deltas(session, data, query, mask, None)
        slots = None
        for i, agg in enumerate(query.aggregates):
            if slots is None:
                # one unconditional random access per tuple (the lookup);
                # subsequent aggregate columns reuse the resolved slot
                K.ht_aggregate(session, table, keys, deltas[agg.name], agg=i)
                slots, _ = table.lookup(keys)
            else:
                K.ht_add_at(session, table, slots, i, deltas[agg.name])
        if slots is None:
            slots, _ = table.lookup(keys)
        K.ht_add_at(
            session, table, slots, num_aggs - 1, mask.astype(np.int64)
        )
        result_keys, aggs = table.items()
        valid = aggs[:, num_aggs - 1] > 0
        return grouped_result(
            result_keys[valid], aggs[valid, : len(query.aggregates)]
        )


def _distinct_estimate(keys: np.ndarray) -> int:
    sample = keys[: min(keys.shape[0], 65536)]
    distinct = int(np.unique(sample).shape[0])
    if sample.shape[0] and distinct >= 0.9 * sample.shape[0]:
        return max(int(distinct * keys.shape[0] / sample.shape[0]), 1)
    return max(distinct, 1)
