"""Value masking for SQL CASE statements (paper §III-A, last paragraph).

A CASE normally compiles to a chain of branching if-else expressions —
every arm is a branch-misprediction site and the arm bodies read their
columns conditionally. The masked form instead evaluates *every* arm
unconditionally with SIMD and combines the results with 0/1 masks:

    result = v1*m1 + v2*(!m1 & m2) + ... + default*(!m1 & !m2 & ...)

"While this approach avoids the poor access patterns associated with
conditional branching, unconditionally evaluating complex (or too many)
cases can again become prohibitively expensive, and we must apply the
cost model to see if this optimization is beneficial."
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..engine import kernels as K
from ..engine.costing import Tracer
from ..engine.events import Branch, Compute, CondRead, SeqRead
from ..engine.machine import MachineModel
from ..engine.session import Session
from ..plan.expressions import Case, arith_ops

#: Bytes per referenced value assumed by the quick cost check.
_WIDTH = 8


def masked_case_sum(
    session: Session, data: Dict[str, np.ndarray], case: Case
) -> int:
    """Sum a CASE over all rows with masked (branch-free) evaluation.

    Every arm's condition and value are computed for every row (SIMD,
    sequential reads); the per-arm masks select the first matching arm.
    """
    n = int(next(iter(data.values())).shape[0])
    seen = set()
    for cond, value in case.branches:
        for name in sorted(cond.columns() | value.columns()):
            if name not in seen:
                seen.add(name)
                K.seq_read(session, data[name], name)
        session.tracer.emit(Compute(n=n, op="cmp", simd=True, width=_WIDTH))
        for op in arith_ops(cond) + arith_ops(value):
            session.tracer.emit(
                Compute(n=n, op=op, simd=True, width=_WIDTH)
            )
        # mask combine: one multiply and one and per arm
        session.tracer.emit(Compute(n=n, op="mul", simd=True, width=_WIDTH))
        session.tracer.emit(Compute(n=n, op="and", simd=True, width=1))
    for name in sorted(case.default.columns()):
        if name not in seen:
            seen.add(name)
            K.seq_read(session, data[name], name)
    session.tracer.emit(Compute(n=n, op="add", simd=True, width=_WIDTH))
    values = case.evaluate(data)
    return int(np.sum(values, dtype=np.int64))


def branching_case_sum(
    session: Session, data: Dict[str, np.ndarray], case: Case
) -> int:
    """Sum a CASE with the conventional if-else chain (data-centric).

    Each arm is a branch site with its *measured* hit fraction among the
    rows that reached it; arm bodies read their columns conditionally.
    """
    n = int(next(iter(data.values())).shape[0])
    remaining = np.ones(n, dtype=bool)
    alive = n
    for i, (cond, value) in enumerate(case.branches):
        cond_cols = sorted(cond.columns())
        for name in cond_cols:
            if i == 0:
                K.seq_read(session, data[name], name)
            else:
                session.tracer.emit(
                    CondRead(
                        n_range=n,
                        n_selected=alive,
                        width=int(data[name].dtype.itemsize),
                        array=name,
                    )
                )
        session.tracer.emit(Compute(n=alive, op="cmp", simd=False))
        hits = remaining & np.asarray(cond.evaluate(data), dtype=bool)
        taken = float(hits.sum()) / alive if alive else 0.0
        session.tracer.emit(
            Branch(n=alive, taken_fraction=taken, site=f"case{i}")
        )
        k = int(hits.sum())
        for name in sorted(value.columns()):
            session.tracer.emit(
                CondRead(
                    n_range=n,
                    n_selected=k,
                    width=int(data[name].dtype.itemsize),
                    array=name,
                )
            )
        for op in arith_ops(value):
            session.tracer.emit(Compute(n=k, op=op, simd=False))
        remaining = remaining & ~hits
        alive = int(remaining.sum())
    for name in sorted(case.default.columns()):
        session.tracer.emit(
            CondRead(
                n_range=n,
                n_selected=alive,
                width=int(data[name].dtype.itemsize),
                array=name,
            )
        )
    for op in arith_ops(case.default):
        session.tracer.emit(Compute(n=alive, op=op, simd=False))
    session.tracer.emit(Compute(n=n, op="add", simd=False))
    K.scalar_loop(session, n)
    values = case.evaluate(data)
    return int(np.sum(values, dtype=np.int64))


def masking_beneficial(machine: MachineModel, case: Case, num_rows: int) -> bool:
    """Cost check: should this CASE be masked or branched?

    Prices both symbolic forms (assuming uniform arm hit rates, the
    planner's prior) and returns True when masking wins. Few cheap arms
    -> mask; many arms or expensive arithmetic (division) -> branch.
    """
    arms = len(case.branches)
    uniform = 1.0 / (arms + 1)

    masked = Tracer(machine)
    with masked.overlap():
        for ops in case.branch_ops():
            masked.emit(Compute(n=num_rows, op="cmp", simd=True, width=_WIDTH))
            for op in ops:
                masked.emit(
                    Compute(n=num_rows, op=op, simd=True, width=_WIDTH)
                )
            masked.emit(Compute(n=num_rows, op="mul", simd=True, width=_WIDTH))
        masked.emit(SeqRead(n=num_rows * max(arms, 1), width=_WIDTH))

    branched = Tracer(machine)
    with branched.overlap():
        alive = float(num_rows)
        for ops in case.branch_ops():
            branched.emit(Compute(n=int(alive), op="cmp", simd=False))
            taken = min(uniform / (alive / num_rows), 1.0)
            branched.emit(Branch(n=int(alive), taken_fraction=taken))
            for op in ops:
                branched.emit(Compute(n=int(alive * uniform), op=op, simd=False))
            branched.emit(
                CondRead(
                    n_range=num_rows,
                    n_selected=max(int(num_rows * uniform), 1),
                    width=_WIDTH,
                )
            )
            alive = max(alive - num_rows * uniform, 1.0)

    return masked.report.total_cycles <= branched.report.total_cycles
