"""Key masking (paper §III-B, Fig. 4 bottom).

For group-by aggregation over a *large* hash table, value masking's
unconditional lookups get expensive: every tuple pays a random access
into a structure that misses cache. Key masking masks the group-by *key*
instead: tuples failing the predicate aggregate into a single throwaway
``NULL_KEY`` entry, which stays cache-hot exactly when the predicate
fails often. No bookkeeping flag is needed — every entry other than the
throwaway is guaranteed valid.

The kernel layer detects ``NULL_KEY`` batches and prices them through the
hot-entry path of the cost accountant, whose residency degrades as valid
(cache-polluting) lookups become more frequent — reproducing the paper's
finding that key masking only overtakes hybrid beyond ~45 % selectivity
at 100 K keys and ~85 % at 10 M keys (and that it is therefore *not* the
dominant strategy Voodoo suggested).
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..codegen.common import (
    agg_exprs_columns,
    emit_expr_compute,
    emit_seq_reads,
    grouped_result,
    prepass_predicate,
)
from ..engine import kernels as K
from ..engine.events import Compute
from ..engine.hashtable import NULL_KEY, HashTable
from ..engine.session import Session
from ..plan.logical import Query
from .value_masking import _distinct_estimate


def mask_keys(
    session: Session,
    keys: np.ndarray,
    mask: np.ndarray,
    array: str,
) -> np.ndarray:
    """First inner loop of Fig. 4 (bottom): ``key[j] = pred ? c : NULL``.

    A predicated select per tuple plus a sequential write of the masked
    key array (tile-resident).
    """
    n = int(keys.shape[0])
    session.tracer.emit(Compute(n=n, op="blend", simd=True, width=8))
    masked = np.where(mask, keys, NULL_KEY)
    K.seq_write(session, masked, f"key({array})", resident=True)
    return masked


def grouped_pipeline(
    session: Session,
    data: Dict[str, np.ndarray],
    query: Query,
) -> Dict[str, Any]:
    """Key-masked group-by aggregation."""
    conjs = query.predicate_conjuncts()
    n = int(next(iter(data.values())).shape[0])
    with session.tracer.overlap():
        if conjs:
            mask = prepass_predicate(session, data, conjs)
        else:
            mask = np.ones(n, dtype=bool)
        return _km_grouped_body(session, data, query, mask)


def _km_grouped_body(session, data, query, mask):
    n = int(next(iter(data.values())).shape[0])
    with session.tracer.kernel("km group-by"):
        emit_seq_reads(session, data, [query.group_by])
        raw_keys = data[query.group_by].astype(np.int64)
        keys = mask_keys(session, raw_keys, mask, query.group_by)

        num_aggs = len(query.aggregates)
        table = HashTable(
            expected_keys=_distinct_estimate(raw_keys) + 1, num_aggs=num_aggs
        )
        # Second loop: every tuple aggregates — valid keys to their entry,
        # masked keys to the throwaway. Values are NOT masked here (the
        # masking happened on the key), so deltas are the raw expression.
        cols = agg_exprs_columns(query.aggregates)
        emit_seq_reads(session, data, cols)
        slots = None
        for i, agg in enumerate(query.aggregates):
            if agg.func == "count":
                deltas = np.ones(n, dtype=np.int64)
                session.tracer.emit(Compute(n=n, op="add", simd=True))
            else:
                emit_expr_compute(session, agg.expr, n, simd=True)
                deltas = np.asarray(agg.expr.evaluate(data), dtype=np.int64)
            if slots is None:
                K.ht_aggregate(session, table, keys, deltas, agg=i)
                slots, _ = table.lookup(keys)
            else:
                K.ht_add_at(session, table, slots, i, deltas)
        result_keys, aggs = table.items()
        keep = result_keys != NULL_KEY
        return grouped_result(result_keys[keep], aggs[keep])
