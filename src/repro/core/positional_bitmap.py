"""Positional-bitmap semijoins (paper §III-D).

A semijoin's hash table is replaced by a bitmap addressed by *row
offset* of the build table:

* **build** — a sequential scan of the build side sets one bit per row.
  The value-masking cost model picks between an unconditional mask write
  (every bit written with the predicate result) and a selection-vector
  build (set bits only for passing rows).
* **probe** — the probe side reads its foreign-key index offsets
  sequentially and tests the corresponding bit. The bitmap is tiny
  (100 M rows ~ 12.5 MB), so the "random" bit tests stay cache-resident.

Random hash inserts and lookups on both sides become sequential scans
plus cached bit tests — the access-pattern win behind the paper's
largest TPC-H speedup (Q4, 2.63x over hybrid).
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..codegen.common import (
    agg_exprs_columns,
    eval_aggregates_subset,
    prepass_predicate,
)
from ..engine import kernels as K
from ..engine.events import Compute
from ..engine.session import Session
from ..errors import CodegenError
from ..plan.expressions import conjuncts
from ..plan.logical import Query
from ..storage.bitmap import PositionalBitmap
from ..storage.database import Database
from . import planner as P
from .value_masking import scalar_pipeline


def build_bitmap(
    session: Session,
    db: Database,
    query: Query,
    mode: str,
) -> PositionalBitmap:
    """Build the positional bitmap over the build table's rows."""
    join = query.join
    build_data = db.data(join.build_table)
    n = int(next(iter(build_data.values())).shape[0])
    build_conjs = conjuncts(join.build_predicate)
    bitmap = PositionalBitmap(n)
    with session.tracer.kernel(f"bitmap build {join.build_table}"), \
            session.tracer.overlap():
        if build_conjs:
            mask = prepass_predicate(session, build_data, build_conjs)
        else:
            mask = np.ones(n, dtype=bool)
        if mode == P.BITMAP_MASK:
            K.bitmap_build_mask(session, bitmap, mask, "bitmap")
        elif mode == P.BITMAP_OFFSETS:
            idx = K.selection_vector(session, mask)
            K.bitmap_build_offsets(session, bitmap, idx, "bitmap")
        else:
            raise CodegenError(f"unknown bitmap build mode {mode!r}")
    return bitmap


def probe_pipeline(
    session: Session,
    query: Query,
    bitmap: PositionalBitmap,
    view: Dict[str, np.ndarray],
    offsets: np.ndarray,
    aggregation: str,
) -> Dict[str, Any]:
    """Probe (a morsel of) the probe table against a built bitmap.

    ``view`` and ``offsets`` are row-aligned slices of the probe table's
    columns and its FK index; the bitmap is read-only, so morsels probe
    it concurrently.
    """
    join = query.join
    n = int(offsets.shape[0])
    with session.tracer.kernel(f"bitmap probe {query.table}"), \
            session.tracer.overlap():
        conjs = query.predicate_conjuncts()
        if conjs:
            mask = prepass_predicate(session, view, conjs)
        else:
            mask = np.ones(n, dtype=bool)
        # The FK index offsets are a plain int64 column, scanned
        # sequentially; the bit tests are cached random accesses.
        K.seq_read(session, offsets, f"fkindex({join.fk_column})")
        hits = K.bitmap_probe(session, bitmap, offsets, "bitmap")
        session.tracer.emit(Compute(n=n, op="and", simd=True, width=1))
        combined = mask & hits

    with session.tracer.kernel("aggregate"), session.tracer.overlap():
        if aggregation == P.VALUE_MASKING:
            return scalar_pipeline(session, view, query, mask=combined)
        # hybrid fallback: selection vector over the combined mask
        idx = K.selection_vector(session, combined)
        for col in agg_exprs_columns(query.aggregates):
            K.gather(session, view[col], idx, col)
        return eval_aggregates_subset(
            session, view, query.aggregates, combined, simd=False
        )


def semijoin_pipeline(
    session: Session,
    db: Database,
    query: Query,
    build_mode: str,
    aggregation: str,
) -> Dict[str, Any]:
    """Full bitmap semijoin: build, probe through the FK index, aggregate.

    ``aggregation`` selects value masking (pullup all the way down) or the
    hybrid fallback (selection vector + gather) for the final step.
    """
    join = query.join
    bitmap = build_bitmap(session, db, query, build_mode)
    data = db.data(query.table)
    fk_index = db.fk_index(query.table, join.fk_column)
    return probe_pipeline(
        session, query, bitmap, data, fk_index.offsets, aggregation
    )
