"""SWOLE core: techniques, cost models, and the technique planner."""

from .cost_models import (
    ModelInputs,
    eager_aggregation_cost,
    groupjoin_cost,
    hybrid_cost,
    key_masking_cost,
    planned_ht_bytes,
    price_events,
    value_masking_cost,
)
from .planner import SwolePlan, model_inputs, plan_query, technique_matrix
from .swole import compile_swole

__all__ = [
    "ModelInputs",
    "SwolePlan",
    "compile_swole",
    "eager_aggregation_cost",
    "groupjoin_cost",
    "hybrid_cost",
    "key_masking_cost",
    "model_inputs",
    "plan_query",
    "planned_ht_bytes",
    "price_events",
    "technique_matrix",
    "value_masking_cost",
]
