"""SWOLE: the access-aware code-generation strategy (paper Section III).

Compilation runs the planner over sampled statistics, then composes the
selected techniques:

========================  =======================================
query shape               techniques considered
========================  =======================================
scalar aggregation        value masking (+ access merging) | hybrid
group-by aggregation      value masking | key masking | hybrid
semijoin                  positional bitmap (build mode by model),
                          final aggregation value-masked or hybrid
groupjoin                 eager aggregation | hybrid groupjoin
========================  =======================================

The hybrid strategy is the explicit fallback whenever the cost models say
a pullup would not pay (paper: "we can simply fall back to generating
code using the hybrid strategy").
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..codegen.base import register_strategy
from ..codegen.emit import (
    emit_bitmap_semijoin,
    emit_eager_aggregation,
    emit_key_masking,
    emit_value_masking,
)
from ..codegen.hybrid import compile_hybrid
from ..engine.program import CompiledQuery
from ..engine.session import Session
from ..plan.logical import Query, QueryStats
from ..storage.database import Database
from . import planner as P
from .access_merging import merged_read_set
from .eager_aggregation import groupjoin_pipeline
from .key_masking import grouped_pipeline as km_grouped
from .positional_bitmap import semijoin_pipeline
from .value_masking import grouped_pipeline as vm_grouped
from .value_masking import scalar_pipeline as vm_scalar


def compile_swole(
    query: Query,
    db: Database,
    machine=None,
    stats: Optional[QueryStats] = None,
    force: Optional[str] = None,
) -> CompiledQuery:
    """Compile ``query`` with SWOLE.

    ``machine`` is the machine model the program will be *run* on (pass
    the same scaled model used by the session, or the planner will reason
    about the wrong cache ratios). ``stats`` overrides sampled statistics
    (used by tests); ``force`` overrides the planner's aggregation choice
    (used by the cost-model ablation bench to measure the road not
    taken).
    """
    from ..engine.machine import PAPER_MACHINE

    if machine is None:
        machine = PAPER_MACHINE
    plan = P.plan_query(query, db, machine, stats=stats)
    if force is not None:
        plan.aggregation = force
    data = db.data(query.table)

    if query.join is None and query.group_by is None:
        return _compile_scalar(query, db, data, plan)
    if query.join is None:
        return _compile_grouped(query, db, data, plan)
    if query.is_groupjoin:
        return _compile_groupjoin(query, db, plan)
    return _compile_semijoin(query, db, plan)


def _wrap(
    query: Query, plan: P.SwolePlan, source: str, fn
) -> CompiledQuery:
    return CompiledQuery(
        name=query.name,
        strategy="swole",
        source=source,
        _fn=fn,
        notes={"plan": plan.describe(), "estimates": dict(plan.estimates)},
    )


def _fallback_hybrid(query: Query, db: Database, plan: P.SwolePlan) -> CompiledQuery:
    """Planner chose the pushdown path: emit hybrid code under SWOLE."""
    inner = compile_hybrid(query, db)
    return _wrap(query, plan, inner.source, inner._fn)


def _compile_scalar(
    query: Query, db: Database, data, plan: P.SwolePlan
) -> CompiledQuery:
    if plan.aggregation != P.VALUE_MASKING:
        return _fallback_hybrid(query, db, plan)
    merged = list(plan.merged_columns)
    source = emit_value_masking(query, merged=merged)

    def run(session: Session) -> Dict[str, Any]:
        with session.tracer.kernel(f"value-masked scan {query.table}"):
            shared = merged_read_set(query, enabled=bool(merged))
            return vm_scalar(session, data, query, already_read=shared)

    return _wrap(query, plan, source, run)


def _compile_grouped(
    query: Query, db: Database, data, plan: P.SwolePlan
) -> CompiledQuery:
    if plan.aggregation == P.KEY_MASKING:
        source = emit_key_masking(query)

        def run(session: Session) -> Dict[str, Any]:
            return km_grouped(session, data, query)

        return _wrap(query, plan, source, run)
    if plan.aggregation == P.VALUE_MASKING:
        source = emit_value_masking(query)

        def run(session: Session) -> Dict[str, Any]:
            return vm_grouped(session, data, query)

        return _wrap(query, plan, source, run)
    return _fallback_hybrid(query, db, plan)


def _compile_semijoin(
    query: Query, db: Database, plan: P.SwolePlan
) -> CompiledQuery:
    source = emit_bitmap_semijoin(
        query, unconditional_build=plan.semijoin_build == P.BITMAP_MASK
    )

    def run(session: Session) -> Dict[str, Any]:
        return semijoin_pipeline(
            session, db, query, plan.semijoin_build, plan.aggregation
        )

    return _wrap(query, plan, source, run)


def _compile_groupjoin(
    query: Query, db: Database, plan: P.SwolePlan
) -> CompiledQuery:
    if plan.groupjoin_mode != P.EAGER:
        return _fallback_hybrid(query, db, plan)
    source = emit_eager_aggregation(query)

    def run(session: Session) -> Dict[str, Any]:
        return groupjoin_pipeline(session, db, query)

    return _wrap(query, plan, source, run)


@register_strategy("swole")
def _registered_compile(query: Query, db: Database) -> CompiledQuery:
    return compile_swole(query, db)
