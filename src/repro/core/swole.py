"""SWOLE: the access-aware code-generation strategy (paper Section III).

Compilation runs the planner over sampled statistics, then composes the
selected techniques:

========================  =======================================
query shape               techniques considered
========================  =======================================
scalar aggregation        value masking (+ access merging) | hybrid
group-by aggregation      value masking | key masking | hybrid
semijoin                  positional bitmap (build mode by model),
                          final aggregation value-masked or hybrid
groupjoin                 eager aggregation | hybrid groupjoin
========================  =======================================

The hybrid strategy is the explicit fallback whenever the cost models say
a pullup would not pay (paper: "we can simply fall back to generating
code using the hybrid strategy").

Every SWOLE pipeline is embarrassingly parallel over the probe table —
prepasses, masked aggregation, bitmap probes, and the eager
aggregation's step 1 are all row-local — so each compiled shape declares
a :class:`~repro.engine.program.ParallelPlan` (semijoins build their
bitmap once in setup; eager groupjoins run the cleanup scan as the
finalize step).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..codegen.base import register_strategy
from ..codegen.common import slice_columns, table_rows
from ..codegen.emit import (
    emit_bitmap_semijoin,
    emit_eager_aggregation,
    emit_key_masking,
    emit_value_masking,
)
from ..codegen.hybrid import compile_hybrid
from ..engine.program import CompiledQuery, ParallelPlan
from ..engine.session import Session
from ..plan.logical import Query, QueryStats
from ..storage.database import Database
from . import planner as P
from .access_merging import merged_read_set
from .eager_aggregation import cleanup_merged, eager_partial, groupjoin_pipeline
from .key_masking import grouped_pipeline as km_grouped
from .positional_bitmap import build_bitmap, probe_pipeline, semijoin_pipeline
from .value_masking import grouped_pipeline as vm_grouped
from .value_masking import scalar_pipeline as vm_scalar


def compile_swole(
    query: Query,
    db: Database,
    machine=None,
    stats: Optional[QueryStats] = None,
    force: Optional[str] = None,
) -> CompiledQuery:
    """Compile ``query`` with SWOLE.

    ``machine`` is the machine model the program will be *run* on (pass
    the same scaled model used by the session, or the planner will reason
    about the wrong cache ratios). ``stats`` overrides sampled statistics
    (used by tests); ``force`` overrides the planner's aggregation choice
    (used by the cost-model ablation bench to measure the road not
    taken).
    """
    from ..engine.machine import PAPER_MACHINE

    if machine is None:
        machine = PAPER_MACHINE
    plan = P.plan_query(query, db, machine, stats=stats)
    if force is not None:
        plan.aggregation = force
    data = db.data(query.table)

    if query.join is None and query.group_by is None:
        return _compile_scalar(query, db, data, plan)
    if query.join is None:
        return _compile_grouped(query, db, data, plan)
    if query.is_groupjoin:
        return _compile_groupjoin(query, db, plan)
    return _compile_semijoin(query, db, plan)


def _wrap(
    query: Query,
    plan: P.SwolePlan,
    source: str,
    fn,
    parallel: Optional[ParallelPlan] = None,
) -> CompiledQuery:
    return CompiledQuery(
        name=query.name,
        strategy="swole",
        source=source,
        _fn=fn,
        parallel=parallel,
        notes={"plan": plan.describe(), "estimates": dict(plan.estimates)},
    )


def _fallback_hybrid(query: Query, db: Database, plan: P.SwolePlan) -> CompiledQuery:
    """Planner chose the pushdown path: emit hybrid code under SWOLE."""
    inner = compile_hybrid(query, db)
    return _wrap(query, plan, inner.source, inner._fn, parallel=inner.parallel)


def _compile_scalar(
    query: Query, db: Database, data, plan: P.SwolePlan
) -> CompiledQuery:
    if plan.aggregation != P.VALUE_MASKING:
        return _fallback_hybrid(query, db, plan)
    merged = list(plan.merged_columns)
    source = emit_value_masking(query, merged=merged)

    def _body(session: Session, view) -> Dict[str, Any]:
        with session.tracer.kernel(f"value-masked scan {query.table}"):
            shared = merged_read_set(query, enabled=bool(merged))
            return vm_scalar(session, view, query, already_read=shared)

    def run(session: Session) -> Dict[str, Any]:
        return _body(session, data)

    def partial(session, ctx, lo, hi):
        return _body(session, slice_columns(data, lo, hi))

    parallel = ParallelPlan(
        table=query.table, n_rows=table_rows(data), partial=partial
    )
    return _wrap(query, plan, source, run, parallel=parallel)


def _compile_grouped(
    query: Query, db: Database, data, plan: P.SwolePlan
) -> CompiledQuery:
    if plan.aggregation == P.KEY_MASKING:
        pipeline, source = km_grouped, emit_key_masking(query)
    elif plan.aggregation == P.VALUE_MASKING:
        pipeline, source = vm_grouped, emit_value_masking(query)
    else:
        return _fallback_hybrid(query, db, plan)

    def run(session: Session) -> Dict[str, Any]:
        return pipeline(session, data, query)

    def partial(session, ctx, lo, hi):
        return pipeline(session, slice_columns(data, lo, hi), query)

    parallel = ParallelPlan(
        table=query.table, n_rows=table_rows(data), partial=partial
    )
    return _wrap(query, plan, source, run, parallel=parallel)


def _compile_semijoin(
    query: Query, db: Database, plan: P.SwolePlan
) -> CompiledQuery:
    source = emit_bitmap_semijoin(
        query, unconditional_build=plan.semijoin_build == P.BITMAP_MASK
    )
    data = db.data(query.table)
    fk_index = db.fk_index(query.table, query.join.fk_column)

    def run(session: Session) -> Dict[str, Any]:
        return semijoin_pipeline(
            session, db, query, plan.semijoin_build, plan.aggregation
        )

    def setup(session: Session):
        return build_bitmap(session, db, query, plan.semijoin_build)

    def partial(session, bitmap, lo, hi):
        return probe_pipeline(
            session,
            query,
            bitmap,
            slice_columns(data, lo, hi),
            fk_index.offsets[lo:hi],
            plan.aggregation,
        )

    parallel = ParallelPlan(
        table=query.table,
        n_rows=table_rows(data),
        partial=partial,
        setup=setup,
    )
    return _wrap(query, plan, source, run, parallel=parallel)


def _compile_groupjoin(
    query: Query, db: Database, plan: P.SwolePlan
) -> CompiledQuery:
    if plan.groupjoin_mode != P.EAGER:
        return _fallback_hybrid(query, db, plan)
    source = emit_eager_aggregation(query)
    data = db.data(query.table)

    def run(session: Session) -> Dict[str, Any]:
        return groupjoin_pipeline(session, db, query)

    def partial(session, ctx, lo, hi):
        return eager_partial(session, db, query, slice_columns(data, lo, hi))

    def finalize(session, merged, ctx):
        return cleanup_merged(session, db, query, merged)

    parallel = ParallelPlan(
        table=query.table,
        n_rows=table_rows(data),
        partial=partial,
        finalize=finalize,
    )
    return _wrap(query, plan, source, run, parallel=parallel)


@register_strategy("swole")
def _registered_compile(query: Query, db: Database) -> CompiledQuery:
    return compile_swole(query, db)
