"""Access merging (paper §III-C).

When the same attribute appears in both the predicate and an aggregate
(e.g. TPC-H Q6's ``l_discount``), the naive value-masking plan reads it
twice: once for the selection prepass and once for the aggregation.
Access merging fuses the two expressions so the column is read exactly
once — "always beneficial if it can be applied, since it results in
fewer total accesses".

Mechanically, merging is a *shared read set*: the prepass records every
column it reads, and the masked-aggregation loop skips re-reading any
column already in the set (the fused code keeps the value in a register
or a tile-resident ``tmp`` array). This module owns that read-set logic
so the behaviour is testable in isolation.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

from ..plan.logical import Query


def merged_read_set(query: Query, enabled: bool = True) -> Optional[Set[str]]:
    """Return the shared read set to thread through a fused pipeline.

    ``None`` disables merging (each loop accounts its own reads — the
    plain value-masking behaviour of paper Fig. 5 top). An empty set
    enables it: the prepass will populate the set and the aggregation
    loop will skip columns it finds there.
    """
    if not enabled or not query.reused_columns():
        return None
    return set()


def merging_opportunity(query: Query) -> Tuple[str, ...]:
    """Columns that access merging would deduplicate for ``query``."""
    return query.reused_columns()


def saved_reads(query: Query, num_rows: int) -> int:
    """Element reads saved by merging (one per reused column per row)."""
    return len(query.reused_columns()) * num_rows
