"""Eager aggregation (paper §III-E).

For a groupjoin (join key == group-by key), SWOLE reverses build and
probe: it *unconditionally* aggregates the probe table grouped by its
foreign key — purely sequential reads, SIMD arithmetic, and hash updates
into a table whose size is bounded by the build table's key count — and
then deletes non-qualifying keys with one sequential scan of the build
table (predicate inverted). Wasted work (aggregates later deleted) buys
the access pattern.

If the probe side has its own predicate, its keys are *key-masked* into
the throwaway entry, composing §III-B with §III-E.

The pipeline splits into :func:`eager_partial` (the unconditional
aggregation, runnable over one morsel of the probe table) and
:func:`cleanup_merged` (the build-side deletion scan applied to the
merged partial states) so the morsel executor can parallelise step 1;
:func:`groupjoin_pipeline` chains them over the full table.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..codegen.common import (
    agg_exprs_columns,
    emit_cond_reads,
    emit_expr_compute,
    emit_seq_reads,
    grouped_result,
    prepass_predicate,
    table_rows,
)
from ..engine import kernels as K
from ..engine.events import Compute, RandomAccess
from ..engine.hashtable import NULL_KEY, HashTable
from ..engine.session import Session
from ..plan.expressions import conjuncts
from ..plan.logical import Query
from ..storage.database import Database
from .key_masking import mask_keys


def eager_partial(
    session: Session,
    db: Database,
    query: Query,
    view: Dict[str, np.ndarray],
) -> Dict[str, Any]:
    """Unconditional aggregation of (a morsel of) the probe table.

    Returns the raw hash-table state — every key including the
    ``NULL_KEY`` throwaway, with the trailing count column — so partial
    states merge additively before :func:`cleanup_merged`.
    """
    join = query.join
    n = table_rows(view)
    with session.tracer.kernel(f"eager aggregate {query.table}"), \
            session.tracer.overlap():
        main_conjs = query.predicate_conjuncts()
        emit_seq_reads(session, view, [join.fk_column])
        keys = view[join.fk_column].astype(np.int64)
        if main_conjs:
            mask = prepass_predicate(session, view, main_conjs)
            keys = mask_keys(session, keys, mask, join.fk_column)
        build_rows = db.table(join.build_table).num_rows
        num_aggs = len(query.aggregates) + 1
        table = HashTable(expected_keys=build_rows + 1, num_aggs=num_aggs)
        cols = agg_exprs_columns(query.aggregates)
        emit_seq_reads(session, view, cols)
        slots = None
        for i, agg in enumerate(query.aggregates):
            if agg.func == "count":
                deltas = np.ones(n, dtype=np.int64)
                session.tracer.emit(Compute(n=n, op="add", simd=True))
            else:
                emit_expr_compute(session, agg.expr, n, simd=True)
                deltas = np.asarray(agg.expr.evaluate(view), dtype=np.int64)
            if slots is None:
                K.ht_aggregate(session, table, keys, deltas, agg=i)
                slots, _ = table.lookup(keys)
            else:
                K.ht_add_at(session, table, slots, i, deltas)
        if slots is None:
            slots, _ = table.lookup(keys)
        K.ht_add_at(
            session,
            table,
            slots,
            num_aggs - 1,
            np.ones(n, dtype=np.int64),
        )
    result_keys, aggs = table.items()
    return {"keys": result_keys, "aggs": aggs}


def cleanup_merged(
    session: Session,
    db: Database,
    query: Query,
    merged: Dict[str, Any],
) -> Dict[str, Any]:
    """Build-side cleanup scan over a merged eager-aggregation state.

    Deletes the keys whose build row fails the build predicate, drops the
    throwaway entry and groups that saw no unmasked tuple, and strips the
    bookkeeping count column.
    """
    join = query.join
    num_aggs = len(query.aggregates) + 1
    result_keys = np.asarray(merged["keys"], dtype=np.int64)
    aggs = np.atleast_2d(np.asarray(merged["aggs"]))
    if result_keys.size == 0:
        aggs = aggs.reshape(0, num_aggs)

    build_data = db.data(join.build_table)
    bn = table_rows(build_data)
    build_rows = db.table(join.build_table).num_rows
    with session.tracer.kernel(f"cleanup scan {join.build_table}"), \
            session.tracer.overlap():
        build_conjs = conjuncts(join.build_predicate)
        if build_conjs:
            # note the inversion: delete rows that do NOT qualify
            keep = prepass_predicate(session, build_data, build_conjs)
            delete_mask = ~keep
            session.tracer.emit(Compute(n=bn, op="cmp", simd=True, width=1))
        else:
            delete_mask = np.zeros(bn, dtype=bool)
        k = int(delete_mask.sum())
        deleted = np.zeros(result_keys.shape[0], dtype=bool)
        if k:
            emit_cond_reads(session, build_data, [join.pk_column], k)
            victims = build_data[join.pk_column][delete_mask].astype(np.int64)
            # random deletions against the eager table (same footprint the
            # hash-table path would pay)
            sizing = HashTable(expected_keys=build_rows + 1, num_aggs=0)
            session.tracer.emit(
                RandomAccess(
                    n=k,
                    struct_bytes=sizing.nbytes,
                    kind="ht_delete",
                    op_cycles=session.machine.op_cost("hash"),
                )
            )
            deleted = np.isin(result_keys, victims)

    keep = (
        ~deleted
        & (result_keys != NULL_KEY)
        & (aggs[:, num_aggs - 1] > 0)
    )
    return grouped_result(
        result_keys[keep], aggs[keep, : len(query.aggregates)]
    )


def groupjoin_pipeline(
    session: Session,
    db: Database,
    query: Query,
) -> Dict[str, Any]:
    """Groupjoin rewritten as eager aggregation + cleanup deletions."""
    data = db.data(query.table)
    merged = eager_partial(session, db, query, data)
    return cleanup_merged(session, db, query, merged)
