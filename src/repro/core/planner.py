"""The SWOLE planner: picks techniques using the §III cost models.

Given a logical query, sampled statistics, and a machine model, the
planner decides:

* how to aggregate — ``hybrid`` (pushdown fallback), ``value_masking`` or
  ``key_masking``;
* whether to apply access merging (always, when a column is reused);
* how to execute a semijoin — positional bitmap, with an unconditional
  (mask-write) or selection-vector build;
* whether to replace a groupjoin with eager aggregation.

The resulting :class:`SwolePlan` records every candidate's estimated cost
so the ablation bench can compare planner decisions against measured
best choices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..engine.machine import MachineModel
from ..plan.expressions import col_refs
from ..plan.logical import Query, QueryStats, sample_stats
from ..storage.database import Database
from . import cost_models as cm

#: Technique identifiers (match paper Fig. 2 rows).
HYBRID = "hybrid"
VALUE_MASKING = "value_masking"
KEY_MASKING = "key_masking"
ACCESS_MERGING = "access_merging"
BITMAP_MASK = "bitmap_mask"
BITMAP_OFFSETS = "bitmap_offsets"
EAGER = "eager_aggregation"
GROUPJOIN = "groupjoin"


@dataclass
class SwolePlan:
    """Technique selection for one query, with candidate cost estimates."""

    aggregation: str = HYBRID
    merged_columns: Tuple[str, ...] = ()
    semijoin_build: Optional[str] = None
    groupjoin_mode: Optional[str] = None
    estimates: Dict[str, float] = field(default_factory=dict)
    stats: Optional[QueryStats] = None

    @property
    def uses_pullup(self) -> bool:
        """Whether any predicate-pullup technique was selected."""
        return (
            self.aggregation in (VALUE_MASKING, KEY_MASKING)
            or self.semijoin_build is not None
            or self.groupjoin_mode == EAGER
            or bool(self.merged_columns)
        )

    def describe(self) -> str:
        parts = [f"aggregation={self.aggregation}"]
        if self.merged_columns:
            parts.append(f"access_merging={list(self.merged_columns)}")
        if self.semijoin_build is not None:
            parts.append(f"semijoin={self.semijoin_build}")
        if self.groupjoin_mode is not None:
            parts.append(f"groupjoin={self.groupjoin_mode}")
        return ", ".join(parts)


def model_inputs(query: Query, db: Database, stats: QueryStats) -> cm.ModelInputs:
    """Assemble symbolic-execution inputs from a query and statistics."""
    widths = dict(stats.column_widths)

    def width_of(table: str, column: str) -> int:
        if column in widths:
            return widths[column]
        return int(db.table(table)[column].dtype.itemsize)

    pred_widths = tuple(
        width_of(query.table, name)
        for conj in query.predicate_conjuncts()
        for name in sorted(conj.columns())
    )
    agg_widths = tuple(
        width_of(query.table, name)
        for agg in query.aggregates
        if agg.expr is not None
        for name in col_refs(agg.expr)
    )
    merged_widths = tuple(
        width_of(query.table, name) for name in query.reused_columns()
    )

    build_pred_widths: Tuple[int, ...] = ()
    pk_width = fk_width = 8
    if query.join is not None:
        join = query.join
        if join.build_predicate is not None:
            build_pred_widths = tuple(
                width_of(join.build_table, name)
                for name in sorted(join.build_predicate.columns())
            )
        pk_width = width_of(join.build_table, join.pk_column)
        fk_width = width_of(query.table, join.fk_column)

    group_width = (
        width_of(query.table, query.group_by)
        if query.group_by is not None
        else 8
    )

    return cm.ModelInputs(
        num_rows=stats.num_rows,
        selectivity=stats.selectivity,
        pred_widths=pred_widths,
        agg_widths=agg_widths,
        agg_ops=tuple(stats.agg_ops),
        num_aggs=len(query.aggregates),
        group_width=group_width,
        group_cardinality=stats.group_cardinality,
        build_rows=stats.build_rows,
        build_selectivity=stats.build_selectivity,
        build_pred_widths=build_pred_widths,
        pk_width=pk_width,
        fk_width=fk_width,
        join_match_fraction=stats.join_match_fraction,
        merged_widths=merged_widths,
    )


def plan_query(
    query: Query,
    db: Database,
    machine: MachineModel,
    stats: Optional[QueryStats] = None,
) -> SwolePlan:
    """Produce a :class:`SwolePlan` for ``query``."""
    if stats is None:
        stats = sample_stats(query, db.all_data())
    plan = SwolePlan(stats=stats)
    plan.merged_columns = query.reused_columns()
    inputs = model_inputs(query, db, stats)

    if query.join is None:
        if query.group_by is None:
            _plan_scalar(plan, machine, inputs)
        else:
            _plan_grouped(plan, machine, inputs)
    elif query.is_groupjoin:
        _plan_groupjoin(plan, machine, inputs)
    else:
        _plan_semijoin(plan, machine, inputs)
    return plan


# ---------------------------------------------------------------------------
# Pass API: public per-decision choosers.
#
# Each takes (machine, inputs) and returns (choice, estimates) so callers
# other than plan_query — notably the strategy-pass framework in
# repro.plan.passes — can invoke one §III decision at a time against an
# operator-tree node and record the candidate costs in its pass notes.
# ---------------------------------------------------------------------------


def choose_aggregation_scalar(
    machine: MachineModel, inputs: cm.ModelInputs
) -> Tuple[str, Dict[str, float]]:
    """Scalar aggregation: hybrid pushdown vs value masking (§III-A)."""
    estimates = {
        HYBRID: cm.hybrid_cost(machine, inputs),
        VALUE_MASKING: cm.value_masking_cost(machine, inputs),
    }
    return min(estimates, key=estimates.get), estimates


def choose_aggregation_grouped(
    machine: MachineModel, inputs: cm.ModelInputs
) -> Tuple[str, Dict[str, float]]:
    """Grouped aggregation: hybrid vs value masking vs key masking."""
    ht_bytes = cm.planned_ht_bytes(
        inputs.group_cardinality, num_aggs=inputs.num_aggs
    )
    # Value masking needs the paper's extra bookkeeping flag to tell
    # masked entries from real zeros — one more aggregate column in every
    # slot. Key masking does not ("all entries other than the throwaway
    # are guaranteed to be valid"), which is part of why it wins on large
    # tables.
    vm_ht_bytes = cm.planned_ht_bytes(
        inputs.group_cardinality, num_aggs=inputs.num_aggs + 1
    )
    estimates = {
        HYBRID: cm.hybrid_cost(machine, inputs, ht_bytes),
        VALUE_MASKING: cm.value_masking_cost(machine, inputs, vm_ht_bytes),
        KEY_MASKING: cm.key_masking_cost(machine, inputs, ht_bytes),
    }
    return min(estimates, key=estimates.get), estimates


def choose_semijoin_build(
    machine: MachineModel, inputs: cm.ModelInputs
) -> Tuple[str, Dict[str, float]]:
    """Positional-bitmap build flavour (§III-D): mask vs offsets."""
    estimates = {
        f"bitmap_build:{BITMAP_MASK}": cm.bitmap_build_unconditional_cost(
            machine, inputs
        ),
        f"bitmap_build:{BITMAP_OFFSETS}": cm.bitmap_build_selective_cost(
            machine, inputs
        ),
    }
    choice = (
        BITMAP_MASK
        if estimates[f"bitmap_build:{BITMAP_MASK}"]
        <= estimates[f"bitmap_build:{BITMAP_OFFSETS}"]
        else BITMAP_OFFSETS
    )
    return choice, estimates


def semijoin_combined_inputs(inputs: cm.ModelInputs) -> cm.ModelInputs:
    """Model inputs for the aggregation downstream of a semijoin.

    The effective selectivity at the aggregation is the local predicate
    selectivity times the fraction of probe rows whose FK survives the
    build-side filter.
    """
    return cm.ModelInputs(
        num_rows=inputs.num_rows,
        selectivity=inputs.selectivity * inputs.join_match_fraction,
        pred_widths=inputs.pred_widths,
        agg_widths=inputs.agg_widths,
        agg_ops=inputs.agg_ops,
        num_aggs=inputs.num_aggs,
        merged_widths=inputs.merged_widths,
    )


def choose_groupjoin_mode(
    machine: MachineModel, inputs: cm.ModelInputs
) -> Tuple[str, Dict[str, float]]:
    """Groupjoin execution vs eager aggregation rewrite (§III-E)."""
    num_aggs = inputs.num_aggs + 1
    built_keys = max(
        int(inputs.build_rows * inputs.build_selectivity), 1
    )
    groupjoin_ht = cm.planned_ht_bytes(built_keys, num_aggs=num_aggs)
    eager_ht = cm.planned_ht_bytes(inputs.build_rows, num_aggs=num_aggs)
    estimates = {
        GROUPJOIN: cm.groupjoin_cost(machine, inputs, groupjoin_ht),
        EAGER: cm.eager_aggregation_cost(machine, inputs, eager_ht),
    }
    mode = EAGER if estimates[EAGER] <= estimates[GROUPJOIN] else GROUPJOIN
    return mode, estimates


def _plan_scalar(
    plan: SwolePlan, machine: MachineModel, inputs: cm.ModelInputs
) -> None:
    plan.aggregation, plan.estimates = choose_aggregation_scalar(
        machine, inputs
    )


def _plan_grouped(
    plan: SwolePlan, machine: MachineModel, inputs: cm.ModelInputs
) -> None:
    plan.aggregation, plan.estimates = choose_aggregation_grouped(
        machine, inputs
    )


def _plan_semijoin(
    plan: SwolePlan, machine: MachineModel, inputs: cm.ModelInputs
) -> None:
    # Positional bitmaps are "always better" (paper Fig. 2); the model
    # only chooses the build flavour and the final aggregation mode.
    plan.semijoin_build, build_estimates = choose_semijoin_build(
        machine, inputs
    )
    combined = semijoin_combined_inputs(inputs)
    _, agg_estimates = choose_aggregation_scalar(machine, combined)
    plan.estimates = {**build_estimates, **agg_estimates}
    # Downstream of a bitmap probe the masked path is preferred on ties:
    # the probe already produced the mask value masking consumes.
    plan.aggregation = (
        VALUE_MASKING
        if agg_estimates[VALUE_MASKING] <= agg_estimates[HYBRID]
        else HYBRID
    )


def _plan_groupjoin(
    plan: SwolePlan, machine: MachineModel, inputs: cm.ModelInputs
) -> None:
    plan.groupjoin_mode, plan.estimates = choose_groupjoin_mode(
        machine, inputs
    )


def technique_matrix() -> Dict[str, Dict[str, str]]:
    """The paper's Figure 2 as data: technique -> operators/heuristics."""
    return {
        "Value Masking": {
            "section": "III-A",
            "operators": "All",
            "heuristics": "Memory-Bound, Small Hash Tables",
        },
        "Key Masking": {
            "section": "III-B",
            "operators": "Group-By Aggregation, Join, Groupjoin",
            "heuristics": "Complex Aggregation, Large Hash Tables",
        },
        "Access Merging": {
            "section": "III-C",
            "operators": "All",
            "heuristics": "Always Better",
        },
        "Positional Bitmaps": {
            "section": "III-D",
            "operators": "Join, Semijoin",
            "heuristics": "Always Better",
        },
        "Eager Aggregation": {
            "section": "III-E",
            "operators": "Join, Groupjoin",
            "heuristics": "Low-Cardinality Group-By Keys",
        },
    }
