"""SWOLE's planning-time cost models (paper Section III).

The paper's decision formulas —

* ``Hybrid``  = R * (read_seq + sigma_R * max(comp, read_cond))
* ``VM``      = R * (read_seq + max(comp, read_seq[, ht_lookup]))
* ``KM``      = R * (read_seq + sigma * max(comp, read_seq, ht_lookup)
  + (1 - sigma) * max(comp, read_seq, ht_null))
* ``Groupjoin`` / ``EA`` per §III-E —

are evaluated here by *symbolic execution*: each candidate technique's
event stream (sequential reads per referenced column, conditional reads
at the estimated selectivity, hash accesses against the estimated table
footprint, SIMD/scalar compute) is constructed from statistics and priced
by the same :class:`~repro.engine.costing.CostAccountant` that prices
real runs, including the stream/compute overlap that realises the
formulas' ``max``. Plan-time and run-time costs therefore share one
currency; planning error comes only from the sampled statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..engine.costing import Tracer
from ..engine.events import (
    CondRead,
    Compute,
    Event,
    RandomAccess,
    SeqRead,
    SeqWrite,
)
from ..engine.machine import MachineModel
from ..errors import CostModelError

#: Hash tables are sized at twice the key count (matching HashTable).
PLANNED_FILL_FACTOR = 2.0


@dataclass(frozen=True)
class ModelInputs:
    """Statistics a technique cost model consumes.

    Widths are physical bytes per value of each referenced column; one
    entry per (column, reference) so repeated references cost repeated
    reads unless merging removes them.
    """

    num_rows: int
    selectivity: float
    pred_widths: Tuple[int, ...] = ()
    agg_widths: Tuple[int, ...] = ()
    agg_ops: Tuple[str, ...] = ()
    num_aggs: int = 1
    group_width: int = 8
    group_cardinality: int = 0
    build_rows: int = 0
    build_selectivity: float = 1.0
    build_pred_widths: Tuple[int, ...] = ()
    pk_width: int = 8
    fk_width: int = 8
    join_match_fraction: float = 1.0
    merged_widths: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        for name, value in (
            ("selectivity", self.selectivity),
            ("build_selectivity", self.build_selectivity),
            ("join_match_fraction", self.join_match_fraction),
        ):
            if not 0.0 <= value <= 1.0:
                raise CostModelError(f"{name} must be in [0, 1], got {value}")
        if self.num_rows < 0 or self.build_rows < 0:
            raise CostModelError("row counts must be non-negative")


def planned_ht_bytes(num_keys: int, num_aggs: int) -> int:
    """Footprint estimate matching :class:`~repro.engine.hashtable.HashTable`.

    Mirrors the real table's sizing exactly — capacity is the next power
    of two above twice the key count — because crossovers hinge on where
    the footprint lands relative to cache capacities.
    """
    slot = 8 + 8 * max(num_aggs, 1)
    target = PLANNED_FILL_FACTOR * max(num_keys, 1)
    capacity = 8
    while capacity < target:
        capacity *= 2
    return capacity * slot


def price_events(machine: MachineModel, events: Sequence[Event]) -> float:
    """Price a symbolic event stream with overlap, in cycles."""
    tracer = Tracer(machine)
    with tracer.overlap():
        for event in events:
            tracer.emit(event)
    return tracer.report.total_cycles


def _prepass_events(
    n: int, pred_widths: Sequence[int], skip_widths: Sequence[int] = ()
) -> List[Event]:
    """Prepass predicate evaluation: one SIMD compare per conjunct column."""
    events: List[Event] = []
    remaining = list(skip_widths)
    for width in pred_widths:
        if width in remaining:
            remaining.remove(width)  # merged: read already accounted
        else:
            events.append(SeqRead(n=n, width=width))
        events.append(Compute(n=n, op="cmp", simd=True, width=width))
    if pred_widths:
        events.append(SeqWrite(n=n, width=1, array_bytes=1024))
    return events


def _agg_compute_events(
    n: int, agg_ops: Sequence[str], simd: bool
) -> List[Event]:
    events: List[Event] = [
        Compute(n=n, op=op, simd=simd, width=8) for op in agg_ops
    ]
    events.append(Compute(n=n, op="add", simd=simd, width=8))
    return events


def hybrid_events(inputs: ModelInputs, ht_bytes: int = 0) -> List[Event]:
    """Prepass + selection vector + conditional aggregation (§II-A2)."""
    n = inputs.num_rows
    k = int(round(n * inputs.selectivity))
    events = _prepass_events(n, inputs.pred_widths)
    if inputs.pred_widths:
        events.append(Compute(n=n, op="select", simd=False))
        events.append(SeqWrite(n=k, width=8, array_bytes=8192))
    for width in inputs.agg_widths:
        events.append(CondRead(n_range=n, n_selected=k, width=width))
        events.append(Compute(n=k, op="gather", simd=False))
    if ht_bytes:
        events.append(
            CondRead(n_range=n, n_selected=k, width=inputs.group_width)
        )
        events.append(Compute(n=k, op="gather", simd=False))
        events.append(
            RandomAccess(n=k, struct_bytes=ht_bytes, op_cycles=3.0)
        )
    events.extend(_agg_compute_events(k, inputs.agg_ops, simd=False))
    return events


def value_masking_events(inputs: ModelInputs, ht_bytes: int = 0) -> List[Event]:
    """Prepass + unconditional masked aggregation (§III-A / §III-B top)."""
    n = inputs.num_rows
    events = _prepass_events(n, inputs.pred_widths)
    skip = list(inputs.merged_widths)
    for width in inputs.agg_widths:
        if width in skip:
            skip.remove(width)
        else:
            events.append(SeqRead(n=n, width=width))
    events.extend(_agg_compute_events(n, inputs.agg_ops, simd=True))
    events.append(Compute(n=n, op="mul", simd=True, width=8))  # masking
    if ht_bytes:
        events.append(SeqRead(n=n, width=inputs.group_width))
        events.append(
            RandomAccess(n=n, struct_bytes=ht_bytes, op_cycles=3.0)
        )
    return events


def key_masking_events(inputs: ModelInputs, ht_bytes: int) -> List[Event]:
    """Prepass + key-mask + unconditional aggregation (§III-B bottom)."""
    n = inputs.num_rows
    events = _prepass_events(n, inputs.pred_widths)
    events.append(SeqRead(n=n, width=inputs.group_width))
    events.append(Compute(n=n, op="blend", simd=True, width=8))
    events.append(SeqWrite(n=n, width=8, array_bytes=8192))
    for width in inputs.agg_widths:
        events.append(SeqRead(n=n, width=width))
    events.extend(_agg_compute_events(n, inputs.agg_ops, simd=True))
    events.append(
        RandomAccess(
            n=n,
            struct_bytes=ht_bytes,
            hot_fraction=1.0 - inputs.selectivity,
            op_cycles=3.0,
        )
    )
    return events


def groupjoin_events(inputs: ModelInputs, ht_bytes: int) -> List[Event]:
    """Traditional groupjoin: filtered build, probe + conditional agg."""
    events: List[Event] = []
    s, sigma_s = inputs.build_rows, inputs.build_selectivity
    sk = int(round(s * sigma_s))
    events.extend(_prepass_events(s, inputs.build_pred_widths))
    if inputs.build_pred_widths:
        events.append(Compute(n=s, op="select", simd=False))
        events.append(CondRead(n_range=s, n_selected=sk, width=inputs.pk_width))
        events.append(Compute(n=sk, op="gather", simd=False))
    else:
        events.append(SeqRead(n=s, width=inputs.pk_width))
        sk = s
    events.append(RandomAccess(n=sk, struct_bytes=ht_bytes, op_cycles=3.0))

    n, sigma_r = inputs.num_rows, inputs.selectivity
    k = int(round(n * sigma_r))
    events.extend(_prepass_events(n, inputs.pred_widths))
    if inputs.pred_widths:
        events.append(Compute(n=n, op="select", simd=False))
        events.append(CondRead(n_range=n, n_selected=k, width=inputs.fk_width))
        events.append(Compute(n=k, op="gather", simd=False))
    else:
        events.append(SeqRead(n=n, width=inputs.fk_width))
        k = n
    events.append(RandomAccess(n=k, struct_bytes=ht_bytes, op_cycles=3.0))
    matches = int(round(k * inputs.join_match_fraction))
    for width in inputs.agg_widths:
        events.append(CondRead(n_range=n, n_selected=matches, width=width))
        events.append(Compute(n=matches, op="gather", simd=False))
    events.extend(_agg_compute_events(matches, inputs.agg_ops, simd=False))
    return events


def eager_aggregation_events(
    inputs: ModelInputs, ht_bytes: int
) -> List[Event]:
    """Eager aggregation: unconditional build over R, cleanup scan of S."""
    n = inputs.num_rows
    events: List[Event] = [SeqRead(n=n, width=inputs.fk_width)]
    events.extend(_prepass_events(n, inputs.pred_widths))
    if inputs.pred_widths:
        events.append(Compute(n=n, op="blend", simd=True, width=8))
        events.append(SeqWrite(n=n, width=8, array_bytes=8192))
    for width in inputs.agg_widths:
        events.append(SeqRead(n=n, width=width))
    events.extend(_agg_compute_events(n, inputs.agg_ops, simd=True))
    events.append(RandomAccess(n=n, struct_bytes=ht_bytes, op_cycles=3.0))

    s = inputs.build_rows
    delete_sel = 1.0 - inputs.build_selectivity
    deletes = int(round(s * delete_sel))
    events.extend(_prepass_events(s, inputs.build_pred_widths))
    events.append(Compute(n=s, op="select", simd=False))
    if deletes:
        events.append(
            CondRead(n_range=s, n_selected=deletes, width=inputs.pk_width)
        )
        events.append(
            RandomAccess(
                n=deletes, struct_bytes=ht_bytes, kind="ht_delete",
                op_cycles=3.0,
            )
        )
    return events


def bitmap_build_unconditional_events(inputs: ModelInputs) -> List[Event]:
    """Unconditional bitmap build: prepass, then stream the whole bitmap."""
    s = inputs.build_rows
    events = _prepass_events(s, inputs.build_pred_widths)
    events.append(SeqWrite(n=max(s // 8, 1), width=1))
    events.append(Compute(n=s, op="mov", simd=True, width=1))
    return events


def bitmap_build_selective_events(inputs: ModelInputs) -> List[Event]:
    """Selection-vector bitmap build: set one bit per selected row."""
    s = inputs.build_rows
    sk = int(round(s * inputs.build_selectivity))
    events = _prepass_events(s, inputs.build_pred_widths)
    events.append(Compute(n=s, op="select", simd=False))
    events.append(
        RandomAccess(n=sk, struct_bytes=max(s // 8, 1), kind="bitmap_set")
    )
    return events


# -- formula-style entry points (used by the planner and tests) -----------


def hybrid_cost(
    machine: MachineModel, inputs: ModelInputs, ht_bytes: int = 0
) -> float:
    return price_events(machine, hybrid_events(inputs, ht_bytes))


def value_masking_cost(
    machine: MachineModel, inputs: ModelInputs, ht_bytes: int = 0
) -> float:
    return price_events(machine, value_masking_events(inputs, ht_bytes))


def key_masking_cost(
    machine: MachineModel, inputs: ModelInputs, ht_bytes: int
) -> float:
    return price_events(machine, key_masking_events(inputs, ht_bytes))


def groupjoin_cost(
    machine: MachineModel, inputs: ModelInputs, ht_bytes: int
) -> float:
    return price_events(machine, groupjoin_events(inputs, ht_bytes))


def eager_aggregation_cost(
    machine: MachineModel, inputs: ModelInputs, ht_bytes: int
) -> float:
    return price_events(machine, eager_aggregation_events(inputs, ht_bytes))


def bitmap_build_unconditional_cost(
    machine: MachineModel, inputs: ModelInputs
) -> float:
    return price_events(machine, bitmap_build_unconditional_events(inputs))


def bitmap_build_selective_cost(
    machine: MachineModel, inputs: ModelInputs
) -> float:
    return price_events(machine, bitmap_build_selective_events(inputs))


# -- access-encoding candidates (compressed vs decoded scans) --------------


def encoded_scan_events(
    n: int, code_width: int, selectivity: float
) -> List[Event]:
    """Scan a column as physical codes, decoding survivors late.

    The sequential stream moves ``code_width`` bytes per row (the whole
    point: 1-byte codes touch an eighth of the lines 8-byte values do)
    and the qualifying fraction pays a widening-convert per value at
    materialization time — SIMD at the *code* width, so narrow codes
    also decode more lanes at a time.
    """
    k = int(round(n * min(max(selectivity, 0.0), 1.0)))
    return [
        SeqRead(n=n, width=code_width),
        Compute(n=k, op="decode", simd=True, width=code_width),
    ]


def decoded_scan_events(n: int, value_width: int) -> List[Event]:
    """Scan a column decoded-early: stream the full-width values."""
    return [SeqRead(n=n, width=value_width)]


def encoded_scan_cost(
    machine: MachineModel, n: int, code_width: int, selectivity: float
) -> float:
    return price_events(
        machine, encoded_scan_events(n, code_width, selectivity)
    )


def decoded_scan_cost(
    machine: MachineModel, n: int, value_width: int
) -> float:
    return price_events(machine, decoded_scan_events(n, value_width))
