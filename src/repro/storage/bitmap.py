"""Positional bitmaps (paper Section III-D).

A positional bitmap maps *row offsets* of a table to a single bit. SWOLE
uses them to replace hash-table semijoins: the build side sets bits for
qualifying rows with a purely sequential write pattern, and the probe side
tests bits positionally through the foreign-key index.

Two representations are provided:

* :class:`PositionalBitmap` — a packed ``uint8`` bit array (8 rows/byte).
  This matches the paper's observation that even a 100M-row table needs
  only ~12.5 MB.
* :class:`BlockCompressedBitmap` — a simple block-level run compression
  (all-zero / all-one blocks stored as flags), mirroring the paper's note
  that bitmaps can be compressed "by replacing entire blocks of repeated
  values" at the cost of extra access work.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import StorageError


class PositionalBitmap:
    """A fixed-size bitmap addressed by row offset."""

    def __init__(self, num_rows: int) -> None:
        if num_rows < 0:
            raise StorageError("bitmap size must be non-negative")
        self._num_rows = int(num_rows)
        self._bits = np.zeros((self._num_rows + 7) // 8, dtype=np.uint8)

    def __len__(self) -> int:
        return self._num_rows

    @property
    def nbytes(self) -> int:
        """Physical size of the packed bit array."""
        return int(self._bits.nbytes)

    def _check_offsets(self, offsets: np.ndarray) -> np.ndarray:
        offsets = np.asarray(offsets, dtype=np.int64)
        if offsets.size and (
            offsets.min() < 0 or offsets.max() >= self._num_rows
        ):
            raise StorageError("bitmap offset out of range")
        return offsets

    def set_from_mask(self, mask: np.ndarray) -> None:
        """Unconditionally (re)write every bit from a boolean mask.

        This is the predicate-pullup build path: a sequential write of the
        whole bitmap, with the mask value deciding each bit. ``mask`` must
        cover the entire bitmap.
        """
        mask = np.asarray(mask, dtype=bool)
        if mask.shape[0] != self._num_rows:
            raise StorageError(
                f"mask length {mask.shape[0]} != bitmap size {self._num_rows}"
            )
        self._bits = np.packbits(mask, bitorder="little")

    def set_offsets(self, offsets: np.ndarray) -> None:
        """Set bits at the given offsets to 1 (selection-vector build path)."""
        offsets = self._check_offsets(offsets)
        np.bitwise_or.at(
            self._bits, offsets // 8, np.uint8(1) << (offsets % 8).astype(np.uint8)
        )

    def test(self, offsets: np.ndarray) -> np.ndarray:
        """Return a boolean array: is the bit at each offset set?"""
        offsets = self._check_offsets(offsets)
        bytes_ = self._bits[offsets // 8]
        return (bytes_ >> (offsets % 8).astype(np.uint8)) & 1 == 1

    def to_mask(self) -> np.ndarray:
        """Expand to a full boolean mask of length ``num_rows``."""
        unpacked = np.unpackbits(self._bits, bitorder="little")
        return unpacked[: self._num_rows].astype(bool)

    def count(self) -> int:
        """Number of set bits."""
        return int(self.to_mask().sum())


class BlockCompressedBitmap:
    """Block-run compressed bitmap.

    Blocks of ``block_bits`` bits that are all zero or all one are stored
    as a 2-bit flag; mixed blocks are stored verbatim. Lookups first check
    the flag, then touch the payload only for mixed blocks — the extra
    indirection the paper warns must be weighed against the size savings.
    """

    _ALL_ZERO = 0
    _ALL_ONE = 1
    _MIXED = 2

    def __init__(self, source: PositionalBitmap, block_bits: int = 4096) -> None:
        if block_bits % 8 != 0 or block_bits <= 0:
            raise StorageError("block_bits must be a positive multiple of 8")
        self._num_rows = len(source)
        self._block_bits = block_bits
        mask = source.to_mask()
        num_blocks = (self._num_rows + block_bits - 1) // block_bits
        self._flags = np.empty(num_blocks, dtype=np.uint8)
        payload_blocks = {}
        for block in range(num_blocks):
            chunk = mask[block * block_bits : (block + 1) * block_bits]
            total = int(chunk.sum())
            if total == 0:
                self._flags[block] = self._ALL_ZERO
            elif total == chunk.shape[0]:
                self._flags[block] = self._ALL_ONE
            else:
                self._flags[block] = self._MIXED
                payload_blocks[block] = np.packbits(chunk, bitorder="little")
        self._payload = payload_blocks

    def __len__(self) -> int:
        return self._num_rows

    @property
    def block_bits(self) -> int:
        return self._block_bits

    @property
    def nbytes(self) -> int:
        """Flags plus mixed-block payload bytes."""
        payload = sum(chunk.nbytes for chunk in self._payload.values())
        return int(self._flags.nbytes) + payload

    @property
    def mixed_fraction(self) -> float:
        """Fraction of blocks stored verbatim (drives access cost)."""
        if self._flags.size == 0:
            return 0.0
        return float((self._flags == self._MIXED).mean())

    def test(self, offsets: np.ndarray) -> np.ndarray:
        """Test bits at offsets, resolving per-block flags first."""
        offsets = np.asarray(offsets, dtype=np.int64)
        if offsets.size and (
            offsets.min() < 0 or offsets.max() >= self._num_rows
        ):
            raise StorageError("bitmap offset out of range")
        blocks = offsets // self._block_bits
        result = self._flags[blocks] == self._ALL_ONE
        mixed = self._flags[blocks] == self._MIXED
        if mixed.any():
            mixed_offsets = offsets[mixed]
            mixed_blocks = blocks[mixed]
            values = np.empty(mixed_offsets.shape[0], dtype=bool)
            for block in np.unique(mixed_blocks):
                in_block = mixed_blocks == block
                local = mixed_offsets[in_block] - block * self._block_bits
                chunk = self._payload[int(block)]
                values[in_block] = (
                    chunk[local // 8] >> (local % 8).astype(np.uint8)
                ) & 1 == 1
            result = result.copy()
            result[mixed] = values
        return result

    def to_mask(self) -> np.ndarray:
        """Expand to a full boolean mask (tests / debugging)."""
        mask = np.zeros(self._num_rows, dtype=bool)
        for block, flag in enumerate(self._flags):
            start = block * self._block_bits
            stop = min(start + self._block_bits, self._num_rows)
            if flag == self._ALL_ONE:
                mask[start:stop] = True
            elif flag == self._MIXED:
                chunk = np.unpackbits(self._payload[block], bitorder="little")
                mask[start:stop] = chunk[: stop - start].astype(bool)
        return mask


def bitmap_from_mask(mask: np.ndarray) -> PositionalBitmap:
    """Build a packed bitmap directly from a boolean mask."""
    bitmap = PositionalBitmap(int(np.asarray(mask).shape[0]))
    bitmap.set_from_mask(mask)
    return bitmap


def maybe_compress(
    bitmap: PositionalBitmap, block_bits: int = 4096, max_mixed_fraction: float = 0.25
) -> Optional[BlockCompressedBitmap]:
    """Compress a bitmap if few enough blocks are mixed to pay off.

    Returns ``None`` when compression would not reduce size meaningfully,
    mirroring the paper's advice to weigh size savings against the extra
    access overhead.
    """
    compressed = BlockCompressedBitmap(bitmap, block_bits=block_bits)
    if compressed.mixed_fraction <= max_mixed_fraction:
        return compressed
    return None
