"""Typed, NumPy-backed columns for the in-memory column store.

A :class:`Column` owns a contiguous NumPy array plus the logical type
metadata the query layer needs (logical type, byte width, optional
dictionary for encoded strings, optional fixed-point scale for decimals).

Columns are deliberately immutable after construction: OLAP workloads in
the paper are read-only, and immutability lets compiled programs alias the
underlying arrays without defensive copies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from ..errors import StorageError


class LogicalType(enum.Enum):
    """Logical column types supported by the store.

    The physical representation is always an integer or float NumPy array;
    strings are dictionary-encoded (see :mod:`repro.storage.compression`)
    and decimals are stored fixed-point, exactly as the paper's evaluation
    setup describes (dictionary encoding, null suppression, fixed-point
    storage).
    """

    INT8 = "int8"
    INT16 = "int16"
    INT32 = "int32"
    INT64 = "int64"
    FLOAT64 = "float64"
    DECIMAL = "decimal"  # fixed-point, physically int64
    DATE = "date"  # days since 1970-01-01, physically int32
    STRING = "string"  # dictionary-encoded, physically int32 codes

    @property
    def numpy_dtype(self) -> np.dtype:
        """Physical NumPy dtype used to store this logical type."""
        mapping = {
            LogicalType.INT8: np.dtype(np.int8),
            LogicalType.INT16: np.dtype(np.int16),
            LogicalType.INT32: np.dtype(np.int32),
            LogicalType.INT64: np.dtype(np.int64),
            LogicalType.FLOAT64: np.dtype(np.float64),
            LogicalType.DECIMAL: np.dtype(np.int64),
            LogicalType.DATE: np.dtype(np.int32),
            LogicalType.STRING: np.dtype(np.int32),
        }
        return mapping[self]

    @property
    def byte_width(self) -> int:
        """Physical width in bytes of one stored value."""
        return self.numpy_dtype.itemsize


@dataclass(frozen=True)
class Column:
    """An immutable typed column.

    Parameters
    ----------
    name:
        Column name, unique within its table.
    logical_type:
        Logical type of the values (see :class:`LogicalType`).
    values:
        Physical values. Stored read-only.
    dictionary:
        For ``STRING`` columns, the code -> string dictionary.
    scale:
        For ``DECIMAL`` columns, the power-of-ten scale (values are stored
        multiplied by ``10**scale``).
    """

    name: str
    logical_type: LogicalType
    values: np.ndarray
    dictionary: Optional[tuple] = None
    scale: int = 0

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=self.logical_type.numpy_dtype)
        values = np.ascontiguousarray(values)
        values.setflags(write=False)
        object.__setattr__(self, "values", values)
        # Lazy encoded-access surface (descriptor + code array), cached
        # on first touch; the dataset cache seeds these from disk.
        object.__setattr__(self, "_encoding", None)
        object.__setattr__(self, "_encoded", None)
        if self.logical_type is LogicalType.STRING and self.dictionary is None:
            raise StorageError(
                f"string column {self.name!r} requires a dictionary"
            )
        if self.dictionary is not None:
            object.__setattr__(self, "dictionary", tuple(self.dictionary))
        if self.scale < 0:
            raise StorageError(f"negative decimal scale on {self.name!r}")

    def __len__(self) -> int:
        return int(self.values.shape[0])

    @property
    def nbytes(self) -> int:
        """Physical size of the column data in bytes."""
        return int(self.values.nbytes)

    @property
    def byte_width(self) -> int:
        """Width of one physical value in bytes."""
        return self.logical_type.byte_width

    @property
    def encoding(self):
        """Descriptor of this column's physical code stream.

        A :class:`~repro.storage.compression.ColumnEncoding` naming the
        codec and the code width. Metadata only — computing it scans the
        stored range once but materializes nothing. Cached.
        """
        if self._encoding is None:
            from .compression import column_encoding

            object.__setattr__(self, "_encoding", column_encoding(self))
        return self._encoding

    def encoded_values(self) -> np.ndarray:
        """The physical code stream: the primary scan surface.

        For a compressed column this is the stored integers narrowed to
        the codec's width (dictionary codes, null-suppressed ints,
        scaled decimals) — *value-identical* to ``values``, so
        predicates, set probes and key extraction read the same numbers
        from fewer bytes. For codec "none" it aliases ``values``.
        ``decode()`` remains the explicit late-materialization step.

        Materialized lazily and cached; the dataset cache seeds this
        with a memory-mapped code file instead.
        """
        if self._encoded is None:
            enc = self.encoding
            if not enc.compressed:
                object.__setattr__(self, "_encoded", self.values)
            else:
                codes = self.values.astype(np.dtype(enc.dtype))
                codes.setflags(write=False)
                object.__setattr__(self, "_encoded", codes)
        return self._encoded

    def seed_encoded(self, encoding, codes: np.ndarray) -> None:
        """Install a precomputed code stream (dataset-cache mmap path).

        ``codes`` must be the value-identical narrow representation the
        column would compute itself; the dataset cache persists exactly
        that, so shard workers map codes from disk instead of paying the
        ``astype`` per process.
        """
        if codes.dtype != np.dtype(encoding.dtype):
            raise StorageError(
                f"seeded codes dtype {codes.dtype} does not match "
                f"encoding {encoding.dtype} on {self.name!r}"
            )
        if codes.shape[0] != self.values.shape[0]:
            raise StorageError(
                f"seeded codes length mismatch on {self.name!r}"
            )
        object.__setattr__(self, "_encoding", encoding)
        object.__setattr__(self, "_encoded", codes)

    def decode(self) -> np.ndarray:
        """Return the *logical* values (decoded strings / scaled decimals).

        Intended for result presentation and tests, not for hot paths.
        """
        if self.logical_type is LogicalType.STRING:
            lookup = np.asarray(self.dictionary, dtype=object)
            return lookup[self.values]
        if self.logical_type is LogicalType.DECIMAL and self.scale:
            return self.values / float(10**self.scale)
        return self.values

    def code_for(self, text: str) -> int:
        """Return the dictionary code of ``text`` in a STRING column.

        Raises :class:`StorageError` if the value is not in the dictionary,
        which callers use to fold always-false predicates.
        """
        if self.logical_type is not LogicalType.STRING:
            raise StorageError(f"column {self.name!r} is not a string column")
        try:
            return self.dictionary.index(text)
        except ValueError as exc:
            raise StorageError(
                f"value {text!r} not in dictionary of {self.name!r}"
            ) from exc

    def with_values(self, values: np.ndarray) -> "Column":
        """Return a copy of this column's metadata over new values."""
        return Column(
            name=self.name,
            logical_type=self.logical_type,
            values=values,
            dictionary=self.dictionary,
            scale=self.scale,
        )


def int_column(
    name: str,
    values: Union[Sequence[int], np.ndarray],
    logical_type: LogicalType = LogicalType.INT64,
) -> Column:
    """Convenience constructor for integer columns."""
    if logical_type not in (
        LogicalType.INT8,
        LogicalType.INT16,
        LogicalType.INT32,
        LogicalType.INT64,
        LogicalType.DATE,
    ):
        raise StorageError(f"{logical_type} is not an integer logical type")
    return Column(name=name, logical_type=logical_type, values=np.asarray(values))


def decimal_column(
    name: str,
    values: Union[Sequence[float], np.ndarray],
    scale: int = 2,
) -> Column:
    """Build a fixed-point DECIMAL column from float values.

    Values are rounded to ``scale`` decimal places and stored as int64
    multiplied by ``10**scale`` — the paper's fixed-point storage scheme.
    """
    physical = np.rint(np.asarray(values, dtype=np.float64) * 10**scale)
    return Column(
        name=name,
        logical_type=LogicalType.DECIMAL,
        values=physical.astype(np.int64),
        scale=scale,
    )


def string_column(name: str, values: Sequence[str]) -> Column:
    """Build a dictionary-encoded STRING column from raw strings.

    The dictionary is sorted so that code order matches lexicographic
    order, allowing range predicates on encoded values.
    """
    raw = np.asarray(values, dtype=object)
    dictionary, codes = np.unique(raw.astype(str), return_inverse=True)
    return Column(
        name=name,
        logical_type=LogicalType.STRING,
        values=codes.astype(np.int32),
        dictionary=tuple(dictionary.tolist()),
    )


def date_column(name: str, days: Union[Sequence[int], np.ndarray]) -> Column:
    """Build a DATE column from day numbers (days since 1970-01-01)."""
    return Column(name=name, logical_type=LogicalType.DATE, values=np.asarray(days))
