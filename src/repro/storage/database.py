"""The Database facade: catalog + foreign-key indexes.

A :class:`Database` is what code-generation strategies compile against:
it resolves tables, exposes raw column arrays, and owns the
referential-integrity foreign-key indexes that positional bitmaps probe
through (built eagerly at registration time, so queries never pay for
them — matching the paper's "these indexes are necessary" argument).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..errors import SchemaError
from .fkindex import ForeignKeyIndex
from .table import Catalog, ForeignKey, Table


class Database:
    """Tables plus eagerly-built foreign-key indexes."""

    def __init__(self) -> None:
        self.catalog = Catalog()
        self._fk_indexes: Dict[tuple, ForeignKeyIndex] = {}

    def add_table(self, table: Table) -> None:
        self.catalog.add_table(table)

    def table(self, name: str) -> Table:
        return self.catalog.table(name)

    def add_foreign_key(
        self, table: str, column: str, ref_table: str, ref_column: str
    ) -> ForeignKeyIndex:
        """Declare a foreign key and build its offset index immediately."""
        fk = ForeignKey(
            table=table, column=column, ref_table=ref_table, ref_column=ref_column
        )
        self.catalog.add_foreign_key(fk)
        index = ForeignKeyIndex(
            referencing=self.table(table),
            fk_column=column,
            referenced=self.table(ref_table),
            pk_column=ref_column,
        )
        self._fk_indexes[(table, column)] = index
        return index

    def fk_index(self, table: str, column: str) -> ForeignKeyIndex:
        try:
            return self._fk_indexes[(table, column)]
        except KeyError as exc:
            raise SchemaError(
                f"no foreign-key index on {table}.{column}; declare the "
                "foreign key when loading data"
            ) from exc

    def has_fk_index(self, table: str, column: str) -> bool:
        return (table, column) in self._fk_indexes

    def data(self, name: str) -> Dict[str, np.ndarray]:
        """Raw column arrays of a table, keyed by column name."""
        table = self.table(name)
        return {col.name: col.values for col in table.iter_columns()}

    def scan_view(
        self, name: str, encodings: tuple = ()
    ) -> Dict[str, np.ndarray]:
        """Column arrays of a table with chosen columns served encoded.

        ``encodings`` is a pipeline's access-encoding decision: a tuple
        of ``(column, codec_description)`` pairs naming the columns the
        planner chose to scan as physical codes. Those columns come back
        as their narrow code arrays (value-identical to the stored
        representation — see :meth:`Column.encoded_values`); everything
        else comes back as the stored array, exactly like :meth:`data`.
        """
        if not encodings:
            return self.data(name)
        encoded = {column for column, _ in encodings}
        table = self.table(name)
        return {
            col.name: (
                col.encoded_values()
                if col.name in encoded
                else col.values
            )
            for col in table.iter_columns()
        }

    def encoding_fingerprint(self) -> str:
        """Stable digest of every column's encoding descriptor.

        Part of the plan-cache key when compressed access paths are on:
        the access-encoding pass decides from these descriptors, so two
        databases with identical descriptors produce identical
        decisions (and differing data ranges can never serve each
        other's compiled code paths).
        """
        import hashlib

        parts = []
        for name in self.catalog.table_names:
            for col in self.table(name).iter_columns():
                parts.append(f"{name}.{col.name}={col.encoding.describe()}")
        digest = hashlib.sha256("|".join(parts).encode()).hexdigest()[:16]
        return f"enc:{digest}"

    def all_data(self) -> Dict[str, Dict[str, np.ndarray]]:
        """Raw data for every table (used by statistics sampling)."""
        return {name: self.data(name) for name in self.catalog.table_names}

    def column_values(
        self, table: str, column: str, rows: Optional[np.ndarray] = None
    ) -> np.ndarray:
        values = self.table(table)[column]
        if rows is None:
            return values
        return values[rows]
