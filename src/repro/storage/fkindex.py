"""Foreign-key offset indexes.

The paper's positional-bitmap semijoin relies on the index that systems
build anyway to enforce referential integrity: for every foreign-key value
in the referencing table, the index stores the *row offset* of the matching
primary key in the referenced table. Probing a positional bitmap is then a
positional lookup with that offset.

For the common benchmark case where the referenced table's primary key is
dense (``pk = 0..n-1`` or ``1..n``), the index is an O(1) arithmetic
mapping; for general keys we build an explicit offset array at table-load
time (never during query execution, so queries incur no build cost).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import StorageError
from .table import Table


class ForeignKeyIndex:
    """Maps foreign-key values of one table to row offsets of another."""

    def __init__(
        self,
        referencing: Table,
        fk_column: str,
        referenced: Table,
        pk_column: str,
    ) -> None:
        self._referencing_name = referencing.name
        self._fk_column = fk_column
        self._referenced_name = referenced.name
        self._pk_column = pk_column
        self._num_referenced_rows = referenced.num_rows

        pk_values = np.asarray(referenced[pk_column], dtype=np.int64)
        fk_values = np.asarray(referencing[fk_column], dtype=np.int64)

        self._base: Optional[int] = self._dense_base(pk_values)
        if self._base is not None:
            offsets = fk_values - self._base
        else:
            order = np.argsort(pk_values, kind="stable")
            sorted_pk = pk_values[order]
            positions = np.searchsorted(sorted_pk, fk_values)
            positions = np.clip(positions, 0, sorted_pk.shape[0] - 1)
            if not np.array_equal(sorted_pk[positions], fk_values):
                raise StorageError(
                    f"referential integrity violated: {referencing.name}."
                    f"{fk_column} has values missing from "
                    f"{referenced.name}.{pk_column}"
                )
            offsets = order[positions].astype(np.int64)
        if offsets.size and (
            offsets.min() < 0 or offsets.max() >= self._num_referenced_rows
        ):
            raise StorageError(
                f"referential integrity violated: {referencing.name}."
                f"{fk_column} offsets out of range for {referenced.name}"
            )
        offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        offsets.setflags(write=False)
        self._offsets = offsets

    @staticmethod
    def _dense_base(pk_values: np.ndarray) -> Optional[int]:
        """Return the base if primary keys are ``base..base+n-1`` in order."""
        if pk_values.size == 0:
            return None
        base = int(pk_values[0])
        expected = np.arange(base, base + pk_values.shape[0], dtype=np.int64)
        if np.array_equal(pk_values, expected):
            return base
        return None

    @property
    def is_dense(self) -> bool:
        """True when the mapping is pure arithmetic (dense primary key)."""
        return self._base is not None

    @property
    def offsets(self) -> np.ndarray:
        """Row offsets into the referenced table, one per referencing row."""
        return self._offsets

    @property
    def nbytes(self) -> int:
        return int(self._offsets.nbytes)

    def __len__(self) -> int:
        return int(self._offsets.shape[0])

    def describe(self) -> str:
        kind = "dense" if self.is_dense else "materialised"
        return (
            f"fk-index {self._referencing_name}.{self._fk_column} -> "
            f"{self._referenced_name}.{self._pk_column} ({kind}, "
            f"{len(self)} rows)"
        )
