"""In-memory column-store substrate: columns, tables, bitmaps, FK indexes."""

from .bitmap import (
    BlockCompressedBitmap,
    PositionalBitmap,
    bitmap_from_mask,
    maybe_compress,
)
from .column import (
    Column,
    LogicalType,
    date_column,
    decimal_column,
    int_column,
    string_column,
)
from .compression import (
    DictionaryEncoding,
    compress_int_column,
    dictionary_encode,
    fixed_point_decode,
    fixed_point_encode,
    null_suppress,
)
from .database import Database
from .fkindex import ForeignKeyIndex
from .table import Catalog, ForeignKey, Table, make_table

__all__ = [
    "BlockCompressedBitmap",
    "Catalog",
    "Column",
    "Database",
    "DictionaryEncoding",
    "ForeignKey",
    "ForeignKeyIndex",
    "LogicalType",
    "PositionalBitmap",
    "Table",
    "bitmap_from_mask",
    "compress_int_column",
    "date_column",
    "decimal_column",
    "dictionary_encode",
    "fixed_point_decode",
    "fixed_point_encode",
    "int_column",
    "make_table",
    "maybe_compress",
    "null_suppress",
    "string_column",
]
