"""Tables and schemas for the in-memory column store."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from ..errors import SchemaError
from .column import Column


@dataclass(frozen=True)
class Table:
    """An immutable table: an ordered collection of equal-length columns.

    Tables are the unit of scanning for all code-generation strategies.
    Row order is meaningful (positional bitmaps and foreign-key indexes
    refer to row offsets), so tables never reorder rows.
    """

    name: str
    columns: Tuple[Column, ...]

    def __post_init__(self) -> None:
        if not self.columns:
            raise SchemaError(f"table {self.name!r} has no columns")
        object.__setattr__(self, "columns", tuple(self.columns))
        lengths = {len(col) for col in self.columns}
        if len(lengths) != 1:
            raise SchemaError(
                f"table {self.name!r} has ragged columns: lengths {sorted(lengths)}"
            )
        names = [col.name for col in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"table {self.name!r} has duplicate column names")

    @property
    def num_rows(self) -> int:
        return len(self.columns[0])

    def __len__(self) -> int:
        return self.num_rows

    @property
    def column_names(self) -> List[str]:
        return [col.name for col in self.columns]

    def __contains__(self, name: str) -> bool:
        return any(col.name == name for col in self.columns)

    def column(self, name: str) -> Column:
        """Return the column called ``name``.

        Raises :class:`SchemaError` for unknown names so that typos in
        hand-coded query programs fail loudly.
        """
        for col in self.columns:
            if col.name == name:
                return col
        raise SchemaError(f"table {self.name!r} has no column {name!r}")

    def __getitem__(self, name: str) -> np.ndarray:
        """Shorthand for the raw physical values of column ``name``."""
        return self.column(name).values

    def iter_columns(self) -> Iterator[Column]:
        return iter(self.columns)

    @property
    def nbytes(self) -> int:
        """Total physical size of the table's column data."""
        return sum(col.nbytes for col in self.columns)

    def select_rows(self, row_indexes: np.ndarray) -> "Table":
        """Return a new table containing only the given rows (in order).

        Used by tests and the reference interpreter, not by hot paths.
        """
        new_columns = [
            col.with_values(col.values[row_indexes]) for col in self.columns
        ]
        return Table(name=self.name, columns=tuple(new_columns))

    def head(self, n: int = 5) -> Dict[str, np.ndarray]:
        """Return the first ``n`` decoded rows per column (debug helper)."""
        return {col.name: col.decode()[:n] for col in self.columns}


def make_table(name: str, columns: Iterable[Column]) -> Table:
    """Build a :class:`Table`, validating lengths and name uniqueness."""
    return Table(name=name, columns=tuple(columns))


@dataclass(frozen=True)
class ForeignKey:
    """Declares that ``table.column`` references ``ref_table.ref_column``."""

    table: str
    column: str
    ref_table: str
    ref_column: str


class Catalog:
    """A named collection of tables plus referential-integrity metadata.

    The catalog owns the foreign-key declarations from which
    :class:`~repro.storage.fkindex.ForeignKeyIndex` objects are built; the
    paper's positional-bitmap technique relies on these indexes existing
    ("since these indexes are necessary, our technique does not incur any
    additional overhead").
    """

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}
        self._foreign_keys: List[ForeignKey] = []

    def add_table(self, table: Table) -> None:
        if table.name in self._tables:
            raise SchemaError(f"table {table.name!r} already exists")
        self._tables[table.name] = table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError as exc:
            raise SchemaError(f"unknown table {name!r}") from exc

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    @property
    def table_names(self) -> List[str]:
        return sorted(self._tables)

    def add_foreign_key(self, fk: ForeignKey) -> None:
        """Register a foreign key; both endpoints must exist."""
        for table_name, column_name in (
            (fk.table, fk.column),
            (fk.ref_table, fk.ref_column),
        ):
            table = self.table(table_name)
            table.column(column_name)  # raises on unknown column
        self._foreign_keys.append(fk)

    def foreign_keys(self, table: Optional[str] = None) -> List[ForeignKey]:
        if table is None:
            return list(self._foreign_keys)
        return [fk for fk in self._foreign_keys if fk.table == table]
