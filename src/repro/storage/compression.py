"""Compression codecs used by the column store.

The paper's evaluation (Section IV) uses three well-known lightweight
compression techniques, all of which are implemented here:

1. **Dictionary encoding** for low-cardinality string columns.
2. **Null suppression** (byte-width minimisation) for low-cardinality
   integer columns.
3. **Fixed-point storage** for decimals (multiply by a power of ten and
   store as integers).

Each codec round-trips exactly; the test suite asserts this by property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..errors import StorageError
from .column import Column, LogicalType


@dataclass(frozen=True)
class ColumnEncoding:
    """Descriptor of a column's physical code stream.

    The access path uses this to reason about encoded scans without
    materializing anything: ``codec`` names the scheme ("dict" for
    dictionary codes, "ns" for null-suppressed integers, "fxp" for
    fixed-point decimals narrowed below int64, "none" when the stored
    representation is already the narrowest), ``width`` is the physical
    bytes per code and ``decoded_width`` the bytes per value of the
    logical (decoded) stream the codes stand in for.

    All three codecs here are *value-preserving*: the code array holds
    the same integer values as the stored array, only narrower. That is
    what makes predicate evaluation on codes exact — comparisons,
    set-membership and key extraction read identical integers from a
    narrower stream, and ``decode`` (the ``astype`` back to the wide
    dtype) is a pure late-materialization step.
    """

    codec: str
    dtype: str
    width: int
    decoded_width: int

    @property
    def compressed(self) -> bool:
        return self.codec != "none"

    def describe(self) -> str:
        """Short form used in explain output: ``ns:int8(8B->1B)``."""
        if not self.compressed:
            return "none"
        return (
            f"{self.codec}:{self.dtype}"
            f"({self.decoded_width}B->{self.width}B)"
        )


def narrowest_int_dtype(lo: int, hi: int) -> np.dtype:
    """The narrowest signed dtype whose range covers ``[lo, hi]``."""
    for dtype in (np.int8, np.int16, np.int32, np.int64):
        info = np.iinfo(dtype)
        if info.min <= lo and hi <= info.max:
            return np.dtype(dtype)
    raise StorageError("value range exceeds int64")  # pragma: no cover


def column_encoding(column: Column) -> ColumnEncoding:
    """Descriptor of ``column``'s best value-preserving encoding.

    Pure metadata: inspects the stored range (one min/max scan) without
    materializing a code array. STRING columns narrow their dictionary
    codes ("dict"), DECIMAL columns narrow their scaled fixed-point
    integers ("fxp"), and every other integer column null-suppresses
    ("ns"). Columns whose stored dtype is already the narrowest — and
    float or empty columns — report codec "none".
    """
    values = column.values
    decoded_width = int(values.dtype.itemsize)
    if values.dtype.kind not in "iu" or values.size == 0:
        return ColumnEncoding(
            "none", values.dtype.name, decoded_width, decoded_width
        )
    dtype = narrowest_int_dtype(int(values.min()), int(values.max()))
    width = int(dtype.itemsize)
    if width >= decoded_width:
        return ColumnEncoding(
            "none", values.dtype.name, decoded_width, decoded_width
        )
    if column.logical_type is LogicalType.STRING:
        codec = "dict"
    elif column.logical_type is LogicalType.DECIMAL:
        codec = "fxp"
    else:
        codec = "ns"
    return ColumnEncoding(codec, dtype.name, width, decoded_width)


@dataclass(frozen=True)
class DictionaryEncoding:
    """Result of dictionary-encoding a string array."""

    codes: np.ndarray
    dictionary: Tuple[str, ...]

    def decode(self) -> np.ndarray:
        lookup = np.asarray(self.dictionary, dtype=object)
        return lookup[self.codes]


def dictionary_encode(values: Sequence[str]) -> DictionaryEncoding:
    """Dictionary-encode strings into int32 codes.

    The dictionary is sorted so code comparisons preserve lexicographic
    order, which lets encoded columns answer range predicates directly.
    """
    raw = np.asarray(list(values), dtype=object).astype(str)
    if any("\x00" in v for v in raw):
        # NumPy's fixed-width string arrays treat NUL as a terminator and
        # would silently truncate; reject it as a C-string store would.
        raise StorageError("strings may not contain NUL characters")
    dictionary, codes = np.unique(raw, return_inverse=True)
    if dictionary.shape[0] > np.iinfo(np.int32).max:
        raise StorageError("dictionary too large for int32 codes")
    return DictionaryEncoding(
        codes=codes.astype(np.int32), dictionary=tuple(dictionary.tolist())
    )


def null_suppress(values: np.ndarray) -> np.ndarray:
    """Shrink an integer array to the narrowest dtype that holds its range.

    This is the "null suppression" scheme from the paper's setup: leading
    zero bytes of small integers are not stored. Raises if given a
    non-integer array.
    """
    values = np.asarray(values)
    if values.dtype.kind not in "iu":
        raise StorageError("null suppression requires an integer array")
    if values.size == 0:
        return values.astype(np.int8)
    return values.astype(
        narrowest_int_dtype(int(values.min()), int(values.max()))
    )


def suppressed_logical_type(values: np.ndarray) -> LogicalType:
    """Return the narrowest integer :class:`LogicalType` for ``values``."""
    narrowed = null_suppress(values)
    mapping = {
        np.dtype(np.int8): LogicalType.INT8,
        np.dtype(np.int16): LogicalType.INT16,
        np.dtype(np.int32): LogicalType.INT32,
        np.dtype(np.int64): LogicalType.INT64,
    }
    return mapping[narrowed.dtype]


def fixed_point_encode(values: np.ndarray, scale: int) -> np.ndarray:
    """Encode float values as fixed-point int64 at ``10**scale``."""
    if scale < 0:
        raise StorageError("fixed-point scale must be non-negative")
    scaled = np.rint(np.asarray(values, dtype=np.float64) * 10**scale)
    limit = float(np.iinfo(np.int64).max)
    if scaled.size and (np.abs(scaled) >= limit).any():
        raise StorageError("fixed-point value overflows int64")
    return scaled.astype(np.int64)


def fixed_point_decode(values: np.ndarray, scale: int) -> np.ndarray:
    """Decode fixed-point int64 values back to floats."""
    return np.asarray(values, dtype=np.float64) / 10**scale


def compress_int_column(name: str, values: np.ndarray) -> Column:
    """Build an integer column using null suppression."""
    narrowed = null_suppress(np.asarray(values))
    return Column(
        name=name,
        logical_type=suppressed_logical_type(narrowed),
        values=narrowed,
    )
