"""Compression codecs used by the column store.

The paper's evaluation (Section IV) uses three well-known lightweight
compression techniques, all of which are implemented here:

1. **Dictionary encoding** for low-cardinality string columns.
2. **Null suppression** (byte-width minimisation) for low-cardinality
   integer columns.
3. **Fixed-point storage** for decimals (multiply by a power of ten and
   store as integers).

Each codec round-trips exactly; the test suite asserts this by property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..errors import StorageError
from .column import Column, LogicalType


@dataclass(frozen=True)
class DictionaryEncoding:
    """Result of dictionary-encoding a string array."""

    codes: np.ndarray
    dictionary: Tuple[str, ...]

    def decode(self) -> np.ndarray:
        lookup = np.asarray(self.dictionary, dtype=object)
        return lookup[self.codes]


def dictionary_encode(values: Sequence[str]) -> DictionaryEncoding:
    """Dictionary-encode strings into int32 codes.

    The dictionary is sorted so code comparisons preserve lexicographic
    order, which lets encoded columns answer range predicates directly.
    """
    raw = np.asarray(list(values), dtype=object).astype(str)
    if any("\x00" in v for v in raw):
        # NumPy's fixed-width string arrays treat NUL as a terminator and
        # would silently truncate; reject it as a C-string store would.
        raise StorageError("strings may not contain NUL characters")
    dictionary, codes = np.unique(raw, return_inverse=True)
    if dictionary.shape[0] > np.iinfo(np.int32).max:
        raise StorageError("dictionary too large for int32 codes")
    return DictionaryEncoding(
        codes=codes.astype(np.int32), dictionary=tuple(dictionary.tolist())
    )


def null_suppress(values: np.ndarray) -> np.ndarray:
    """Shrink an integer array to the narrowest dtype that holds its range.

    This is the "null suppression" scheme from the paper's setup: leading
    zero bytes of small integers are not stored. Raises if given a
    non-integer array.
    """
    values = np.asarray(values)
    if values.dtype.kind not in "iu":
        raise StorageError("null suppression requires an integer array")
    if values.size == 0:
        return values.astype(np.int8)
    lo = int(values.min())
    hi = int(values.max())
    for dtype in (np.int8, np.int16, np.int32, np.int64):
        info = np.iinfo(dtype)
        if info.min <= lo and hi <= info.max:
            return values.astype(dtype)
    raise StorageError("value range exceeds int64")  # pragma: no cover


def suppressed_logical_type(values: np.ndarray) -> LogicalType:
    """Return the narrowest integer :class:`LogicalType` for ``values``."""
    narrowed = null_suppress(values)
    mapping = {
        np.dtype(np.int8): LogicalType.INT8,
        np.dtype(np.int16): LogicalType.INT16,
        np.dtype(np.int32): LogicalType.INT32,
        np.dtype(np.int64): LogicalType.INT64,
    }
    return mapping[narrowed.dtype]


def fixed_point_encode(values: np.ndarray, scale: int) -> np.ndarray:
    """Encode float values as fixed-point int64 at ``10**scale``."""
    if scale < 0:
        raise StorageError("fixed-point scale must be non-negative")
    scaled = np.rint(np.asarray(values, dtype=np.float64) * 10**scale)
    limit = float(np.iinfo(np.int64).max)
    if scaled.size and (np.abs(scaled) >= limit).any():
        raise StorageError("fixed-point value overflows int64")
    return scaled.astype(np.int64)


def fixed_point_decode(values: np.ndarray, scale: int) -> np.ndarray:
    """Decode fixed-point int64 values back to floats."""
    return np.asarray(values, dtype=np.float64) / 10**scale


def compress_int_column(name: str, values: np.ndarray) -> Column:
    """Build an integer column using null suppression."""
    narrowed = null_suppress(np.asarray(values))
    return Column(
        name=name,
        logical_type=suppressed_logical_type(narrowed),
        values=narrowed,
    )
