"""TCP transport: newline-delimited JSON over a socket.

:class:`TcpQueryServer` fronts a :class:`~repro.server.service.QueryService`
with a plain socket protocol: one JSON request object per line, one JSON
response per line, in order (see :mod:`repro.server.protocol` for the
wire schema). Each accepted connection is served by its own thread;
requests on one connection are handled sequentially, so clients wanting
concurrency open several connections (the serving benchmark's load
generator opens one per simulated client).

The transport adds nothing to the serving policy — admission control,
deadlines, and shedding all live in the service; a malformed line is the
only error the transport answers itself (``bad_request``). ``stop()``
drains the service (in-flight queries finish, queued ones are rejected)
and then closes the listener and all client connections.
"""

from __future__ import annotations

import socket
import threading
from typing import Optional, Set

from ..errors import ReproError
from .protocol import (
    ERR_BAD_REQUEST,
    ProtocolError,
    QueryRequest,
    QueryResponse,
    STATUS_ERROR,
    ErrorInfo,
    dump_line,
    load_line,
)
from .service import QueryService


class TcpQueryServer:
    """A threaded socket front end for one query service.

    Binds immediately (``port=0`` picks a free port — :attr:`address`
    has the real one); :meth:`start` launches the accept loop in a
    background thread, :meth:`serve_forever` runs it in the caller's
    thread (the ``python -m repro.server`` entry point does, until a
    signal asks it to stop).
    """

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        backlog: int = 64,
    ) -> None:
        self.service = service
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            self._listener.bind((host, port))
        except OSError as exc:
            self._listener.close()
            raise ReproError(
                f"cannot bind query server to {host}:{port}: {exc}"
            ) from exc
        self._listener.listen(backlog)
        self.address = self._listener.getsockname()[:2]
        self._stopping = threading.Event()
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_threads: Set[threading.Thread] = set()
        self._conns: Set[socket.socket] = set()
        self._lock = threading.Lock()

    # -- lifecycle -------------------------------------------------------

    @property
    def host(self) -> str:
        return self.address[0]

    @property
    def port(self) -> int:
        return self.address[1]

    def start(self) -> "TcpQueryServer":
        """Run the accept loop in a background thread."""
        if self._accept_thread is None:
            self._accept_thread = threading.Thread(
                target=self.serve_forever, name="repro-accept", daemon=True
            )
            self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Accept connections until :meth:`stop` closes the listener."""
        while not self._stopping.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                break  # listener closed by stop()
            with self._lock:
                if self._stopping.is_set():
                    conn.close()
                    break
                self._conns.add(conn)
                thread = threading.Thread(
                    target=self._serve_connection,
                    args=(conn,),
                    name="repro-conn",
                    daemon=True,
                )
                self._conn_threads.add(thread)
            thread.start()

    def stop(self, timeout: Optional[float] = None) -> None:
        """Graceful shutdown: drain the service (queued requests get
        structured ``shutting_down`` rejections, in-flight ones finish),
        then close the listener and every connection. Idempotent."""
        self._stopping.set()
        self.service.shutdown(timeout)
        # Closing a listening socket does not wake a thread blocked in
        # accept() on Linux; shutdown() does there, and the dummy
        # connection covers platforms where shutdown() on a listener
        # raises instead (e.g. ENOTCONN on macOS).
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            socket.create_connection(self.address, timeout=0.5).close()
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - already closed
            pass
        with self._lock:
            conns = list(self._conns)
            threads = list(self._conn_threads)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()
        for thread in threads:
            thread.join(timeout=timeout)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=timeout)

    def __enter__(self) -> "TcpQueryServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- connections -----------------------------------------------------

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            reader = conn.makefile("rb")
            writer = conn.makefile("wb")
            for line in reader:
                if not line.strip():
                    continue
                response = self._handle_line(line)
                try:
                    writer.write(dump_line(response.to_wire()))
                    writer.flush()
                except (OSError, ValueError):
                    break  # client went away mid-response
        except (OSError, ValueError):
            pass  # connection reset; nothing to answer
        finally:
            with self._lock:
                self._conns.discard(conn)
                self._conn_threads.discard(threading.current_thread())
            try:
                conn.close()
            except OSError:
                pass

    def _handle_line(self, line: bytes) -> QueryResponse:
        try:
            request = QueryRequest.from_wire(load_line(line))
        except ProtocolError as exc:
            return QueryResponse(
                id="",
                status=STATUS_ERROR,
                error=ErrorInfo(code=ERR_BAD_REQUEST, message=str(exc)),
            )
        # Blocking in the connection thread keeps per-connection order;
        # cross-connection concurrency comes from the service's queue.
        return self.service.execute(request)
