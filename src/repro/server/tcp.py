"""TCP transport: newline-delimited JSON over a socket.

:class:`TcpQueryServer` fronts a :class:`~repro.server.service.QueryService`
with a plain socket protocol: one JSON request object per line, one JSON
response per line, in order (see :mod:`repro.server.protocol` for the
wire schema). Each accepted connection is served by its own thread;
requests on one connection are handled sequentially, so clients wanting
concurrency open several connections (the serving benchmark's load
generator opens one per simulated client).

The transport adds little to the serving policy — admission control,
deadlines, and shedding all live in the service. The transport itself
answers two things: a malformed line (``bad_request``) and a ``stats``
request, which returns the service registry's telemetry snapshot
*without* entering the admission queue (a saturated server must still
be observable). ``stop()`` drains the service (in-flight queries
finish, queued ones are rejected), closes the listener and all client
connections, and returns a :class:`StopReport`: socket errors on the
teardown path and connection threads that outlive the join timeout are
counted, logged to the registry's error log, and reported — not
silently dropped.
"""

from __future__ import annotations

import errno
import socket
import threading
from dataclasses import dataclass, field
from typing import List, Optional, Set

from ..errors import ReproError
from .protocol import (
    ERR_BAD_REQUEST,
    ProtocolError,
    QueryResponse,
    STATUS_ERROR,
    STATUS_OK,
    StatsRequest,
    ErrorInfo,
    dump_line,
    load_line,
    parse_request,
)
from .service import QueryService

#: Errnos meaning "this socket is already gone" — expected races on the
#: teardown path, not failures (a handler thread closes its own socket;
#: a second ``stop()`` finds the listener closed).
_ALREADY_GONE = (errno.EBADF, errno.ENOTCONN, errno.EPIPE)


@dataclass
class StopReport:
    """What :meth:`TcpQueryServer.stop` actually accomplished.

    ``errors`` lists teardown socket failures (also counted in the
    registry under ``tcp_stop_errors_total`` and logged to the error
    log); ``unjoined_threads`` names connection or accept threads still
    alive after the join timeout — a non-empty list means the timeout
    was too short or a handler is wedged, and the caller should know
    rather than exit believing the shutdown was clean.
    """

    drained: bool = True
    errors: List[str] = field(default_factory=list)
    unjoined_threads: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return self.drained and not self.errors and not self.unjoined_threads

    def to_dict(self) -> dict:
        return {
            "drained": self.drained,
            "clean": self.clean,
            "errors": list(self.errors),
            "unjoined_threads": list(self.unjoined_threads),
        }


class TcpQueryServer:
    """A threaded socket front end for one query service.

    Binds immediately (``port=0`` picks a free port — :attr:`address`
    has the real one); :meth:`start` launches the accept loop in a
    background thread, :meth:`serve_forever` runs it in the caller's
    thread (the ``python -m repro.server`` entry point does, until a
    signal asks it to stop).
    """

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        backlog: int = 64,
    ) -> None:
        self.service = service
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            self._listener.bind((host, port))
        except OSError as exc:
            self._listener.close()
            raise ReproError(
                f"cannot bind query server to {host}:{port}: {exc}"
            ) from exc
        self._listener.listen(backlog)
        self.address = self._listener.getsockname()[:2]
        self._stopping = threading.Event()
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_threads: Set[threading.Thread] = set()
        self._conns: Set[socket.socket] = set()
        self._lock = threading.Lock()

    # -- lifecycle -------------------------------------------------------

    @property
    def host(self) -> str:
        return self.address[0]

    @property
    def port(self) -> int:
        return self.address[1]

    def start(self) -> "TcpQueryServer":
        """Run the accept loop in a background thread."""
        if self._accept_thread is None:
            self._accept_thread = threading.Thread(
                target=self.serve_forever, name="repro-accept", daemon=True
            )
            self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Accept connections until :meth:`stop` closes the listener."""
        while not self._stopping.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                break  # listener closed by stop()
            with self._lock:
                if self._stopping.is_set():
                    conn.close()
                    break
                self._conns.add(conn)
                thread = threading.Thread(
                    target=self._serve_connection,
                    args=(conn,),
                    name="repro-conn",
                    daemon=True,
                )
                self._conn_threads.add(thread)
            thread.start()

    def stop(self, timeout: Optional[float] = None) -> StopReport:
        """Graceful shutdown: drain the service (queued requests get
        structured ``shutting_down`` rejections, in-flight ones finish),
        then close the listener and every connection. Idempotent.

        Returns a :class:`StopReport`. Teardown socket errors are
        counted (``tcp_stop_errors_total``), logged to the registry's
        error log, and listed on the report; threads that outlive the
        join timeout are reported as ``unjoined_threads`` instead of
        being silently leaked.
        """
        report = StopReport()
        self._stopping.set()
        report.drained = self.service.shutdown(timeout)
        # Closing a listening socket does not wake a thread blocked in
        # accept() on Linux; shutdown() does there, and the dummy
        # connection covers platforms where shutdown() on a listener
        # raises instead (e.g. ENOTCONN on macOS).
        self._teardown(
            report, "listener_shutdown",
            lambda: self._listener.shutdown(socket.SHUT_RDWR),
            benign_errnos=_ALREADY_GONE,  # second stop(): already closed
        )
        # The wake-up connection is *expected* to fail once the
        # listener stops accepting — count it, but it is not an error.
        self._teardown(
            report, "wake_accept",
            lambda: socket.create_connection(
                self.address, timeout=0.5
            ).close(),
            expected=True,
        )
        self._teardown(report, "listener_close", self._listener.close)
        with self._lock:
            conns = list(self._conns)
            threads = list(self._conn_threads)
        for conn in conns:
            # A handler thread may close its own socket between the
            # snapshot above and this shutdown — that race is benign.
            self._teardown(
                report, "conn_shutdown",
                lambda c=conn: c.shutdown(socket.SHUT_RDWR),
                benign_errnos=_ALREADY_GONE,
            )
            self._teardown(report, "conn_close", conn.close)
        if self._accept_thread is not None:
            threads.append(self._accept_thread)
        for thread in threads:
            thread.join(timeout=timeout)
            if thread.is_alive():
                report.unjoined_threads.append(thread.name)
        if report.unjoined_threads:
            registry = self.service.registry
            registry.counter("tcp_unjoined_threads_total").inc(
                len(report.unjoined_threads)
            )
            registry.error_log.record(
                "tcp.stop",
                f"{len(report.unjoined_threads)} connection thread(s) "
                f"outlived the {timeout}s join timeout",
                threads=list(report.unjoined_threads),
            )
        return report

    def _teardown(
        self,
        report: StopReport,
        site: str,
        action,
        *,
        expected: bool = False,
        benign_errnos: tuple = (),
    ) -> None:
        """Run one teardown step, routing an ``OSError`` through the
        telemetry (counter + error log) instead of dropping it. Steps
        marked ``expected`` (the accept-loop wake-up, whose refusal
        means the listener is already down) and errnos in
        ``benign_errnos`` (socket already closed by its own handler, or
        by a previous ``stop``) are counted but neither logged nor
        listed as errors."""
        try:
            action()
        except OSError as exc:
            registry = self.service.registry
            registry.counter("tcp_stop_errors_total", site=site).inc()
            if not expected and exc.errno not in benign_errnos:
                message = f"{site}: {exc}"
                registry.error_log.record("tcp.stop", message)
                report.errors.append(message)

    def __enter__(self) -> "TcpQueryServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- connections -----------------------------------------------------

    def _conn_error(self, site: str, exc: BaseException) -> None:
        """Route a per-connection socket failure through telemetry,
        mirroring what :meth:`_teardown` does for ``stop()``.

        Every occurrence is counted (``tcp_stop_errors_total{site=}``).
        Sockets that are *already gone* — closed under this thread by
        ``stop()``, surfacing as an ``_ALREADY_GONE`` errno or as the
        ``ValueError`` a closed file object raises — are expected races,
        counted but not logged. A genuine reset (ECONNRESET and kin) is
        the diagnosable case and lands in the error log."""
        registry = self.service.registry
        registry.counter("tcp_stop_errors_total", site=site).inc()
        if isinstance(exc, ValueError):
            return  # operation on a closed makefile object: stop() race
        if getattr(exc, "errno", None) in _ALREADY_GONE:
            return
        registry.error_log.record("tcp.conn", f"{site}: {exc}")

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            reader = conn.makefile("rb")
            writer = conn.makefile("wb")
            for line in reader:
                if not line.strip():
                    continue
                response = self._handle_line(line)
                try:
                    writer.write(dump_line(response.to_wire()))
                    writer.flush()
                except (OSError, ValueError) as exc:
                    # Client went away mid-response: stop serving this
                    # connection, but leave a trace — a shard worker's
                    # reset here used to vanish without a counter.
                    self._conn_error("conn_write", exc)
                    break
        except (OSError, ValueError) as exc:
            # Read side failed (e.g. ECONNRESET): nothing to answer,
            # but the reset itself is diagnosable telemetry.
            self._conn_error("conn_read", exc)
        finally:
            with self._lock:
                self._conns.discard(conn)
                self._conn_threads.discard(threading.current_thread())
            try:
                conn.close()
            except OSError:
                pass

    def _handle_line(self, line: bytes) -> QueryResponse:
        try:
            request = parse_request(load_line(line))
        except ProtocolError as exc:
            return QueryResponse(
                id="",
                status=STATUS_ERROR,
                error=ErrorInfo(code=ERR_BAD_REQUEST, message=str(exc)),
            )
        if isinstance(request, StatsRequest):
            # Answered by the transport, bypassing admission: stats
            # must stay available when the queue is full or draining.
            self.service.registry.counter("stats_requests_total").inc()
            return QueryResponse(
                id=request.id,
                status=STATUS_OK,
                value=self.service.stats_snapshot(),
            )
        # Blocking in the connection thread keeps per-connection order;
        # cross-connection concurrency comes from the service's queue.
        return self.service.execute(request)
