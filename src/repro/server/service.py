"""The query service: admission control, deadlines, load shedding.

:class:`QueryService` turns a library :class:`~repro.engine.facade.Engine`
into a *server*: requests are admitted into a bounded queue, executed by
a fixed number of service threads, and always answered with a structured
:class:`~repro.server.protocol.QueryResponse` — never a hang, never an
unhandled exception.

The control loop enforces three serving policies:

* **Admission control** — at most ``concurrency`` requests execute at
  once and at most ``queue_depth`` wait; the queue bounds worst-case
  latency instead of letting it grow without limit.
* **Load shedding** — a request arriving at a full queue is rejected
  *immediately* with ``queue_full`` and a ``retry_after`` hint derived
  from the observed service rate (an EWMA of service times): turning
  overload into fast, explicit back-pressure is what keeps a saturated
  server's goodput flat instead of collapsing.
* **Deadlines** — each request's budget starts at *admission* (queue
  wait counts, exactly as the client perceives it) and propagates as a
  :class:`~repro.engine.cancellation.CancelToken` into the engine's
  morsel cursor, so a timed-out parallel query stops within one
  morsel's worth of work. Requests whose budget is already spent when
  dequeued are answered ``deadline_exceeded`` without executing at all
  — the classic queue-expiry optimisation.
* **Request coalescing** (singleflight) — when a request is dequeued,
  waiting requests for the identical ``(query, strategy, workers,
  backend)`` are pulled out with it and answered from the same
  execution. This is
  sound because an :class:`Engine` binds one immutable database: the
  same query under the same strategy always produces the same answer.
  Coalescing happens at *dequeue*, never at admission, so the queue
  bound — and therefore shedding — behaves exactly as sized. Followers
  keep their own budgets: a cancelled follower is answered
  ``cancelled``, one that lapsed while coalesced gets the (computed)
  value with ``deadline_missed`` set, and if the leading execution does
  not produce a value the followers are re-queued rather than failed on
  its behalf. Only wire-form specs (strings and JSON dicts) coalesce;
  in-process ``Query`` objects are served individually.

Shutdown is graceful and idempotent: :meth:`drain` stops admission,
rejects everything still queued with ``shutting_down``, and waits for
in-flight requests to finish. The engine itself stays usable (and
``Engine.shutdown()`` remains idempotent) afterwards.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from ..engine.cancellation import CancelToken
from ..errors import (
    QueryCancelled,
    QueryTimeout,
    ReproError,
)
from ..obs import MetricsRegistry, metrics_registry, observe_span
from .protocol import (
    ERR_BAD_REQUEST,
    ERR_CANCELLED,
    ERR_DEADLINE,
    ERR_EXECUTION,
    ERR_QUEUE_FULL,
    ERR_SHUTTING_DOWN,
    ProtocolError,
    QueryRequest,
    QueryResponse,
    error_response,
    ok_response,
    parse_query_spec,
)

#: Lifecycle states.
_RUNNING = "running"
_DRAINING = "draining"
_STOPPED = "stopped"

#: Seed for the service-time EWMA before the first completion (a short
#: OLAP query); only used to shape the first retry_after hints.
_EWMA_SEED_SECONDS = 0.02
_EWMA_ALPHA = 0.2


@dataclass
class ServiceStats:
    """Counters of one service's lifetime, by request outcome."""

    submitted: int = 0
    admitted: int = 0
    completed: int = 0
    failed: int = 0
    #: Rejected at admission because the queue was full.
    shed: int = 0
    #: Rejected because the service was draining or stopped.
    rejected_draining: int = 0
    timed_out: int = 0
    cancelled: int = 0
    #: Completed requests answered from another request's execution.
    coalesced: int = 0
    queue_wait_seconds: float = 0.0
    service_seconds: float = 0.0

    def snapshot(self) -> dict:
        served = self.completed + self.failed + self.timed_out
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "completed": self.completed,
            "failed": self.failed,
            "shed": self.shed,
            "rejected_draining": self.rejected_draining,
            "timed_out": self.timed_out,
            "cancelled": self.cancelled,
            "coalesced": self.coalesced,
            "shed_rate": self.shed / self.submitted if self.submitted else 0.0,
            "avg_queue_wait_seconds": (
                self.queue_wait_seconds / served if served else 0.0
            ),
            "avg_service_seconds": (
                self.service_seconds / served if served else 0.0
            ),
        }


class PendingQuery:
    """A submitted request: resolves to exactly one response.

    :meth:`response` blocks until the service answers; :meth:`cancel`
    flips the request's token so a queued request is answered
    ``cancelled`` at dequeue and a running one stops at the next morsel
    claim.
    """

    def __init__(self, request: QueryRequest) -> None:
        self.request = request
        self.token: Optional[CancelToken] = None
        self.enqueued_at: float = 0.0
        self._event = threading.Event()
        self._response: Optional[QueryResponse] = None

    def resolve(self, response: QueryResponse) -> None:
        self._response = response
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def cancel(self) -> None:
        if self.token is not None:
            self.token.cancel()

    def response(self, timeout: Optional[float] = None) -> QueryResponse:
        if not self._event.wait(timeout):
            raise ReproError(
                f"request {self.request.id} did not resolve within "
                f"{timeout}s"
            )
        assert self._response is not None
        return self._response


class QueryService:
    """A concurrent, deadline-aware front end for one engine.

    Parameters
    ----------
    engine:
        The :class:`~repro.engine.facade.Engine` to serve. Shared
        safely across the service threads (the plan cache is locked;
        parallel morsel batches serialise on the engine's pool).
    concurrency:
        Service threads — the number of requests executing at once.
    queue_depth:
        Admitted-but-waiting requests beyond which submissions are shed.
    default_deadline:
        Budget in seconds applied to requests that do not carry their
        own; ``None`` means no deadline unless the request sets one.
    coalesce:
        Answer queued duplicates of a dequeued request from its one
        execution (see the module docstring). On by default; turn off
        to force every admitted request through the engine.
    own_engine:
        When True, :meth:`shutdown` also shuts the engine's worker pool
        down (the ``python -m repro.server`` entry point sets this).
    registry:
        The :class:`~repro.obs.MetricsRegistry` the service reports
        into (default: the process-wide registry). The service
        registers its counters plus live queue depth as the
        ``service`` stat source and times the admit / queue-wait /
        serve spans.

    The service is a context manager; threads start lazily on the first
    submission.
    """

    def __init__(
        self,
        engine,
        *,
        concurrency: int = 2,
        queue_depth: int = 32,
        default_deadline: Optional[float] = None,
        coalesce: bool = True,
        own_engine: bool = False,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if concurrency < 1:
            raise ReproError("service concurrency must be at least 1")
        if queue_depth < 1:
            raise ReproError("service queue depth must be at least 1")
        if default_deadline is not None and default_deadline <= 0:
            raise ReproError("default deadline must be positive seconds")
        self.engine = engine
        self.concurrency = concurrency
        self.queue_depth = queue_depth
        self.default_deadline = default_deadline
        self.coalesce = coalesce
        self.own_engine = own_engine
        self.stats = ServiceStats()
        self._cond = threading.Condition()
        self._queue: Deque[PendingQuery] = deque()
        self._threads: List[threading.Thread] = []
        self._state = _RUNNING
        self._in_flight = 0
        self._ewma_service = _EWMA_SEED_SECONDS
        self.registry = (
            registry if registry is not None else metrics_registry()
        )
        self.registry.register_source("service", self._source_snapshot)

    def _source_snapshot(self) -> dict:
        """The service's counters plus its live backlog (registered as
        the ``service`` stat source)."""
        snap = self.stats.snapshot()
        snap["queue_depth"] = len(self._queue)
        snap["in_flight"] = self._in_flight
        snap["state"] = self._state
        snap["concurrency"] = self.concurrency
        snap["queue_capacity"] = self.queue_depth
        return snap

    def stats_snapshot(self) -> dict:
        """The full telemetry snapshot of this service's registry —
        what a wire ``stats`` request is answered with."""
        return self.registry.snapshot()

    # -- lifecycle -------------------------------------------------------

    @property
    def state(self) -> str:
        return self._state

    @property
    def queue_len(self) -> int:
        return len(self._queue)

    @property
    def in_flight(self) -> int:
        return self._in_flight

    def _ensure_started(self) -> None:
        # Caller holds self._cond.
        while len(self._threads) < self.concurrency:
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-serve-{len(self._threads)}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admission, reject everything queued, wait for in-flight
        requests to finish. Returns whether the drain completed within
        ``timeout`` (``None`` waits indefinitely). Idempotent."""
        with self._cond:
            if self._state == _RUNNING:
                self._state = _DRAINING
            rejected = list(self._queue)
            self._queue.clear()
            self.stats.rejected_draining += len(rejected)
            self._cond.notify_all()
        for pending in rejected:
            pending.resolve(
                error_response(
                    pending.request,
                    ERR_SHUTTING_DOWN,
                    "server is draining; request was still queued",
                )
            )
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        with self._cond:
            while self._in_flight > 0:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(remaining)
        return True

    def shutdown(self, timeout: Optional[float] = None) -> bool:
        """Graceful stop: :meth:`drain`, then join the service threads
        (and the engine's pool when ``own_engine``). Idempotent."""
        drained = self.drain(timeout)
        with self._cond:
            self._state = _STOPPED
            threads = list(self._threads)
            self._cond.notify_all()
        for thread in threads:
            thread.join(timeout=timeout)
        with self._cond:
            self._threads = [t for t in self._threads if t.is_alive()]
        if self.own_engine:
            self.engine.shutdown()
        return drained

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- admission -------------------------------------------------------

    def retry_after_hint(self) -> float:
        """Expected seconds until the backlog has space: queue plus
        in-flight work over the service rate (EWMA service time times
        requests per thread)."""
        backlog = len(self._queue) + self._in_flight
        return max(
            round(backlog * self._ewma_service / self.concurrency, 4),
            0.001,
        )

    def submit(self, request) -> PendingQuery:
        """Admit (or immediately reject) one request.

        ``request`` is a :class:`QueryRequest`, or anything
        ``Engine.execute`` accepts (a TPC-H name, a wire spec dict, a
        logical ``Query``) which is wrapped in a default request.
        Always returns a :class:`PendingQuery`; rejections resolve
        before this method returns.
        """
        begin = time.perf_counter()
        if not isinstance(request, QueryRequest):
            request = QueryRequest(query=request)
        pending = PendingQuery(request)
        with self._cond:
            self.stats.submitted += 1
            if self._state != _RUNNING:
                self.stats.rejected_draining += 1
                rejection = error_response(
                    request,
                    ERR_SHUTTING_DOWN,
                    f"server is {self._state}; not accepting requests",
                )
            elif len(self._queue) >= self.queue_depth:
                self.stats.shed += 1
                rejection = error_response(
                    request,
                    ERR_QUEUE_FULL,
                    f"admission queue is full "
                    f"({self.queue_depth} waiting, "
                    f"{self._in_flight} in flight)",
                    retry_after=self.retry_after_hint(),
                )
            else:
                self._ensure_started()
                budget = (
                    request.deadline
                    if request.deadline is not None
                    else self.default_deadline
                )
                pending.token = (
                    CancelToken.after(budget)
                    if budget is not None
                    else CancelToken()
                )
                pending.enqueued_at = time.monotonic()
                self._queue.append(pending)
                self.stats.admitted += 1
                self._cond.notify()
                observe_span(
                    "admit", time.perf_counter() - begin, self.registry
                )
                return pending
        pending.resolve(rejection)
        observe_span("admit", time.perf_counter() - begin, self.registry)
        return pending

    def execute(self, request, timeout: Optional[float] = None) -> QueryResponse:
        """Blocking convenience: :meth:`submit` and wait for the
        response."""
        return self.submit(request).response(timeout)

    # -- serving ---------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                while self._state == _RUNNING and not self._queue:
                    self._cond.wait()
                if not self._queue:
                    # Draining or stopped with nothing left to serve.
                    return
                pending = self._queue.popleft()
                followers = self._take_duplicates(pending)
                self._in_flight += 1 + len(followers)
            try:
                self._serve(pending, followers)
            finally:
                with self._cond:
                    self._in_flight -= 1 + len(followers)
                    self._cond.notify_all()

    @staticmethod
    def _coalesce_key(request: QueryRequest) -> Optional[Tuple]:
        """Identity under which requests may share one execution, or
        ``None`` when the spec is not wire-form (an in-process ``Query``
        object has no cheap, reliable equality)."""
        spec = request.query
        if isinstance(spec, str):
            spec_key: Tuple = ("s", spec)
        elif isinstance(spec, dict):
            try:
                spec_key = ("d", json.dumps(spec, sort_keys=True))
            except (TypeError, ValueError):
                return None
        else:
            return None
        return (
            spec_key,
            request.strategy,
            request.workers,
            request.backend,
            request.shards,
        )

    def _take_duplicates(self, pending: PendingQuery) -> List[PendingQuery]:
        # Caller holds self._cond. Pull queued requests identical to the
        # one just dequeued; they will be answered from its execution.
        if not self.coalesce or not self._queue:
            return []
        key = self._coalesce_key(pending.request)
        if key is None:
            return []
        followers = [
            other
            for other in self._queue
            if self._coalesce_key(other.request) == key
        ]
        if followers:
            matched = set(map(id, followers))
            self._queue = deque(
                other for other in self._queue if id(other) not in matched
            )
        return followers

    def _resolve_followers(
        self,
        followers: Sequence[PendingQuery],
        leader: PendingQuery,
        response: QueryResponse,
    ) -> None:
        """Answer coalesced requests from the leading execution's value,
        honouring each follower's own token."""
        resolved_at = time.monotonic()
        for follower in followers:
            queue_wait = resolved_at - follower.enqueued_at
            metrics: Dict[str, Any] = {
                "queue_wait_seconds": queue_wait,
                "service_seconds": 0.0,
                "coalesced": True,
            }
            token = follower.token
            if token is not None and token.cancelled:
                with self._cond:
                    self.stats.cancelled += 1
                    self.stats.queue_wait_seconds += queue_wait
                follower.resolve(
                    error_response(
                        follower.request,
                        ERR_CANCELLED,
                        f"request {follower.request.id} was cancelled "
                        f"while coalesced with {leader.request.id}",
                        metrics=metrics,
                    )
                )
                continue
            if token is not None and token.deadline is not None:
                # The value exists either way — deliver it and report
                # the miss, as for an uninterruptible serial kernel.
                metrics["deadline_missed"] = token.expired()
            with self._cond:
                self.stats.completed += 1
                self.stats.coalesced += 1
                self.stats.queue_wait_seconds += queue_wait
            follower.resolve(
                ok_response(follower.request, response.value, metrics=metrics)
            )

    def _requeue(self, followers: Sequence[PendingQuery]) -> None:
        """The leading execution produced no shareable value (it timed
        out, was cancelled, or failed): give its followers their own
        turn instead of failing them on the leader's behalf."""
        rejected: List[PendingQuery] = []
        with self._cond:
            if self._state == _RUNNING:
                self._queue.extendleft(reversed(followers))
                self._cond.notify_all()
            else:
                rejected = list(followers)
                self.stats.rejected_draining += len(rejected)
        for pending in rejected:
            pending.resolve(
                error_response(
                    pending.request,
                    ERR_SHUTTING_DOWN,
                    "server is draining; request was still queued",
                )
            )

    def _serve(
        self,
        pending: PendingQuery,
        followers: Sequence[PendingQuery] = (),
    ) -> None:
        request = pending.request
        token = pending.token
        dequeued = time.monotonic()
        queue_wait = dequeued - pending.enqueued_at
        observe_span("queue_wait", queue_wait, self.registry)
        metrics: Dict[str, Any] = {
            "queue_wait_seconds": queue_wait,
            "service_seconds": 0.0,
        }

        if token is not None and token.stop_requested(dequeued):
            # Queue expiry: the budget was spent while waiting — answer
            # without executing.
            with self._cond:
                if token.cancelled:
                    self.stats.cancelled += 1
                else:
                    self.stats.timed_out += 1
                self.stats.queue_wait_seconds += queue_wait
            code = ERR_CANCELLED if token.cancelled else ERR_DEADLINE
            pending.resolve(
                error_response(
                    request,
                    code,
                    f"request {request.id} spent {queue_wait:.3f}s queued, "
                    f"exhausting its budget before execution",
                    metrics=metrics,
                )
            )
            if followers:
                self._requeue(followers)
            return

        response = self._run(request, token, metrics, dequeued)
        service_seconds = time.monotonic() - dequeued
        metrics["service_seconds"] = service_seconds
        observe_span("serve", service_seconds, self.registry)
        with self._cond:
            self.stats.queue_wait_seconds += queue_wait
            self.stats.service_seconds += service_seconds
            if response.ok:
                self.stats.completed += 1
                self._ewma_service += _EWMA_ALPHA * (
                    service_seconds - self._ewma_service
                )
            elif response.error_code == ERR_DEADLINE:
                self.stats.timed_out += 1
            elif response.error_code == ERR_CANCELLED:
                self.stats.cancelled += 1
            else:
                self.stats.failed += 1
        pending.resolve(response)
        if followers:
            if response.ok:
                self._resolve_followers(followers, pending, response)
            else:
                self._requeue(followers)

    def _run(
        self,
        request: QueryRequest,
        token: Optional[CancelToken],
        metrics: Dict[str, Any],
        dequeued: float,
    ) -> QueryResponse:
        try:
            query = parse_query_spec(request.query)
        except ProtocolError as exc:
            return error_response(
                request, ERR_BAD_REQUEST, str(exc), metrics=metrics
            )
        try:
            result = self.engine.execute(
                query,
                request.strategy,
                workers=request.workers,
                backend=request.backend,
                shards=request.shards,
                cancel=token,
            )
        except QueryTimeout as exc:
            return error_response(
                request, ERR_DEADLINE, str(exc), metrics=metrics
            )
        except QueryCancelled as exc:
            return error_response(
                request, ERR_CANCELLED, str(exc), metrics=metrics
            )
        except ReproError as exc:
            return error_response(
                request, ERR_EXECUTION, str(exc), metrics=metrics
            )
        except Exception as exc:  # defensive: a response, never a hang
            return error_response(
                request,
                ERR_EXECUTION,
                f"{type(exc).__name__}: {exc}",
                metrics=metrics,
            )
        run_metrics = result.report.metrics
        if run_metrics is not None:
            run_metrics.queue_wait_seconds = metrics["queue_wait_seconds"]
            run_metrics.service_seconds = time.monotonic() - dequeued
            metrics["wall_seconds"] = run_metrics.wall_seconds
            metrics["plan_cache"] = run_metrics.plan_cache
        if token is not None and token.deadline is not None:
            # Completed, but possibly after the budget: a serial kernel
            # cannot be interrupted, so the miss is reported rather than
            # enforced.
            metrics["deadline_missed"] = token.expired()
        return ok_response(request, result.value, metrics=metrics)
