"""Run a query server: ``python -m repro.server``.

Loads a dataset through the fingerprinted dataset cache, wraps it in a
warm :class:`~repro.engine.facade.Engine` (persistent worker pool, plan
cache), and serves it over TCP with admission control, per-request
deadlines, and load shedding::

    python -m repro.server --dataset tpch --sf 0.01 --port 7653 \\
        --concurrency 4 --queue-depth 64 --deadline 2.0

``--metrics-port`` additionally starts a plain HTTP endpoint (stdlib
``http.server``) exposing the telemetry registry: ``/metrics`` in
Prometheus text format and ``/stats.json`` as the raw snapshot. The
same snapshot is available over the query socket itself via a
``{"op": "stats"}`` request (:meth:`repro.server.ServiceClient.stats`).

SIGINT/SIGTERM trigger a graceful drain: in-flight queries finish,
queued ones are rejected with a structured ``shutting_down`` error, and
the engine's worker pool stops. The stop report (teardown errors,
unjoined threads) is printed so an unclean shutdown is visible in logs.
"""

from __future__ import annotations

import argparse
import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from ..datagen import microbench as mb
from ..datagen import tpch as tpchgen
from ..datagen.cache import load_dataset
from ..engine import Engine
from ..engine.facade import BACKENDS
from ..engine.machine import PAPER_MACHINE
from ..obs import MetricsRegistry
from .service import QueryService
from .tcp import TcpQueryServer


def start_metrics_http(
    registry: MetricsRegistry, host: str, port: int
) -> ThreadingHTTPServer:
    """Serve ``/metrics`` (Prometheus text) and ``/stats.json`` from
    ``registry`` on a daemon thread; returns the HTTP server so the
    caller can ``shutdown()`` it."""

    class MetricsHandler(BaseHTTPRequestHandler):
        def do_GET(self):  # noqa: N802 (http.server API)
            if self.path.split("?", 1)[0] == "/metrics":
                body = registry.render_prometheus().encode("utf-8")
                ctype = "text/plain; version=0.0.4; charset=utf-8"
            elif self.path.split("?", 1)[0] == "/stats.json":
                body = json.dumps(registry.snapshot(), indent=2).encode(
                    "utf-8"
                )
                ctype = "application/json"
            else:
                self.send_error(404, "try /metrics or /stats.json")
                return
            self.send_response(200)
            self.send_header("Content-Type", ctype)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, *args):  # scrapes are not log-worthy
            pass

    httpd = ThreadingHTTPServer((host, port), MetricsHandler)
    thread = threading.Thread(
        target=httpd.serve_forever, name="repro-metrics-http", daemon=True
    )
    thread.start()
    return httpd


def build_engine(args) -> Engine:
    """Dataset + scaled machine + engine, per the CLI arguments."""
    if args.dataset == "tpch":
        config = tpchgen.TpchConfig(scale_factor=args.sf, seed=args.seed)
        machine = PAPER_MACHINE.scaled(config.machine_scale)
    else:
        config = mb.MicrobenchConfig(num_rows=args.rows, seed=args.seed)
        machine = PAPER_MACHINE.scaled(config.scale_factor)
    db = load_dataset(args.dataset, config)
    engine = Engine(
        db,
        machine=machine,
        workers=args.workers,
        backend=args.backend,
        adaptive=args.adaptive,
        shards=args.shards,
    )
    if args.shards:
        # Pre-fork and handshake the shard workers now, so the first
        # request never pays fork + dataset-map + compile latency.
        engine.start_shards()
    return engine


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server", description=__doc__
    )
    parser.add_argument(
        "--dataset",
        choices=("tpch", "microbench"),
        default="tpch",
        help="which generated database to serve",
    )
    parser.add_argument(
        "--sf", type=float, default=0.01, help="TPC-H scale factor"
    )
    parser.add_argument(
        "--rows", type=int, default=200_000, help="microbench R rows"
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="dataset generator seed (default: the generator's own)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=7653, help="0 picks a free port"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="engine worker threads per query (morsel parallelism)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="worker processes for the multi-process shard executor "
        "(pre-forked at boot, each mapping the cached dataset's "
        "on-disk columns); per-request 'shards' fields override it",
    )
    parser.add_argument(
        "--backend",
        choices=BACKENDS,
        default="vectorized",
        help="execution backend served by default; per-request "
        "'backend' fields override it",
    )
    parser.add_argument(
        "--adaptive",
        action="store_true",
        help="enable closed-loop re-optimization: measured run "
        "statistics feed back into planning, drifted plans recompile "
        "with production cardinalities, and strategy='auto' requests "
        "route through the per-fingerprint explore/exploit chooser "
        "(loop state appears under 'adaptive' in the stats wire op)",
    )
    parser.add_argument(
        "--concurrency",
        type=int,
        default=4,
        help="requests executing at once (service threads)",
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=64,
        help="admitted-but-waiting requests before shedding",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="default per-request deadline in seconds (none by default)",
    )
    parser.add_argument(
        "--no-coalesce",
        action="store_true",
        help="execute every admitted request individually instead of "
        "answering queued duplicates from one execution",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        help="also serve /metrics (Prometheus text) and /stats.json "
        "over HTTP on this port (0 picks a free port)",
    )
    args = parser.parse_args(argv)
    if args.seed is None:
        # Each generator's default seed, so the served dataset matches
        # library runs with default configs.
        args.seed = 42 if args.dataset == "tpch" else 7

    engine = build_engine(args)
    service = QueryService(
        engine,
        concurrency=args.concurrency,
        queue_depth=args.queue_depth,
        default_deadline=args.deadline,
        coalesce=not args.no_coalesce,
        own_engine=True,
    )
    server = TcpQueryServer(service, host=args.host, port=args.port)
    metrics_http: Optional[ThreadingHTTPServer] = None
    if args.metrics_port is not None:
        metrics_http = start_metrics_http(
            service.registry, args.host, args.metrics_port
        )

    stop = threading.Event()

    def _signal_handler(_signum, _frame):
        stop.set()

    signal.signal(signal.SIGINT, _signal_handler)
    signal.signal(signal.SIGTERM, _signal_handler)

    metrics_note = ""
    if metrics_http is not None:
        metrics_note = (
            f", metrics on http://{args.host}:"
            f"{metrics_http.server_address[1]}/metrics"
        )
    print(
        f"serving {args.dataset} on {server.host}:{server.port} "
        f"(backend={args.backend}, "
        f"adaptive={'on' if args.adaptive else 'off'}, "
        f"engine workers={args.workers}, "
        f"shards={args.shards if args.shards else 'off'}, "
        f"concurrency={args.concurrency}, "
        f"queue depth={args.queue_depth}, "
        f"deadline={args.deadline if args.deadline is not None else 'none'}"
        f"{metrics_note})",
        flush=True,
    )
    server.start()
    try:
        stop.wait()
    finally:
        print("draining...", flush=True)
        report = server.stop(timeout=30.0)
        if metrics_http is not None:
            metrics_http.shutdown()
            metrics_http.server_close()
        snapshot = service.stats.snapshot()
        print(
            f"served {snapshot['completed']} ok, "
            f"{snapshot['shed']} shed, "
            f"{snapshot['timed_out']} timed out, "
            f"{snapshot['rejected_draining']} rejected while draining",
            flush=True,
        )
        if report.clean:
            print("shutdown clean", flush=True)
        else:
            print(
                f"shutdown NOT clean: drained={report.drained}, "
                f"errors={report.errors}, "
                f"unjoined threads={report.unjoined_threads}",
                flush=True,
            )


if __name__ == "__main__":
    main()
