"""Run a query server: ``python -m repro.server``.

Loads a dataset through the fingerprinted dataset cache, wraps it in a
warm :class:`~repro.engine.facade.Engine` (persistent worker pool, plan
cache), and serves it over TCP with admission control, per-request
deadlines, and load shedding::

    python -m repro.server --dataset tpch --sf 0.01 --port 7653 \\
        --concurrency 4 --queue-depth 64 --deadline 2.0

SIGINT/SIGTERM trigger a graceful drain: in-flight queries finish,
queued ones are rejected with a structured ``shutting_down`` error, and
the engine's worker pool stops.
"""

from __future__ import annotations

import argparse
import signal
import threading

from ..datagen import microbench as mb
from ..datagen import tpch as tpchgen
from ..datagen.cache import load_dataset
from ..engine import Engine
from ..engine.machine import PAPER_MACHINE
from .service import QueryService
from .tcp import TcpQueryServer


def build_engine(args) -> Engine:
    """Dataset + scaled machine + engine, per the CLI arguments."""
    if args.dataset == "tpch":
        config = tpchgen.TpchConfig(scale_factor=args.sf, seed=args.seed)
        machine = PAPER_MACHINE.scaled(config.machine_scale)
    else:
        config = mb.MicrobenchConfig(num_rows=args.rows, seed=args.seed)
        machine = PAPER_MACHINE.scaled(config.scale_factor)
    db = load_dataset(args.dataset, config)
    return Engine(db, machine=machine, workers=args.workers)


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server", description=__doc__
    )
    parser.add_argument(
        "--dataset",
        choices=("tpch", "microbench"),
        default="tpch",
        help="which generated database to serve",
    )
    parser.add_argument(
        "--sf", type=float, default=0.01, help="TPC-H scale factor"
    )
    parser.add_argument(
        "--rows", type=int, default=200_000, help="microbench R rows"
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="dataset generator seed (default: the generator's own)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=7653, help="0 picks a free port"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="engine worker threads per query (morsel parallelism)",
    )
    parser.add_argument(
        "--concurrency",
        type=int,
        default=4,
        help="requests executing at once (service threads)",
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=64,
        help="admitted-but-waiting requests before shedding",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="default per-request deadline in seconds (none by default)",
    )
    parser.add_argument(
        "--no-coalesce",
        action="store_true",
        help="execute every admitted request individually instead of "
        "answering queued duplicates from one execution",
    )
    args = parser.parse_args(argv)
    if args.seed is None:
        # Each generator's default seed, so the served dataset matches
        # library runs with default configs.
        args.seed = 42 if args.dataset == "tpch" else 7

    engine = build_engine(args)
    service = QueryService(
        engine,
        concurrency=args.concurrency,
        queue_depth=args.queue_depth,
        default_deadline=args.deadline,
        coalesce=not args.no_coalesce,
        own_engine=True,
    )
    server = TcpQueryServer(service, host=args.host, port=args.port)

    stop = threading.Event()

    def _signal_handler(_signum, _frame):
        stop.set()

    signal.signal(signal.SIGINT, _signal_handler)
    signal.signal(signal.SIGTERM, _signal_handler)

    print(
        f"serving {args.dataset} on {server.host}:{server.port} "
        f"(engine workers={args.workers}, concurrency={args.concurrency}, "
        f"queue depth={args.queue_depth}, "
        f"deadline={args.deadline if args.deadline is not None else 'none'})",
        flush=True,
    )
    server.start()
    try:
        stop.wait()
    finally:
        print("draining...", flush=True)
        server.stop(timeout=30.0)
        snapshot = service.stats.snapshot()
        print(
            f"served {snapshot['completed']} ok, "
            f"{snapshot['shed']} shed, "
            f"{snapshot['timed_out']} timed out, "
            f"{snapshot['rejected_draining']} rejected while draining",
            flush=True,
        )


if __name__ == "__main__":
    main()
