"""The query service layer: serve an Engine under concurrent load.

``python -m repro.server`` starts a TCP server; in-process, wrap an
engine in a :class:`QueryService`::

    from repro import Engine
    from repro.server import QueryService

    with QueryService(Engine(db), concurrency=4, queue_depth=64) as svc:
        response = svc.execute("Q6")
        assert response.ok, response.error

See :mod:`repro.server.service` for the serving policies (admission
control, deadlines, load shedding, graceful drain) and
:mod:`repro.server.protocol` for the wire format.
"""

from .client import ServiceClient
from .protocol import (
    ERR_BAD_REQUEST,
    ERR_CANCELLED,
    ERR_DEADLINE,
    ERR_EXECUTION,
    ERR_QUEUE_FULL,
    ERR_SHUTTING_DOWN,
    OP_QUERY,
    OP_STATS,
    ErrorInfo,
    ProtocolError,
    QueryRequest,
    QueryResponse,
    STATUS_ERROR,
    STATUS_OK,
    StatsRequest,
    parse_query_spec,
    parse_request,
)
from .service import PendingQuery, QueryService, ServiceStats
from .tcp import StopReport, TcpQueryServer

__all__ = [
    "ERR_BAD_REQUEST",
    "ERR_CANCELLED",
    "ERR_DEADLINE",
    "ERR_EXECUTION",
    "ERR_QUEUE_FULL",
    "ERR_SHUTTING_DOWN",
    "ErrorInfo",
    "OP_QUERY",
    "OP_STATS",
    "PendingQuery",
    "ProtocolError",
    "QueryRequest",
    "QueryResponse",
    "QueryService",
    "STATUS_ERROR",
    "STATUS_OK",
    "ServiceClient",
    "ServiceStats",
    "StatsRequest",
    "StopReport",
    "TcpQueryServer",
    "parse_query_spec",
    "parse_request",
]
