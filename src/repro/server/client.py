"""Minimal blocking client for the TCP query server.

Speaks the newline-delimited JSON protocol of
:class:`~repro.server.tcp.TcpQueryServer`: one request per line, one
response per line, in order. One client holds one connection and is
*not* thread-safe — the serving benchmark's load generator opens one
client per simulated user, which is also how the server sees real
concurrency.

``connect_retry_window`` makes startup races benign: CI starts
``python -m repro.server`` in the background and the first client call
simply retries until the listener is up (or the window closes).
"""

from __future__ import annotations

import socket
import time
import warnings
from typing import Any, Optional

from ..errors import ReproError
from .protocol import (
    ProtocolError,
    QueryRequest,
    QueryResponse,
    StatsRequest,
    dump_line,
    load_line,
)


class ServiceClient:
    """A blocking connection to one query server."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7653,
        *,
        timeout: Optional[float] = 30.0,
        connect_retry_window: float = 0.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        deadline = time.monotonic() + max(connect_retry_window, 0.0)
        while True:
            try:
                self._sock = socket.create_connection(
                    (host, port), timeout=timeout
                )
                break
            except OSError as exc:
                if time.monotonic() >= deadline:
                    raise ReproError(
                        f"cannot connect to query server at "
                        f"{host}:{port}: {exc}"
                    ) from exc
                time.sleep(0.1)
        self._reader = self._sock.makefile("rb")
        self._writer = self._sock.makefile("wb")

    def request(
        self,
        query: Any,
        *,
        strategy: str = "auto",
        workers: Optional[int] = None,
        deadline: Optional[float] = None,
        backend: Optional[str] = None,
        id: Optional[str] = None,
    ) -> QueryResponse:
        """Send one request and block for its response.

        ``query`` is a :class:`~repro.plan.ops.LogicalPlan` (sent as
        structural JSON plus its IR fingerprint), a TPC-H name, or a
        microbench spec dict. Legacy logical ``Query`` objects are
        in-process only and cannot cross the wire. Addressing TPC-H
        queries by bare name is deprecated — send the plan. ``backend``
        pins the execution backend (``"instrumented"`` /
        ``"vectorized"``) instead of the server's default.
        """
        if isinstance(query, str):
            warnings.warn(
                "addressing queries by name string over the wire is "
                "deprecated; send the operator tree instead — "
                "repro.tpch.logical_plan(name) or a repro.PlanBuilder "
                "plan serialises automatically",
                DeprecationWarning,
                stacklevel=2,
            )
        kwargs = {} if id is None else {"id": id}
        req = QueryRequest(
            query=query,
            strategy=strategy,
            workers=workers,
            deadline=deadline,
            backend=backend,
            **kwargs,
        )
        return self.call(req)

    def stats(self) -> dict:
        """Scrape the server's telemetry snapshot (a ``stats`` request).

        Returns the snapshot dict: counters, gauges, histograms, stat
        sources (plan cache, dataset cache, pool, service), the
        slow-query log, and the error log. Stats requests bypass the
        server's admission queue, so this works even under overload.
        """
        response = self.call(StatsRequest())
        if not response.ok:
            error = response.error
            detail = f"{error.code}: {error.message}" if error else "unknown"
            raise ReproError(f"stats request failed: {detail}")
        if not isinstance(response.value, dict):
            raise ReproError(
                "stats response carried no snapshot (is the server "
                "older than the stats protocol?)"
            )
        return response.value

    def call(self, request) -> QueryResponse:
        """Send a prepared :class:`QueryRequest` or
        :class:`StatsRequest`; return its response."""
        try:
            self._writer.write(dump_line(request.to_wire()))
            self._writer.flush()
            line = self._reader.readline()
        except (OSError, ValueError) as exc:
            raise ReproError(
                f"connection to {self.host}:{self.port} failed: {exc}"
            ) from exc
        if not line:
            raise ReproError(
                f"server at {self.host}:{self.port} closed the connection"
            )
        try:
            return QueryResponse.from_wire(load_line(line))
        except ProtocolError as exc:
            raise ReproError(f"bad response from server: {exc}") from exc

    def close(self) -> None:
        for closeable in (self._writer, self._reader, self._sock):
            try:
                closeable.close()
            except (OSError, ValueError):  # pragma: no cover
                pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
