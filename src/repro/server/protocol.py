"""Request/response protocol of the query service.

One wire format serves both transports: the in-process
:class:`~repro.server.service.QueryService` API passes
:class:`QueryRequest` / :class:`QueryResponse` objects directly, and
the TCP server (:mod:`repro.server.tcp`) carries the same objects as
newline-delimited JSON (one object per line, one response per request,
in order).

A request carries its query in one of four spellings:

* a logical plan envelope (``{"plan": {...}, "fingerprint": "ir:..."}``
  — the structural JSON of :mod:`repro.plan.serde`, the primary form;
  :class:`QueryRequest` serialises a
  :class:`~repro.plan.ops.LogicalPlan` this way automatically);
* a TPC-H query name (``"Q1"`` .. ``"Q19"`` — a thin lookup into
  :mod:`repro.tpch.plans`; deprecated in favour of sending the plan);
* a microbenchmark spec (``{"micro": "q1", "args": {"sel": 30}}`` —
  the constructors in :mod:`repro.datagen.microbench`);
* in-process only: a legacy :class:`~repro.plan.logical.Query` object.

Besides queries, the wire carries one control operation: a **stats
request** (``{"op": "stats"}``), answered with the server's full
telemetry snapshot (plan-cache and dataset-cache hit rates, pool
utilization, queue depth, shed counts, span timings, per-strategy
event counters, slow-query and error logs). Stats requests bypass the
admission queue — observability must keep working exactly when the
queue is full.

Responses are structured, never exceptions: ``status`` is ``"ok"`` or
``"error"``, and errors carry a machine-readable ``code`` plus, for
load shedding, a ``retry_after`` hint in seconds (the
``Retry-After``-style contract: the client should back off at least
that long before resubmitting).
"""

from __future__ import annotations

import json
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

import numpy as np

from ..errors import ReproError

#: Response statuses.
STATUS_OK = "ok"
STATUS_ERROR = "error"

#: Machine-readable error codes.
ERR_QUEUE_FULL = "queue_full"  #: shed at admission; retry_after is set
ERR_SHUTTING_DOWN = "shutting_down"  #: rejected by a draining server
ERR_DEADLINE = "deadline_exceeded"  #: the request's deadline passed
ERR_CANCELLED = "cancelled"  #: the caller withdrew the request
ERR_BAD_REQUEST = "bad_request"  #: unparseable request or query spec
ERR_EXECUTION = "execution_failed"  #: the engine raised while running

#: Request operations. Requests without an ``op`` field are queries
#: (the pre-stats wire format stays valid byte for byte).
OP_QUERY = "query"
OP_STATS = "stats"

#: Microbench query constructors addressable over the wire.
_MICRO_QUERIES: Dict[str, Callable] = {}


def _micro_registry() -> Dict[str, Callable]:
    # Imported lazily: protocol parsing must not pull the whole datagen
    # package in for clients that only decode responses.
    if not _MICRO_QUERIES:
        from ..datagen import microbench as mb

        _MICRO_QUERIES.update(
            {"q1": mb.q1, "q2": mb.q2, "q3": mb.q3, "q4": mb.q4, "q5": mb.q5}
        )
    return _MICRO_QUERIES


class ProtocolError(ReproError):
    """A request or query spec does not parse."""


def parse_query_spec(spec: Any) -> Any:
    """Resolve a wire query spec into what ``Engine.execute`` accepts.

    ``{"plan": {...}}`` envelopes decode to a
    :class:`~repro.plan.ops.LogicalPlan` (fingerprint-verified);
    strings pass through (TPC-H names); ``{"micro": name, "args":
    {...}}`` dicts call the named microbenchmark constructor;
    ``LogicalPlan`` / legacy ``Query`` objects (in-process requests)
    pass through untouched.
    """
    if isinstance(spec, str):
        return spec
    if isinstance(spec, dict):
        if "plan" in spec:
            from ..errors import PlanError
            from ..plan.serde import plan_from_wire

            try:
                return plan_from_wire(spec)
            except PlanError as exc:
                raise ProtocolError(str(exc)) from exc
        if "micro" not in spec:
            raise ProtocolError(
                "query spec dicts need a 'plan' envelope or a 'micro' "
                "key naming a microbenchmark constructor"
            )
        registry = _micro_registry()
        name = spec["micro"]
        builder = registry.get(name)
        if builder is None:
            raise ProtocolError(
                f"unknown microbenchmark query {name!r}; "
                f"known: {sorted(registry)}"
            )
        args = spec.get("args", {})
        if not isinstance(args, dict):
            raise ProtocolError("query spec 'args' must be an object")
        try:
            return builder(**args)
        except TypeError as exc:
            raise ProtocolError(
                f"bad arguments for microbenchmark {name!r}: {exc}"
            ) from exc
        except ReproError as exc:
            raise ProtocolError(str(exc)) from exc
    from ..plan.logical import Query
    from ..plan.ops import LogicalPlan

    if isinstance(spec, (LogicalPlan, Query)):
        return spec
    raise ProtocolError(
        f"unsupported query spec of type {type(spec).__name__}"
    )


def encode_value(value: Any) -> Any:
    """Make a query answer JSON-safe (NumPy scalars/arrays → Python)."""
    if isinstance(value, dict):
        return {k: encode_value(v) for k, v in value.items()}
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, (list, tuple)):
        return [encode_value(v) for v in value]
    return value


@dataclass
class QueryRequest:
    """One query submission.

    ``deadline`` is a relative budget in seconds, measured from
    *admission* (queue wait counts against it — that is what the client
    experiences). ``workers`` overrides the engine's worker count for
    this request; ``backend`` pins the execution backend
    (``"instrumented"`` or ``"vectorized"``) instead of the serving
    default; ``shards`` overrides the engine's shard-process count for
    this request (``0`` forces in-process execution); ``id`` is echoed
    on the response (auto-generated when omitted).
    """

    query: Any
    strategy: str = "auto"
    workers: Optional[int] = None
    deadline: Optional[float] = None
    backend: Optional[str] = None
    shards: Optional[int] = None
    id: str = field(default_factory=lambda: uuid.uuid4().hex[:12])

    def to_wire(self) -> dict:
        from ..plan.ops import LogicalPlan

        query = self.query
        if isinstance(query, LogicalPlan):
            from ..plan.serde import plan_to_wire

            query = plan_to_wire(query)
        elif not isinstance(query, (str, dict)):
            raise ProtocolError(
                "only LogicalPlan trees, TPC-H names, and microbench "
                "spec dicts serialise; legacy Query objects are "
                "in-process only"
            )
        wire: dict = {"id": self.id, "query": query}
        if self.strategy != "auto":
            wire["strategy"] = self.strategy
        if self.workers is not None:
            wire["workers"] = self.workers
        if self.deadline is not None:
            wire["deadline"] = self.deadline
        if self.backend is not None:
            wire["backend"] = self.backend
        if self.shards is not None:
            wire["shards"] = self.shards
        return wire

    @classmethod
    def from_wire(cls, wire: Any) -> "QueryRequest":
        if not isinstance(wire, dict):
            raise ProtocolError("a request must be a JSON object")
        if "query" not in wire:
            raise ProtocolError("a request needs a 'query' field")
        strategy = wire.get("strategy", "auto")
        if not isinstance(strategy, str):
            raise ProtocolError("'strategy' must be a string")
        workers = wire.get("workers")
        if workers is not None and (
            not isinstance(workers, int) or workers < 1
        ):
            raise ProtocolError("'workers' must be a positive integer")
        deadline = wire.get("deadline")
        if deadline is not None:
            if not isinstance(deadline, (int, float)) or deadline <= 0:
                raise ProtocolError("'deadline' must be positive seconds")
            deadline = float(deadline)
        backend = wire.get("backend")
        if backend is not None:
            from ..engine.facade import BACKENDS

            if backend not in BACKENDS:
                raise ProtocolError(
                    f"unknown backend {backend!r}; "
                    f"known: {list(BACKENDS)}"
                )
        shards = wire.get("shards")
        if shards is not None and (
            not isinstance(shards, int) or shards < 0
        ):
            raise ProtocolError(
                "'shards' must be a non-negative integer"
            )
        req_id = wire.get("id")
        kwargs = {} if req_id is None else {"id": str(req_id)}
        return cls(
            query=wire["query"],
            strategy=strategy,
            workers=workers,
            deadline=deadline,
            backend=backend,
            shards=shards,
            **kwargs,
        )


@dataclass
class StatsRequest:
    """A telemetry scrape: answered with the registry snapshot.

    Served directly by the transport — never queued, never shed — so a
    saturated server still answers ``stats`` promptly.
    """

    id: str = field(default_factory=lambda: uuid.uuid4().hex[:12])

    def to_wire(self) -> dict:
        return {"op": OP_STATS, "id": self.id}

    @classmethod
    def from_wire(cls, wire: Any) -> "StatsRequest":
        if not isinstance(wire, dict):
            raise ProtocolError("a request must be a JSON object")
        req_id = wire.get("id")
        return cls() if req_id is None else cls(id=str(req_id))


def parse_request(wire: Any):
    """One wire object into a :class:`QueryRequest` or
    :class:`StatsRequest`, dispatched on the optional ``op`` field."""
    if not isinstance(wire, dict):
        raise ProtocolError("a request must be a JSON object")
    op = wire.get("op", OP_QUERY)
    if op == OP_STATS:
        return StatsRequest.from_wire(wire)
    if op != OP_QUERY:
        raise ProtocolError(
            f"unknown request op {op!r}; known: "
            f"{sorted((OP_QUERY, OP_STATS))}"
        )
    return QueryRequest.from_wire(wire)


@dataclass
class ErrorInfo:
    """Structured error on a response."""

    code: str
    message: str
    #: Back-off hint in seconds; set on ``queue_full`` rejections.
    retry_after: Optional[float] = None

    def to_wire(self) -> dict:
        wire = {"code": self.code, "message": self.message}
        if self.retry_after is not None:
            wire["retry_after"] = self.retry_after
        return wire

    @classmethod
    def from_wire(cls, wire: dict) -> "ErrorInfo":
        return cls(
            code=str(wire.get("code", "unknown")),
            message=str(wire.get("message", "")),
            retry_after=wire.get("retry_after"),
        )


@dataclass
class QueryResponse:
    """The outcome of one request: an answer or a structured error.

    ``metrics`` carries per-request serving numbers — at least
    ``queue_wait_seconds`` and ``service_seconds`` for requests that
    reached a service worker, plus the engine's wall time and plan-cache
    outcome for completed ones.
    """

    id: str
    status: str
    value: Optional[Any] = None
    error: Optional[ErrorInfo] = None
    metrics: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def error_code(self) -> Optional[str]:
        return self.error.code if self.error is not None else None

    @property
    def shed(self) -> bool:
        """Whether the request was load-shed at admission."""
        return self.error_code in (ERR_QUEUE_FULL, ERR_SHUTTING_DOWN)

    @property
    def timed_out(self) -> bool:
        return self.error_code == ERR_DEADLINE

    def to_wire(self) -> dict:
        wire: dict = {"id": self.id, "status": self.status}
        if self.value is not None:
            wire["value"] = encode_value(self.value)
        if self.error is not None:
            wire["error"] = self.error.to_wire()
        if self.metrics:
            wire["metrics"] = self.metrics
        return wire

    @classmethod
    def from_wire(cls, wire: Any) -> "QueryResponse":
        if not isinstance(wire, dict):
            raise ProtocolError("a response must be a JSON object")
        error = wire.get("error")
        return cls(
            id=str(wire.get("id", "")),
            status=str(wire.get("status", STATUS_ERROR)),
            value=wire.get("value"),
            error=ErrorInfo.from_wire(error) if error is not None else None,
            metrics=wire.get("metrics", {}),
        )


def ok_response(
    request: QueryRequest, value: Any, metrics: Optional[dict] = None
) -> QueryResponse:
    return QueryResponse(
        id=request.id,
        status=STATUS_OK,
        value=encode_value(value),
        metrics=metrics or {},
    )


def error_response(
    request: QueryRequest,
    code: str,
    message: str,
    *,
    retry_after: Optional[float] = None,
    metrics: Optional[dict] = None,
) -> QueryResponse:
    return QueryResponse(
        id=request.id,
        status=STATUS_ERROR,
        error=ErrorInfo(code=code, message=message, retry_after=retry_after),
        metrics=metrics or {},
    )


def dump_line(wire: dict) -> bytes:
    """One protocol object as a newline-terminated JSON line."""
    return (json.dumps(wire, separators=(",", ":")) + "\n").encode("utf-8")


def load_line(line: bytes) -> Any:
    """Parse one wire line; raises :class:`ProtocolError` on bad JSON."""
    try:
        return json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"malformed JSON line: {exc}") from exc
