"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors such
as ``TypeError`` raised by misuse of the Python API itself.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A table or column definition is inconsistent or unknown."""


class StorageError(ReproError):
    """A storage-layer operation failed (bad column data, codec misuse)."""


class PlanError(ReproError):
    """A logical plan is malformed or unsupported by a code generator."""


class CodegenError(ReproError):
    """A code-generation strategy cannot compile the given plan."""


class ExecutionError(ReproError):
    """A compiled program failed while executing."""


class QueryTimeout(ExecutionError):
    """A query exceeded its deadline and was cooperatively cancelled.

    ``elapsed`` is the seconds the query had been running when the
    cancellation was observed; ``deadline`` the budget it was given.
    """

    def __init__(
        self,
        message: str,
        *,
        elapsed: float = 0.0,
        deadline: float | None = None,
    ) -> None:
        super().__init__(message)
        self.elapsed = elapsed
        self.deadline = deadline


class QueryCancelled(ExecutionError):
    """A query was cancelled explicitly (not by a deadline)."""


class CostModelError(ReproError):
    """A cost model was queried with invalid statistics."""


class DataGenError(ReproError):
    """A workload generator received invalid parameters."""
