"""Morsel-driven parallel execution of compiled query programs.

The executor partitions a program's base-table scan into row-range
*morsels* (Leis et al., "Morsel-Driven Parallelism") and runs the
strategy's declared partial pipeline across worker threads — the NumPy
kernels release the GIL in the hot loops, so scan morsels genuinely
overlap on multicore hosts. Partial aggregate / hash-table states merge
deterministically (:func:`repro.engine.program.merge_partials`), so a
4-worker run is bit-identical to a serial run.

Costing extends to parallel time: each morsel's simulated cycles are
measured on its own tracer, then scheduled greedily onto the simulated
machine's cores (:func:`repro.engine.metrics.greedy_schedule`). The
schedule — not real thread timing — defines the run's critical path, so
simulated parallel seconds are reproducible on any host, including
single-core CI runners.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ExecutionError
from ..obs import MetricsRegistry, span
from .cancellation import CancelToken
from .costing import CostReport
from .metrics import RunMetrics, event_counts, greedy_schedule, merge_reports
from .pool import MorselBatch, WorkerPool, drain_with_ephemeral_threads
from .program import CompiledQuery, QueryResult, merge_partials
from .session import Session

#: Morsels smaller than this lose more to per-morsel bookkeeping than
#: they gain in balance; scans shorter than one minimum morsel run serial.
MIN_MORSEL_ROWS = 4096

#: Target morsels per worker when the session does not pin a size —
#: enough slack for the greedy schedule to balance skewed morsels.
MORSELS_PER_WORKER = 8


def pick_morsel_rows(n_rows: int, workers: int, pinned: Optional[int]) -> int:
    """Morsel size: the pinned knob, or n / (workers * slack), floored."""
    if pinned is not None:
        if pinned <= 0:
            raise ExecutionError("morsel_rows must be positive")
        return pinned
    per_worker = max(n_rows // max(workers * MORSELS_PER_WORKER, 1), 1)
    return max(per_worker, MIN_MORSEL_ROWS)


def split_morsels(n_rows: int, morsel_rows: int) -> List[Tuple[int, int]]:
    """Row ranges ``[lo, hi)`` covering ``[0, n_rows)``."""
    return [
        (lo, min(lo + morsel_rows, n_rows))
        for lo in range(0, n_rows, morsel_rows)
    ]


class MorselExecutor:
    """Runs compiled programs, fanning partitionable scans across threads.

    Programs without a :class:`~repro.engine.program.ParallelPlan` (or
    runs with ``workers=1``) execute serially through the program's own
    ``run``; either way the result carries :class:`RunMetrics`.

    Pass a :class:`~repro.engine.pool.WorkerPool` to run morsels on
    persistent workers (the :class:`repro.Engine` facade does); without
    one, fresh threads are spawned per query — the legacy baseline the
    throughput benchmark measures pooling against. Results and
    simulated cycles are bit-identical in both modes.
    """

    def __init__(
        self,
        *,
        workers: int = 1,
        pool: Optional[WorkerPool] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if workers < 1:
            raise ExecutionError("executor needs at least one worker")
        self.workers = workers
        self.pool = pool
        #: Where the morsel-execute / merge spans land; ``None`` keeps
        #: the executor span-free (direct library use stays untouched —
        #: the :class:`repro.Engine` facade always passes its registry).
        self.registry = registry

    def execute(
        self,
        compiled: CompiledQuery,
        session: Optional[Session] = None,
        *,
        cancel: Optional[CancelToken] = None,
    ) -> QueryResult:
        if session is None:
            session = Session(workers=self.workers)
        plan = compiled.parallel
        label = f"{compiled.strategy}:{compiled.name}"
        if cancel is not None:
            # Cooperative: an already-expired/cancelled token stops the
            # query before any work. The serial path cannot be
            # interrupted mid-kernel; the parallel path re-checks the
            # token at every morsel claim.
            cancel.check(label)
        started = time.perf_counter()
        serial_limit = MIN_MORSEL_ROWS
        if plan is not None and session.knobs.morsel_rows is None:
            # A backend may declare a higher fan-out floor (the
            # vectorized kernels outrun thread dispatch on small
            # scans); the session knob — set explicitly or seeded from
            # the feedback store's measured serial-vs-parallel
            # crossover — overrides the program's declared floor, and
            # an explicitly pinned morsel size overrides both.
            floor = session.knobs.min_parallel_rows
            if floor is None:
                floor = plan.min_parallel_rows
            serial_limit = max(serial_limit, floor)
        if (
            self.workers <= 1
            or plan is None
            or plan.n_rows <= serial_limit
        ):
            # A serial run is a single morsel spanning the whole scan:
            # morsel_rows is that morsel's size and scan_rows the scan
            # length (both 0 when the program declares no parallel plan
            # and the scan length is therefore unknown to the executor).
            result = compiled.run(session)
            result.report.metrics = RunMetrics(
                wall_seconds=time.perf_counter() - started,
                workers=1,
                morsels=1,
                morsel_rows=plan.n_rows if plan is not None else 0,
                scan_rows=plan.n_rows if plan is not None else 0,
                parallel=False,
                machine=session.machine,
                total_cycles=result.report.total_cycles,
                critical_path_cycles=result.report.total_cycles,
                event_counts=event_counts(result.report),
            )
            return result
        return self._execute_parallel(compiled, session, plan, started, cancel)

    def _span(self, stage: str):
        """A tracing span on the executor's registry (inert without
        one)."""
        if self.registry is None:
            return nullcontext()
        return span(stage, self.registry)

    # -- parallel path ---------------------------------------------------

    def _execute_parallel(
        self,
        compiled: CompiledQuery,
        session: Session,
        plan,
        started: float,
        cancel: Optional[CancelToken] = None,
    ) -> QueryResult:
        session.reset()
        label = f"{compiled.strategy}:{compiled.name}"

        serial_reports: List[CostReport] = []
        ctx = None
        if plan.setup is not None:
            setup_session = session.clone()
            with setup_session.tracer.kernel(f"{label}:setup"):
                ctx = plan.setup(setup_session)
            serial_reports.append(setup_session.tracer.report)

        morsel_rows = pick_morsel_rows(
            plan.n_rows, self.workers, session.knobs.morsel_rows
        )
        morsels = split_morsels(plan.n_rows, morsel_rows)
        with self._span("morsel_execute"):
            values, morsel_reports, wall_by_worker = self._run_morsels(
                session, plan, ctx, morsels, label, cancel
            )

        with self._span("merge"):
            merged = merge_partials(values)
            if plan.finalize is not None:
                final_session = session.clone()
                with final_session.tracer.kernel(f"{label}:finalize"):
                    merged = plan.finalize(final_session, merged, ctx)
                serial_reports.append(final_session.tracer.report)

        report = merge_reports(
            session.machine, serial_reports + morsel_reports
        )
        serial_cycles = sum(r.total_cycles for r in serial_reports)
        worker_stats, assignment = greedy_schedule(
            [r.total_cycles for r in morsel_reports], self.workers
        )
        for morsel_report, worker_id in zip(morsel_reports, assignment):
            kernels = worker_stats[worker_id].by_kernel
            for kernel, cycles in morsel_report.by_kernel.items():
                kernels[kernel] = kernels.get(kernel, 0.0) + cycles
        for stats in worker_stats:
            stats.wall_seconds = wall_by_worker.get(stats.worker_id, 0.0)
        critical = serial_cycles + max(
            (s.sim_cycles for s in worker_stats), default=0.0
        )
        report.metrics = RunMetrics(
            wall_seconds=time.perf_counter() - started,
            workers=self.workers,
            morsels=len(morsels),
            morsel_rows=morsel_rows,
            scan_rows=plan.n_rows,
            parallel=True,
            pooled=self.pool is not None,
            machine=session.machine,
            total_cycles=report.total_cycles,
            critical_path_cycles=critical,
            serial_cycles=serial_cycles,
            event_counts=event_counts(report),
            worker_stats=worker_stats,
        )
        return QueryResult(value=merged, report=report)

    def _run_morsels(
        self,
        session: Session,
        plan,
        ctx: Any,
        morsels: List[Tuple[int, int]],
        label: str,
        cancel: Optional[CancelToken] = None,
    ) -> Tuple[List[Dict[str, Any]], List[CostReport], Dict[int, float]]:
        """Run the morsels on the persistent pool, or — without one —
        on freshly spawned threads. Either way the shared
        :class:`MorselBatch` provides the cursor, cooperative
        cancellation on first failure or deadline expiry, and
        index-ordered results."""
        if self.pool is not None:
            return self.pool.run(
                session, plan, ctx, morsels, label, self.workers, cancel
            )
        batch = MorselBatch(
            session, plan, ctx, morsels, label, self.workers, cancel=cancel
        )
        return drain_with_ephemeral_threads(batch)
