"""The unified query-engine facade: compile -> cache -> execute -> metrics.

:class:`Engine` is the single entry point that replaces the historical
trio of ``compile_query`` / ``compile_swole`` / ``plan_query`` call
sites. It owns the plan cache (keyed compilation artifacts, LRU) and
the morsel executor (parallel scans + run metrics). Every query-taking
method accepts a :class:`~repro.plan.ops.LogicalPlan` operator tree
(the primary API — build one with :class:`repro.PlanBuilder` or look a
TPC-H plan up via ``repro.tpch.logical_plan``), a legacy microbench
:class:`~repro.plan.logical.Query`, or — deprecated — a TPC-H query
name string (``"Q1"`` .. ``"Q19"``, a thin lookup into
:mod:`repro.tpch.plans`).

Usage::

    from repro import Engine
    from repro.datagen import microbench as mb

    db = mb.generate(mb.MicrobenchConfig(num_rows=1_000_000))
    engine = Engine(db, workers=4)
    result = engine.execute(mb.q1(13))          # SWOLE by default
    print(result.scalar(), result.report.metrics.describe())
"""

from __future__ import annotations

import threading
import warnings
from dataclasses import replace
from typing import Optional, Union

from ..errors import ReproError
from ..obs import MetricsRegistry, metrics_registry, span
from .cancellation import CancelToken
from .executor import MorselExecutor
from .machine import PAPER_MACHINE, MachineModel
from .plan_cache import PlanCache, plan_key
from .pool import WorkerPool
from .program import CompiledQuery, QueryResult
from .session import ExecutionKnobs, Session

#: ``strategy="auto"`` resolves to the paper's planner-driven strategy
#: (SWOLE itself falls back to hybrid whenever a pullup would not pay).
AUTO_STRATEGY = "swole"

#: Execution backends a query can be compiled for. ``vectorized`` is
#: the serving default (generated whole-column NumPy kernels);
#: ``instrumented`` replays the plan through the event-priced
#: interpreter and remains the authority for costing and explain.
BACKENDS = ("instrumented", "vectorized")


class Engine:
    """A database bound to a machine model, a plan cache, and workers.

    Parameters (all keyword-only except the database):

    db:
        The :class:`~repro.storage.database.Database` to serve.
    machine:
        Simulated machine for planning *and* costing (pass the scaled
        model when the data was shrunk relative to the paper).
    workers:
        Default worker-thread count for partitionable programs.
    tile:
        Vector/tile size threaded into sessions (part of the plan key).
    plan_cache_size:
        LRU capacity of the compiled-program cache.
    knobs:
        Default :class:`ExecutionKnobs` for sessions this engine spawns.
    use_pool:
        When True (default), parallel morsels run on a persistent
        :class:`~repro.engine.pool.WorkerPool` owned by the engine —
        threads start lazily on the first parallel query and are reused
        across queries. When False, every query spawns fresh threads
        (the pre-pool baseline; kept for the throughput benchmark).
        Results and simulated cycles are identical either way.
    backend:
        Default execution backend for this engine's compilations:
        ``"vectorized"`` (default — generated whole-column NumPy
        kernels) or ``"instrumented"`` (the event-priced interpreter;
        the costing authority). Overrides ``knobs.backend`` when given;
        every query-taking method also accepts a per-call ``backend=``.
    registry:
        The :class:`~repro.obs.MetricsRegistry` this engine reports
        into (default: the process-wide registry). The engine registers
        its plan cache and worker pool as stat sources, times
        compile/execute spans, bumps per-strategy access-pattern and
        branch event counters, and feeds the registry's slow-query log.
    encoding:
        The access-encoding knob: ``"auto"`` (default) lets the
        access-encoding pass serve each cost-chosen scan as physical
        codes — dictionary codes, null-suppressed ints, fixed-point
        decimals at their narrow stored width — with decode deferred
        to materialization; ``"off"`` serves every scan decoded.
        Answers are byte-identical either way (the equivalence sweep
        pins it); the knob exists for baseline comparisons and the
        compression bench. Part of the plan key, so one engine's
        cached programs never leak across encoding modes.
    adaptive:
        Closed-loop re-optimization from production telemetry. ``None``
        / ``False`` (default) keeps the engine fully static. ``True``
        enables the loop with default policy; pass an
        :class:`~repro.adaptive.AdaptivePolicy` to tune it, or a ready
        :class:`~repro.adaptive.AdaptiveController` to share one loop
        across engines. With adaptivity on, every run's measured
        statistics feed the feedback store, drift past the policy
        threshold invalidates and recompiles the drifted plan with
        measured cardinalities, and ``strategy="auto"`` requests route
        through the per-fingerprint explore/exploit chooser instead of
        pinning SWOLE. When the dataset cache directory holds a
        feedback snapshot (``feedback.json`` under ``REPRO_CACHE_DIR``,
        written by :meth:`save_feedback`), a fresh controller warm
        starts from it, so measured selectivities survive restarts.
    min_parallel_rows:
        Thread fan-out floor: scan length below which partitionable
        programs run serial. ``None`` (default) defers to each compiled
        program's declared floor (``VECTORIZED_MIN_PARALLEL_ROWS`` for
        vectorized programs) — unless an adaptive engine has measured
        the host's actual serial-vs-parallel crossover, which then
        seeds new sessions automatically.
    shards:
        Default worker-*process* count for the multi-process shard
        executor (:mod:`repro.engine.shard`): morsels scatter over
        ``shards`` pre-forked workers mapping the same on-disk columns
        by dataset fingerprint, and partials gather through the same
        deterministic merge the thread path uses, so sharded results
        stay byte-identical to serial. Requires a database loaded
        through the dataset cache (it carries the fingerprint workers
        map by); raises :class:`~repro.errors.ReproError` otherwise.
        Workers fork lazily on the first sharded query — call
        :meth:`start_shards` to pre-fork (the server does). Queries
        with no wire form, or scans below the fan-out floor, fall back
        to the thread executor transparently.

    The engine is a context manager; ``with Engine(db) as engine:``
    shuts the pool down on exit, and an ``atexit`` hook covers engines
    that are never explicitly closed. :meth:`shutdown` is idempotent.
    """

    def __init__(
        self,
        db,
        *,
        machine: MachineModel = PAPER_MACHINE,
        workers: int = 1,
        tile: int = 1024,
        plan_cache_size: int = 64,
        knobs: Optional[ExecutionKnobs] = None,
        use_pool: bool = True,
        registry: Optional[MetricsRegistry] = None,
        backend: Optional[str] = None,
        encoding: str = "auto",
        adaptive=None,
        min_parallel_rows: Optional[int] = None,
        shards: Optional[int] = None,
    ) -> None:
        if workers < 1:
            raise ReproError("Engine needs at least one worker")
        if shards is not None:
            if shards < 1:
                raise ReproError("Engine needs at least one shard")
            if not getattr(db, "dataset_fingerprint", None):
                raise ReproError(
                    "shard execution needs a database loaded through "
                    "the dataset cache (repro.datagen.cache), so "
                    "worker processes can map the same on-disk "
                    "columns by fingerprint; this database carries "
                    "no provenance"
                )
        if encoding not in ("auto", "off"):
            raise ReproError(
                f"unknown encoding mode {encoding!r}; have ['auto', 'off']"
            )
        self.db = db
        self.machine = machine
        self.workers = workers
        self.tile = tile
        self.encoding = encoding
        # The cache-key component: "auto" programs close over the
        # database's physical code arrays, so the database's encoding
        # layout is part of what compilation depends on.
        fingerprint = getattr(db, "encoding_fingerprint", None)
        self._encoding_key = (
            "off"
            if encoding == "off"
            else (f"auto:{fingerprint()}" if fingerprint else "auto")
        )
        self.knobs = knobs if knobs is not None else ExecutionKnobs()
        if backend is not None:
            self.knobs.backend = backend
        if min_parallel_rows is not None:
            self.knobs.min_parallel_rows = min_parallel_rows
        if shards is not None:
            self.knobs.shards = shards
        self._shard_group = None
        self._shard_lock = threading.Lock()
        if self.knobs.backend not in BACKENDS:
            raise ReproError(
                f"unknown backend {self.knobs.backend!r}; "
                f"have {list(BACKENDS)}"
            )
        self.plan_cache = PlanCache(capacity=plan_cache_size)
        self.pool: Optional[WorkerPool] = (
            WorkerPool(workers) if use_pool else None
        )
        self.registry = (
            registry if registry is not None else metrics_registry()
        )
        # The sources close over the stats/pool objects only — never
        # the database — so registering does not pin column data.
        self.registry.register_source(
            "plan_cache", self.plan_cache.stats.snapshot
        )
        if self.pool is not None:
            self.registry.register_source("pool", self.pool.snapshot)
        # Lazy import: repro.adaptive imports engine modules, and
        # ``repro.engine.__init__`` imports this facade.
        from ..adaptive import resolve_adaptive

        self.adaptive = resolve_adaptive(adaptive)
        if self.adaptive is not None:
            self.adaptive.attach(self.plan_cache, self.registry)
            self.registry.register_source(
                "adaptive", self.adaptive.snapshot
            )
            # Warm start from the persisted snapshot when one exists.
            # Only a controller this engine just created loads — a
            # shared controller passed in already carries live state
            # the snapshot must not clobber.
            if adaptive is not self.adaptive:
                self.adaptive.load_feedback(self.feedback_path())

    # -- lifecycle -------------------------------------------------------

    def shutdown(self) -> None:
        """Stop the worker pool's threads and any shard worker
        processes (idempotent). The engine remains usable — the pool
        restarts lazily on the next parallel query, and the shard
        group re-forks on the next sharded one."""
        if self.pool is not None:
            self.pool.shutdown()
        with self._shard_lock:
            group, self._shard_group = self._shard_group, None
        if group is not None:
            group.stop()

    def start_shards(self, shards: Optional[int] = None):
        """Pre-fork the shard workers (the server calls this at boot so
        the first request never pays fork + dataset-map latency).
        Returns the :class:`~repro.engine.shard.ShardGroup`."""
        n = shards if shards is not None else self.knobs.shards
        if not n:
            raise ReproError(
                "no shard count configured; pass start_shards(n) or "
                "Engine(shards=n)"
            )
        return self._ensure_shard_group(n).start()

    def _ensure_shard_group(self, shards: int):
        from .shard import ShardGroup

        with self._shard_lock:
            group = self._shard_group
            if group is None:
                group = ShardGroup.for_engine(self, shards)
                self.registry.register_source("shards", group.snapshot)
                self._shard_group = group
            elif shards > group.shards:
                group.grow(shards)
        return group

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- sessions --------------------------------------------------------

    def session(self, *, workers: Optional[int] = None) -> Session:
        """A fresh session configured like this engine.

        An adaptive engine whose feedback store has measured this
        host's serial-vs-parallel crossover seeds the session's
        ``min_parallel_rows`` from the measurement — unless the knob
        was set explicitly, which always wins.
        """
        knobs = replace(self.knobs)
        if knobs.min_parallel_rows is None and self.adaptive is not None:
            measured = self.adaptive.min_parallel_rows()
            if measured is not None:
                knobs.min_parallel_rows = measured
        return Session(
            machine=self.machine,
            tile=self.tile,
            workers=workers if workers is not None else self.workers,
            knobs=knobs,
        )

    # -- compilation -----------------------------------------------------

    def compile(
        self, query, strategy: str = "auto", *,
        backend: Optional[str] = None,
    ) -> CompiledQuery:
        """Compile ``query`` (cache-aware) and return the program.

        ``query`` is a :class:`~repro.plan.ops.LogicalPlan` operator
        tree, a legacy microbench :class:`~repro.plan.logical.Query`,
        or — deprecated — a TPC-H query name string. ``strategy`` is
        any registered strategy name, or ``"auto"`` for the
        planner-driven SWOLE strategy. ``backend`` overrides the
        engine's default execution backend for this call.
        """
        compiled, _, _, _, _ = self._compile_cached(
            query, strategy, backend
        )
        return compiled

    def _resolve_backend(self, backend: Optional[str]) -> str:
        resolved = backend if backend is not None else self.knobs.backend
        if resolved not in BACKENDS:
            raise ReproError(
                f"unknown backend {resolved!r}; have {list(BACKENDS)}"
            )
        return resolved

    def _compile_cached(
        self, query, strategy: str, backend: Optional[str] = None,
        shards: int = 0,
    ):
        if isinstance(query, str):
            warnings.warn(
                "addressing queries by TPC-H name string is deprecated; "
                "pass the operator tree instead — "
                "repro.tpch.logical_plan(name), or build one with "
                "repro.PlanBuilder",
                DeprecationWarning,
                stacklevel=3,
            )
        resolved = AUTO_STRATEGY if strategy == "auto" else strategy
        chosen = self._resolve_backend(backend)
        key = plan_key(
            query,
            resolved,
            self.machine,
            self.tile,
            chosen,
            shards,
            self._encoding_key,
        )

        def timed_compile() -> CompiledQuery:
            with span(
                "compile", self.registry,
                strategy=resolved, backend=chosen,
            ):
                return self._compile(query, resolved, chosen)

        compiled, was_hit = self.plan_cache.get_or_compile(
            key, timed_compile
        )
        return compiled, was_hit, resolved, chosen, key

    def _compile(
        self, query, strategy: str, backend: str
    ) -> CompiledQuery:
        overrides = None
        if self.adaptive is not None:
            from .plan_cache import query_fingerprint

            overrides = self.adaptive.override_for(
                query_fingerprint(query)
            )
        compiled = self._compile_with(query, strategy, backend, overrides)
        if overrides is not None:
            # The shard path ships the override a program was compiled
            # with to the worker processes, so they compile the *same*
            # program from the same measured statistics.
            compiled.notes.setdefault("stats_override", overrides)
        return compiled

    def _compile_with(
        self, query, strategy: str, backend: str, overrides
    ) -> CompiledQuery:
        from ..plan.ops import LogicalPlan

        if isinstance(query, str):
            from ..tpch import compile_tpch

            return compile_tpch(
                query,
                strategy,
                self.db,
                machine=self.machine,
                registry=self.registry,
                backend=backend,
                overrides=overrides,
                encoding=self.encoding,
            )
        if isinstance(query, LogicalPlan):
            from ..codegen.pipeline import compile_pipeline

            return compile_pipeline(
                query,
                self.db,
                strategy,
                machine=self.machine,
                registry=self.registry,
                backend=backend,
                overrides=overrides,
                encoding=self.encoding,
            )
        if backend == "vectorized" and strategy in (
            "interpreter", "datacentric", "hybrid", "swole"
        ):
            # Legacy microbench Query objects have no hand-written
            # vectorized programs; their operator-tree conversion
            # compiles through the staged pipeline instead (results
            # pinned byte-identical to the hand-coded programs by the
            # backend equivalence sweep).
            from ..codegen.pipeline import compile_pipeline
            from ..plan.ops import from_query

            return compile_pipeline(
                from_query(query),
                self.db,
                strategy,
                machine=self.machine,
                registry=self.registry,
                backend=backend,
                overrides=overrides,
                encoding=self.encoding,
            )
        if strategy == "swole":
            from ..core.swole import compile_swole

            return compile_swole(query, self.db, machine=self.machine)
        from ..codegen.base import compile_query

        return compile_query(query, self.db, strategy)

    def explain(
        self, query, strategy: str = "auto", *,
        backend: Optional[str] = None,
    ) -> str:
        """The staged lowering pipeline's rendering of ``query``.

        Shows the logical plan, every strategy pass with its cost-model
        estimates, the physical plan, and the execution backend the
        compiled program runs on. Hand-coded programs (TPC-H queries
        without an operator tree) have no staged rendering; their
        emitted source is returned instead.
        """
        compiled = self.compile(query, strategy, backend=backend)
        explain = compiled.notes.get("explain")
        if explain is not None:
            chosen = compiled.notes.get("backend", "instrumented")
            lines = [explain, "", "== Backend ==", chosen]
            fallback = compiled.notes.get("backend_fallback")
            if fallback:
                lines.append(f"(fallback from vectorized: {fallback})")
            lines.extend(self._explain_feedback(query, compiled))
            return "\n".join(lines)
        return (
            f"// hand-coded {compiled.strategy} program for "
            f"{compiled.name} (no staged lowering)\n" + compiled.source
        )

    def _explain_feedback(self, query, compiled: CompiledQuery) -> list:
        """``== Feedback ==`` explain lines: estimated vs observed
        cycles and selectivity, the measured-best arm, and any active
        override. Empty until the adaptive loop has at least one
        observation for the fingerprint, so a static engine's explain
        output — including the committed snapshots — is unchanged."""
        if self.adaptive is None:
            return []
        from .plan_cache import query_fingerprint

        feedback = self.adaptive.explain_feedback(
            query_fingerprint(query), compiled.notes
        )
        return [""] + feedback if feedback else []

    # -- execution -------------------------------------------------------

    def execute(
        self,
        query: Union[str, object],
        strategy: str = "auto",
        *,
        workers: Optional[int] = None,
        session: Optional[Session] = None,
        deadline: Optional[float] = None,
        cancel: Optional[CancelToken] = None,
        backend: Optional[str] = None,
        shards: Optional[int] = None,
    ) -> QueryResult:
        """Compile (or fetch from the plan cache) and run ``query``.

        Partitionable programs run morsel-parallel on ``workers``
        threads (default: the engine's worker count); results are
        bit-identical to a serial run. The returned result carries
        :class:`~repro.engine.metrics.RunMetrics` on ``report.metrics``,
        including whether the plan came from the cache.

        ``shards`` overrides the engine's default shard-process count
        for this call (``0`` forces in-process execution). When the
        effective count is ``>= 1`` and the query has a wire form, the
        morsels scatter over the shard worker processes instead of the
        thread pool; results remain byte-identical either way.

        ``deadline`` gives the run a relative budget in seconds;
        ``cancel`` threads an existing
        :class:`~repro.engine.cancellation.CancelToken` through instead
        (the serving layer mints its token at admission so queue wait
        counts against the budget). Either way, a parallel run checks
        the token at every morsel claim and raises
        :class:`~repro.errors.QueryTimeout` naming the elapsed time;
        serial runs check only before starting (a running kernel cannot
        be interrupted).
        """
        if deadline is not None:
            if cancel is not None:
                raise ReproError(
                    "pass either deadline= or cancel=, not both"
                )
            cancel = CancelToken.after(deadline)
        n_shards = (
            shards if shards is not None else (self.knobs.shards or 0)
        )
        spec = None
        if n_shards >= 1:
            from ..plan.logical import Query as _LegacyQuery
            from ..plan.ops import from_query
            from .shard import wire_spec_for

            # Canonicalise legacy query objects to their operator tree
            # *before* compiling: the workers compile from the wire
            # form (a tree), and parent and workers must compile the
            # same program for partial shapes — and answers — to agree.
            if isinstance(query, _LegacyQuery):
                query = from_query(query)
            spec = wire_spec_for(query)
            if spec is None:
                n_shards = 0  # no wire form: in-process fallback
        if strategy == "auto" and self.adaptive is not None:
            # Adaptive routing: auto means "the measured-best arm",
            # with deterministic periodic exploration keeping every
            # arm — and the instrumented selectivity telemetry —
            # sampled. A per-call ``backend=`` is honoured as the
            # exploit default but exploration may still try the other
            # backend; pass an explicit strategy to opt a call out.
            from .plan_cache import query_fingerprint

            strategy, backend = self.adaptive.choose(
                query_fingerprint(query), self._resolve_backend(backend)
            )
        compiled, was_hit, resolved, chosen, key = self._compile_cached(
            query, strategy, backend, shards=n_shards
        )
        n_workers = workers if workers is not None else self.workers
        if session is None:
            session = self.session(workers=n_workers)
        result = None
        if n_shards >= 1 and spec is not None:
            from .shard import ShardExecutor

            group = self._ensure_shard_group(n_shards)
            result = ShardExecutor(
                group, registry=self.registry
            ).execute(
                compiled,
                session,
                spec=spec,
                strategy=resolved,
                backend=chosen,
                encoding=self.encoding,
                override=compiled.notes.get("stats_override"),
                cancel=cancel,
            )
            # ``None`` = the program should not shard (no parallel
            # plan, or the scan is under the fan-out floor): run the
            # very same compiled program in-process instead.
        if result is None:
            executor = MorselExecutor(
                workers=n_workers, pool=self.pool, registry=self.registry
            )
            result = executor.execute(compiled, session, cancel=cancel)
        metrics = result.report.metrics
        metrics.plan_cache = "hit" if was_hit else "miss"
        # Label telemetry by the backend the program actually runs on
        # (a vectorized request can fall back to instrumented).
        effective = compiled.notes.get("backend", "instrumented")
        self._record_run(key[0], resolved, effective, metrics)
        if self.adaptive is not None:
            tallies = getattr(result.report, "shard_tallies", None)
            if tallies is not None:
                # Sharded runs: the workers' event streams stay in the
                # worker processes; their merged tallies carry the
                # measured statistics home instead.
                from .shard import observation_from_tallies

                observation = observation_from_tallies(tallies, metrics)
            else:
                from ..adaptive import observation_from_run

                observation = observation_from_run(
                    result.report, metrics
                )
            self.adaptive.observe(
                key[0],
                resolved,
                effective,
                observation,
                estimated_stats=compiled.notes.get("estimated_stats"),
            )
        return result

    def _record_run(
        self, fingerprint: str, strategy: str, backend: str, metrics
    ) -> None:
        """Telemetry for one completed execution: the execute span, the
        per-strategy branch / access-pattern event counters the SWOLE
        heuristics reason about, and — past the threshold — a
        slow-query log entry keyed by the plan fingerprint."""
        reg = self.registry
        reg.histogram(
            "span_seconds",
            stage="execute",
            strategy=strategy,
            backend=backend,
        ).observe(metrics.wall_seconds)
        reg.counter(
            "queries_total", strategy=strategy, backend=backend
        ).inc()
        reg.counter(
            "plan_cache_lookups_total",
            strategy=strategy,
            outcome=metrics.plan_cache,
        ).inc()
        for kind, count in metrics.event_counts.items():
            reg.counter(
                "engine_events_total", strategy=strategy, kind=kind
            ).inc(count)
        reg.slow_log.record(
            fingerprint=fingerprint,
            strategy=strategy,
            wall_seconds=metrics.wall_seconds,
            wall_nanos=int(metrics.wall_seconds * 1e9),
            backend=backend,
            plan_cache=metrics.plan_cache,
            workers=metrics.workers,
            morsels=metrics.morsels,
            parallel=metrics.parallel,
            total_cycles=metrics.total_cycles,
            event_counts=dict(metrics.event_counts),
        )

    # -- feedback persistence --------------------------------------------

    @staticmethod
    def feedback_path():
        """Where this host's feedback snapshot lives: ``feedback.json``
        alongside the dataset cache (``$REPRO_CACHE_DIR`` or the
        default cache directory)."""
        from ..datagen.cache import default_cache_dir

        return default_cache_dir() / "feedback.json"

    def save_feedback(self) -> Optional[str]:
        """Persist the adaptive feedback store next to the dataset
        cache; returns the written path, or ``None`` on a static
        engine. Saving is explicit (the server calls it at shutdown) —
        the engine never writes the snapshot behind the caller's back,
        so tests and one-shot scripts leave no warm state behind."""
        if self.adaptive is None:
            return None
        return str(self.adaptive.save_feedback(self.feedback_path()))

    # -- cache management ------------------------------------------------

    @property
    def cache_stats(self):
        """Hit/miss/eviction counters of the plan cache."""
        return self.plan_cache.stats

    def invalidate(self) -> None:
        """Drop all cached plans (call after mutating the database)."""
        self.plan_cache.invalidate()
