"""Machine model: the simulated memory hierarchy and instruction costs.

The paper's results were measured on an Intel E5-2660 v2 (2.2 GHz, 10
cores, 25 MB LLC, 256 GB RAM). Pure Python cannot exhibit those
memory-system effects, so this reproduction executes generated programs
for real (NumPy) while *costing* them on a parameterised machine model.
The default parameters below describe that Xeon; latencies are in CPU
cycles and follow the usual published ranges for Ivy Bridge-EP.

``MachineModel.scaled(factor)`` shrinks the cache capacities by the same
factor as the benchmark data so that structure-size : cache-size ratios —
which drive every crossover in the paper — are preserved at laptop scale.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from ..errors import CostModelError

#: Operation costs in cycles per scalar element, at superscalar
#: *throughput* (a 4-wide out-of-order core retires several simple µops
#: per cycle). Division is latency-bound and barely pipelined — it is the
#: paper's canonical compute-bound aggregation.
DEFAULT_OP_COSTS: Dict[str, float] = {
    "cmp": 0.5,
    "add": 0.5,
    "sub": 0.5,
    "mul": 1.0,
    "div": 30.0,
    "mov": 0.5,
    "and": 0.5,
    "or": 0.5,
    "hash": 2.0,
    "select": 2.0,  # selection-vector append (loop-carried dependency)
    "blend": 0.5,  # predicated move/blend (single SIMD instruction)
    "gather": 0.5,  # per-element index-driven load issue overhead
    "strcmp": 20.0,  # string/LIKE matching per tuple (dominates Q13)
    "decode": 0.5,  # widening convert from a code stream (vpmovsx-style)
}

#: Operations that gain nothing from SIMD: division's throughput on the
#: paper-era microarchitecture is as bad vectorised as scalar, string
#: matching is inherently serial, and gathers/selects/hashes are
#: per-element by nature.
SIMD_EXEMPT_OPS = frozenset({"div", "strcmp", "hash", "gather", "select"})


@dataclass(frozen=True)
class MachineModel:
    """Parameters of the simulated CPU and memory hierarchy."""

    line_bytes: int = 64
    l1_bytes: int = 32 * 1024
    l2_bytes: int = 256 * 1024
    llc_bytes: int = 25 * 1024 * 1024

    lat_l1: float = 4.0
    lat_l2: float = 12.0
    lat_llc: float = 42.0
    lat_mem: float = 200.0

    #: Cost of streaming one cache line with the hardware prefetcher
    #: locked on (sequential scan). Far below ``lat_mem`` by design.
    seq_line_cycles: float = 8.0

    #: Branch misprediction penalty (pipeline flush).
    mispredict_penalty: float = 16.0

    #: Fraction of random-access latency hidden by explicit software
    #: prefetching (ROF's staging-point prefetches, paper §II-A3).
    prefetch_hide_fraction: float = 0.5

    #: Memory-level parallelism: independent random accesses (one per
    #: tuple) overlap in the memory system, so their effective per-access
    #: cost is latency / mlp, floored at one issue slot.
    mlp: float = 8.0

    #: SIMD register width (AVX = 32 bytes on the paper's follow-ups; the
    #: eval machine lacked AVX2 but SIMD speedups enter only through the
    #: prepass factor, which this models).
    simd_bytes: int = 32

    #: Per-tuple loop overhead of scalar (tuple-at-a-time) generated code
    #: (index increment, bounds check, per-tuple register shuffling that
    #: tiled/unrolled loops amortise away).
    scalar_loop_cycles: float = 2.0

    #: Per-tuple overhead of a Volcano-style interpreter (virtual calls,
    #: per-tuple dispatch). Used only by the sanity-check baseline.
    interpreter_tuple_cycles: float = 45.0

    #: Nominal clock, used only to convert cycles to seconds in reports.
    ghz: float = 2.2

    def op_cost(self, op: str) -> float:
        """Scalar cost in cycles of one ``op`` on one element."""
        try:
            return DEFAULT_OP_COSTS[op]
        except KeyError as exc:
            raise CostModelError(f"unknown op {op!r}") from exc

    def simd_lanes(self, width_bytes: int) -> int:
        """SIMD lanes available for elements of the given byte width."""
        if width_bytes <= 0:
            raise CostModelError("element width must be positive")
        return max(1, self.simd_bytes // width_bytes)

    def simd_cost(self, op: str, width_bytes: int) -> float:
        """Per-element cost of ``op`` when vectorised (exempt ops don't
        speed up — division, string matching, gathers)."""
        cost = self.op_cost(op)
        if op in SIMD_EXEMPT_OPS:
            return cost
        return cost / self.simd_lanes(width_bytes)

    def random_latency(self, struct_bytes: int) -> float:
        """Expected latency of one uniform random access into a structure.

        The structure is assumed uniformly accessed and cache residency is
        apportioned by capacity: the first ``l1_bytes`` of the structure's
        footprint hit in L1, the next ``l2_bytes`` in L2, and so on. This
        is the standard capacity model (Manegold et al.) and produces the
        latency cliffs the paper's hash-table experiments rely on.
        """
        if struct_bytes < 0:
            raise CostModelError("structure size must be non-negative")
        if struct_bytes == 0:
            return self.lat_l1
        remaining = float(struct_bytes)
        cycles = 0.0
        for capacity, latency in (
            (self.l1_bytes, self.lat_l1),
            (self.l2_bytes, self.lat_l2),
            (self.llc_bytes, self.lat_llc),
        ):
            portion = min(remaining, float(capacity))
            cycles += (portion / struct_bytes) * latency
            remaining -= portion
            if remaining <= 0:
                return cycles
        cycles += (remaining / struct_bytes) * self.lat_mem
        return cycles

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert simulated cycles to seconds at the nominal clock."""
        return cycles / (self.ghz * 1e9)

    def scaled(self, factor: float) -> "MachineModel":
        """Return a model with caches shrunk by ``factor``.

        Use the same ``factor`` by which benchmark data was shrunk relative
        to the paper (e.g. running the 100M-row microbench at 2M rows means
        ``factor = 50``) so that every structure-size : cache-size ratio —
        and therefore every crossover — is preserved.
        """
        if factor <= 0:
            raise CostModelError("scale factor must be positive")
        return replace(
            self,
            l1_bytes=max(int(self.l1_bytes / factor), 4 * self.line_bytes),
            l2_bytes=max(int(self.l2_bytes / factor), 8 * self.line_bytes),
            llc_bytes=max(int(self.llc_bytes / factor), 16 * self.line_bytes),
        )


#: The paper's evaluation machine (Intel E5-2660 v2).
PAPER_MACHINE = MachineModel()
