"""Trace-driven set-associative cache simulator.

The cost accountant (:mod:`repro.engine.costing`) uses closed-form access
costs so that full benchmark sweeps finish quickly. This module provides
the ground truth those formulas are validated against: an exact
set-associative LRU cache simulator driven by byte-address traces, plus a
small multi-level hierarchy wrapper.

It is used by the test suite and by ``bench_ablation_simulators`` to show
that the analytic conditional-read and random-access costs track the
simulated miss counts across densities and structure sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..errors import CostModelError


@dataclass
class CacheStats:
    """Hit/miss counters for one cache level."""

    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


class SetAssociativeCache:
    """An exact LRU set-associative cache over byte addresses."""

    def __init__(
        self, capacity_bytes: int, line_bytes: int = 64, ways: int = 8
    ) -> None:
        if capacity_bytes <= 0 or line_bytes <= 0 or ways <= 0:
            raise CostModelError("cache geometry must be positive")
        num_lines = capacity_bytes // line_bytes
        if num_lines % ways != 0:
            raise CostModelError(
                f"capacity {capacity_bytes} not divisible into {ways}-way sets"
            )
        self._line_bytes = line_bytes
        self._ways = ways
        self._num_sets = num_lines // ways
        # Each set holds up to `ways` line tags in LRU order (MRU last).
        self._sets: List[List[int]] = [[] for _ in range(self._num_sets)]
        self.stats = CacheStats()

    @property
    def line_bytes(self) -> int:
        return self._line_bytes

    def access(self, address: int) -> bool:
        """Access one byte address; return True on hit."""
        tag = address // self._line_bytes
        index = tag % self._num_sets
        lines = self._sets[index]
        self.stats.accesses += 1
        if tag in lines:
            lines.remove(tag)
            lines.append(tag)
            return True
        self.stats.misses += 1
        if len(lines) == self._ways:
            lines.pop(0)
        lines.append(tag)
        return False

    def run_trace(self, addresses: Sequence[int]) -> CacheStats:
        """Access every address in order; return this cache's stats."""
        for address in np.asarray(addresses, dtype=np.int64):
            self.access(int(address))
        return self.stats

    def reset_stats(self) -> None:
        self.stats = CacheStats()


class CacheHierarchy:
    """A multi-level inclusive cache hierarchy with a flat memory behind it.

    ``expected_latency`` mirrors how the analytic model reports costs: the
    average cycles per access given the observed per-level miss rates.
    """

    def __init__(
        self,
        levels: Sequence[SetAssociativeCache],
        latencies: Sequence[float],
        mem_latency: float,
    ) -> None:
        if len(levels) != len(latencies):
            raise CostModelError("one latency per cache level required")
        self._levels = list(levels)
        self._latencies = list(latencies)
        self._mem_latency = mem_latency

    def access(self, address: int) -> float:
        """Access an address; return the latency it experienced."""
        for level, latency in zip(self._levels, self._latencies):
            if level.access(address):
                return latency
        return self._mem_latency

    def run_trace(self, addresses: Sequence[int]) -> float:
        """Run a trace; return total latency cycles."""
        total = 0.0
        for address in np.asarray(addresses, dtype=np.int64):
            total += self.access(int(address))
        return total

    def expected_latency(self) -> float:
        """Average latency per access over everything simulated so far."""
        if not self._levels or self._levels[0].stats.accesses == 0:
            return 0.0
        total_accesses = self._levels[0].stats.accesses
        cycles = 0.0
        remaining = total_accesses
        for level, latency in zip(self._levels, self._latencies):
            hits = level.stats.hits
            cycles += hits * latency
            remaining = level.stats.misses
        cycles += remaining * self._mem_latency
        return cycles / total_accesses


def sequential_trace(base: int, n: int, width: int) -> np.ndarray:
    """Byte addresses of a sequential scan of ``n`` ``width``-byte items."""
    return base + np.arange(n, dtype=np.int64) * width


def conditional_trace(
    base: int, n: int, width: int, selected: np.ndarray
) -> np.ndarray:
    """Byte addresses of a conditional read touching ``selected`` rows."""
    rows = np.flatnonzero(np.asarray(selected, dtype=bool))
    return base + rows.astype(np.int64) * width


def random_trace(
    base: int, struct_bytes: int, n: int, width: int, rng: np.random.Generator
) -> np.ndarray:
    """Byte addresses of ``n`` uniform random accesses into a structure."""
    slots = struct_bytes // width
    if slots <= 0:
        raise CostModelError("structure too small for random trace")
    return base + rng.integers(0, slots, size=n, dtype=np.int64) * width
