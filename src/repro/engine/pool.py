"""Persistent worker pool for the morsel executor.

Spawning and joining fresh ``threading.Thread``s on every ``execute()``
call is exactly the kind of per-query setup cost that dominates short
OLAP queries (Sirin & Ailamaki's micro-architectural OLAP analysis puts
the blame for poor utilization on per-query overheads, not kernel
work). The :class:`WorkerPool` amortizes that cost across queries the
way the plan cache amortizes compilation:

* worker threads start lazily on the first parallel batch and then
  block on a condition variable until the next batch arrives;
* each worker keeps one reusable :class:`~repro.engine.session.Session`
  clone across batches — between morsels only its tracer is *reset in
  place* (fresh report, same tracer/accountant objects) and its knobs
  are re-synced from the submitting session so per-program toggles
  (e.g. ROF's ``ht_prefetch``) never leak;
* a batch carries a cooperative cancel flag: the first morsel failure
  stops the remaining workers from pulling further morsels instead of
  letting them drain the cursor;
* ``shutdown()`` is idempotent, the pool is a context manager, and a
  lazily-registered ``atexit`` hook tears the threads down at
  interpreter exit.

Determinism is unaffected by pooling: partial values and per-morsel
cost reports are stored by morsel *index*, and the simulated schedule
is computed from those reports — never from real thread timing — so a
pooled run is bit-identical to a spawn-per-query or serial run.

The module also exposes :class:`MorselBatch` itself: the executor's
legacy spawn path drains the very same batch object with ephemeral
threads, so cancellation and error semantics are identical in both
modes and benchmarks comparing them measure *only* thread lifecycle.
"""

from __future__ import annotations

import atexit
import threading
import time
from dataclasses import replace
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ExecutionError, QueryCancelled, QueryTimeout
from .cancellation import CancelToken
from .costing import CostReport
from .session import Session


class MorselBatch:
    """One parallel run: a shared morsel cursor plus its result slots.

    Workers call :meth:`drain` with their own session; morsel indices
    are claimed under the batch lock, values and cost reports land in
    index-addressed slots (order never depends on thread timing), and
    the first failure flips :attr:`cancelled` so other workers stop
    claiming work.

    An optional :class:`~repro.engine.cancellation.CancelToken` adds a
    second stop condition at the same cursor: when the token's deadline
    passes (or it is cancelled explicitly), no further morsels are
    handed out and :meth:`raise_failure` raises
    :class:`~repro.errors.QueryTimeout` / ``QueryCancelled`` naming the
    elapsed time — a timed-out batch stops within one morsel's worth of
    work instead of draining the cursor.
    """

    def __init__(
        self,
        template: Session,
        plan,
        ctx: Any,
        morsels: List[Tuple[int, int]],
        label: str,
        workers: int,
        cancel: Optional[CancelToken] = None,
    ) -> None:
        if not morsels:
            raise ExecutionError("a morsel batch needs at least one morsel")
        self.template = template
        self.plan = plan
        self.ctx = ctx
        self.morsels = morsels
        self.label = label
        #: Worker ids >= this do not participate (lets one pool serve
        #: requests for fewer workers than it has threads).
        self.workers = workers
        self.cancel = cancel
        self.values: List[Optional[Dict[str, Any]]] = [None] * len(morsels)
        self.reports: List[Optional[CostReport]] = [None] * len(morsels)
        self.wall_by_worker: Dict[int, float] = {}
        self.errors: List[Tuple[int, BaseException]] = []
        self.cancelled = False
        #: Set when the cancel token stopped the cursor (the error to
        #: re-raise from :meth:`raise_failure`).
        self.stop_error: Optional[ExecutionError] = None
        self._next = 0
        self._in_flight = 0
        self._lock = threading.Lock()
        self._done = threading.Event()

    # -- claiming --------------------------------------------------------

    def claimable(self) -> bool:
        """Whether a worker could still pull a morsel (racy, advisory)."""
        return not self.cancelled and self._next < len(self.morsels)

    def _token_stop(self) -> Optional[ExecutionError]:
        """The error to record when the cancel token asks for a stop at
        this cursor position; ``None`` to keep going."""
        token = self.cancel
        if token is None or not token.stop_requested():
            return None
        done = sum(1 for v in self.values if v is not None)
        progress = f"after {done}/{len(self.morsels)} morsels"
        if token.cancelled:
            return QueryCancelled(
                f"{self.label} cancelled {progress} "
                f"({token.elapsed():.3f}s elapsed)"
            )
        return QueryTimeout(
            f"{self.label} exceeded its {token.budget():.3f}s deadline "
            f"{progress} ({token.elapsed():.3f}s elapsed)",
            elapsed=token.elapsed(),
            deadline=token.budget(),
        )

    def _claim(self) -> Optional[int]:
        with self._lock:
            if self.cancelled or self._next >= len(self.morsels):
                return None
            stop = self._token_stop()
            if stop is not None:
                self.cancelled = True
                self.stop_error = stop
                if self._in_flight == 0:
                    self._done.set()
                return None
            index = self._next
            self._next += 1
            self._in_flight += 1
            return index

    def _finish(self, failed: Optional[Tuple[int, BaseException]]) -> None:
        with self._lock:
            if failed is not None:
                self.errors.append(failed)
                self.cancelled = True
            self._in_flight -= 1
            exhausted = self.cancelled or self._next >= len(self.morsels)
            if exhausted and self._in_flight == 0:
                self._done.set()

    # -- running ---------------------------------------------------------

    def drain(self, session: Session, worker_id: int) -> None:
        """Run morsels on ``session`` until the cursor is exhausted or
        the batch is cancelled. Records per-worker busy seconds."""
        busy = 0.0
        while True:
            index = self._claim()
            if index is None:
                break
            begin = time.perf_counter()
            lo, hi = self.morsels[index]
            # Re-sync knobs from the template so toggles a program made
            # on this worker's session during the previous morsel (e.g.
            # ROF's ht_prefetch) never leak into the next one; reset the
            # tracer in place rather than reallocating it.
            session.knobs = replace(self.template.knobs)
            session.reset()
            failed = None
            try:
                with session.tracer.kernel(f"{self.label}:morsel"):
                    value = self.plan.partial(session, self.ctx, lo, hi)
            except BaseException as exc:  # re-raised by raise_failure()
                failed = (index, exc)
            else:
                self.values[index] = value
                self.reports[index] = session.tracer.report
            busy += time.perf_counter() - begin
            self._finish(failed)
            if failed is not None:
                break
        if busy > 0.0:
            with self._lock:
                self.wall_by_worker[worker_id] = (
                    self.wall_by_worker.get(worker_id, 0.0) + busy
                )

    def wait(self) -> None:
        self._done.wait()

    def raise_failure(self) -> None:
        """Re-raise the first morsel failure (naming the morsel), or the
        deadline/cancellation stop recorded at the cursor."""
        if not self.errors:
            if self.stop_error is not None:
                raise self.stop_error
            return
        index, exc = min(self.errors, key=lambda pair: pair[0])
        lo, hi = self.morsels[index]
        raise ExecutionError(
            f"morsel {index} (rows [{lo}, {hi})) of {self.label} failed: "
            f"{exc!r}"
        ) from exc

    def result(
        self,
    ) -> Tuple[List[Dict[str, Any]], List[CostReport], Dict[int, float]]:
        """Completed values/reports in morsel order, plus wall times."""
        self.raise_failure()
        return (
            [v for v in self.values if v is not None],
            [r for r in self.reports if r is not None],
            dict(self.wall_by_worker),
        )


class WorkerPool:
    """Lazily-started persistent threads draining morsel batches.

    One batch runs at a time (the executor submits whole queries);
    worker threads park on a condition variable between batches. The
    pool grows on demand when a batch requests more workers than it has
    threads, so one engine-owned pool serves any ``workers=`` override.
    """

    def __init__(self, workers: int = 1) -> None:
        if workers < 1:
            raise ExecutionError("worker pool needs at least one worker")
        self.workers = workers
        self._cond = threading.Condition()
        self._submit_lock = threading.Lock()
        # Serialises ensure_started against shutdown as whole
        # operations. Without it, an ensure racing a shutdown could (a)
        # flip _closed back to False between shutdown's notify and its
        # join, leaving workers parked forever while join blocks on
        # them, and (b) re-register the atexit hook in the window where
        # shutdown is about to unregister it, losing the registration.
        # Held only around lifecycle transitions, never during a batch,
        # and workers only ever take _cond — no ordering cycle.
        self._lifecycle = threading.Lock()
        self._threads: List[threading.Thread] = []
        self._batch: Optional[MorselBatch] = None
        self._closed = False
        self._atexit_registered = False
        # Lifetime telemetry (read by snapshot(), updated under _cond).
        self._batches = 0
        self._batch_morsels = 0
        self._busy_seconds = 0.0
        self._capacity_seconds = 0.0

    # -- lifecycle -------------------------------------------------------

    @property
    def started(self) -> bool:
        return bool(self._threads)

    def ensure_started(self, workers: Optional[int] = None) -> None:
        """Start (or grow) the worker threads; safe to call repeatedly,
        including concurrently with :meth:`shutdown` (the lifecycle lock
        makes each a whole-operation critical section)."""
        with self._lifecycle:
            with self._cond:
                self._closed = False
                if workers is not None and workers > self.workers:
                    self.workers = workers
                while len(self._threads) < self.workers:
                    worker_id = len(self._threads)
                    thread = threading.Thread(
                        target=self._worker_loop,
                        args=(worker_id,),
                        name=f"repro-pool-{worker_id}",
                        daemon=True,
                    )
                    self._threads.append(thread)
                    thread.start()
                if self._threads and not self._atexit_registered:
                    atexit.register(self.shutdown)
                    self._atexit_registered = True

    def shutdown(self) -> None:
        """Stop and join all workers. Idempotent; the pool restarts
        lazily if used again afterwards."""
        with self._lifecycle:
            with self._cond:
                self._closed = True
                threads = list(self._threads)
                self._cond.notify_all()
            # Join outside _cond (workers need it to observe _closed)
            # but inside the lifecycle lock, so a concurrent
            # ensure_started cannot flip _closed back and strand this
            # join on workers that will never exit.
            for thread in threads:
                thread.join()
            with self._cond:
                self._threads = [t for t in self._threads if t.is_alive()]
                if self._atexit_registered and not self._threads:
                    self._atexit_registered = False
                    try:
                        atexit.unregister(self.shutdown)
                    except Exception:  # pragma: no cover - interpreter exit
                        pass

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- batches ---------------------------------------------------------

    def run(
        self,
        template: Session,
        plan,
        ctx: Any,
        morsels: List[Tuple[int, int]],
        label: str,
        workers: int,
        cancel: Optional[CancelToken] = None,
    ) -> Tuple[List[Dict[str, Any]], List[CostReport], Dict[int, float]]:
        """Run one batch on the pool and return morsel-ordered results."""
        self.ensure_started(workers)
        batch = MorselBatch(
            template, plan, ctx, morsels, label, workers, cancel=cancel
        )
        with self._submit_lock:
            begin = time.perf_counter()
            with self._cond:
                self._batch = batch
                self._cond.notify_all()
            batch.wait()
            elapsed = time.perf_counter() - begin
            with self._cond:
                self._batch = None
                self._batches += 1
                self._batch_morsels += sum(
                    1 for v in batch.values if v is not None
                )
                self._busy_seconds += sum(batch.wall_by_worker.values())
                self._capacity_seconds += elapsed * batch.workers
        return batch.result()

    def snapshot(self) -> dict:
        """Lifetime utilization counters (a registry stat source).

        ``utilization`` is busy worker-seconds over offered capacity
        (batch wall time times participating workers): 1.0 means every
        participating worker was draining morsels for the whole of
        every batch; the gap is morsel-claim contention plus cursor
        exhaustion tail.
        """
        with self._cond:
            capacity = self._capacity_seconds
            return {
                "workers": self.workers,
                "threads": len(self._threads),
                "batches": self._batches,
                "morsels": self._batch_morsels,
                "busy_seconds": self._busy_seconds,
                "capacity_seconds": capacity,
                "utilization": (
                    self._busy_seconds / capacity if capacity else 0.0
                ),
            }

    # -- workers ---------------------------------------------------------

    def _worker_loop(self, worker_id: int) -> None:
        session: Optional[Session] = None
        while True:
            with self._cond:
                while not self._closed and not self._has_work(worker_id):
                    self._cond.wait()
                if self._closed:
                    return
                batch = self._batch
            session = self._session_for(session, batch.template)
            batch.drain(session, worker_id)

    def _has_work(self, worker_id: int) -> bool:
        batch = self._batch
        return (
            batch is not None
            and worker_id < batch.workers
            and batch.claimable()
        )

    @staticmethod
    def _session_for(cached: Optional[Session], template: Session) -> Session:
        """Reuse the worker's session when its configuration still
        matches; knobs are re-synced per morsel by the batch."""
        if (
            cached is not None
            and cached.machine == template.machine
            and cached.tile == template.tile
        ):
            return cached
        return template.clone()


def drain_with_ephemeral_threads(
    batch: MorselBatch,
) -> Tuple[List[Dict[str, Any]], List[CostReport], Dict[int, float]]:
    """The legacy spawn-per-query path: fresh threads drain ``batch``.

    Kept as the baseline the throughput benchmark compares the pool
    against, and as the fallback for executors constructed without a
    pool. Semantics (cancellation, errors, determinism) are identical
    by construction — both modes drain the same batch object.
    """
    threads = [
        threading.Thread(
            target=batch.drain,
            args=(batch.template.clone(), worker_id),
            name=f"morsel-{worker_id}",
        )
        for worker_id in range(batch.workers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return batch.result()
