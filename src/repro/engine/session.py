"""Execution sessions: machine model + tracer + execution knobs."""

from __future__ import annotations

from dataclasses import dataclass, replace

from .costing import Tracer
from .machine import PAPER_MACHINE, MachineModel


@dataclass
class ExecutionKnobs:
    """Per-run execution switches threaded through the strategies.

    ht_prefetch:
        Hash-table kernels mark their random accesses as
        software-prefetched (set by the ROF strategy for the duration of
        its programs).
    morsel_rows:
        Row-range size of one morsel for the parallel executor. ``None``
        lets the executor pick a size from the scan length and worker
        count.
    backend:
        Execution backend compiled programs run on: ``"vectorized"``
        (generated whole-column NumPy kernels, the serving default) or
        ``"instrumented"`` (the event-priced interpreter that remains
        the authority for costing and explain output).
    min_parallel_rows:
        Scan length below which partitionable programs run serial
        anyway (the thread fan-out floor). ``None`` defers to the
        compiled program's own declared floor (the vectorized backend
        declares ``VECTORIZED_MIN_PARALLEL_ROWS``; the instrumented one
        declares no floor). Set explicitly — or let an adaptive engine
        seed it from the feedback store's measured serial-vs-parallel
        crossover — to override the built-in constant per host. A
        pinned ``morsel_rows`` disables the floor entirely, as before.
    shards:
        Worker *processes* for the multi-process shard executor
        (:mod:`repro.engine.shard`). ``None`` (the default) keeps
        execution in-process; ``N >= 1`` scatters morsels over ``N``
        pre-forked workers mapping the same on-disk columns. Requires a
        database loaded through the dataset cache (workers locate the
        columns by fingerprint). Queries the shard path cannot serve
        (no wire form, scan below the fan-out floor) fall back to the
        thread executor transparently.
    """

    ht_prefetch: bool = False
    morsel_rows: int | None = None
    backend: str = "vectorized"
    min_parallel_rows: int | None = None
    shards: int | None = None


class Session:
    """Everything a compiled program needs to run and be costed.

    All parameters are keyword-only.

    Parameters
    ----------
    machine:
        The simulated machine (defaults to the paper's Xeon). Use
        ``machine.scaled(f)`` when the data was shrunk by ``f`` relative
        to the paper's scale.
    tile:
        Vector/tile size for strategies that stage intermediates. The
        paper uses 1024, following Menon et al. and Kersten et al.
    workers:
        Worker threads the morsel executor may use for programs that
        declare a partitionable pipeline (1 = serial execution).
    knobs:
        Execution switches (:class:`ExecutionKnobs`); a fresh default
        instance when omitted.
    """

    def __init__(
        self,
        *,
        machine: MachineModel = PAPER_MACHINE,
        tile: int = 1024,
        workers: int = 1,
        knobs: ExecutionKnobs | None = None,
    ) -> None:
        self.machine = machine
        self.tile = tile
        self.workers = workers
        self.knobs = knobs if knobs is not None else ExecutionKnobs()
        self.tracer = Tracer(machine)

    def reset(self) -> "Session":
        """Discard accumulated cost state; returns self.

        The tracer is reset *in place* (fresh report, same tracer and
        accountant objects) so pooled workers can reuse one session
        across many morsels without per-morsel allocation.
        """
        self.tracer.reset()
        return self

    def clone(self) -> "Session":
        """An independent session with the same configuration.

        Used by the morsel executor to give each worker its own tracer;
        knobs are copied so per-program toggles never leak across
        workers.
        """
        return Session(
            machine=self.machine,
            tile=self.tile,
            workers=1,
            knobs=replace(self.knobs),
        )

    @property
    def ht_prefetch(self) -> bool:
        """Deprecated alias for ``knobs.ht_prefetch`` (kept for callers
        that predate :class:`ExecutionKnobs`)."""
        return self.knobs.ht_prefetch

    @ht_prefetch.setter
    def ht_prefetch(self, value: bool) -> None:
        self.knobs.ht_prefetch = value

    def intermediate_bytes(self, width: int) -> int:
        """Footprint of a tile-sized intermediate array (cache resident)."""
        return self.tile * width
