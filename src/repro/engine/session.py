"""Execution sessions: machine model + tracer + execution knobs."""

from __future__ import annotations

from .costing import Tracer
from .machine import PAPER_MACHINE, MachineModel


class Session:
    """Everything a compiled program needs to run and be costed.

    Parameters
    ----------
    machine:
        The simulated machine (defaults to the paper's Xeon). Use
        ``machine.scaled(f)`` when the data was shrunk by ``f`` relative
        to the paper's scale.
    tile:
        Vector/tile size for strategies that stage intermediates. The
        paper uses 1024, following Menon et al. and Kersten et al.
    """

    def __init__(
        self, machine: MachineModel = PAPER_MACHINE, tile: int = 1024
    ) -> None:
        self.machine = machine
        self.tile = tile
        self.tracer = Tracer(machine)
        #: When true, hash-table kernels mark their random accesses as
        #: software-prefetched (set by the ROF strategy).
        self.ht_prefetch = False

    def reset(self) -> None:
        """Discard accumulated cost state (fresh tracer)."""
        self.tracer = Tracer(self.machine)

    def intermediate_bytes(self, width: int) -> int:
        """Footprint of a tile-sized intermediate array (cache resident)."""
        return self.tile * width
