"""Branch prediction: trace-driven two-bit predictor and analytic model.

The data-centric strategy's selectivity hump (paper Fig. 8, citing Ross's
PODS 2002 analysis) comes from branch mispredictions on i.i.d. predicate
outcomes. We model the classic two-bit saturating counter:

* :class:`TwoBitPredictor` simulates a real outcome trace (used in tests
  and the simulator-validation ablation bench);
* :func:`steady_state_mispredict_rate` solves the predictor's Markov chain
  for i.i.d. Bernoulli(p) outcomes, which is what the cost accountant uses
  (benchmark data is uniform, so i.i.d. holds).

Both agree closely; the test suite asserts it.
"""

from __future__ import annotations

import numpy as np

from ..errors import CostModelError


class TwoBitPredictor:
    """A two-bit saturating-counter branch predictor for one branch site.

    States 0-1 predict not-taken, states 2-3 predict taken. The counter
    increments on taken outcomes and decrements on not-taken, saturating
    at both ends.
    """

    def __init__(self, initial_state: int = 1) -> None:
        if not 0 <= initial_state <= 3:
            raise CostModelError("predictor state must be in 0..3")
        self._state = initial_state

    @property
    def state(self) -> int:
        return self._state

    def predict(self) -> bool:
        """Return the current prediction (True = taken)."""
        return self._state >= 2

    def record(self, taken: bool) -> bool:
        """Feed one outcome; return True if it was mispredicted."""
        mispredicted = self.predict() != taken
        if taken:
            self._state = min(3, self._state + 1)
        else:
            self._state = max(0, self._state - 1)
        return mispredicted

    def run_trace(self, outcomes: np.ndarray) -> int:
        """Simulate a whole outcome trace; return the misprediction count."""
        mispredicts = 0
        for taken in np.asarray(outcomes, dtype=bool):
            if self.record(bool(taken)):
                mispredicts += 1
        return mispredicts


def steady_state_mispredict_rate(p_taken: float) -> float:
    """Misprediction rate of a two-bit counter under i.i.d. Bernoulli(p).

    The counter is a birth-death chain with up-rate ``p`` and down-rate
    ``1-p``; its stationary distribution is geometric with ratio
    ``r = p / (1-p)``. A misprediction occurs when the branch is taken
    from a predict-not-taken state or vice versa:

    ``rate = p * (pi0 + pi1) + (1-p) * (pi2 + pi3)``

    The rate is 0 at p in {0, 1} and peaks at exactly 0.5 when p = 0.5 —
    the hump at 50 % selectivity in the paper's Figure 8a.
    """
    if not 0.0 <= p_taken <= 1.0:
        raise CostModelError("branch probability must be in [0, 1]")
    if p_taken in (0.0, 1.0):
        return 0.0
    ratio = p_taken / (1.0 - p_taken)
    weights = np.array([1.0, ratio, ratio**2, ratio**3])
    pi = weights / weights.sum()
    predict_not_taken = pi[0] + pi[1]
    predict_taken = pi[2] + pi[3]
    return float(p_taken * predict_not_taken + (1.0 - p_taken) * predict_taken)
