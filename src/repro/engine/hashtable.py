"""Vectorised open-addressing hash table for int64 keys.

All strategies in the paper share "the same library code (e.g., hash table
implementations)" so that comparisons isolate the code-generation
strategy. This module is that shared library: a linear-probing
open-addressing table with int64 keys and a fixed number of int64
aggregate columns (sums / counts — every evaluated query needs only
those; averages divide sums by counts at result time).

The table is a *pure* data structure: it performs the real work and keeps
probe statistics, while the kernels that call it are responsible for
emitting the corresponding :class:`~repro.engine.events.RandomAccess`
events (using :attr:`nbytes` as the structure footprint).

Batch operations are vectorised: collisions are resolved by iterating
probe distances over the *unresolved subset* with NumPy masks, so the
per-call Python overhead is O(max probe distance), not O(n).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import ExecutionError

#: Sentinel for an empty slot. Keys may be any int64 except the sentinels.
EMPTY = np.int64(-(2**62) - 11)
#: Sentinel for a deleted slot (tombstone).
TOMBSTONE = np.int64(-(2**62) - 12)
#: The masked "throwaway" key used by key masking (paper §III-B). It is a
#: perfectly ordinary key from the table's point of view.
NULL_KEY = np.int64(-(2**62) - 13)


def _mix64(keys: np.ndarray) -> np.ndarray:
    """SplitMix64 finaliser — a strong, cheap int64 hash."""
    h = keys.astype(np.uint64)
    with np.errstate(over="ignore"):
        h = (h ^ (h >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        h = (h ^ (h >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        h = h ^ (h >> np.uint64(31))
    return h


def _next_pow2(n: int) -> int:
    power = 1
    while power < n:
        power *= 2
    return power


class HashTable:
    """Linear-probing table: int64 key -> ``num_aggs`` int64 aggregates."""

    #: Bytes per slot charged to the structure footprint: the key plus the
    #: aggregate columns (what the generated C's table would occupy).
    def __init__(self, expected_keys: int, num_aggs: int = 1) -> None:
        if expected_keys < 0:
            raise ExecutionError("expected_keys must be non-negative")
        if num_aggs < 0:
            raise ExecutionError("num_aggs must be non-negative")
        self._capacity = max(8, _next_pow2(2 * max(expected_keys, 1)))
        self._mask = np.int64(self._capacity - 1)
        self._keys = np.full(self._capacity, EMPTY, dtype=np.int64)
        self._aggs = np.zeros((self._capacity, max(num_aggs, 1)), dtype=np.int64)
        self._num_aggs = num_aggs
        self._num_entries = 0
        self.total_probes = 0
        self.total_ops = 0

    # -- geometry --------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def num_entries(self) -> int:
        return self._num_entries

    @property
    def num_aggs(self) -> int:
        return self._num_aggs

    @property
    def slot_bytes(self) -> int:
        return 8 + 8 * max(self._num_aggs, 1)

    @property
    def nbytes(self) -> int:
        """Structure footprint used for random-access costing."""
        return self._capacity * self.slot_bytes

    @property
    def mean_probes(self) -> float:
        if self.total_ops == 0:
            return 0.0
        return self.total_probes / self.total_ops

    # -- internals -------------------------------------------------------

    def _home_slots(self, keys: np.ndarray) -> np.ndarray:
        return (_mix64(keys) & np.uint64(self._mask)).astype(np.int64)

    def _check_keys(self, keys: np.ndarray) -> np.ndarray:
        keys = np.ascontiguousarray(keys, dtype=np.int64)
        if keys.size and (
            (keys == EMPTY).any() or (keys == TOMBSTONE).any()
        ):
            raise ExecutionError("key collides with a sentinel value")
        return keys

    def _locate(
        self, keys: np.ndarray, stop_at_empty: bool
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Find the slot of each key (or, with ``stop_at_empty``, the empty
        slot where it would be inserted). Returns (slots, found_mask)."""
        n = keys.shape[0]
        slots = self._home_slots(keys)
        found = np.zeros(n, dtype=bool)
        pending = np.arange(n, dtype=np.int64)
        distance = 0
        self.total_ops += n
        while pending.size:
            distance += 1
            if distance > self._capacity + 1:
                raise ExecutionError("hash table probe loop did not converge")
            self.total_probes += pending.size
            slot = slots[pending]
            stored = self._keys[slot]
            match = stored == keys[pending]
            empty = stored == EMPTY
            found[pending[match]] = True
            if stop_at_empty:
                done = match | empty
            else:
                done = match | empty  # absent keys resolve at first empty
            slots[pending[~done]] = (slot[~done] + 1) & self._mask
            pending = pending[~done]
        return slots, found

    def _claim_empty(self, keys: np.ndarray) -> np.ndarray:
        """Insert *unique* new keys, resolving slot races; return slots."""
        n = keys.shape[0]
        slots = self._home_slots(keys)
        result = np.empty(n, dtype=np.int64)
        pending = np.arange(n, dtype=np.int64)
        distance = 0
        self.total_ops += n
        while pending.size:
            distance += 1
            if distance > self._capacity + 1:
                raise ExecutionError("hash table is full")
            self.total_probes += pending.size
            slot = slots[pending]
            stored = self._keys[slot]
            match = stored == keys[pending]
            result[pending[match]] = slot[match]
            empty = stored == EMPTY
            claimed = np.zeros(pending.size, dtype=bool)
            if empty.any():
                # Among pending keys wanting the same empty slot, only the
                # first (in batch order) may claim it this round.
                empty_idx = np.flatnonzero(empty)
                unique_slots, first = np.unique(
                    slot[empty_idx], return_index=True
                )
                winners = empty_idx[first]
                self._keys[slot[winners]] = keys[pending[winners]]
                self._num_entries += winners.size
                result[pending[winners]] = slot[winners]
                claimed[winners] = True
            done = match | claimed
            slots[pending[~done]] = (slot[~done] + 1) & self._mask
            pending = pending[~done]
        return result

    # -- public batch API --------------------------------------------------

    def upsert_slots(self, keys: np.ndarray) -> np.ndarray:
        """Return the slot for each key, inserting keys not yet present.

        Duplicate keys in the batch are handled correctly (they all map to
        the same slot).
        """
        keys = self._check_keys(keys)
        if keys.size == 0:
            return np.empty(0, dtype=np.int64)
        unique_keys, inverse = np.unique(keys, return_inverse=True)
        unique_slots = self._claim_empty(unique_keys)
        return unique_slots[inverse]

    def lookup(self, keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(slots, found)`` for each key without inserting."""
        keys = self._check_keys(keys)
        if keys.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, np.empty(0, dtype=bool)
        return self._locate(keys, stop_at_empty=True)

    def contains(self, keys: np.ndarray) -> np.ndarray:
        """Membership test (semijoin probe)."""
        return self.lookup(keys)[1]

    def add_at(self, slots: np.ndarray, agg: int, deltas: np.ndarray) -> None:
        """Scatter-add ``deltas`` into aggregate column ``agg`` at slots."""
        if not 0 <= agg < max(self._num_aggs, 1):
            raise ExecutionError(f"aggregate column {agg} out of range")
        np.add.at(
            self._aggs[:, agg], slots, np.asarray(deltas, dtype=np.int64)
        )

    def aggregate(
        self, keys: np.ndarray, deltas: np.ndarray, agg: int = 0
    ) -> None:
        """Group-by update: ``table[key][agg] += delta`` for each pair."""
        slots = self.upsert_slots(keys)
        self.add_at(slots, agg, deltas)

    def insert_keys(self, keys: np.ndarray) -> None:
        """Set-semantics insert (semijoin build side)."""
        self.upsert_slots(keys)

    def delete(self, keys: np.ndarray) -> int:
        """Delete keys (tombstoning their slots); return how many existed.

        Used by eager aggregation's cleanup scan (paper §III-E).
        """
        slots, found = self.lookup(keys)
        victims = np.unique(slots[found])
        existed = int(victims.size)
        self._keys[victims] = TOMBSTONE
        self._aggs[victims] = 0
        self._num_entries -= existed
        return existed

    def items(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return (keys, aggs) for all live entries, sorted by key."""
        live = (self._keys != EMPTY) & (self._keys != TOMBSTONE)
        keys = self._keys[live]
        aggs = self._aggs[live]
        order = np.argsort(keys, kind="stable")
        return keys[order], aggs[order]

    def get(self, key: int, agg: int = 0) -> Optional[int]:
        """Point lookup of one aggregate value (tests / debugging)."""
        slots, found = self.lookup(np.asarray([key], dtype=np.int64))
        if not found[0]:
            return None
        return int(self._aggs[slots[0], agg])
