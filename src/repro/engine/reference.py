"""Reference query evaluator: plain NumPy, no cost accounting.

Ground truth for the test suite: every code-generation strategy must
produce exactly this answer. Deliberately written in the most obvious
way possible (filter, join via membership, group with np.unique) so a
reviewer can audit its correctness at a glance.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..plan.logical import Query
from ..storage.database import Database


def evaluate(query: Query, db: Database) -> Dict[str, Any]:
    """Evaluate ``query`` and return the normalised result dict."""
    data = db.data(query.table)
    n = int(next(iter(data.values())).shape[0])
    mask = (
        np.ones(n, dtype=bool)
        if query.predicate is None
        else np.asarray(query.predicate.evaluate(data), dtype=bool)
    )

    if query.join is not None:
        join = query.join
        build = db.data(join.build_table)
        bn = int(next(iter(build.values())).shape[0])
        bmask = (
            np.ones(bn, dtype=bool)
            if join.build_predicate is None
            else np.asarray(join.build_predicate.evaluate(build), dtype=bool)
        )
        valid_keys = build[join.pk_column][bmask]
        mask = mask & np.isin(data[join.fk_column], valid_keys)

    subset = {name: values[mask] for name, values in data.items()}
    k = int(mask.sum())

    if query.group_by is None:
        result: Dict[str, Any] = {}
        for agg in query.aggregates:
            if agg.func == "count":
                result[agg.name] = k
            else:
                values = agg.expr.evaluate(subset)
                result[agg.name] = int(np.sum(values, dtype=np.int64)) if k else 0
        return result

    keys = subset[query.group_by].astype(np.int64)
    unique_keys, inverse = np.unique(keys, return_inverse=True)
    aggs = np.zeros((unique_keys.shape[0], len(query.aggregates)), dtype=np.int64)
    for i, agg in enumerate(query.aggregates):
        if agg.func == "count":
            deltas = np.ones(keys.shape[0], dtype=np.int64)
        else:
            deltas = np.asarray(agg.expr.evaluate(subset), dtype=np.int64)
        np.add.at(aggs[:, i], inverse, deltas)
    return {"keys": unique_keys, "aggs": aggs}
