"""Access, branch, and compute events emitted by executing kernels.

Generated programs run for real on NumPy columns; while running, they emit
these events describing *what the equivalent compiled C code would have
done to the memory system*. Event counts (rows touched, selectivities,
structure sizes, branch outcome fractions) are therefore **measured**, not
estimated — only latencies come from the machine model.

The event vocabulary deliberately mirrors the access-pattern taxonomy the
paper builds on (Pirk et al.'s sequential traversal / conditional read /
random access patterns).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Event:
    """Base class for all cost events."""


@dataclass(frozen=True)
class SeqRead(Event):
    """Sequential traversal read of ``n`` elements of ``width`` bytes."""

    n: int
    width: int
    array: str = ""
    #: Total bytes of the array; arrays that fit in cache (tile-sized
    #: intermediates such as ``cmp``/``idx``) are costed at cache latency.
    array_bytes: int = 0


@dataclass(frozen=True)
class SeqWrite(Event):
    """Sequential write of ``n`` elements of ``width`` bytes."""

    n: int
    width: int
    array: str = ""
    array_bytes: int = 0


@dataclass(frozen=True)
class CondRead(Event):
    """Conditional read: a forward traversal over ``n_range`` rows that
    touches only ``n_selected`` of them (via an if or a selection vector).

    This is the ``s_trav_cr`` pattern the paper identifies as the shared
    weakness of all existing strategies.
    """

    n_range: int
    n_selected: int
    width: int
    array: str = ""
    array_bytes: int = 0


@dataclass(frozen=True)
class RandomAccess(Event):
    """Uniform random accesses into a structure of ``struct_bytes`` bytes.

    ``hot_fraction`` of the accesses go to a working set of
    ``hot_bytes`` (e.g. the key-masking throwaway entry); the remainder
    are uniform over the whole structure.
    """

    n: int
    struct_bytes: int
    kind: str = "ht_lookup"
    hot_fraction: float = 0.0
    hot_bytes: int = 64
    #: Extra per-access compute (hash function, probe arithmetic).
    op_cycles: float = 0.0
    #: Set by ROF-style code that issues software prefetches far enough
    #: ahead to hide part of the access latency (paper §II-A3).
    prefetched: bool = False


@dataclass(frozen=True)
class Branch(Event):
    """``n`` executions of a conditional branch taken with probability
    ``taken_fraction`` (measured), assumed i.i.d. per the paper's uniform
    benchmark data. Costed with the two-bit-predictor steady state.
    """

    n: int
    taken_fraction: float
    site: str = ""


@dataclass(frozen=True)
class Compute(Event):
    """``n`` scalar operations of kind ``op``.

    When ``simd`` is true the cost is divided by the SIMD lane count for
    ``width``-byte elements — exactly how the prepass technique and value
    masking earn their speedups in the paper.
    """

    n: int
    op: str
    simd: bool = False
    width: int = 8


@dataclass(frozen=True)
class StatSample(Event):
    """Zero-cost telemetry sample riding the event stream.

    Instrumented operators publish measured statistics the adaptive
    loop wants but no access pattern implies — semijoin probe hit
    counts (``kind="join_match"``: ``n`` probes, ``value`` hits) and
    terminal group counts (``kind="group_cardinality"``: ``value``
    distinct groups). Priced at exactly zero cycles so telemetry never
    perturbs the simulated cost.
    """

    kind: str
    n: int = 0
    value: float = 0.0
    site: str = ""


@dataclass(frozen=True)
class TupleOverhead(Event):
    """Fixed per-tuple overhead cycles (scalar loop bookkeeping, or the
    Volcano interpreter's per-tuple dispatch for the sanity baseline)."""

    n: int
    cycles_each: float
    label: str = "loop"
