"""Keyed LRU cache of compiled query programs.

Serving the same analytical queries repeatedly should not re-run
planning and code generation per request (compare Wehrstein et al.,
"Bespoke OLAP": cache workload-specialised compiled artifacts). The
cache key captures everything compilation depends on: the query
fingerprint, the strategy, the machine model (the SWOLE planner reasons
about cache ratios), and the tile size.

Compiled programs close over the database's column arrays, so a cache
is only valid for one :class:`~repro.storage.database.Database`; the
:class:`repro.Engine` facade owns one cache per database and clears it
on :meth:`Engine.invalidate`.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Dict, Hashable, Optional, Tuple

from ..errors import ReproError
from .machine import MachineModel
from .program import CompiledQuery


#: ``id(query) -> (query, fingerprint)`` memo. The strong reference to
#: the query pins its id so a recycled address can never alias a dead
#: object; the identity check on lookup makes staleness impossible even
#: if one does. Bounded: a serving workload cycles a small set of
#: long-lived query objects, so the occasional full reset is free.
_FINGERPRINT_MEMO: Dict[int, Tuple[object, str]] = {}
_FINGERPRINT_MEMO_CAP = 1024


def query_fingerprint(query) -> str:
    """Stable fingerprint of whatever the engine can compile.

    Everything that reaches the staged lowering pipeline fingerprints by
    its operator tree (``ir:`` prefix), so two spellings of the same
    tree share one cache entry: :class:`~repro.plan.ops.LogicalPlan`
    objects directly, legacy :class:`~repro.plan.logical.Query` objects
    via :func:`~repro.plan.ops.from_query`, and migrated TPC-H names via
    their registered plan. Hand-coded TPC-H programs that have no tree
    yet stay addressed by name (``tpch:`` prefix).

    Memoized per query *object*: the fingerprint is recomputed on every
    ``Engine.execute`` for the plan key, and walking the operator tree
    is a measurable per-request cost for sub-millisecond queries. Query
    objects are immutable (frozen dataclasses / strings), so identity
    implies an unchanged fingerprint.
    """
    if isinstance(query, str):
        return _name_fingerprint(query)
    memo_key = id(query)
    hit = _FINGERPRINT_MEMO.get(memo_key)
    if hit is not None and hit[0] is query:
        return hit[1]
    fingerprint = _object_fingerprint(query)
    if len(_FINGERPRINT_MEMO) >= _FINGERPRINT_MEMO_CAP:
        _FINGERPRINT_MEMO.clear()
    _FINGERPRINT_MEMO[memo_key] = (query, fingerprint)
    return fingerprint


@lru_cache(maxsize=128)
def _name_fingerprint(name: str) -> str:
    from ..tpch.plans import PIPELINE_QUERIES, logical_plan

    if name in PIPELINE_QUERIES:
        from ..plan.ops import plan_fingerprint

        return plan_fingerprint(logical_plan(name))
    return f"tpch:{name}"


def _object_fingerprint(query) -> str:
    from ..plan.logical import Query
    from ..plan.ops import LogicalPlan, from_query, plan_fingerprint

    if isinstance(query, LogicalPlan):
        return plan_fingerprint(query)
    if isinstance(query, Query):
        return plan_fingerprint(from_query(query))
    digest = hashlib.sha256(repr(query).encode()).hexdigest()[:16]
    return f"query:{digest}"


@lru_cache(maxsize=64)
def machine_fingerprint(machine: MachineModel) -> str:
    """Stable fingerprint of a machine model (frozen dataclass repr).

    Memoized: the fingerprint is recomputed on every ``Engine.execute``
    for the plan key, and hashing the model's repr is a measurable
    per-query cost for sub-millisecond queries.
    """
    digest = hashlib.sha256(repr(machine).encode()).hexdigest()[:16]
    return f"machine:{digest}"


def plan_key(
    query,
    strategy: str,
    machine: MachineModel,
    tile: int,
    backend: str = "instrumented",
    shards: int = 0,
    encoding: str = "auto",
) -> Tuple[str, str, str, int, str, int, str]:
    """The full cache key of one compilation.

    The backend is part of the key: a kernel generated for the
    vectorized backend must never be served to a request that asked
    for the instrumented (costed) one, or vice versa. The shard count
    is too (``0`` = in-process): the shard path canonicalises legacy
    query objects to their operator tree before compiling — so parent
    and worker processes compile the *same* program — while the
    in-process path may compile a hand-coded module whose ctx/partial
    shapes differ; the two must never share an entry. So is the
    access-encoding decision (the caller resolves ``"auto"`` to
    ``"auto:<database encoding fingerprint>"``): a program compiled
    over code streams closes over different physical arrays than one
    compiled over decoded values.
    """
    return (
        query_fingerprint(query),
        strategy,
        machine_fingerprint(machine),
        tile,
        backend,
        shards,
        encoding,
    )


@dataclass
class PlanCacheStats:
    """Hit/miss/eviction counters of one plan cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }


class _InFlightCompile:
    """One key's compilation in progress: waiters block on the event,
    then read either the compiled value (also in the cache by then) or
    the leader's error."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Optional[CompiledQuery] = None
        self.error: Optional[BaseException] = None


@dataclass
class PlanCache:
    """LRU cache mapping plan keys to :class:`CompiledQuery` programs.

    Thread-safe: the query service executes requests on several threads
    against one engine. Lookups and inserts are serialised by an
    internal lock; the compile-on-miss path runs *outside* it under a
    per-key in-flight guard (singleflight), so a slow compilation of
    one plan never blocks hits — or misses — on any other key, while a
    plan still compiles at most once per key under concurrent first
    requests.
    """

    capacity: int = 64
    stats: PlanCacheStats = field(default_factory=PlanCacheStats)
    _entries: "OrderedDict[Hashable, CompiledQuery]" = field(
        default_factory=OrderedDict
    )
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )
    _in_flight: "Dict[Hashable, _InFlightCompile]" = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ReproError("plan cache capacity must be at least 1")

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: Hashable) -> Optional[CompiledQuery]:
        """Look up a compiled program, counting the hit or miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def put(self, key: Hashable, compiled: CompiledQuery) -> None:
        """Insert (or refresh) an entry, evicting the LRU past capacity."""
        with self._lock:
            self._entries[key] = compiled
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def get_or_compile(
        self, key: Hashable, compile_fn: Callable[[], CompiledQuery]
    ) -> Tuple[CompiledQuery, bool]:
        """Return ``(program, was_hit)``, compiling on miss.

        The miss path compiles **outside** the cache lock: the first
        thread to miss on a key becomes its *leader* and registers an
        in-flight guard, later arrivals for the **same** key wait on
        that guard and are then answered as hits from the leader's
        insert, and requests for **other** keys proceed entirely
        unblocked. (The previous implementation compiled while holding
        the global lock, so one cache miss stalled every strategy's hot
        path.) If the leader's compilation raises, waiters re-raise the
        same error; the guard is removed either way, so a later request
        simply retries the compile.
        """
        while True:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    self.stats.hits += 1
                    return entry, True
                flight = self._in_flight.get(key)
                if flight is None:
                    flight = _InFlightCompile()
                    self._in_flight[key] = flight
                    self.stats.misses += 1
                    break  # this thread leads the compilation
            # Another thread is compiling this key: wait outside the
            # lock, then re-check (the leader inserts into the cache
            # before resolving the guard, so the retry normally hits).
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
        try:
            compiled = compile_fn()
        except BaseException as exc:
            flight.error = exc
            with self._lock:
                self._in_flight.pop(key, None)
            flight.event.set()
            raise
        self.put(key, compiled)
        with self._lock:
            self._in_flight.pop(key, None)
        flight.value = compiled
        flight.event.set()
        return compiled, False

    def invalidate(self, fingerprint: Optional[str] = None) -> int:
        """Drop cached plans; returns how many entries were dropped.

        Without an argument, every entry goes (data changed / database
        swapped) and the invalidation counter ticks once, as before.
        With a query ``fingerprint`` (``plan_key(...)[0]``), only that
        query's compilations are dropped — every strategy / machine /
        tile / backend cell — and the counter ticks once per dropped
        entry. The adaptive re-optimizer uses the targeted form so a
        drifted plan recompiles without cooling every other query.
        """
        if fingerprint is not None:
            return self.invalidate_where(
                lambda key: isinstance(key, tuple)
                and bool(key)
                and key[0] == fingerprint
            )
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.stats.invalidations += 1
            return dropped

    def invalidate_where(self, pred: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose key satisfies ``pred``; returns the
        count. The invalidation counter ticks once per dropped entry.
        ``pred`` runs under the cache lock — keep it cheap and never
        have it touch the cache."""
        with self._lock:
            doomed = [key for key in self._entries if pred(key)]
            for key in doomed:
                del self._entries[key]
            self.stats.invalidations += len(doomed)
            return len(doomed)

    def keys(self):
        """Current keys, LRU first (tests / introspection)."""
        with self._lock:
            return list(self._entries)
