"""Cost accounting: converts measured event streams into simulated cycles.

This is the runtime half of the reproduction's simulator substrate. Each
kernel in a compiled program executes for real (NumPy) and emits events
(:mod:`repro.engine.events`) describing the access pattern the equivalent
compiled C would have. The :class:`CostAccountant` prices each event with
closed-form models of:

* sequential streaming (prefetcher-friendly per-line cost),
* conditional reads (density-dependent line touch probability, with the
  prefetcher degrading as density falls — the heart of the paper's
  argument that `s_trav_cr` is a bad pattern),
* uniform random accesses (capacity-apportioned cache latency, plus a
  "hot entry" path for the key-masking throwaway entry, whose residency
  degrades as cache-polluting valid lookups become more frequent),
* branches (two-bit-predictor steady state — the 50 % selectivity hump),
* scalar vs SIMD compute.

The closed forms are validated against the exact trace-driven simulators
in :mod:`repro.engine.cache` and :mod:`repro.engine.branch` by the test
suite and the simulator ablation bench.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import CostModelError
from .branch import steady_state_mispredict_rate
from .events import (
    Branch,
    CondRead,
    Compute,
    Event,
    RandomAccess,
    SeqRead,
    SeqWrite,
    StatSample,
    TupleOverhead,
)
from .machine import MachineModel


@dataclass(frozen=True)
class StatsOverride:
    """Measured cardinalities that replace sampled statistics.

    The pass framework estimates selectivities from a bounded prefix
    sample of each base table; a clustered column (or a workload whose
    parameters drifted away from the sample) makes those estimates
    wrong, and every cost-guided pullup decision inherits the error.
    The adaptive re-optimizer (:mod:`repro.adaptive`) builds one of
    these from the feedback store's EWMAs and threads it through
    :func:`repro.plan.passes.run_passes`, so a recompile prices its
    candidates with what the engine *measured* instead of what the
    sample guessed.

    Every field is optional; ``None`` keeps the sampled value.

    selectivity:
        Measured survival fraction of the probe spine (local filters
        times semijoin matches) — what the instrumented backend's
        conditional-read and branch events report.
    match_fraction:
        Measured semijoin match fraction, when known separately from
        the local selectivity.
    group_cardinality:
        Measured distinct group count of the terminal aggregation.
    """

    selectivity: Optional[float] = None
    match_fraction: Optional[float] = None
    group_cardinality: Optional[int] = None

    def describe(self) -> str:
        parts = []
        if self.selectivity is not None:
            parts.append(f"selectivity={self.selectivity:.6f}")
        if self.match_fraction is not None:
            parts.append(f"match_fraction={self.match_fraction:.6f}")
        if self.group_cardinality is not None:
            parts.append(f"group_cardinality={self.group_cardinality}")
        return ", ".join(parts) if parts else "(empty)"


class CostAccountant:
    """Prices individual events in simulated cycles."""

    def __init__(self, machine: MachineModel) -> None:
        self.machine = machine

    # -- helpers ---------------------------------------------------------

    def _resident(self, array_bytes: int) -> bool:
        """Whether an array is a cache-resident intermediate.

        A non-zero ``array_bytes`` marks a tile-sized intermediate
        (``cmp``/``idx``/``tmp``/``key``): the code generator sizes tiles
        to fit cache by construction, so these are resident regardless of
        how far the benchmark harness scaled the cache capacities.
        """
        return array_bytes > 0

    def _seq_cost(self, n: int, width: int, array_bytes: int) -> float:
        if n <= 0:
            return 0.0
        lines = math.ceil(n * width / self.machine.line_bytes)
        per_line = (
            self.machine.lat_l1
            if self._resident(array_bytes)
            else self.machine.seq_line_cycles
        )
        return lines * per_line

    # -- event pricing ---------------------------------------------------

    def seq_read(self, event: SeqRead) -> float:
        return self._seq_cost(event.n, event.width, event.array_bytes)

    def seq_write(self, event: SeqWrite) -> float:
        return self._seq_cost(event.n, event.width, event.array_bytes)

    def cond_read(self, event: CondRead) -> float:
        """Density-dependent conditional read cost.

        With selection density ``d`` and ``epl`` elements per line, the
        probability a line holds at least one selected element is
        ``1 - (1-d)^epl``. Touched lines cost the streaming rate when the
        traversal is dense (prefetcher locks on) and approach the full
        memory latency as the touched lines thin out.
        """
        if event.n_range <= 0 or event.n_selected <= 0:
            return 0.0
        if event.n_selected > event.n_range:
            raise CostModelError("conditional read selected more than range")
        machine = self.machine
        if self._resident(event.array_bytes):
            lines = math.ceil(
                event.n_selected * event.width / machine.line_bytes
            )
            return lines * machine.lat_l1
        density = event.n_selected / event.n_range
        epl = max(1, machine.line_bytes // event.width)
        frac_lines = 1.0 - (1.0 - density) ** epl
        total_lines = event.n_range * event.width / machine.line_bytes
        touched = total_lines * frac_lines
        # Touched-line cost interpolates between the streaming rate (the
        # prefetcher locks onto dense forward traversals) and a miss
        # (isolated touches defeat it). The quadratic keeps moderately
        # dense traversals close to streaming, as hardware prefetchers
        # do, and the miss term is MLP-hidden like any independent load.
        per_line = machine.seq_line_cycles + (1.0 - frac_lines) ** 2 * (
            (machine.lat_mem - machine.seq_line_cycles) / machine.mlp
        )
        return touched * per_line

    def random_access(self, event: RandomAccess) -> float:
        """Uniform random accesses, with an optional hot-entry fraction.

        The hot entry (key masking's throwaway slot) is priced at L1
        latency scaled up by the probability it was evicted, which grows
        with the footprint of the cold accesses polluting the cache
        between consecutive hot touches.
        """
        if event.n <= 0:
            return 0.0
        machine = self.machine
        if not 0.0 <= event.hot_fraction <= 1.0:
            raise CostModelError("hot_fraction must be in [0, 1]")
        cold_latency = machine.random_latency(event.struct_bytes)
        if event.prefetched:
            cold_latency *= 1.0 - machine.prefetch_hide_fraction
        cold_n = event.n * (1.0 - event.hot_fraction)
        hot_n = event.n * event.hot_fraction
        hot_latency = self._hot_latency(event)
        # Per-tuple accesses are independent, so MLP hides most of each
        # access's latency behind its neighbours' (floor: one issue slot).
        cycles = cold_n * max(cold_latency / machine.mlp, 0.5) + hot_n * max(
            hot_latency / machine.mlp, 0.5
        )
        return cycles + event.n * event.op_cycles

    def _hot_latency(self, event: RandomAccess) -> float:
        """Expected latency of hot-entry accesses.

        Between two hot touches there are on average
        ``(1 - hot) / hot`` cold accesses. Each cold miss to a structure
        larger than the LLC has a chance of evicting the hot line; with a
        cache of ``C`` lines the per-miss eviction probability is ~``1/C``
        only for truly random replacement, but pollution pressure rises
        with miss *rate*, so we model eviction probability per interval as
        ``1 - exp(-cold_run * pressure)`` where the pressure grows with
        how far the structure spills past the LLC.
        """
        machine = self.machine
        if event.hot_fraction <= 0.0:
            return machine.lat_l1
        cold_run = (1.0 - event.hot_fraction) / event.hot_fraction
        spill = max(0.0, 1.0 - machine.llc_bytes / max(event.struct_bytes, 1))
        llc_lines = machine.llc_bytes / machine.line_bytes
        pressure = spill / max(llc_lines * 0.01, 1.0)
        evicted = 1.0 - math.exp(-cold_run * pressure)
        return (
            machine.lat_l1 * (1.0 - evicted)
            + machine.random_latency(event.struct_bytes) * evicted
        )

    def branch(self, event: Branch) -> float:
        rate = steady_state_mispredict_rate(event.taken_fraction)
        return event.n * rate * self.machine.mispredict_penalty

    def compute(self, event: Compute) -> float:
        if event.simd:
            per = self.machine.simd_cost(event.op, event.width)
        else:
            per = self.machine.op_cost(event.op)
        return event.n * per

    def tuple_overhead(self, event: TupleOverhead) -> float:
        return event.n * event.cycles_each

    def cycles(self, event: Event) -> float:
        """Price any event."""
        if isinstance(event, SeqRead):
            return self.seq_read(event)
        if isinstance(event, SeqWrite):
            return self.seq_write(event)
        if isinstance(event, CondRead):
            return self.cond_read(event)
        if isinstance(event, RandomAccess):
            return self.random_access(event)
        if isinstance(event, Branch):
            return self.branch(event)
        if isinstance(event, Compute):
            return self.compute(event)
        if isinstance(event, TupleOverhead):
            return self.tuple_overhead(event)
        if isinstance(event, StatSample):
            return 0.0  # telemetry only; never perturbs simulated cost
        raise CostModelError(f"unknown event type {type(event).__name__}")


@dataclass
class CostReport:
    """Aggregated simulated cost of one program run."""

    machine: MachineModel
    total_cycles: float = 0.0
    by_kernel: Dict[str, float] = field(default_factory=dict)
    by_kind: Dict[str, float] = field(default_factory=dict)
    events: List[Tuple[str, Event, float]] = field(default_factory=list)
    #: Run-level metrics (:class:`repro.engine.metrics.RunMetrics`),
    #: attached by the morsel executor; ``None`` for plain ``.run()``s.
    metrics: Optional[object] = None

    def add(self, kernel: str, event: Event, cycles: float) -> None:
        self.total_cycles += cycles
        self.by_kernel[kernel] = self.by_kernel.get(kernel, 0.0) + cycles
        kind = type(event).__name__
        self.by_kind[kind] = self.by_kind.get(kind, 0.0) + cycles
        self.events.append((kernel, event, cycles))

    @property
    def seconds(self) -> float:
        """Simulated wall time at the machine's nominal clock."""
        return self.machine.cycles_to_seconds(self.total_cycles)

    def breakdown(self) -> str:
        """Human-readable per-kernel cost table."""
        lines = [f"total: {self.total_cycles:,.0f} cycles ({self.seconds:.4f} s)"]
        for kernel, cycles in sorted(
            self.by_kernel.items(), key=lambda item: -item[1]
        ):
            share = 100.0 * cycles / self.total_cycles if self.total_cycles else 0
            lines.append(f"  {kernel:<40s} {cycles:>14,.0f}  ({share:5.1f}%)")
        return "\n".join(lines)


#: Event classes whose cycles stream through the memory system and can be
#: hidden under compute by an out-of-order core (and vice versa).
_STREAM_EVENTS = (SeqRead, SeqWrite, CondRead)
#: Event classes that execute on the core and overlap with streams.
_COMPUTE_EVENTS = (Compute, TupleOverhead)
# RandomAccess and Branch are *serial*: dependent pointer chases and
# pipeline flushes cannot be hidden under the loop's other work.


class Tracer:
    """Collects events from running kernels and prices them eagerly.

    Inside an :meth:`overlap` scope — one per generated loop — streaming
    memory work and compute overlap as they do on an out-of-order core:
    the scope costs ``max(stream, compute) + serial``, which is exactly
    the ``max(comp, read)`` structure of the paper's cost models. Event
    cycles in the report are scaled proportionally so breakdowns still
    sum to the total.
    """

    def __init__(self, machine: MachineModel) -> None:
        self.machine = machine
        self.accountant = CostAccountant(machine)
        self.report = CostReport(machine=machine)
        self._kernel_stack: List[str] = []
        self._overlap_buffer: List[Tuple[str, Event, float]] = []
        self._overlap_depth = 0

    def reset(self) -> "Tracer":
        """Detach the current report and start a fresh one in place.

        The pooled morsel executor harvests ``report`` after every
        morsel; resetting reuses this tracer (and its accountant)
        instead of reallocating them per morsel. Returns self.
        """
        self.report = CostReport(machine=self.machine)
        self._kernel_stack.clear()
        self._overlap_buffer.clear()
        self._overlap_depth = 0
        return self

    @property
    def current_kernel(self) -> str:
        return self._kernel_stack[-1] if self._kernel_stack else "<toplevel>"

    @contextmanager
    def kernel(self, label: str) -> Iterator[None]:
        """Scope subsequent events under a kernel label (nestable)."""
        self._kernel_stack.append(label)
        try:
            yield
        finally:
            self._kernel_stack.pop()

    @contextmanager
    def overlap(self) -> Iterator[None]:
        """Overlap streaming memory and compute within the scope.

        Nested scopes are inert (the outermost wins).
        """
        self._overlap_depth += 1
        try:
            yield
        finally:
            self._overlap_depth -= 1
            if self._overlap_depth == 0:
                self._flush_overlap()

    def _flush_overlap(self) -> None:
        buffered = self._overlap_buffer
        self._overlap_buffer = []
        stream = sum(
            cycles
            for _, event, cycles in buffered
            if isinstance(event, _STREAM_EVENTS)
        )
        compute = sum(
            cycles
            for _, event, cycles in buffered
            if isinstance(event, _COMPUTE_EVENTS)
        )
        overlappable = stream + compute
        effective = max(stream, compute)
        scale = effective / overlappable if overlappable > 0 else 1.0
        for kernel, event, cycles in buffered:
            if isinstance(event, _STREAM_EVENTS + _COMPUTE_EVENTS):
                self.report.add(kernel, event, cycles * scale)
            else:
                self.report.add(kernel, event, cycles)

    def emit(self, event: Event) -> float:
        """Record one event; return the cycles it was priced at."""
        cycles = self.accountant.cycles(event)
        if self._overlap_depth > 0:
            self._overlap_buffer.append((self.current_kernel, event, cycles))
        else:
            self.report.add(self.current_kernel, event, cycles)
        return cycles
