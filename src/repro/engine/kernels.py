"""The shared kernel library composed by every code-generation strategy.

Each kernel does the real work with NumPy *and* emits the events the
equivalent compiled C would generate against the memory system. All
strategies use the same kernels (as the paper uses the same library code
across its hand-coded strategies) and differ only in which kernels they
compose and with which access patterns.

Conventions:

* ``session`` is always the first argument.
* ``array`` names identify the column being touched in cost breakdowns.
* Element width is taken from the NumPy dtype.
* Kernels that read through a selection vector emit
  :class:`~repro.engine.events.CondRead` (the ``s_trav_cr`` pattern);
  kernels used by predicate pullups emit :class:`SeqRead` instead — that
  substitution *is* the paper's contribution, made measurable.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import ExecutionError
from .events import (
    Branch,
    CondRead,
    Compute,
    RandomAccess,
    SeqRead,
    SeqWrite,
    TupleOverhead,
)
from .hashtable import NULL_KEY, HashTable
from .session import Session
from ..storage.bitmap import BlockCompressedBitmap, PositionalBitmap

#: Comparison operators supported by predicate kernels.
_COMPARE_OPS = {
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
    "==": np.equal,
    "!=": np.not_equal,
}


def _width(values: np.ndarray) -> int:
    return int(values.dtype.itemsize)


# ---------------------------------------------------------------------------
# Sequential column access
# ---------------------------------------------------------------------------


def seq_read(session: Session, values: np.ndarray, array: str) -> np.ndarray:
    """Sequentially read a whole column (predicate pullup's access path)."""
    session.tracer.emit(
        SeqRead(n=values.shape[0], width=_width(values), array=array)
    )
    return values


def seq_write(
    session: Session,
    values: np.ndarray,
    array: str,
    resident: bool = False,
) -> np.ndarray:
    """Account a sequential write of ``values`` (e.g. a masked key array).

    ``resident`` marks tile-sized intermediates that stay in cache.
    """
    array_bytes = (
        session.intermediate_bytes(_width(values)) if resident else 0
    )
    session.tracer.emit(
        SeqWrite(
            n=values.shape[0],
            width=_width(values),
            array=array,
            array_bytes=array_bytes,
        )
    )
    return values


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------


def compare(
    session: Session,
    values: np.ndarray,
    op: str,
    operand,
    array: str,
    simd: bool = True,
    read: bool = True,
) -> np.ndarray:
    """Evaluate ``values <op> operand`` over the whole column.

    This is the *prepass* form: no control dependency, so it is SIMD-able
    (``simd=True``). Data-centric code passes ``simd=False`` because its
    ``if`` precludes vectorisation. The comparison result is written to a
    tile-resident ``cmp`` array.
    """
    try:
        func = _COMPARE_OPS[op]
    except KeyError as exc:
        raise ExecutionError(f"unknown comparison {op!r}") from exc
    if read:
        seq_read(session, values, array)
    session.tracer.emit(
        Compute(n=values.shape[0], op="cmp", simd=simd, width=_width(values))
    )
    result = func(values, operand)
    seq_write(session, result.view(np.uint8), f"cmp({array})", resident=True)
    return result


def compare_columns(
    session: Session,
    left: np.ndarray,
    right: np.ndarray,
    op: str,
    arrays: Tuple[str, str],
    simd: bool = True,
    read: bool = True,
) -> np.ndarray:
    """Column-vs-column comparison (e.g. ``l_commitdate < l_receiptdate``)."""
    try:
        func = _COMPARE_OPS[op]
    except KeyError as exc:
        raise ExecutionError(f"unknown comparison {op!r}") from exc
    if read:
        seq_read(session, left, arrays[0])
        seq_read(session, right, arrays[1])
    session.tracer.emit(
        Compute(n=left.shape[0], op="cmp", simd=simd, width=_width(left))
    )
    result = func(left, right)
    seq_write(
        session, result.view(np.uint8), f"cmp({arrays[0]})", resident=True
    )
    return result


def isin(
    session: Session,
    values: np.ndarray,
    members: Sequence[int],
    array: str,
    simd: bool = True,
    read: bool = True,
) -> np.ndarray:
    """``value IN (...)`` evaluated as an OR of SIMD comparisons."""
    if read:
        seq_read(session, values, array)
    session.tracer.emit(
        Compute(
            n=values.shape[0] * max(len(members), 1),
            op="cmp",
            simd=simd,
            width=_width(values),
        )
    )
    result = np.isin(values, np.asarray(list(members), dtype=values.dtype))
    seq_write(session, result.view(np.uint8), f"cmp({array})", resident=True)
    return result


def string_match(
    session: Session,
    mask: np.ndarray,
    array: str,
    per_tuple_op: str = "strcmp",
) -> np.ndarray:
    """Account a string/LIKE predicate whose boolean result is ``mask``.

    LIKE with wildcards cannot be SIMD-vectorised (paper's Q13
    discussion), so the cost is scalar per tuple regardless of strategy.
    The caller computes ``mask`` from decoded/dictionary data.
    """
    session.tracer.emit(
        Compute(n=mask.shape[0], op=per_tuple_op, simd=False, width=1)
    )
    seq_write(session, mask.view(np.uint8), f"cmp({array})", resident=True)
    return mask


def combine_and(session: Session, *masks: np.ndarray) -> np.ndarray:
    """AND several prepass results (SIMD-able byte ops)."""
    if not masks:
        raise ExecutionError("combine_and needs at least one mask")
    result = masks[0]
    for mask in masks[1:]:
        session.tracer.emit(
            Compute(n=result.shape[0], op="and", simd=True, width=1)
        )
        result = result & mask
    return result


def combine_or(session: Session, *masks: np.ndarray) -> np.ndarray:
    """OR several prepass results."""
    if not masks:
        raise ExecutionError("combine_or needs at least one mask")
    result = masks[0]
    for mask in masks[1:]:
        session.tracer.emit(
            Compute(n=result.shape[0], op="or", simd=True, width=1)
        )
        result = result | mask
    return result


def branch(session: Session, mask: np.ndarray, site: str) -> np.ndarray:
    """A conditional branch per tuple on ``mask`` (data-centric ``if``).

    Emits the branch event with the *measured* taken fraction; returns the
    mask unchanged for chaining.
    """
    n = int(mask.shape[0])
    taken = float(mask.mean()) if n else 0.0
    session.tracer.emit(Branch(n=n, taken_fraction=taken, site=site))
    return mask


# ---------------------------------------------------------------------------
# Selection vectors and conditional access
# ---------------------------------------------------------------------------


def selection_vector(
    session: Session, mask: np.ndarray, branching: bool = False
) -> np.ndarray:
    """Build a selection vector (indexes of set positions) from a mask.

    The default is the *no-branch* (predicated) version from Ross: a data
    dependency costing a couple of cycles for every tuple. The branching
    version costs per selected tuple but pays mispredictions.
    """
    n = int(mask.shape[0])
    idx = np.flatnonzero(mask).astype(np.int64)
    if branching:
        taken = float(mask.mean()) if n else 0.0
        session.tracer.emit(Branch(n=n, taken_fraction=taken, site="selvec"))
        session.tracer.emit(Compute(n=idx.shape[0], op="mov", simd=False))
    else:
        session.tracer.emit(Compute(n=n, op="select", simd=False))
    seq_write(session, idx, "idx", resident=True)
    return idx


def gather(
    session: Session,
    values: np.ndarray,
    idx: np.ndarray,
    array: str,
    n_range: Optional[int] = None,
) -> np.ndarray:
    """Conditional read of ``values`` through a selection vector.

    Emits the ``s_trav_cr`` CondRead (density measured from ``idx``) plus
    the per-element gather overhead. This is the pattern SWOLE eliminates.
    """
    n_range = values.shape[0] if n_range is None else n_range
    k = int(idx.shape[0])
    session.tracer.emit(
        CondRead(
            n_range=int(n_range), n_selected=k, width=_width(values), array=array
        )
    )
    session.tracer.emit(Compute(n=k, op="gather", simd=False))
    return values[idx]


def conditional_read(
    session: Session, values: np.ndarray, mask: np.ndarray, array: str
) -> np.ndarray:
    """Conditional read guarded by a per-tuple ``if`` (data-centric form).

    Costs the same CondRead pattern but without gather overhead (the
    branch itself was already costed by :func:`branch`).
    """
    k = int(mask.sum())
    session.tracer.emit(
        CondRead(
            n_range=values.shape[0],
            n_selected=k,
            width=_width(values),
            array=array,
        )
    )
    return values[mask]


# ---------------------------------------------------------------------------
# Arithmetic and aggregation
# ---------------------------------------------------------------------------


def arith(
    session: Session,
    op: str,
    left: np.ndarray,
    right,
    simd: bool = True,
) -> np.ndarray:
    """Elementwise arithmetic with cost accounting.

    ``op`` is one of add/sub/mul/div. Division results are truncated
    toward zero to match integer codegen semantics.
    """
    if op not in ("add", "sub", "mul", "div"):
        raise ExecutionError(f"unknown arithmetic op {op!r}")
    n = int(np.shape(left)[0])
    width = _width(left)
    session.tracer.emit(Compute(n=n, op=op, simd=simd, width=width))
    if op == "add":
        return left + right
    if op == "sub":
        return left - right
    if op == "mul":
        return left * right
    if op == "div":
        divisor = np.asarray(right)
        if divisor.size and (divisor == 0).any():
            raise ExecutionError("division by zero in arith kernel")
        quotient = np.floor_divide(left, right)
        return quotient
    raise ExecutionError(f"unknown arithmetic op {op!r}")


def reduce_sum(
    session: Session, values: np.ndarray, simd: bool = True
) -> int:
    """Sum a vector of already-materialised values."""
    session.tracer.emit(
        Compute(n=int(values.shape[0]), op="add", simd=simd, width=_width(values))
    )
    return int(values.sum(dtype=np.int64))


def masked_sum(
    session: Session,
    values: np.ndarray,
    mask: np.ndarray,
    array: str,
    read: bool = True,
) -> int:
    """Value masking aggregation (paper §III-A, Fig. 3).

    Unconditionally reads ``values`` sequentially, multiplies by the 0/1
    predicate result, and sums — all SIMD-able, all sequential. The wasted
    work on masked tuples is the price of the access pattern.
    """
    if read:
        seq_read(session, values, array)
    n = int(values.shape[0])
    width = _width(values)
    session.tracer.emit(Compute(n=n, op="mul", simd=True, width=width))
    session.tracer.emit(Compute(n=n, op="add", simd=True, width=width))
    masked = values * mask.astype(values.dtype)
    return int(masked.sum(dtype=np.int64))


def scalar_loop(session: Session, n: int, label: str = "loop") -> None:
    """Per-tuple loop overhead of scalar (non-tiled) generated code."""
    session.tracer.emit(
        TupleOverhead(
            n=n, cycles_each=session.machine.scalar_loop_cycles, label=label
        )
    )


def interpreter_overhead(session: Session, n: int, operators: int = 1) -> None:
    """Per-tuple Volcano iterator overhead (sanity-check baseline only)."""
    session.tracer.emit(
        TupleOverhead(
            n=n * operators,
            cycles_each=session.machine.interpreter_tuple_cycles,
            label="iterator",
        )
    )


# ---------------------------------------------------------------------------
# Hash table kernels
# ---------------------------------------------------------------------------


def _ht_op_cycles(session: Session, table: HashTable) -> float:
    """Per-access compute: hash plus expected probe arithmetic."""
    probes = max(table.mean_probes, 1.0)
    return session.machine.op_cost("hash") + (probes - 1.0) * 2.0


def ht_aggregate(
    session: Session,
    table: HashTable,
    keys: np.ndarray,
    deltas: np.ndarray,
    agg: int = 0,
    kind: str = "ht_insert",
) -> None:
    """Group-by insert/update: ``table[key][agg] += delta``.

    Key-masked batches (keys equal to ``NULL_KEY``) are detected and
    costed as hot-entry accesses — the throwaway entry of paper §III-B.
    """
    hot = float((keys == NULL_KEY).mean()) if keys.size else 0.0
    table.aggregate(keys, deltas, agg=agg)
    session.tracer.emit(
        RandomAccess(
            n=int(keys.shape[0]),
            struct_bytes=table.nbytes,
            kind=kind,
            hot_fraction=hot,
            op_cycles=_ht_op_cycles(session, table),
            prefetched=session.knobs.ht_prefetch,
        )
    )


def ht_insert_keys(
    session: Session, table: HashTable, keys: np.ndarray
) -> None:
    """Set-semantics build (semijoin / join build side)."""
    table.insert_keys(keys)
    session.tracer.emit(
        RandomAccess(
            n=int(keys.shape[0]),
            struct_bytes=table.nbytes,
            kind="ht_insert",
            op_cycles=_ht_op_cycles(session, table),
            prefetched=session.knobs.ht_prefetch,
        )
    )


def ht_lookup(
    session: Session, table: HashTable, keys: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Probe: returns (slots, found). Hot-entry handling as in aggregate."""
    hot = float((keys == NULL_KEY).mean()) if keys.size else 0.0
    slots, found = table.lookup(keys)
    session.tracer.emit(
        RandomAccess(
            n=int(keys.shape[0]),
            struct_bytes=table.nbytes,
            kind="ht_lookup",
            hot_fraction=hot,
            op_cycles=_ht_op_cycles(session, table),
            prefetched=session.knobs.ht_prefetch,
        )
    )
    return slots, found


def ht_add_at(
    session: Session,
    table: HashTable,
    slots: np.ndarray,
    agg: int,
    deltas: np.ndarray,
) -> None:
    """Scatter-add into already-resolved slots (cost: the adds only —
    the random access was already paid by the lookup that produced
    ``slots``)."""
    table.add_at(slots, agg, deltas)
    session.tracer.emit(
        Compute(n=int(slots.shape[0]), op="add", simd=False, width=8)
    )


def ht_delete(
    session: Session, table: HashTable, keys: np.ndarray
) -> int:
    """Delete keys (eager aggregation's cleanup scan)."""
    existed = table.delete(keys)
    session.tracer.emit(
        RandomAccess(
            n=int(keys.shape[0]),
            struct_bytes=table.nbytes,
            kind="ht_delete",
            op_cycles=_ht_op_cycles(session, table),
        )
    )
    return existed


# ---------------------------------------------------------------------------
# Positional bitmap kernels (paper §III-D)
# ---------------------------------------------------------------------------


def bitmap_build_mask(
    session: Session, bitmap: PositionalBitmap, mask: np.ndarray, array: str
) -> PositionalBitmap:
    """Unconditional bitmap build: one sequential write of the whole map."""
    bitmap.set_from_mask(mask)
    session.tracer.emit(
        SeqWrite(n=bitmap.nbytes, width=1, array=array, array_bytes=0)
    )
    return bitmap


def bitmap_build_offsets(
    session: Session,
    bitmap: PositionalBitmap,
    offsets: np.ndarray,
    array: str,
) -> PositionalBitmap:
    """Selection-vector bitmap build: set bits only for selected rows."""
    bitmap.set_offsets(offsets)
    session.tracer.emit(
        RandomAccess(
            n=int(offsets.shape[0]),
            struct_bytes=bitmap.nbytes,
            kind="bitmap_set",
        )
    )
    return bitmap


def bitmap_probe(
    session: Session,
    bitmap,
    offsets: np.ndarray,
    array: str,
) -> np.ndarray:
    """Positional probe: test the bit at each foreign-key offset.

    The offsets themselves come from the FK index, which the caller scans
    sequentially (and accounts via :func:`seq_read`). The bitmap accesses
    are random but the structure is tiny (paper: 100M rows ~= 12.5 MB),
    so the capacity model prices them at cache latency. Works for both
    packed and block-compressed bitmaps; compressed ones pay an extra flag
    check per probe.
    """
    result = bitmap.test(offsets)
    op_cycles = 0.0
    if isinstance(bitmap, BlockCompressedBitmap):
        op_cycles = 2.0  # flag load + branch-free select
    session.tracer.emit(
        RandomAccess(
            n=int(offsets.shape[0]),
            struct_bytes=bitmap.nbytes,
            kind="bitmap_test",
            op_cycles=op_cycles,
        )
    )
    return result
