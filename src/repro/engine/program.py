"""Compiled query programs.

A code-generation strategy compiles a query into a :class:`CompiledQuery`:
the emitted C-like source (what the strategy *would* hand to a compiler —
shown by the examples and compared against the paper's Figures 1/3/4/5)
plus an executable kernel composition. Running the program produces both
the real query answer and the simulated-cost report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

import numpy as np

from .costing import CostReport
from .session import Session


@dataclass
class QueryResult:
    """The answer plus the cost report of one program run."""

    value: Dict[str, Any]
    report: CostReport

    @property
    def cycles(self) -> float:
        return self.report.total_cycles

    @property
    def seconds(self) -> float:
        return self.report.seconds

    def scalar(self, name: str = "sum") -> int:
        """Convenience accessor for single-aggregate results."""
        return self.value[name]

    def groups(self) -> Dict[int, tuple]:
        """Grouped results as a key -> aggregates mapping (sorted keys)."""
        keys = np.asarray(self.value["keys"])
        aggs = np.asarray(self.value["aggs"])
        return {int(k): tuple(int(a) for a in row) for k, row in zip(keys, aggs)}


@dataclass
class CompiledQuery:
    """A query compiled by one strategy: source text + runnable kernels."""

    name: str
    strategy: str
    source: str
    _fn: Callable[[Session], Dict[str, Any]]
    notes: Dict[str, Any] = field(default_factory=dict)

    def run(self, session: Optional[Session] = None) -> QueryResult:
        """Execute the program; return the answer and its cost report.

        A fresh tracer is used per run so repeated runs do not accumulate.
        """
        if session is None:
            session = Session()
        session.reset()
        with session.tracer.kernel(f"{self.strategy}:{self.name}"):
            value = self._fn(session)
        return QueryResult(value=value, report=session.tracer.report)


def results_equal(a: QueryResult, b: QueryResult) -> bool:
    """Structural equality of two query answers (ignores costs).

    Scalar aggregates compare exactly; grouped results compare as sorted
    key -> aggregates mappings.
    """
    if set(a.value) != set(b.value):
        return False
    for key in a.value:
        lhs, rhs = a.value[key], b.value[key]
        if isinstance(lhs, np.ndarray) or isinstance(rhs, np.ndarray):
            if not np.array_equal(np.asarray(lhs), np.asarray(rhs)):
                return False
        elif lhs != rhs:
            return False
    return True
