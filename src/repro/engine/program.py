"""Compiled query programs.

A code-generation strategy compiles a query into a :class:`CompiledQuery`:
the emitted C-like source (what the strategy *would* hand to a compiler —
shown by the examples and compared against the paper's Figures 1/3/4/5)
plus an executable kernel composition. Running the program produces both
the real query answer and the simulated-cost report.

Strategies whose pipelines can scan the base table in independent
row ranges additionally declare a :class:`ParallelPlan`, which the
morsel executor (:mod:`repro.engine.executor`) uses to fan the scan out
across worker threads and merge the partial states back together.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from .costing import CostReport
from .session import Session

#: Runs one morsel: ``partial(session, ctx, lo, hi) -> partial value``.
PartialFn = Callable[[Session, Any, int, int], Dict[str, Any]]


@dataclass
class ParallelPlan:
    """A strategy's declaration that its pipeline is partitionable.

    The executor splits ``[0, n_rows)`` of the scan table into morsels,
    runs ``partial`` per morsel on worker threads (NumPy releases the
    GIL in the hot kernels), and merges the partial values. ``setup``
    runs once before the fan-out (hash-table builds, bitmap builds) and
    its result is passed to every ``partial`` as read-only shared state;
    ``finalize`` runs once on the merged value (e.g. eager aggregation's
    cleanup scan).

    ``min_parallel_rows`` (0 = the executor's default) lets a backend
    raise the scan size below which fanning out is a loss: the
    vectorized kernels finish small scans faster than threads can be
    dispatched. Pinning ``ExecutionKnobs.morsel_rows`` overrides the
    raised floor — the explicit knob exists to force the parallel path.
    """

    table: str
    n_rows: int
    partial: PartialFn
    setup: Optional[Callable[[Session], Any]] = None
    finalize: Optional[
        Callable[[Session, Dict[str, Any], Any], Dict[str, Any]]
    ] = None
    min_parallel_rows: int = 0


def merge_partials(parts: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge per-morsel partial values into one query answer.

    Scalar aggregates (sums/counts) add; grouped results merge by key
    with ascending-key output, which makes the merged group-by output
    deterministic regardless of morsel boundaries or worker timing.
    """
    if not parts:
        return {}
    first = parts[0]
    if "keys" in first and "aggs" in first:
        keys = np.concatenate([np.asarray(p["keys"]) for p in parts])
        aggs = np.concatenate(
            [np.atleast_2d(np.asarray(p["aggs"])) for p in parts]
        )
        unique, inverse = np.unique(keys, return_inverse=True)
        merged = np.zeros((unique.shape[0], aggs.shape[1]), dtype=aggs.dtype)
        np.add.at(merged, inverse, aggs)
        return {"keys": unique, "aggs": merged}
    out: Dict[str, Any] = {}
    for part in parts:
        for name, value in part.items():
            out[name] = out.get(name, 0) + value
    return out


@dataclass
class QueryResult:
    """The answer plus the cost report of one program run."""

    value: Dict[str, Any]
    report: CostReport

    @property
    def cycles(self) -> float:
        return self.report.total_cycles

    @property
    def seconds(self) -> float:
        return self.report.seconds

    @property
    def metrics(self):
        """Run metrics (:class:`~repro.engine.metrics.RunMetrics`) when
        the program ran through the executor; ``None`` otherwise."""
        return self.report.metrics

    def scalar(self, name: str = "sum") -> int:
        """Convenience accessor for single-aggregate results."""
        return self.value[name]

    def groups(self) -> Dict[int, tuple]:
        """Grouped results as a key -> aggregates mapping (sorted keys).

        Aggregate dtypes are preserved (fractional aggregates stay
        fractional; integers come back as Python ints).
        """
        keys = np.asarray(self.value["keys"])
        aggs = np.asarray(self.value["aggs"])
        return {
            int(k): tuple(a.item() for a in row)
            for k, row in zip(keys, aggs)
        }


@dataclass
class CompiledQuery:
    """A query compiled by one strategy: source text + runnable kernels."""

    name: str
    strategy: str
    source: str
    _fn: Callable[[Session], Dict[str, Any]]
    notes: Dict[str, Any] = field(default_factory=dict)
    #: Declared by strategies whose scan pipeline is partitionable.
    parallel: Optional[ParallelPlan] = None

    def run(self, session: Optional[Session] = None) -> QueryResult:
        """Execute the program serially; return the answer and report.

        A fresh tracer is used per run so repeated runs do not
        accumulate. Use :class:`repro.Engine` (or the executor directly)
        for morsel-parallel runs.
        """
        if session is None:
            session = Session()
        session.reset()
        with session.tracer.kernel(f"{self.strategy}:{self.name}"):
            value = self._fn(session)
        return QueryResult(value=value, report=session.tracer.report)


def results_equal(a: QueryResult, b: QueryResult) -> bool:
    """Structural equality of two query answers (ignores costs).

    Scalar aggregates compare exactly; grouped results compare as sorted
    key -> aggregates mappings.
    """
    if set(a.value) != set(b.value):
        return False
    for key in a.value:
        lhs, rhs = a.value[key], b.value[key]
        if isinstance(lhs, np.ndarray) or isinstance(rhs, np.ndarray):
            if not np.array_equal(np.asarray(lhs), np.asarray(rhs)):
                return False
        elif lhs != rhs:
            return False
    return True
