"""Per-run execution metrics for the morsel executor.

The simulator substrate prices *work* (event cycles); this module adds
the run-level bookkeeping a serving engine needs: real wall time, morsel
and worker accounting, cache-simulator event counts, and the *parallel*
simulated time — the critical path through a deterministic greedy
schedule of morsel costs onto the simulated machine's cores.

The schedule is computed from per-morsel simulated cycles rather than
from real thread timings, so parallel simulated seconds are bit-stable
across runs regardless of how the host OS interleaved the worker
threads.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .costing import CostReport
from .machine import MachineModel


@dataclass
class WorkerStats:
    """What one (simulated) worker executed during a parallel run."""

    worker_id: int
    morsels: int = 0
    sim_cycles: float = 0.0
    wall_seconds: float = 0.0
    by_kernel: Dict[str, float] = field(default_factory=dict)


@dataclass
class RunMetrics:
    """Run-level metrics attached to ``QueryResult.report.metrics``."""

    wall_seconds: float
    workers: int
    morsels: int
    #: Rows per morsel — the split size used to partition the scan. A
    #: serial run is one morsel spanning the whole scan, so its
    #: ``morsel_rows`` equals ``scan_rows``; both are 0 when the program
    #: declares no :class:`~repro.engine.program.ParallelPlan` (the
    #: executor then cannot see the scan length). The final morsel of a
    #: parallel run may be shorter (``scan_rows`` is not necessarily a
    #: multiple of ``morsel_rows``).
    morsel_rows: int
    parallel: bool
    machine: MachineModel
    #: Total rows of the partitioned base-table scan (0 when unknown —
    #: i.e. the program declared no parallel plan).
    scan_rows: int = 0
    #: True when the morsels ran on a persistent worker pool rather
    #: than per-query spawned threads.
    pooled: bool = False
    #: True when the morsels ran on shard worker *processes*
    #: (:mod:`repro.engine.shard`); ``workers`` then counts shards.
    sharded: bool = False
    #: Total simulated work (sum over all workers/morsels), in cycles.
    total_cycles: float = 0.0
    #: Critical-path simulated cycles: serial setup/finalize plus the
    #: longest simulated worker after greedy morsel scheduling.
    critical_path_cycles: float = 0.0
    #: The non-partitionable portion of the critical path (setup and
    #: finalize phases); 0 for pure scans and serial runs.
    serial_cycles: float = 0.0
    #: Cache-simulator event counts by event kind (SeqRead, CondRead...).
    event_counts: Dict[str, int] = field(default_factory=dict)
    worker_stats: List[WorkerStats] = field(default_factory=list)
    #: "hit" / "miss" when the program came through a plan cache.
    plan_cache: Optional[str] = None
    #: Seconds the request waited in the service's admission queue
    #: before a service worker picked it up (0 outside the serving
    #: layer — library calls are never queued).
    queue_wait_seconds: float = 0.0
    #: Seconds of actual service time (dequeue to response) when the
    #: run came through the query service; 0 for direct library calls
    #: (``wall_seconds`` covers those).
    service_seconds: float = 0.0

    @property
    def parallel_seconds(self) -> float:
        """Simulated wall time of the parallel schedule."""
        return self.machine.cycles_to_seconds(self.critical_path_cycles)

    @property
    def total_seconds(self) -> float:
        """Simulated time of the same work run serially."""
        return self.machine.cycles_to_seconds(self.total_cycles)

    @property
    def speedup(self) -> float:
        """Simulated speedup of the schedule over serial execution."""
        if self.critical_path_cycles <= 0:
            return 1.0
        return self.total_cycles / self.critical_path_cycles

    def describe(self) -> str:
        shape = (
            f"{self.workers} workers x {self.morsels} morsels "
            f"({self.morsel_rows} rows each"
            + (f", {self.scan_rows} scanned" if self.scan_rows else "")
            + (", pooled" if self.pooled else "")
            + (", sharded" if self.sharded else "")
            + ")"
            if self.parallel
            else "serial"
        )
        lines = [
            f"run: {shape}, wall {self.wall_seconds * 1e3:.1f} ms",
            f"simulated: {self.total_seconds:.4f} s total work, "
            f"{self.parallel_seconds:.4f} s critical path "
            f"({self.speedup:.2f}x)",
        ]
        if self.plan_cache is not None:
            lines.append(f"plan cache: {self.plan_cache}")
        if self.queue_wait_seconds or self.service_seconds:
            lines.append(
                f"service: queued {self.queue_wait_seconds * 1e3:.1f} ms, "
                f"served in {self.service_seconds * 1e3:.1f} ms"
            )
        if self.event_counts:
            counts = ", ".join(
                f"{kind}={count}"
                for kind, count in sorted(self.event_counts.items())
            )
            lines.append(f"events: {counts}")
        return "\n".join(lines)


def event_counts(report: CostReport) -> Dict[str, int]:
    """Count the report's cache-simulator events by kind."""
    counts: Dict[str, int] = {}
    for _, event, _ in report.events:
        kind = type(event).__name__
        counts[kind] = counts.get(kind, 0) + 1
    return counts


def merge_reports(
    machine: MachineModel, reports: Sequence[CostReport]
) -> CostReport:
    """Sum several per-worker/per-morsel reports into one.

    Merges the per-report aggregates (already summed once, at emit
    time) instead of re-adding every event — this runs once per query
    on the serving path, and per-event re-aggregation dominated short
    queries.
    """
    merged = CostReport(machine=machine)
    by_kernel = merged.by_kernel
    by_kind = merged.by_kind
    total = 0.0
    for report in reports:
        total += report.total_cycles
        for kernel, cycles in report.by_kernel.items():
            by_kernel[kernel] = by_kernel.get(kernel, 0.0) + cycles
        for kind, cycles in report.by_kind.items():
            by_kind[kind] = by_kind.get(kind, 0.0) + cycles
        merged.events.extend(report.events)
    merged.total_cycles = total
    return merged


def greedy_schedule(
    morsel_cycles: Sequence[float], workers: int
) -> Tuple[List[WorkerStats], List[int]]:
    """Deterministically assign morsel costs to simulated workers.

    Morsels are dispatched in order to the least-loaded worker — the
    steady state a work-stealing morsel dispatcher converges to — so the
    simulated critical path does not depend on real thread interleaving.
    Returns the per-worker stats and the worker id chosen per morsel.
    """
    stats = [WorkerStats(worker_id=i) for i in range(max(workers, 1))]
    heap = [(0.0, i) for i in range(len(stats))]
    heapq.heapify(heap)
    assignment: List[int] = []
    for cycles in morsel_cycles:
        load, i = heapq.heappop(heap)
        stats[i].morsels += 1
        stats[i].sim_cycles += cycles
        assignment.append(i)
        heapq.heappush(heap, (load + cycles, i))
    return stats, assignment
