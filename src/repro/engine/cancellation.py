"""Cooperative cancellation and deadline propagation.

Serving queries under load needs a way to *stop* work that is no longer
worth finishing: a request whose client-facing deadline has passed, or
one the caller withdrew. Python threads cannot be interrupted, so the
mechanism is cooperative — a :class:`CancelToken` is threaded from the
service layer through :meth:`repro.Engine.execute` into the morsel
batch, and the batch's shared cursor checks it before handing out each
morsel. A timed-out parallel query therefore stops within one morsel's
worth of work and surfaces as :class:`~repro.errors.QueryTimeout`
naming the elapsed time.

Tokens are cheap value objects; one is created per request (the
:class:`~repro.server.service.QueryService` mints one at admission so
queue wait counts against the deadline, exactly as a client perceives
it).
"""

from __future__ import annotations

import time
from typing import Optional

from ..errors import QueryCancelled, QueryTimeout


class CancelToken:
    """A deadline plus an explicit cancel flag, checked cooperatively.

    Parameters
    ----------
    deadline:
        Absolute :func:`time.monotonic` instant after which the token
        counts as expired, or ``None`` for no deadline (explicit
        :meth:`cancel` remains possible).

    The token records its creation instant so expiry errors can name
    the elapsed time; use :meth:`after` to build one from a relative
    budget in seconds.
    """

    __slots__ = ("deadline", "created_at", "_cancelled")

    def __init__(self, deadline: Optional[float] = None) -> None:
        self.deadline = deadline
        self.created_at = time.monotonic()
        self._cancelled = False

    @classmethod
    def after(cls, seconds: float) -> "CancelToken":
        """A token that expires ``seconds`` from now."""
        if seconds <= 0:
            raise QueryTimeout(
                f"deadline budget must be positive, got {seconds!r}",
                elapsed=0.0,
                deadline=seconds,
            )
        token = cls(time.monotonic() + seconds)
        return token

    # -- state -----------------------------------------------------------

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was called (deadline expiry excluded)."""
        return self._cancelled

    def cancel(self) -> None:
        """Flip the explicit cancel flag (idempotent, thread-safe: a
        single attribute store)."""
        self._cancelled = True

    def expired(self, now: Optional[float] = None) -> bool:
        """Whether the deadline (if any) has passed."""
        if self.deadline is None:
            return False
        return (now if now is not None else time.monotonic()) >= self.deadline

    def stop_requested(self, now: Optional[float] = None) -> bool:
        """Cancelled explicitly or expired — the cooperative check."""
        return self._cancelled or self.expired(now)

    # -- accounting ------------------------------------------------------

    def elapsed(self, now: Optional[float] = None) -> float:
        """Seconds since the token was created."""
        return (now if now is not None else time.monotonic()) - self.created_at

    def budget(self) -> Optional[float]:
        """The relative deadline budget in seconds (``None`` if none)."""
        if self.deadline is None:
            return None
        return self.deadline - self.created_at

    def remaining(self, now: Optional[float] = None) -> Optional[float]:
        """Seconds left before expiry (negative once past; ``None`` when
        the token has no deadline)."""
        if self.deadline is None:
            return None
        return self.deadline - (now if now is not None else time.monotonic())

    # -- raising ---------------------------------------------------------

    def check(self, label: str = "query") -> None:
        """Raise :class:`QueryTimeout` / :class:`QueryCancelled` if the
        token asks for a stop; no-op otherwise."""
        if self._cancelled:
            raise QueryCancelled(
                f"{label} was cancelled after {self.elapsed():.3f}s"
            )
        now = time.monotonic()
        if self.expired(now):
            raise QueryTimeout(
                f"{label} exceeded its {self.budget():.3f}s deadline "
                f"({self.elapsed(now):.3f}s elapsed)",
                elapsed=self.elapsed(now),
                deadline=self.budget(),
            )
