"""Multi-process shard executor over shared memory-mapped columns.

The thread-pool executor tops out where the GIL does: NumPy kernels
release it in their hot loops, but short OLAP queries spend enough time
in interpreter glue that served throughput stalls at a few x over
serial. This module scales past that by running one **worker process
per core**, each mapping the *same* on-disk ``.npy`` column files the
fingerprinted dataset cache already maintains (``np.load(...,
mmap_mode="r")``): the OS page cache backs every worker with one
physical copy of the data, and no column bytes ever cross a pipe.

The scatter/gather design follows the morsel-driven model (Leis et
al.) exactly as the thread executor does:

* the parent splits the scan into morsels with the *same* splitter the
  thread path uses;
* each morsel becomes one **task** on the pickle-free line-JSON
  protocol — dataset fingerprint + compiled-spec wire form + row range
  + knobs + measured-stats override, never data, never pickled code;
* workers compile the spec themselves (codegen is deterministic — the
  CI matrix pins golden sources across processes), run the program's
  ``partial`` over their row range, and ship the raw partial state
  back (arrays as dtype-tagged base64 of their exact bytes);
* the parent decodes the per-morsel partials **in morsel-index order**
  and pushes them through the existing
  :func:`~repro.engine.program.merge_partials` / ``finalize`` path —
  one merge, in the same order as a serial or thread run, so sharded
  answers are *byte-identical* to serial ones (float aggregation is
  not associative across regroupings; per-worker pre-merging would
  break that guarantee, so workers never merge).

Lifecycle: workers are pre-forked and handshaked before the first
query (``init`` loads the mmap'd dataset by fingerprint), crashed
workers are detected by pipe EOF and their in-flight morsel is retried
on a fresh worker (bounded retries; a *deterministic* task error is
never retried), and ``stop()`` drains gracefully — ``shutdown`` op,
stdin close, then SIGTERM, then SIGKILL.

Feedback still flows: workers tally the selectivity/branch/random
access statistics the adaptive loop feeds on (the event objects stay
in the worker; only the tallies travel) and the parent folds them into
one :class:`~repro.adaptive.feedback.Observation` per run.
"""

from __future__ import annotations

import atexit
import base64
import json
import os
import subprocess
import sys
import threading
import time
from collections import deque
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..errors import ExecutionError, QueryCancelled, QueryTimeout, ReproError
from ..obs import MetricsRegistry, observe_span, span
from .cancellation import CancelToken
from .costing import CostReport, StatsOverride
from .executor import MIN_MORSEL_ROWS, pick_morsel_rows, split_morsels
from .machine import MachineModel
from .metrics import RunMetrics, greedy_schedule, merge_reports
from .program import CompiledQuery, QueryResult, merge_partials
from .session import Session

#: A morsel whose worker died mid-flight is retried on a fresh worker
#: at most this many times before the query fails.
MAX_TASK_RETRIES = 2

#: Seconds granted to each stage of the graceful stop ladder
#: (shutdown-op drain, then SIGTERM, then SIGKILL).
_STOP_GRACE_SECONDS = 2.0


class ShardWorkerDied(ExecutionError):
    """The pipe to a shard worker hit EOF or broke mid-request."""


# -- partial-value codec -------------------------------------------------
#
# Partial states are small (per-morsel aggregate scalars or compact
# key/agg arrays), but they must survive the pipe *exactly*: the merge
# is float arithmetic, so a decimal round-trip would break the
# byte-identical guarantee. Arrays and NumPy scalars ship as base64 of
# their raw bytes with a dtype tag; Python ints as decimal strings
# (arbitrary precision); floats as C99 hex literals (exact).


def encode_partial(value: Dict[str, Any]) -> Dict[str, Any]:
    """One partial state as a JSON-safe, bit-exact wire object."""
    out: Dict[str, Any] = {}
    for name, item in value.items():
        if isinstance(item, np.ndarray):
            arr = np.ascontiguousarray(item)
            out[name] = {
                "nd": [arr.dtype.str, list(arr.shape)],
                "b64": base64.b64encode(arr.tobytes()).decode("ascii"),
            }
        elif isinstance(item, np.generic):
            out[name] = {
                "ns": item.dtype.str,
                "b64": base64.b64encode(item.tobytes()).decode("ascii"),
            }
        elif isinstance(item, bool):
            out[name] = {"j": item}
        elif isinstance(item, int):
            out[name] = {"i": str(item)}
        elif isinstance(item, float):
            out[name] = {"f": item.hex()}
        else:
            out[name] = {"j": item}
    return out


def decode_partial(wire: Dict[str, Any]) -> Dict[str, Any]:
    """Inverse of :func:`encode_partial`."""
    out: Dict[str, Any] = {}
    for name, item in wire.items():
        if "nd" in item:
            dtype, shape = item["nd"]
            out[name] = np.frombuffer(
                base64.b64decode(item["b64"]), dtype=np.dtype(dtype)
            ).reshape(shape)
        elif "ns" in item:
            out[name] = np.frombuffer(
                base64.b64decode(item["b64"]), dtype=np.dtype(item["ns"])
            )[0]
        elif "i" in item:
            out[name] = int(item["i"])
        elif "f" in item:
            out[name] = float.fromhex(item["f"])
        else:
            out[name] = item["j"]
    return out


# -- feedback tallies ----------------------------------------------------


def event_tallies(report: CostReport) -> Dict[str, Any]:
    """Fold a report's event stream into the compact statistics the
    adaptive loop feeds on (mirrors
    :func:`repro.adaptive.feedback.observation_from_run`'s extraction,
    but produces a JSON tally instead of an Observation so it can cross
    the worker pipe)."""
    from .events import Branch, CondRead, RandomAccess

    cond_range = 0
    cond_selected = 0
    branch_sites: Dict[str, List[float]] = {}
    random_n = 0
    ht_bytes = 0
    n_events = 0
    for _, event, _ in report.events:
        n_events += 1
        if isinstance(event, CondRead):
            if not event.array_bytes:
                cond_range += event.n_range
                cond_selected += event.n_selected
        elif isinstance(event, Branch):
            site = branch_sites.setdefault(event.site, [0.0, 0.0])
            site[0] += event.n
            site[1] += event.n * event.taken_fraction
        elif isinstance(event, RandomAccess):
            random_n += event.n
            ht_bytes = max(ht_bytes, event.struct_bytes)
    return {
        "cond_range": cond_range,
        "cond_selected": cond_selected,
        "branch_sites": branch_sites,
        "random_accesses": random_n,
        "ht_bytes": ht_bytes,
        "events": n_events,
    }


def merge_tallies(tallies: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Sum per-morsel tallies into one run-level tally."""
    merged: Dict[str, Any] = {
        "cond_range": 0,
        "cond_selected": 0,
        "branch_sites": {},
        "random_accesses": 0,
        "ht_bytes": 0,
        "events": 0,
    }
    sites: Dict[str, List[float]] = merged["branch_sites"]
    for tally in tallies:
        merged["cond_range"] += tally.get("cond_range", 0)
        merged["cond_selected"] += tally.get("cond_selected", 0)
        merged["random_accesses"] += tally.get("random_accesses", 0)
        merged["ht_bytes"] = max(
            merged["ht_bytes"], tally.get("ht_bytes", 0)
        )
        merged["events"] += tally.get("events", 0)
        for name, (n, taken) in tally.get("branch_sites", {}).items():
            site = sites.setdefault(name, [0.0, 0.0])
            site[0] += n
            site[1] += taken
    return merged


def observation_from_tallies(tallies: Dict[str, Any], metrics):
    """An adaptive-loop Observation from merged shard tallies (the
    cross-process replacement for ``observation_from_run``, whose event
    stream stays in the workers)."""
    from ..adaptive.feedback import Observation

    selectivity: Optional[float] = None
    if tallies["cond_range"] > 0:
        selectivity = tallies["cond_selected"] / tallies["cond_range"]
    elif tallies["branch_sites"]:
        survival = 1.0
        for n, taken in tallies["branch_sites"].values():
            if n > 0:
                survival *= taken / n
        selectivity = survival
    return Observation(
        wall_seconds=metrics.wall_seconds if metrics is not None else 0.0,
        total_cycles=(
            metrics.total_cycles if metrics is not None else 0.0
        ),
        scan_rows=metrics.scan_rows if metrics is not None else 0,
        parallel=bool(metrics.parallel) if metrics is not None else False,
        selectivity=selectivity,
        random_accesses=tallies["random_accesses"],
        ht_bytes=tallies["ht_bytes"],
        events=tallies["events"],
    )


# -- task specs ----------------------------------------------------------


def wire_spec_for(query) -> Optional[Dict[str, Any]]:
    """The compile spec a worker receives: a TPC-H name or a logical
    plan envelope. Returns ``None`` for queries with no wire form (the
    shard path then falls back to the thread executor)."""
    if isinstance(query, str):
        return {"kind": "name", "name": query}
    from ..plan.logical import Query
    from ..plan.ops import LogicalPlan, from_query
    from ..plan.serde import plan_to_wire

    if isinstance(query, Query):
        query = from_query(query)
    if isinstance(query, LogicalPlan):
        return {"kind": "plan", "plan": plan_to_wire(query)}
    return None


def override_to_wire(override) -> Optional[Dict[str, Any]]:
    if override is None:
        return None
    return {
        key: value
        for key, value in asdict(override).items()
        if value is not None
    }


def override_from_wire(wire) -> Optional[StatsOverride]:
    if not wire:
        return None
    return StatsOverride(**wire)


# -- worker handle -------------------------------------------------------


class ShardWorkerHandle:
    """One worker process plus its line-JSON request channel."""

    def __init__(
        self, shard_id: int, proc: subprocess.Popen, pid: int
    ) -> None:
        self.shard_id = shard_id
        self.proc = proc
        self.pid = pid
        self._lock = threading.Lock()

    @classmethod
    def spawn(cls, shard_id: int, config: Dict[str, Any]) -> "ShardWorkerHandle":
        """Fork one worker and complete the init/ready handshake."""
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing
            else src_root + os.pathsep + existing
        )
        # Pin hash randomisation unless the parent already did: the
        # instrumented cost model has mild str-hash-order sensitivity
        # (Q5's string-keyed joins), and a retried morsel must reprice
        # identically on the respawned worker.
        env.setdefault("PYTHONHASHSEED", "0")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.engine.shard_worker"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
            bufsize=1,
            env=env,
        )
        handle = cls(shard_id, proc, proc.pid)
        try:
            ready = handle.request(
                {"op": "init", "shard_id": shard_id, **config}
            )
        except ShardWorkerDied as exc:
            proc.kill()
            raise ReproError(
                f"shard worker {shard_id} failed to initialise: {exc}"
            ) from exc
        if ready.get("op") != "ready":
            proc.kill()
            raise ReproError(
                f"shard worker {shard_id} failed to initialise: "
                f"{ready.get('error', ready)}"
            )
        return handle

    def alive(self) -> bool:
        return self.proc.poll() is None

    def send(self, message: Dict[str, Any]) -> None:
        try:
            self.proc.stdin.write(json.dumps(message) + "\n")
            self.proc.stdin.flush()
        except (OSError, ValueError) as exc:
            raise ShardWorkerDied(
                f"shard {self.shard_id} (pid {self.pid}) pipe closed "
                f"while sending: {exc}"
            ) from exc

    def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one op and block for its reply line."""
        with self._lock:
            self.send(message)
            try:
                line = self.proc.stdout.readline()
            except (OSError, ValueError) as exc:
                raise ShardWorkerDied(
                    f"shard {self.shard_id} (pid {self.pid}) pipe broke "
                    f"mid-reply: {exc}"
                ) from exc
            if not line:
                raise ShardWorkerDied(
                    f"shard {self.shard_id} (pid {self.pid}) exited "
                    f"mid-request (exit code {self.proc.poll()})"
                )
            try:
                return json.loads(line)
            except ValueError as exc:
                raise ShardWorkerDied(
                    f"shard {self.shard_id} (pid {self.pid}) spoke "
                    f"garbage: {line[:200]!r}"
                ) from exc

    def stop(self, grace: float = _STOP_GRACE_SECONDS) -> None:
        """Graceful stop ladder: shutdown op + stdin close, SIGTERM,
        SIGKILL."""
        if self.proc.poll() is not None:
            return
        try:
            self.send({"op": "shutdown"})
            self.proc.stdin.close()
        except (ShardWorkerDied, OSError, ValueError):
            pass
        try:
            self.proc.wait(timeout=grace)
            return
        except subprocess.TimeoutExpired:
            pass
        self.proc.terminate()
        try:
            self.proc.wait(timeout=grace)
            return
        except subprocess.TimeoutExpired:
            pass
        self.proc.kill()
        self.proc.wait()


# -- the shard group -----------------------------------------------------


class ShardGroup:
    """A fixed set of pre-forked workers mapping one dataset.

    Every worker is addressed by its shard id; dead workers are
    respawned on demand (and re-warmed with the specs the group has
    seen), so a crash costs one morsel retry, never the group.
    """

    def __init__(
        self,
        shards: int,
        *,
        fingerprint: str,
        cache_dir: str,
        machine: MachineModel,
        tile: int,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if shards < 1:
            raise ReproError("a shard group needs at least one shard")
        self.shards = shards
        self.fingerprint = fingerprint
        self.cache_dir = cache_dir
        self.machine = machine
        self.tile = tile
        self.registry = registry
        self._handles: Dict[int, ShardWorkerHandle] = {}
        self._lock = threading.Lock()
        self._warm_specs: List[Dict[str, Any]] = []
        self._stopped = False
        # Lifetime counters (mirrored into the registry when present).
        self.tasks = 0
        self.retries = 0
        self.restarts = 0
        self.crashes = 0
        atexit.register(self.stop)

    @classmethod
    def for_engine(cls, engine, shards: int) -> "ShardGroup":
        """Build a group from an engine whose database carries dataset
        provenance (i.e. was loaded through the dataset cache)."""
        fingerprint = getattr(engine.db, "dataset_fingerprint", None)
        cache_dir = getattr(engine.db, "dataset_cache_dir", None)
        if not fingerprint or not cache_dir:
            raise ReproError(
                "shard execution needs a database loaded through the "
                "dataset cache (repro.datagen.cache.load_dataset), so "
                "worker processes can map the same on-disk columns by "
                "fingerprint; this database carries no provenance"
            )
        return cls(
            shards,
            fingerprint=fingerprint,
            cache_dir=cache_dir,
            machine=engine.machine,
            tile=engine.tile,
            registry=engine.registry,
        )

    def _config(self) -> Dict[str, Any]:
        return {
            "shards": self.shards,
            "fingerprint": self.fingerprint,
            "cache_dir": self.cache_dir,
            "machine": asdict(self.machine),
            "tile": self.tile,
        }

    def start(self) -> "ShardGroup":
        """Pre-fork every worker (idempotent)."""
        for shard_id in range(self.shards):
            self.worker(shard_id)
        return self

    def grow(self, shards: int) -> None:
        """Raise the shard count (never shrinks)."""
        with self._lock:
            if shards > self.shards:
                self.shards = shards

    def worker(self, shard_id: int) -> ShardWorkerHandle:
        """The live handle for one shard, respawning a dead worker."""
        with self._lock:
            if self._stopped:
                raise ReproError("shard group is stopped")
            handle = self._handles.get(shard_id)
            if handle is not None and handle.alive():
                return handle
            if handle is not None:
                # Found dead outside a request: still a crash.
                self.crashes += 1
                self._count("shard_worker_crashes_total")
                self.restarts += 1
                self._count("shard_worker_restarts_total")
            warm = list(self._warm_specs)
        fresh = ShardWorkerHandle.spawn(shard_id, self._config())
        for spec in warm:
            try:
                fresh.request({"op": "warm", **spec})
            except ShardWorkerDied:
                break  # the task path will respawn and report properly
        with self._lock:
            if self._stopped:
                fresh.stop()
                raise ReproError("shard group is stopped")
            self._handles[shard_id] = fresh
        return fresh

    def note_crash(self, shard_id: int) -> None:
        """Record that a request to ``shard_id`` found the worker dead
        (its next :meth:`worker` call respawns it)."""
        with self._lock:
            self.crashes += 1
            self._count("shard_worker_crashes_total")
            handle = self._handles.pop(shard_id, None)
        if handle is not None:
            handle.stop(grace=0.1)
        with self._lock:
            self.restarts += 1
            self._count("shard_worker_restarts_total")

    def kill_worker(self, shard_id: int) -> bool:
        """Hard-kill one worker (crash injection for tests/bench)."""
        with self._lock:
            handle = self._handles.get(shard_id)
        if handle is None or not handle.alive():
            return False
        handle.proc.kill()
        handle.proc.wait()
        return True

    def warmup(self, specs: List[Dict[str, Any]]) -> None:
        """Pre-compile specs on every worker (each item:
        ``{"spec": ..., "strategy": ..., "backend": ...}``)."""
        with self._lock:
            self._warm_specs.extend(specs)
        for shard_id in range(self.shards):
            handle = self.worker(shard_id)
            for spec in specs:
                try:
                    handle.request({"op": "warm", **spec})
                except ShardWorkerDied:
                    self.note_crash(shard_id)
                    break

    def _count(self, name: str, **labels) -> None:
        # Caller holds self._lock or does not need to.
        if self.registry is not None:
            self.registry.counter(name, **labels).inc()

    def snapshot(self) -> dict:
        """Stat source: group shape plus lifetime task counters."""
        with self._lock:
            alive = sum(
                1 for h in self._handles.values() if h.alive()
            )
            return {
                "shards": self.shards,
                "alive": alive,
                "tasks": self.tasks,
                "retries": self.retries,
                "restarts": self.restarts,
                "crashes": self.crashes,
            }

    def stop(self) -> None:
        """Gracefully stop every worker. Idempotent."""
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
            handles = list(self._handles.values())
            self._handles.clear()
        for handle in handles:
            handle.stop()
        try:
            atexit.unregister(self.stop)
        except Exception:  # pragma: no cover - interpreter exit
            pass


# -- the executor --------------------------------------------------------


class _ShardRun:
    """One sharded query: a morsel cursor scattered over the group.

    One channel thread per shard claims morsel indices, round-trips
    tasks to its worker, and records results by index (order never
    depends on timing — the same determinism contract as
    :class:`~repro.engine.pool.MorselBatch`). A worker death re-enqueues
    the in-flight morsel (bounded by :data:`MAX_TASK_RETRIES`) on the
    respawned worker; a *deterministic* task error cancels the run.
    """

    def __init__(
        self,
        group: ShardGroup,
        task_template: Dict[str, Any],
        morsels: List[Tuple[int, int]],
        label: str,
        registry: Optional[MetricsRegistry],
        cancel: Optional[CancelToken],
    ) -> None:
        self.group = group
        self.template = task_template
        self.morsels = morsels
        self.label = label
        self.registry = registry
        self.cancel = cancel
        self.replies: List[Optional[Dict[str, Any]]] = [None] * len(morsels)
        self.wall_by_shard: Dict[int, float] = {}
        self.errors: List[Tuple[int, str]] = []
        self.stop_error: Optional[ExecutionError] = None
        self.cancelled = False
        self._pending: deque = deque(range(len(morsels)))
        self._retries: Dict[int, int] = {}
        self._lock = threading.Lock()

    # -- cursor ----------------------------------------------------------

    def _token_stop(self) -> Optional[ExecutionError]:
        token = self.cancel
        if token is None or not token.stop_requested():
            return None
        done = sum(1 for r in self.replies if r is not None)
        progress = f"after {done}/{len(self.morsels)} morsels"
        if token.cancelled:
            return QueryCancelled(
                f"{self.label} cancelled {progress} "
                f"({token.elapsed():.3f}s elapsed)"
            )
        return QueryTimeout(
            f"{self.label} exceeded its {token.budget():.3f}s deadline "
            f"{progress} ({token.elapsed():.3f}s elapsed)",
            elapsed=token.elapsed(),
            deadline=token.budget(),
        )

    def _claim(self) -> Optional[int]:
        with self._lock:
            if self.cancelled or not self._pending:
                return None
            stop = self._token_stop()
            if stop is not None:
                self.cancelled = True
                self.stop_error = stop
                return None
            return self._pending.popleft()

    def _record(self, index: int, shard_id: int, reply: Dict[str, Any]):
        with self._lock:
            self.replies[index] = reply
            wall = float(reply.get("wall", 0.0))
            self.wall_by_shard[shard_id] = (
                self.wall_by_shard.get(shard_id, 0.0) + wall
            )
            self.group.tasks += 1
        self.group._count(
            "shard_tasks_total", shard=str(shard_id)
        )
        if self.registry is not None:
            observe_span(
                "shard_task",
                float(reply.get("wall", 0.0)),
                self.registry,
                shard=str(shard_id),
            )

    def _fail(self, index: int, message: str) -> None:
        with self._lock:
            self.errors.append((index, message))
            self.cancelled = True

    def _retry(self, index: int) -> bool:
        """Re-enqueue a morsel whose worker died; False past the cap."""
        with self._lock:
            count = self._retries.get(index, 0) + 1
            self._retries[index] = count
            if count > MAX_TASK_RETRIES:
                return False
            self._pending.append(index)
            self.group.retries += 1
        self.group._count("shard_retries_total")
        return True

    # -- channels --------------------------------------------------------

    def _channel(self, shard_id: int) -> None:
        while True:
            index = self._claim()
            if index is None:
                return
            lo, hi = self.morsels[index]
            task = {**self.template, "op": "task", "lo": lo, "hi": hi}
            try:
                handle = self.group.worker(shard_id)
            except ReproError as exc:
                self._fail(index, f"shard {shard_id} unspawnable: {exc}")
                return
            try:
                reply = handle.request(task)
            except ShardWorkerDied as exc:
                self.group.note_crash(shard_id)
                if not self._retry(index):
                    self._fail(
                        index,
                        f"morsel failed {MAX_TASK_RETRIES + 1} times on "
                        f"crashed workers (last: {exc})",
                    )
                    return
                continue
            if reply.get("op") == "error":
                # Deterministic failure: retrying reproduces it.
                self._fail(index, str(reply.get("error", "unknown")))
                return
            self._record(index, shard_id, reply)

    def execute(self) -> None:
        threads = [
            threading.Thread(
                target=self._channel,
                args=(shard_id,),
                name=f"repro-shard-{shard_id}",
                daemon=True,
            )
            for shard_id in range(self.group.shards)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    def raise_failure(self) -> None:
        if not self.errors:
            if self.stop_error is not None:
                raise self.stop_error
            return
        index, message = min(self.errors, key=lambda pair: pair[0])
        lo, hi = self.morsels[index]
        raise ExecutionError(
            f"morsel {index} (rows [{lo}, {hi})) of {self.label} failed "
            f"on a shard worker: {message}"
        )


class ShardExecutor:
    """Runs compiled programs across a :class:`ShardGroup`.

    Mirrors :class:`~repro.engine.executor.MorselExecutor`'s parallel
    path — same morsel splitter, same serial-phase accounting, same
    deterministic merge and greedy schedule — with worker *processes*
    in place of threads. :meth:`execute` returns ``None`` when the
    program should not shard (no parallel plan, or the scan is below
    the fan-out floor); the caller then falls back to the thread path.
    """

    def __init__(
        self,
        group: ShardGroup,
        *,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.group = group
        self.registry = registry

    def execute(
        self,
        compiled: CompiledQuery,
        session: Session,
        *,
        spec: Dict[str, Any],
        strategy: str,
        backend: str,
        encoding: str = "auto",
        override=None,
        cancel: Optional[CancelToken] = None,
    ) -> Optional[QueryResult]:
        plan = compiled.parallel
        if plan is None:
            return None
        serial_limit = MIN_MORSEL_ROWS
        if session.knobs.morsel_rows is None:
            floor = session.knobs.min_parallel_rows
            if floor is None:
                floor = plan.min_parallel_rows
            serial_limit = max(serial_limit, floor)
        if plan.n_rows <= serial_limit:
            return None

        started = time.perf_counter()
        label = f"{compiled.strategy}:{compiled.name}"
        if cancel is not None:
            cancel.check(label)
        session.reset()

        # Serial phases run (and are costed) in the parent, exactly as
        # the thread path does: finalize needs the parent-side ctx, and
        # the workers' own setup runs are deliberately *not* reported —
        # they are redundant real work, not extra simulated work.
        serial_reports: List[CostReport] = []
        ctx = None
        if plan.setup is not None:
            setup_session = session.clone()
            with setup_session.tracer.kernel(f"{label}:setup"):
                ctx = plan.setup(setup_session)
            serial_reports.append(setup_session.tracer.report)

        morsel_rows = pick_morsel_rows(
            plan.n_rows, self.group.shards, session.knobs.morsel_rows
        )
        morsels = split_morsels(plan.n_rows, morsel_rows)
        task_template = {
            "spec": spec,
            "strategy": strategy,
            "backend": backend,
            # Encoding mode travels on the wire so workers pick the
            # same per-column code/value streams the parent priced;
            # workers mmap the cached code arrays, never decoded copies.
            "encoding": encoding,
            "override": override_to_wire(override),
            "ht_prefetch": bool(session.knobs.ht_prefetch),
        }
        run = _ShardRun(
            self.group, task_template, morsels, label,
            self.registry, cancel,
        )
        with self._span("shard_execute"):
            run.execute()
        run.raise_failure()

        replies = [r for r in run.replies if r is not None]
        values = [decode_partial(r["value"]) for r in replies]
        morsel_reports = [
            self._morsel_report(session, r) for r in replies
        ]

        with self._span("merge"):
            merged = merge_partials(values)
            if plan.finalize is not None:
                final_session = session.clone()
                with final_session.tracer.kernel(f"{label}:finalize"):
                    merged = plan.finalize(final_session, merged, ctx)
                serial_reports.append(final_session.tracer.report)

        report = merge_reports(
            session.machine, serial_reports + morsel_reports
        )
        serial_cycles = sum(r.total_cycles for r in serial_reports)
        worker_stats, assignment = greedy_schedule(
            [r.total_cycles for r in morsel_reports], self.group.shards
        )
        for morsel_report, worker_id in zip(morsel_reports, assignment):
            kernels = worker_stats[worker_id].by_kernel
            for kernel, cycles in morsel_report.by_kernel.items():
                kernels[kernel] = kernels.get(kernel, 0.0) + cycles
        for stats in worker_stats:
            stats.wall_seconds = run.wall_by_shard.get(
                stats.worker_id, 0.0
            )
        critical = serial_cycles + max(
            (s.sim_cycles for s in worker_stats), default=0.0
        )
        counts: Dict[str, int] = {}
        from .metrics import event_counts as count_events

        for serial_report in serial_reports:
            for kind, count in count_events(serial_report).items():
                counts[kind] = counts.get(kind, 0) + count
        for reply in replies:
            for kind, count in reply.get("event_counts", {}).items():
                counts[kind] = counts.get(kind, 0) + int(count)
        report.metrics = RunMetrics(
            wall_seconds=time.perf_counter() - started,
            workers=self.group.shards,
            morsels=len(morsels),
            morsel_rows=morsel_rows,
            scan_rows=plan.n_rows,
            parallel=True,
            pooled=False,
            sharded=True,
            machine=session.machine,
            total_cycles=report.total_cycles,
            critical_path_cycles=critical,
            serial_cycles=serial_cycles,
            event_counts=counts,
            worker_stats=worker_stats,
        )
        # The adaptive loop's cross-process feedback: the workers'
        # event tallies, merged, attached for the facade to fold.
        report.shard_tallies = merge_tallies(
            [r.get("tallies", {}) for r in replies]
        )
        return QueryResult(value=merged, report=report)

    def _morsel_report(self, session: Session, reply) -> CostReport:
        report = CostReport(
            machine=session.machine,
            total_cycles=float(reply.get("cycles", 0.0)),
            by_kernel={
                k: float(v)
                for k, v in reply.get("by_kernel", {}).items()
            },
            by_kind={
                k: float(v)
                for k, v in reply.get("by_kind", {}).items()
            },
        )
        return report

    def _span(self, stage: str):
        from contextlib import nullcontext

        if self.registry is None:
            return nullcontext()
        return span(stage, self.registry)
