"""Shard worker process: ``python -m repro.engine.shard_worker``.

One worker serves one shard of a :class:`~repro.engine.shard.ShardGroup`.
The protocol is line-JSON on stdin/stdout (stderr passes through to the
parent for crash forensics):

``init``
    Loads the dataset **by fingerprint** from the on-disk dataset cache
    (``np.load(..., mmap_mode="r")`` under the hood — the OS page cache
    shares the physical column pages with every sibling worker and the
    parent) and builds the machine model. Replies ``ready`` or
    ``fatal``.
``warm``
    Pre-compiles a (spec, strategy, backend, encoding, override)
    program so the
    first real morsel does not pay compile latency. Replies ``warmed``.
``task``
    Runs one morsel ``[lo, hi)`` of a compiled program's ``partial``
    and replies with the bit-exact encoded partial state, its simulated
    cost breakdown, and the event tallies the adaptive loop feeds on.
    The raw event objects never cross the pipe.
``shutdown``
    Exit 0. SIGTERM does the same, but drains a task already in flight
    first (graceful drain); a second SIGTERM exits immediately.

Compilation happens *in the worker*, from the spec's wire form —
programs, like columns, never cross the pipe. Codegen is deterministic
(the golden-source tests pin it), so the worker's program is the same
one the parent would have compiled, and the partial states it produces
merge byte-identically.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import time
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from .machine import MachineModel
from .session import Session
from .shard import (
    encode_partial,
    event_tallies,
    override_from_wire,
)

#: Compiled programs kept per worker (LRU); a serving worker sees a
#: small working set of (query, strategy, backend) triples.
_PROGRAM_CACHE_CAP = 32


class _Worker:
    def __init__(self) -> None:
        self.shard_id = -1
        self.db = None
        self.machine: Optional[MachineModel] = None
        self.tile = 1024
        self.programs: "OrderedDict[Tuple, Tuple]" = OrderedDict()
        self.busy = False
        self.stop_requested = False

    # -- lifecycle -------------------------------------------------------

    def init(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        from ..datagen.cache import DatasetCache

        self.shard_id = int(msg["shard_id"])
        self.machine = MachineModel(**msg["machine"])
        self.tile = int(msg.get("tile", 1024))
        cache = DatasetCache(cache_dir=Path(msg["cache_dir"]))
        db = cache.load_fingerprint(msg["fingerprint"])
        if db is None:
            return {
                "op": "fatal",
                "error": (
                    f"dataset {msg['fingerprint']} not found in cache "
                    f"{msg['cache_dir']}; the parent must materialise "
                    f"it before forking shard workers"
                ),
            }
        self.db = db
        return {"op": "ready", "shard_id": self.shard_id, "pid": os.getpid()}

    # -- compilation -----------------------------------------------------

    def _program_key(self, msg: Dict[str, Any]) -> Tuple:
        override = msg.get("override") or {}
        return (
            json.dumps(msg["spec"], sort_keys=True),
            msg["strategy"],
            msg["backend"],
            msg.get("encoding", "auto"),
            tuple(sorted(override.items())),
        )

    def _compile(self, msg: Dict[str, Any]) -> Tuple:
        """The (compiled, ctx) pair for a task/warm message, cached.

        ``ctx`` is the program's setup state (hash tables and the
        like), built once per program on a throwaway session — every
        morsel of every request against this program reuses it, the
        per-process analogue of the parent running setup once per
        query. Setup cycles are deliberately not reported: the parent
        accounts the serial phases itself.
        """
        key = self._program_key(msg)
        hit = self.programs.get(key)
        if hit is not None:
            self.programs.move_to_end(key)
            return hit
        spec = msg["spec"]
        strategy = msg["strategy"]
        backend = msg["backend"]
        encoding = msg.get("encoding", "auto")
        overrides = override_from_wire(msg.get("override"))
        if spec["kind"] == "name":
            from ..tpch.base import compile_tpch

            compiled = compile_tpch(
                spec["name"], strategy, self.db,
                machine=self.machine, backend=backend,
                overrides=overrides, encoding=encoding,
            )
        elif spec["kind"] == "plan":
            from ..codegen.pipeline import compile_pipeline
            from ..plan.serde import plan_from_wire

            compiled = compile_pipeline(
                plan_from_wire(spec["plan"]), self.db, strategy,
                machine=self.machine, backend=backend,
                overrides=overrides, encoding=encoding,
            )
        else:
            raise ValueError(f"unknown spec kind {spec['kind']!r}")
        ctx = None
        if compiled.parallel is not None and compiled.parallel.setup:
            setup_session = self._session(msg)
            ctx = compiled.parallel.setup(setup_session)
        self.programs[key] = (compiled, ctx)
        while len(self.programs) > _PROGRAM_CACHE_CAP:
            self.programs.popitem(last=False)
        return compiled, ctx

    def _session(self, msg: Dict[str, Any]) -> Session:
        session = Session(
            machine=self.machine, tile=self.tile, workers=1
        )
        session.knobs.backend = msg["backend"]
        session.knobs.ht_prefetch = bool(msg.get("ht_prefetch", False))
        return session

    # -- ops -------------------------------------------------------------

    def warm(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        self._compile(msg)
        return {"op": "warmed", "id": msg.get("id")}

    def task(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        compiled, ctx = self._compile(msg)
        plan = compiled.parallel
        if plan is None:
            raise ValueError(
                f"{compiled.strategy}:{compiled.name} declares no "
                f"parallel plan; the parent should not have sharded it"
            )
        session = self._session(msg)
        lo, hi = int(msg["lo"]), int(msg["hi"])
        label = f"{compiled.strategy}:{compiled.name}"
        started = time.perf_counter()
        # The kernel label matches the thread path's morsel label so
        # by_kernel breakdowns agree between sharded and thread runs.
        with session.tracer.kernel(f"{label}:morsel"):
            value = plan.partial(session, ctx, lo, hi)
        wall = time.perf_counter() - started
        report = session.tracer.report
        from .metrics import event_counts

        return {
            "op": "result",
            "id": msg.get("id"),
            "value": encode_partial(value),
            "cycles": report.total_cycles,
            "by_kernel": report.by_kernel,
            "by_kind": report.by_kind,
            "event_counts": event_counts(report),
            "tallies": event_tallies(report),
            "wall": wall,
        }


def _reply(obj: Dict[str, Any]) -> None:
    sys.stdout.write(json.dumps(obj) + "\n")
    sys.stdout.flush()


def main() -> int:
    worker = _Worker()

    def _sigterm(signum, frame):
        # Graceful drain: finish the in-flight task, then exit before
        # reading the next one. Idle (or a second SIGTERM): exit now.
        if worker.busy and not worker.stop_requested:
            worker.stop_requested = True
            return
        os._exit(0)

    signal.signal(signal.SIGTERM, _sigterm)
    # A terminal Ctrl-C signals the whole foreground process group,
    # workers included — but shutdown is the parent's call (shutdown
    # op, stdin close, then the SIGTERM ladder). Ignore SIGINT so an
    # operator interrupt doesn't splatter worker tracebacks over the
    # parent's own drain output.
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    for line in sys.stdin:
        if not line.strip():
            continue
        try:
            msg = json.loads(line)
        except ValueError:
            _reply({"op": "error", "error": f"bad frame: {line[:200]!r}"})
            continue
        op = msg.get("op")
        if op == "shutdown":
            return 0
        worker.busy = True
        try:
            if op == "init":
                reply = worker.init(msg)
            elif op == "warm":
                reply = worker.warm(msg)
            elif op == "task":
                reply = worker.task(msg)
            else:
                reply = {
                    "op": "error",
                    "id": msg.get("id"),
                    "error": f"unknown op {op!r}",
                }
        except Exception as exc:  # deterministic failure: report, go on
            reply = {
                "op": "error",
                "id": msg.get("id"),
                "error": f"{type(exc).__name__}: {exc}",
            }
        finally:
            worker.busy = False
        _reply(reply)
        if reply.get("op") == "fatal":
            return 1
        if worker.stop_requested:
            return 0
    return 0  # EOF: parent closed our stdin


if __name__ == "__main__":
    sys.exit(main())
