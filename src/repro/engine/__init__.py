"""Execution substrate: machine model, event costing, kernels, programs."""

from .branch import TwoBitPredictor, steady_state_mispredict_rate
from .cache import (
    CacheHierarchy,
    CacheStats,
    SetAssociativeCache,
    conditional_trace,
    random_trace,
    sequential_trace,
)
from .costing import CostAccountant, CostReport, Tracer
from .events import (
    Branch,
    CondRead,
    Compute,
    Event,
    RandomAccess,
    SeqRead,
    SeqWrite,
    TupleOverhead,
)
from .hashtable import EMPTY, NULL_KEY, TOMBSTONE, HashTable
from .machine import PAPER_MACHINE, MachineModel
from .program import CompiledQuery, QueryResult, results_equal
from .session import Session

__all__ = [
    "Branch",
    "CacheHierarchy",
    "CacheStats",
    "CompiledQuery",
    "CondRead",
    "Compute",
    "CostAccountant",
    "CostReport",
    "EMPTY",
    "Event",
    "HashTable",
    "MachineModel",
    "NULL_KEY",
    "PAPER_MACHINE",
    "QueryResult",
    "RandomAccess",
    "SeqRead",
    "SeqWrite",
    "Session",
    "SetAssociativeCache",
    "TOMBSTONE",
    "Tracer",
    "TupleOverhead",
    "TwoBitPredictor",
    "conditional_trace",
    "random_trace",
    "results_equal",
    "sequential_trace",
    "steady_state_mispredict_rate",
]
