"""Execution substrate: machine model, event costing, kernels, programs."""

from .branch import TwoBitPredictor, steady_state_mispredict_rate
from .cache import (
    CacheHierarchy,
    CacheStats,
    SetAssociativeCache,
    conditional_trace,
    random_trace,
    sequential_trace,
)
from .cancellation import CancelToken
from .costing import CostAccountant, CostReport, Tracer
from .executor import MorselExecutor
from .facade import Engine
from .metrics import RunMetrics, WorkerStats
from .plan_cache import PlanCache, PlanCacheStats, plan_key
from .pool import MorselBatch, WorkerPool
from .events import (
    Branch,
    CondRead,
    Compute,
    Event,
    RandomAccess,
    SeqRead,
    SeqWrite,
    TupleOverhead,
)
from .hashtable import EMPTY, NULL_KEY, TOMBSTONE, HashTable
from .machine import PAPER_MACHINE, MachineModel
from .program import (
    CompiledQuery,
    ParallelPlan,
    QueryResult,
    merge_partials,
    results_equal,
)
from .session import ExecutionKnobs, Session
from .shard import ShardExecutor, ShardGroup, ShardWorkerDied

__all__ = [
    "Branch",
    "CacheHierarchy",
    "CancelToken",
    "CacheStats",
    "CompiledQuery",
    "CondRead",
    "Compute",
    "CostAccountant",
    "CostReport",
    "EMPTY",
    "Engine",
    "Event",
    "ExecutionKnobs",
    "HashTable",
    "MachineModel",
    "MorselBatch",
    "MorselExecutor",
    "NULL_KEY",
    "PAPER_MACHINE",
    "ParallelPlan",
    "PlanCache",
    "PlanCacheStats",
    "QueryResult",
    "RandomAccess",
    "RunMetrics",
    "SeqRead",
    "SeqWrite",
    "Session",
    "ShardExecutor",
    "ShardGroup",
    "ShardWorkerDied",
    "WorkerPool",
    "WorkerStats",
    "SetAssociativeCache",
    "TOMBSTONE",
    "Tracer",
    "TupleOverhead",
    "TwoBitPredictor",
    "conditional_trace",
    "merge_partials",
    "plan_key",
    "random_trace",
    "results_equal",
    "sequential_trace",
    "steady_state_mispredict_rate",
]
