"""Bounded in-memory logs: slow queries and swallowed errors.

Both are ring buffers — a serving process must be able to run for days
without its telemetry growing, so the newest ``capacity`` entries win.

:class:`SlowQueryLog` keeps one entry per slow execution, keyed by the
plan fingerprint (the same key the plan cache uses), carrying the
run-level numbers the SWOLE heuristics reason about: wall time, the
plan-cache outcome, and the branch / access-pattern event counts
(``SeqRead`` / ``CondRead`` / ``RandomAccess`` / ``Branch`` ...) whose
balance is the paper's whole argument.

:class:`ErrorLog` is the home for errors that used to be silently
swallowed (``except OSError: pass``) on shutdown paths: recording them
costs nothing and turns "the server stopped weirdly once" into an
inspectable trail.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from ..errors import ReproError

#: Default slow-query threshold in seconds; tuned for the repo's
#: sub-millisecond microbench queries, so only genuine stragglers log.
DEFAULT_SLOW_SECONDS = 0.25


class SlowQueryLog:
    """Ring buffer of executions slower than a threshold."""

    def __init__(
        self,
        capacity: int = 64,
        threshold_seconds: float = DEFAULT_SLOW_SECONDS,
    ) -> None:
        if capacity < 1:
            raise ReproError("slow-query log capacity must be >= 1")
        if threshold_seconds < 0:
            raise ReproError("slow-query threshold must be >= 0 seconds")
        self.threshold_seconds = threshold_seconds
        self._lock = threading.Lock()
        self._entries: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._recorded = 0

    def record(
        self,
        *,
        fingerprint: str,
        strategy: str,
        wall_seconds: float,
        threshold: Optional[float] = None,
        **fields: Any,
    ) -> bool:
        """Log the run if it crossed the threshold; return whether it
        was recorded. ``fields`` must be JSON-safe (the stats request
        returns entries verbatim)."""
        limit = self.threshold_seconds if threshold is None else threshold
        if wall_seconds < limit:
            return False
        entry = {
            "unix_time": time.time(),
            "fingerprint": fingerprint,
            "strategy": strategy,
            "wall_seconds": wall_seconds,
            **fields,
        }
        with self._lock:
            self._entries.append(entry)
            self._recorded += 1
        return True

    def entries(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [dict(e) for e in self._entries]

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "threshold_seconds": self.threshold_seconds,
                "recorded": self._recorded,
                "entries": [dict(e) for e in self._entries],
            }


class ErrorLog:
    """Ring buffer of errors that would otherwise vanish."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ReproError("error log capacity must be >= 1")
        self._lock = threading.Lock()
        self._entries: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._recorded = 0

    def record(self, source: str, message: str, **fields: Any) -> None:
        entry = {
            "unix_time": time.time(),
            "source": source,
            "message": message,
            **fields,
        }
        with self._lock:
            self._entries.append(entry)
            self._recorded += 1

    def entries(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [dict(e) for e in self._entries]

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "recorded": self._recorded,
                "entries": [dict(e) for e in self._entries],
            }
