"""Observability: one registry for metrics, spans, and slow queries.

The serving stack's stats used to live in per-component islands
(``PlanCacheStats``, ``DatasetCacheStats``, ``ServiceStats``, ad-hoc
pool numbers). This package is the single substrate they all report
into:

* :class:`MetricsRegistry` — counters / gauges / lock-striped
  histograms plus *stat sources* (legacy ``snapshot()`` callables
  folded into every snapshot); a process-wide default via
  :func:`metrics_registry`;
* :func:`span` — stage-labelled duration histograms covering
  compile -> morsel execute -> merge in the engine and
  admit -> dequeue -> serve in the query service;
* :class:`SlowQueryLog` / :class:`ErrorLog` — bounded ring buffers for
  stragglers (keyed by plan fingerprint, carrying the branch and
  access-pattern counters) and for errors shutdown paths used to
  swallow.

Everything a snapshot returns is JSON-safe; the ``stats`` request of
:mod:`repro.server` and the ``/metrics`` exposition of
``python -m repro.server`` are thin views over it.
"""

from .registry import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics_registry,
    set_metrics_registry,
)
from .slowlog import DEFAULT_SLOW_SECONDS, ErrorLog, SlowQueryLog
from .spans import SPAN_METRIC, observe_span, span

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_SLOW_SECONDS",
    "ErrorLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SPAN_METRIC",
    "SlowQueryLog",
    "metrics_registry",
    "observe_span",
    "set_metrics_registry",
    "span",
]
