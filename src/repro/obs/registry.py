"""Process-wide metrics registry: counters, gauges, striped histograms.

The serving stack had stats in four separate islands — the plan cache,
the dataset cache, the worker pool, and the query service each kept
their own ad-hoc ``snapshot()`` dict. This module gives them one home:

* :class:`Counter` / :class:`Gauge` / :class:`Histogram` instruments,
  created on demand by ``(name, labels)`` and shared by identity — two
  call sites asking for ``counter("queries_total", strategy="swole")``
  increment the same cell;
* **stat sources**: a component registers a zero-argument callable
  (typically its existing ``stats.snapshot`` bound method) and the
  registry folds its dict into every :meth:`MetricsRegistry.snapshot`,
  so legacy stats join the registry without being rewritten;
* a :class:`~repro.obs.slowlog.SlowQueryLog` and
  :class:`~repro.obs.slowlog.ErrorLog`, owned by the registry and
  included in the snapshot;
* Prometheus-style text exposition (:meth:`render_prometheus`) for
  scraping by anything that speaks the ``text/plain; version=0.0.4``
  format.

Histogram updates are **lock-striped**: each histogram shards its
state over several independently-locked stripes chosen by thread id, so
concurrent service threads observing latencies do not serialise on one
lock; :meth:`Histogram.merged` folds the stripes at read time (reads
are rare, writes are the hot path).

Snapshots are plain JSON-safe dicts by construction — the ``stats``
wire request returns one verbatim.
"""

from __future__ import annotations

import re
import threading
import time
from bisect import bisect_left
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..errors import ReproError
from .slowlog import ErrorLog, SlowQueryLog

#: Metric and label names must be Prometheus-legal identifiers.
_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram bucket upper bounds, in seconds (spans are the
#: main histogram user); the implicit +Inf bucket is always present.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Stripes per histogram: enough that a handful of service threads
#: rarely collide, small enough that merging stays trivial.
_HISTOGRAM_STRIPES = 8

#: One metric cell's identity: (name, sorted label items).
_Key = Tuple[str, Tuple[Tuple[str, str], ...]]


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ReproError(
            f"metric name {name!r} is not a valid identifier "
            "([a-zA-Z_][a-zA-Z0-9_]*)"
        )
    return name


def _label_key(labels: Mapping[str, Any]) -> Tuple[Tuple[str, str], ...]:
    for label in labels:
        _check_name(label)
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _flat_name(key: _Key) -> str:
    """``name{k=v,...}`` — the snapshot-dict spelling of one cell."""
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically non-decreasing count."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ReproError("counters only go up; use a Gauge")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A point-in-time value that can move both ways."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        return self._value


class _HistogramStripe:
    __slots__ = ("lock", "count", "total", "min", "max", "buckets")

    def __init__(self, n_buckets: int) -> None:
        self.lock = threading.Lock()
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets = [0] * n_buckets


class Histogram:
    """Fixed-bucket histogram with lock-striped updates.

    :meth:`observe` touches only the calling thread's stripe; readers
    pay the cost of merging all stripes under their locks.
    """

    __slots__ = ("bounds", "_stripes")

    def __init__(
        self, bounds: Tuple[float, ...] = DEFAULT_BUCKETS
    ) -> None:
        if tuple(bounds) != tuple(sorted(bounds)):
            raise ReproError("histogram bucket bounds must be sorted")
        self.bounds = tuple(bounds)
        # +1 for the implicit +Inf bucket.
        self._stripes = [
            _HistogramStripe(len(self.bounds) + 1)
            for _ in range(_HISTOGRAM_STRIPES)
        ]

    def observe(self, value: float) -> None:
        stripe = self._stripes[
            threading.get_ident() % _HISTOGRAM_STRIPES
        ]
        index = bisect_left(self.bounds, value)
        with stripe.lock:
            stripe.count += 1
            stripe.total += value
            stripe.buckets[index] += 1
            if stripe.min is None or value < stripe.min:
                stripe.min = value
            if stripe.max is None or value > stripe.max:
                stripe.max = value

    def merged(self) -> dict:
        """Fold the stripes into one JSON-safe summary."""
        count = 0
        total = 0.0
        lo: Optional[float] = None
        hi: Optional[float] = None
        buckets = [0] * (len(self.bounds) + 1)
        for stripe in self._stripes:
            with stripe.lock:
                count += stripe.count
                total += stripe.total
                for i, n in enumerate(stripe.buckets):
                    buckets[i] += n
                if stripe.min is not None:
                    lo = stripe.min if lo is None else min(lo, stripe.min)
                if stripe.max is not None:
                    hi = stripe.max if hi is None else max(hi, stripe.max)
        return {
            "count": count,
            "sum": total,
            "avg": total / count if count else 0.0,
            "min": lo if lo is not None else 0.0,
            "max": hi if hi is not None else 0.0,
            "buckets": {
                **{str(b): n for b, n in zip(self.bounds, buckets)},
                "+Inf": buckets[-1],
            },
        }


class MetricsRegistry:
    """One process-wide home for every telemetry signal.

    Instruments are addressed by ``(name, **labels)`` and created on
    first use; **sources** are zero-argument callables whose dicts are
    folded into the snapshot under their registered name (re-registering
    a name replaces the previous source — engines and services created
    later win, which is what a serving process wants).
    """

    def __init__(
        self,
        *,
        slow_log: Optional[SlowQueryLog] = None,
        error_log: Optional[ErrorLog] = None,
    ) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[_Key, Counter] = {}
        self._gauges: Dict[_Key, Gauge] = {}
        self._histograms: Dict[_Key, Histogram] = {}
        self._sources: Dict[str, Callable[[], Mapping[str, Any]]] = {}
        self.slow_log = slow_log if slow_log is not None else SlowQueryLog()
        self.error_log = error_log if error_log is not None else ErrorLog()
        self.created_at = time.time()

    # -- instruments -----------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        key = (_check_name(name), _label_key(labels))
        with self._lock:
            cell = self._counters.get(key)
            if cell is None:
                cell = self._counters[key] = Counter()
            return cell

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (_check_name(name), _label_key(labels))
        with self._lock:
            cell = self._gauges.get(key)
            if cell is None:
                cell = self._gauges[key] = Gauge()
            return cell

    def histogram(self, name: str, **labels: Any) -> Histogram:
        key = (_check_name(name), _label_key(labels))
        with self._lock:
            cell = self._histograms.get(key)
            if cell is None:
                cell = self._histograms[key] = Histogram()
            return cell

    # -- sources ---------------------------------------------------------

    def register_source(
        self, name: str, fn: Callable[[], Mapping[str, Any]]
    ) -> None:
        """Fold ``fn()`` into snapshots under ``name`` (replaces any
        previous source of the same name)."""
        with self._lock:
            self._sources[name] = fn

    def unregister_source(self, name: str) -> None:
        with self._lock:
            self._sources.pop(name, None)

    # -- reading ---------------------------------------------------------

    def snapshot(self) -> dict:
        """Everything, as one JSON-safe dict."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
            sources = dict(self._sources)
        source_snaps: Dict[str, Any] = {}
        for name, fn in sources.items():
            try:
                source_snaps[name] = dict(fn())
            except Exception as exc:  # a broken source must not kill stats
                source_snaps[name] = {"error": f"{type(exc).__name__}: {exc}"}
        return {
            "counters": {
                _flat_name(k): c.value for k, c in sorted(counters.items())
            },
            "gauges": {
                _flat_name(k): g.value for k, g in sorted(gauges.items())
            },
            "histograms": {
                _flat_name(k): h.merged()
                for k, h in sorted(histograms.items())
            },
            "sources": source_snaps,
            "slow_queries": self.slow_log.snapshot(),
            "errors": self.error_log.snapshot(),
        }

    def render_prometheus(self, prefix: str = "repro") -> str:
        """The registry in Prometheus text exposition format.

        Instruments keep their names (prefixed); numeric leaves of stat
        sources are exported as ``<prefix>_<source>_<key>`` gauges.
        """
        snap = self.snapshot()
        lines: List[str] = []

        def labelled(flat: str) -> str:
            # name{k=v,...} -> prefixed name{k="v",...}
            if "{" not in flat:
                return f"{prefix}_{flat}"
            name, _, inner = flat.partition("{")
            inner = inner.rstrip("}")
            pairs = [pair.partition("=") for pair in inner.split(",")]
            quoted = ",".join(
                f'{k}="{_escape(v)}"' for k, _, v in pairs
            )
            return f"{prefix}_{name}{{{quoted}}}"

        seen_types: Dict[str, str] = {}

        def typeline(flat: str, kind: str) -> None:
            base = f"{prefix}_{flat.partition('{')[0]}"
            if seen_types.get(base) != kind:
                seen_types[base] = kind
                lines.append(f"# TYPE {base} {kind}")

        for flat, value in snap["counters"].items():
            typeline(flat, "counter")
            lines.append(f"{labelled(flat)} {value}")
        for flat, value in snap["gauges"].items():
            typeline(flat, "gauge")
            lines.append(f"{labelled(flat)} {value}")
        for flat, hist in snap["histograms"].items():
            typeline(flat, "histogram")
            name, _, inner = flat.partition("{")
            inner = inner.rstrip("}")
            cumulative = 0
            for bound, n in hist["buckets"].items():
                cumulative += n
                extra = f"le={bound}"  # labelled() adds the quoting
                label_body = f"{inner},{extra}" if inner else extra
                rendered = labelled(f"{name}_bucket{{{label_body}}}")
                lines.append(f"{rendered} {cumulative}")
            lines.append(f"{labelled(flat.replace(name, name + '_sum', 1))} "
                         f"{hist['sum']}")
            lines.append(
                f"{labelled(flat.replace(name, name + '_count', 1))} "
                f"{hist['count']}"
            )
        for source, values in snap["sources"].items():
            for key, value in values.items():
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    continue
                flat = _sanitize(f"{source}_{key}")
                typeline(flat, "gauge")
                lines.append(f"{prefix}_{flat} {value}")
        return "\n".join(lines) + "\n"


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"")


def _sanitize(name: str) -> str:
    cleaned = re.sub(r"[^a-zA-Z0-9_]", "_", name)
    if not cleaned or not re.match(r"[a-zA-Z_]", cleaned[0]):
        cleaned = f"_{cleaned}"
    return cleaned


_default_registry: Optional[MetricsRegistry] = None
_default_lock = threading.Lock()


def metrics_registry() -> MetricsRegistry:
    """The process-wide default registry (created on first use)."""
    global _default_registry
    if _default_registry is None:
        with _default_lock:
            if _default_registry is None:
                _default_registry = MetricsRegistry()
    return _default_registry


def set_metrics_registry(registry: Optional[MetricsRegistry]) -> None:
    """Swap the process-wide default (tests; ``None`` resets lazily)."""
    global _default_registry
    with _default_lock:
        _default_registry = registry
