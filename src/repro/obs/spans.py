"""Lightweight tracing spans over the metrics registry.

A span is a named stage whose duration lands in the shared
``span_seconds`` histogram, labelled by stage (plus any extra labels).
The serving pipeline is covered end to end with a fixed, low-cardinality
stage vocabulary:

========================= ==============================================
stage                     measures
========================= ==============================================
``compile``               planning + code generation on a plan-cache miss
``plan``                  validate + fingerprint (inside ``compile``,
                          staged pipeline only)
``optimize``              strategy pass pipeline (inside ``compile``)
``lower``                 physical lowering (inside ``compile``)
``execute``               one engine execution, wall time
``morsel_execute``        the parallel morsel drain inside an execution
``merge``                 partial-state merge + finalize
``admit``                 admission decision inside ``submit``
``queue_wait``            admission -> dequeue by a service worker
``serve``                 dequeue -> response resolved
========================= ==============================================

Spans deliberately carry no per-query identity — that is the slow-query
log's job; spans answer "where does a request's time go *in aggregate*".
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator, Optional

from .registry import MetricsRegistry, metrics_registry

#: The one histogram every span reports into.
SPAN_METRIC = "span_seconds"


def observe_span(
    stage: str,
    seconds: float,
    registry: Optional[MetricsRegistry] = None,
    **labels: Any,
) -> None:
    """Record an externally-measured duration as a span (used when the
    start and end live on different threads, e.g. queue wait)."""
    reg = registry if registry is not None else metrics_registry()
    reg.histogram(SPAN_METRIC, stage=stage, **labels).observe(seconds)


@contextmanager
def span(
    stage: str,
    registry: Optional[MetricsRegistry] = None,
    **labels: Any,
) -> Iterator[None]:
    """Time the enclosed block into ``span_seconds{stage=...}``.

    The duration is recorded even when the block raises — a failing
    compile or execute still spent the time.
    """
    begin = time.perf_counter()
    try:
        yield
    finally:
        observe_span(
            stage, time.perf_counter() - begin, registry, **labels
        )
