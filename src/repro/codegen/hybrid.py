"""Hybrid (Tupleware-style) code generation — paper §II-A2.

Tiled loops: a SIMD *prepass* evaluates each predicate conjunct into a
0/1 ``cmp`` array, a no-branch pass turns it into a selection vector
``idx``, and downstream operators read columns *through* ``idx`` — the
conditional-read pattern that SWOLE later replaces. This is the paper's
state-of-the-art baseline.

All pipeline bodies take the scanned columns as an explicit parameter,
so the same code runs the full table serially or one morsel of it under
the parallel executor; scans and semijoin probes declare
:class:`~repro.engine.program.ParallelPlan`s (the groupjoin accumulates
into the shared build-side table and stays serial).
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..engine import kernels as K
from ..engine.hashtable import HashTable
from ..engine.program import CompiledQuery, ParallelPlan
from ..engine.session import Session
from ..plan.expressions import conjuncts
from ..plan.logical import Query
from ..storage.database import Database
from .base import register_strategy
from .common import (
    agg_exprs_columns,
    eval_aggregates_subset,
    grouped_result,
    prepass_predicate,
    slice_columns,
    table_rows,
)
from .datacentric import _expected_groups
from .emit import emit_hybrid


def build_hash_table_hybrid(
    session: Session, db: Database, query: Query, num_aggs: int
) -> HashTable:
    """Build side with prepass + selection vector."""
    join = query.join
    build_data = db.data(join.build_table)
    build_conjs = conjuncts(join.build_predicate)
    n = table_rows(build_data)
    with session.tracer.kernel(f"build {join.build_table}"), \
            session.tracer.overlap():
        if build_conjs:
            mask = prepass_predicate(session, build_data, build_conjs)
            idx = K.selection_vector(session, mask)
            keys = K.gather(
                session, build_data[join.pk_column], idx, join.pk_column
            )
        else:
            mask = np.ones(n, dtype=bool)
            keys = K.seq_read(
                session, build_data[join.pk_column], join.pk_column
            )
        table = HashTable(expected_keys=int(mask.sum()), num_aggs=num_aggs)
        K.ht_insert_keys(session, table, keys.astype(np.int64))
    return table


@register_strategy("hybrid")
def compile_hybrid(query: Query, db: Database) -> CompiledQuery:
    """Compile ``query`` with the hybrid strategy."""
    data = db.data(query.table)
    n_rows = table_rows(data)
    source = emit_hybrid(query)
    conjs = query.predicate_conjuncts()
    agg_cols = agg_exprs_columns(query.aggregates)

    def select(session: Session, view: Dict[str, np.ndarray]) -> np.ndarray:
        """Prepass + selection vector over the scanned rows."""
        if conjs:
            mask = prepass_predicate(session, view, conjs)
            K.selection_vector(session, mask)
            return mask
        return np.ones(table_rows(view), dtype=bool)

    def run(session: Session) -> Dict[str, Any]:
        if query.join is not None:
            if query.is_groupjoin:
                return _run_groupjoin(session)
            table = build_hash_table_hybrid(session, db, query, num_aggs=0)
            return _probe_semijoin(session, data, table)
        with session.tracer.overlap():
            return _run_scan(session, data)

    def _run_scan(
        session: Session, view: Dict[str, np.ndarray]
    ) -> Dict[str, Any]:
        with session.tracer.kernel(f"scan {query.table}"):
            mask = select(session, view)
        if query.group_by is None:
            with session.tracer.kernel("aggregate"):
                idx = np.flatnonzero(mask)
                for col in agg_cols:
                    K.gather(session, view[col], idx, col)
                return eval_aggregates_subset(
                    session, view, query.aggregates, mask, simd=False
                )
        with session.tracer.kernel("group-by aggregate"):
            idx = np.flatnonzero(mask)
            for col in sorted(set(agg_cols) | {query.group_by}):
                K.gather(session, view[col], idx, col)
            keys = view[query.group_by][mask].astype(np.int64)
            table = HashTable(
                expected_keys=_expected_groups(keys),
                num_aggs=len(query.aggregates),
            )
            subset = {name: values[mask] for name, values in view.items()}
            for i, agg in enumerate(query.aggregates):
                if agg.func == "count":
                    deltas = np.ones(keys.shape[0], dtype=np.int64)
                else:
                    deltas = np.asarray(
                        agg.expr.evaluate(subset), dtype=np.int64
                    )
                K.ht_aggregate(session, table, keys, deltas, agg=i)
            result_keys, result_aggs = table.items()
            return grouped_result(result_keys, result_aggs)

    def _probe_semijoin(
        session: Session, view: Dict[str, np.ndarray], table: HashTable
    ) -> Dict[str, Any]:
        with session.tracer.kernel(f"probe {query.table}"), \
                session.tracer.overlap():
            mask = select(session, view)
            idx = np.flatnonzero(mask)
            fk = K.gather(
                session, view[query.join.fk_column], idx, query.join.fk_column
            ).astype(np.int64)
            _, found = K.ht_lookup(session, table, fk)
            # compress matches into a second selection vector (no-branch)
            session.tracer.emit(
                K.Compute(n=int(found.shape[0]), op="select", simd=False)
            )
            match_mask = mask.copy()
            match_mask[mask] = found
            match_idx = np.flatnonzero(match_mask)
            for col in agg_cols:
                K.gather(session, view[col], match_idx, col)
            return eval_aggregates_subset(
                session, view, query.aggregates, match_mask, simd=False
            )

    def _run_groupjoin(session: Session) -> Dict[str, Any]:
        num_aggs = len(query.aggregates) + 1
        table = build_hash_table_hybrid(session, db, query, num_aggs=num_aggs)
        with session.tracer.kernel(f"probe {query.table}"), \
                session.tracer.overlap():
            mask = select(session, data)
            idx = np.flatnonzero(mask)
            fk = K.gather(
                session, data[query.join.fk_column], idx, query.join.fk_column
            ).astype(np.int64)
            slots, found = K.ht_lookup(session, table, fk)
            session.tracer.emit(
                K.Compute(n=int(found.shape[0]), op="select", simd=False)
            )
            hit_slots = slots[found]
            match_mask = mask.copy()
            match_mask[mask] = found
            match_idx = np.flatnonzero(match_mask)
            for col in agg_cols:
                K.gather(session, data[col], match_idx, col)
            subset = {
                name: values[match_mask] for name, values in data.items()
            }
            for i, agg in enumerate(query.aggregates):
                if agg.func == "count":
                    deltas = np.ones(hit_slots.shape[0], dtype=np.int64)
                else:
                    deltas = np.asarray(
                        agg.expr.evaluate(subset), dtype=np.int64
                    )
                K.ht_add_at(session, table, hit_slots, i, deltas)
            K.ht_add_at(
                session,
                table,
                hit_slots,
                num_aggs - 1,
                np.ones(hit_slots.shape[0], dtype=np.int64),
            )
            keys, aggs = table.items()
            touched = aggs[:, num_aggs - 1] > 0
            return grouped_result(
                keys[touched], aggs[touched, : len(query.aggregates)]
            )

    parallel = None
    if query.join is None:

        def scan_partial(session, ctx, lo, hi):
            with session.tracer.overlap():
                return _run_scan(session, slice_columns(data, lo, hi))

        parallel = ParallelPlan(
            table=query.table, n_rows=n_rows, partial=scan_partial
        )
    elif not query.is_groupjoin:

        def probe_setup(session):
            return build_hash_table_hybrid(session, db, query, num_aggs=0)

        def probe_partial(session, table, lo, hi):
            return _probe_semijoin(session, slice_columns(data, lo, hi), table)

        parallel = ParallelPlan(
            table=query.table,
            n_rows=n_rows,
            partial=probe_partial,
            setup=probe_setup,
        )

    return CompiledQuery(
        name=query.name,
        strategy="hybrid",
        source=source,
        _fn=run,
        parallel=parallel,
    )
