"""Runtime library for the vectorized NumPy execution backend.

The generated kernels (:mod:`repro.codegen.vectorize`) are ``exec``'d
with this module's helpers bound into their globals. Everything here is
plain NumPy over whole columns — no event emission, no simulated-cost
accounting — but every helper is written to be *byte-identical* to the
instrumented executor's semantics (:mod:`repro.codegen.physexec`):

- grouped results are ``{"keys": int64 ascending, "aggs": int64 2-D}``,
  exactly what ``HashTable.items()`` + ``grouped_result`` produce;
- arithmetic happens at int64 width with ndarray-only casts and the
  same floor-division / zero-check behaviour as ``Arith.evaluate``;
- scalar aggregates come back as Python ints.

Joins become sorted-array membership (``np.searchsorted``) instead of
hash probes, and grouping becomes argsort + ``np.add.reduceat`` instead
of scatter adds into a hash table — int64-exact in both cases, so the
answers match the instrumented backend bit for bit.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..errors import PlanError

__all__ = [
    "VectorizedProgram",
    "group_sorted",
    "member",
    "count_by",
    "distribution",
    "i64",
    "int_div",
    "rows_of",
    "RUNTIME_ENV",
]


def rows_of(view: Dict[str, np.ndarray]) -> int:
    """Row count of a column dict (any column — they are aligned)."""
    return int(next(iter(view.values())).shape[0])


def i64(value):
    """``Arith``'s operand widening: ndarrays go to int64, scalars stay.

    ``np.int64`` scalars (what ``Const.evaluate`` returns) are *not*
    ndarrays and pass through untouched, matching the instrumented
    expression evaluator exactly.
    """
    if isinstance(value, np.ndarray):
        return value.astype(np.int64, copy=False)
    return value


def int_div(lhs, rhs):
    """``Arith(op="div")``: zero-checked int64 floor division."""
    if isinstance(lhs, np.ndarray):
        lhs = lhs.astype(np.int64, copy=False)
    if isinstance(rhs, np.ndarray):
        rhs = rhs.astype(np.int64, copy=False)
    rhs_array = np.asarray(rhs)
    if rhs_array.size and (rhs_array == 0).any():
        raise PlanError("division by zero in expression")
    return np.floor_divide(lhs, rhs)


def member(values: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Membership of int64 ``values`` in a *sorted unique* key array.

    The vectorized replacement for a hash-set semijoin probe: binary
    search + one equality check per probe value.
    """
    if table.size == 0:
        return np.zeros(values.shape[0], dtype=bool)
    pos = np.searchsorted(table, values)
    pos[pos == table.size] = table.size - 1
    return table[pos] == values


#: Dense-code grouping applies while every 32-bit partial sum stays
#: exactly representable in float64 (``n * 2**32 < 2**53``).
_BINCOUNT_MAX_ROWS = 1 << 21

_LO_MASK = np.int64(0xFFFFFFFF)
_HI_SCALE = np.int64(1 << 32)


def _dense_codes(keys: np.ndarray):
    """``(codes, base_keys)`` when the key range is narrow enough for
    counting-sort grouping, else ``None`` (caller falls back to sort).

    The spread bound keeps the ``np.bincount`` tables O(n): dense keys
    (dictionary codes, group expressions, FK ids) qualify; sparse ones
    (hashes, wide surrogate keys) take the argsort path.
    """
    if keys.size == 0 or keys.size >= _BINCOUNT_MAX_ROWS:
        return None
    kmin = int(keys.min())
    spread = int(keys.max()) - kmin
    if spread > max(65536, 4 * keys.size):
        return None
    codes = (keys - np.int64(kmin)).astype(np.intp, copy=False)
    base = np.arange(spread + 1, dtype=np.int64) + np.int64(kmin)
    return codes, base


def _bincount_i64(codes: np.ndarray, delta: np.ndarray, length: int):
    """Exact int64 per-code sums via two float64 bincounts.

    ``np.bincount`` only sums float64 weights, so the int64 deltas are
    split into a signed high half and an unsigned low half; both
    partial sums stay below 2**53 (guaranteed by ``_BINCOUNT_MAX_ROWS``)
    and therefore exact, and the recombination wraps mod 2**64 exactly
    like the int64 adds of the sort path.
    """
    hi = delta >> 32
    lo = delta & _LO_MASK
    hs = np.bincount(codes, weights=hi, minlength=length)
    ls = np.bincount(codes, weights=lo, minlength=length)
    return hs.astype(np.int64) * _HI_SCALE + ls.astype(np.int64)


def group_sorted(
    keys: np.ndarray,
    deltas: List[np.ndarray],
    mask: Optional[np.ndarray] = None,
) -> Dict[str, np.ndarray]:
    """Group int64 ``deltas`` columns by int64 ``keys``; keys ascending.

    Dense key ranges group by counting (``np.bincount`` over shifted
    codes, int64-exact via the hi/lo split); sparse ranges fall back to
    a stable argsort plus one ``np.add.reduceat`` per run boundary.
    Both are bit-identical to the hash-table scatter-add path.

    ``mask`` selects the rows to group (the generated kernels pass the
    selection vector straight through): the dense path diverts the
    unselected rows into a sentinel bucket that never reaches the
    output, which beats materialising ``keys[mask]`` plus one boolean
    subset copy per delta column.
    """
    naggs = max(len(deltas), 1)
    if keys.size == 0:
        return {
            "keys": np.empty(0, dtype=np.int64),
            "aggs": np.zeros((0, naggs), dtype=np.int64),
        }
    dense = _dense_codes(keys)
    if dense is not None:
        codes, base = dense
        length = base.size
        if mask is not None:
            # Unselected rows land in bucket ``base.size`` — counted,
            # summed, and then sliced away with everything past it.
            codes = np.where(mask, codes, length)
            length += 1
        occupancy = np.bincount(codes, minlength=length)[: base.size]
        present = np.flatnonzero(occupancy)
        if deltas:
            cols = [
                _bincount_i64(
                    codes, np.asarray(d, dtype=np.int64), length
                )[: base.size][present]
                for d in deltas
            ]
            aggs = np.stack(cols, axis=1)
        else:
            aggs = np.zeros((present.size, 1), dtype=np.int64)
        return {"keys": base[present], "aggs": aggs}
    if mask is not None:
        keys = keys[mask]
        deltas = [np.asarray(d)[mask] for d in deltas]
        if keys.size == 0:
            return {
                "keys": np.empty(0, dtype=np.int64),
                "aggs": np.zeros((0, naggs), dtype=np.int64),
            }
    stacked = np.stack(
        [np.asarray(d, dtype=np.int64) for d in deltas], axis=1
    ) if deltas else np.zeros((keys.shape[0], 1), dtype=np.int64)
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    starts = np.flatnonzero(
        np.concatenate(([True], sorted_keys[1:] != sorted_keys[:-1]))
    )
    aggs = np.add.reduceat(stacked[order], starts, axis=0)
    return {"keys": sorted_keys[starts], "aggs": aggs}


def count_by(keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Per-key row counts, keys ascending (outer groupjoin's state)."""
    dense = _dense_codes(keys)
    if dense is not None:
        codes, base = dense
        occupancy = np.bincount(codes, minlength=base.size)
        present = np.flatnonzero(occupancy)
        return base[present], occupancy[present].astype(np.int64)
    uniq, counts = np.unique(keys, return_counts=True)
    return uniq.astype(np.int64, copy=False), counts.astype(np.int64)


def distribution(per_key: np.ndarray, missing: int) -> Dict[str, np.ndarray]:
    """Count-of-counts over per-key counts, folding ``missing`` build
    keys (rows the outer join never matched) into the zero bucket."""
    values, counts = np.unique(per_key, return_counts=True)
    values = values.astype(np.int64, copy=False)
    counts = counts.astype(np.int64)
    if missing:
        if values.size and values[0] == 0:
            counts[0] += missing
        else:
            values = np.concatenate(
                (np.zeros(1, dtype=np.int64), values)
            )
            counts = np.concatenate(
                (np.asarray([missing], dtype=np.int64), counts)
            )
    return {"keys": values, "aggs": counts.reshape(-1, 1)}


#: Globals every generated kernel is ``exec``'d with (the expression
#: compiler adds per-kernel ``_E*`` / ``_C*`` / ``_FK*`` bindings on
#: top of a copy of this).
RUNTIME_ENV: Dict[str, Any] = {
    "np": np,
    "_rows": rows_of,
    "_member": member,
    "_group": group_sorted,
    "_count_by": count_by,
    "_distribution": distribution,
    "_i64": i64,
    "_div": int_div,
}


class VectorizedProgram:
    """A compiled physical plan as a list of executable column kernels.

    ``kernels`` pairs each pipeline with its generated function
    ``fn(view, state, lo) -> result | None``; ``data`` caches the base
    columns per pipeline so the serving path does no per-query dict
    rebuilding. ``source`` is the full generated Python text (the
    vectorized analogue of the instrumented backend's pseudo-C).
    """

    def __init__(
        self,
        kernels: List[Tuple[Any, Callable]],
        data: List[Dict[str, np.ndarray]],
        source: str,
        finalize: Optional[Callable[[Dict[str, Any]], Dict[str, Any]]] = None,
    ) -> None:
        if not kernels:
            raise PlanError("vectorized program needs at least one pipeline")
        self.kernels = kernels
        self.data = data
        self.source = source
        #: Post-merge cleanup applied once to the final (serial) or
        #: merged (parallel) result — eager aggregation's victim-key
        #: deletion lives here so morsel partials stay mergeable.
        self.finalize = finalize

    def execute(self) -> Dict[str, Any]:
        """Run every pipeline in order; the last one yields the answer."""
        state: Dict[str, Dict[str, Any]] = {}
        result: Optional[Dict[str, Any]] = None
        for (pipe, fn), view in zip(self.kernels, self.data):
            result = fn(view, state, 0)
        if result is None:
            raise PlanError("physical plan produced no result")
        if self.finalize is not None:
            result = self.finalize(result)
        return result

    def run_setup(self) -> Dict[str, Dict[str, Any]]:
        """Run the build pipelines (all but the last) into fresh state."""
        state: Dict[str, Dict[str, Any]] = {}
        for (pipe, fn), view in zip(self.kernels[:-1], self.data[:-1]):
            fn(view, state, 0)
        return state

    def run_final(
        self,
        view: Dict[str, np.ndarray],
        state: Optional[Dict[str, Dict[str, Any]]],
        lo: int,
    ) -> Dict[str, Any]:
        """Run the final pipeline over one morsel's row-range view."""
        _, fn = self.kernels[-1]
        return fn(view, state if state is not None else {}, lo)
