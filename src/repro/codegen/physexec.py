"""Physical-plan executor: interpret pipelines into kernel programs.

The final stage of the staged pipeline (logical plan -> strategy passes
-> physical plan -> **kernel program**). :func:`execute_plan` walks a
:class:`~repro.plan.physical.PhysicalPlan` and, for every pipeline,
runs its operators against the base table's columns — doing the real
NumPy work *and* emitting the priced access events (SeqRead, CondRead,
RandomAccess, Branch, Compute), exactly like the hand-coded strategy
programs it replaces. The accounting deliberately reuses the shared
helpers in :mod:`repro.codegen.common` (``prepass_predicate``,
``datacentric_predicate``, ``emit_*``) so pipeline-compiled queries and
legacy strategy modules price identical access patterns identically.

Cross-pipeline state (hash tables, bitmaps, materialized columns) is
keyed by the producing pipeline's base table; lowering guarantees every
consumer runs after its producer.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

import numpy as np

from ..core import eager_aggregation
from ..core.key_masking import mask_keys
from ..engine import kernels as K
from ..engine.events import (
    Branch,
    Compute,
    RandomAccess,
    SeqRead,
    SeqWrite,
    StatSample,
)
from ..engine.hashtable import NULL_KEY, HashTable
from ..engine.session import Session
from ..errors import PlanError
from ..plan import passes as PS
from ..plan.expressions import compare_count
from ..plan.logical import AggSpec
from ..plan.physical import (
    BRANCH,
    BitmapBuild,
    BitmapSemiProbe,
    CarriedGather,
    ColumnMaterialize,
    DisjunctBitmapProbe,
    DisjunctIndexProbe,
    EagerAggregate,
    ExistsBitmapBuild,
    ExistsBitmapProbe,
    FilterStage,
    GroupAgg,
    GroupBuild,
    GroupDistribution,
    GroupJoinAgg,
    HashJoinCarryProbe,
    HashSemiProbe,
    IndexGather,
    JoinBuild,
    MultiBitmapBuild,
    OuterGroupJoinAgg,
    PhysicalPlan,
    Pipeline,
    ScalarAgg,
    SemiHashBuild,
)
from ..storage.database import Database
from .common import (
    agg_exprs_columns,
    datacentric_predicate,
    emit_cond_reads,
    emit_expr_compute,
    emit_seq_reads,
    grouped_result,
    prepass_predicate,
    table_rows,
)


class _Ctx:
    """Mutable per-pipeline stream state."""

    __slots__ = (
        "view",
        "table",
        "n",
        "mask",
        "selvec_charged",
        "already_read",
        "carried",
        "lo",
        "loop_charged",
        "encoded",
        "decoded",
    )

    def __init__(
        self,
        view: Dict[str, np.ndarray],
        table: str,
        merged: bool,
        lo: int = 0,
        encodings: tuple = (),
    ) -> None:
        self.view = view
        self.table = table
        self.n = table_rows(view)
        # Columns served as physical codes (access-encoding pass): name
        # -> code byte width. Predicates run in code space; decode
        # events fire only where 64-bit values materialize.
        self.encoded: Dict[str, int] = {
            column: int(view[column].dtype.itemsize)
            for column, _ in encodings
            if column in view
        }
        # Columns already materialized: decode is priced once per
        # pipeline, then the wide array is reused.
        self.decoded: set = set()
        # Row offset of this view within the full table (nonzero for a
        # morsel's row-range slice) — FK-index offsets are sliced to it.
        self.lo = lo
        # The per-tuple loop overhead is charged once per pipeline, by
        # whichever op drives the scalar loop (branching filter or the
        # first full-stream hash probe).
        self.loop_charged = False
        self.mask: Optional[np.ndarray] = None
        # The selection vector is built (and priced) once per pipeline;
        # later narrowing reuses it via plain flatnonzero, mirroring the
        # hand-coded programs.
        self.selvec_charged = False
        # Access merging (§III-C): the prepass records what it read so
        # the masked aggregation never re-reads a shared column.
        self.already_read: Optional[Set[str]] = set() if merged else None
        self.carried: Dict[str, np.ndarray] = {}

    def get_mask(self) -> np.ndarray:
        if self.mask is None:
            self.mask = np.ones(self.n, dtype=bool)
        return self.mask

    def narrow(self, new_mask: np.ndarray) -> None:
        self.mask = (
            new_mask if self.mask is None else (self.mask & new_mask)
        )


def _decode(session: Session, ctx: _Ctx, column: str, n: int) -> None:
    """Price the late-materialization decode of an encoded column.

    A widening convert (vpmovsx-style) of ``n`` code elements into
    64-bit registers — the moment a code stream leaves code space.
    Columns the pipeline serves decoded emit nothing, and a column is
    priced at most once per pipeline: the first consumer pays for the
    materialization, later ones reuse the wide array.
    """
    width = ctx.encoded.get(column)
    if width and n and column not in ctx.decoded:
        ctx.decoded.add(column)
        session.tracer.emit(
            Compute(n=n, op="decode", simd=True, width=width)
        )


def _decode_cols(
    session: Session, ctx: _Ctx, columns, n: int
) -> None:
    for column in columns:
        _decode(session, ctx, column, n)


def _indices(session: Session, ctx: _Ctx) -> np.ndarray:
    """Selected row indexes; the selection-vector event fires once."""
    if not ctx.selvec_charged:
        ctx.selvec_charged = True
        return K.selection_vector(session, ctx.get_mask())
    return np.flatnonzero(ctx.get_mask())


def _fk_offsets(db: Database, ctx: _Ctx, fk_column: str) -> np.ndarray:
    """FK-index offsets for this view's row range (morsel-sliced)."""
    offsets = db.fk_index(ctx.table, fk_column).offsets
    return offsets[ctx.lo : ctx.lo + ctx.n]


def _base_cols(
    aggregates, view: Dict[str, np.ndarray]
) -> List[str]:
    """Aggregate input columns that live in the scanned table (carried
    columns arrive via the FK index instead)."""
    return [c for c in agg_exprs_columns(aggregates) if c in view]


def _agg_deltas(
    session: Session,
    agg: AggSpec,
    data: Dict[str, np.ndarray],
    n: int,
    simd: bool,
) -> np.ndarray:
    """Delta vector for one aggregate, with its arithmetic priced."""
    if agg.func == "count":
        return np.ones(n, dtype=np.int64)
    emit_expr_compute(session, agg.expr, n, simd=simd)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    return np.asarray(agg.expr.evaluate(data), dtype=np.int64)


def _aggregate_into(
    session: Session,
    table: HashTable,
    keys: np.ndarray,
    aggregates,
    data: Dict[str, np.ndarray],
    n: int,
    simd: bool,
) -> None:
    """Accumulate every aggregate: one priced hash access per tuple for
    the first column, resolved-slot adds for the rest."""
    slots = None
    for i, agg in enumerate(aggregates):
        session.tracer.emit(Compute(n=n, op="add", simd=simd))
        deltas = _agg_deltas(session, agg, data, n, simd)
        if slots is None:
            K.ht_aggregate(session, table, keys, deltas, agg=i)
            slots, _ = table.lookup(keys)
        else:
            K.ht_add_at(session, table, slots, i, deltas)


# ---------------------------------------------------------------------------
# Operator implementations
# ---------------------------------------------------------------------------


def _op_filter(session: Session, ctx: _Ctx, op: FilterStage) -> None:
    view_conjs = [
        conj for conj in op.conjuncts if conj.columns() <= set(ctx.view)
    ]
    carried_conjs = [
        conj for conj in op.conjuncts if conj not in view_conjs
    ]
    if view_conjs:
        if op.mode == "branch":
            mask = datacentric_predicate(session, ctx.view, view_conjs)
            ctx.loop_charged = True
        else:
            mask = prepass_predicate(
                session, ctx.view, view_conjs, already_read=ctx.already_read
            )
        ctx.narrow(mask)
    for conj in carried_conjs:
        # Cross-table conjunct over index-carried columns (Q5's
        # c_nationkey = s_nationkey): evaluated branch-free over the
        # surviving rows — the carried values are already in registers
        # from the gathers that produced them.
        k = int(ctx.get_mask().sum())
        session.tracer.emit(Compute(n=k, op="cmp", simd=False))
        full = dict(ctx.view)
        full.update(ctx.carried)
        ctx.narrow(np.asarray(conj.evaluate(full), dtype=bool))


def _read_keys(
    session: Session, ctx: _Ctx, column: str, access: str
) -> np.ndarray:
    """Selected key values under the op's access style."""
    if access == BRANCH:
        values = K.conditional_read(
            session, ctx.view[column], ctx.get_mask(), column
        )
    else:
        idx = _indices(session, ctx)
        values = K.gather(session, ctx.view[column], idx, column)
    _decode(session, ctx, column, int(values.shape[0]))
    return values.astype(np.int64)


def _carried_encodings(ctx: _Ctx, carry) -> Dict[str, int]:
    """Code widths of carried columns still in code space.

    Columns carried straight from an encoded scan stay codes until a
    downstream pipeline materializes them (the decode is priced at that
    late-materialization point); columns that arrived via an earlier
    gather were already materialized.
    """
    return {
        name: ctx.encoded[name]
        for name in carry
        if name in ctx.encoded and name not in ctx.carried
    }


def _op_semihash_build(
    session: Session, ctx: _Ctx, op: SemiHashBuild, state: Dict, db: Database
) -> None:
    keys = _read_keys(session, ctx, op.key_column, op.access)
    expected = (
        db.table(op.expected_from).num_rows
        if op.expected_from
        else max(keys.shape[0], 1)
    )
    ht = HashTable(expected_keys=max(expected, 1), num_aggs=0)
    K.ht_insert_keys(session, ht, keys)
    state[op.state] = {"ht": ht}


def _op_join_build(
    session: Session, ctx: _Ctx, op: JoinBuild, state: Dict
) -> None:
    keys = _read_keys(session, ctx, op.key_column, op.access)
    ht = HashTable(expected_keys=max(keys.shape[0], 1), num_aggs=1)
    K.ht_insert_keys(session, ht, keys)
    carried = {
        name: ctx.carried.get(name, ctx.view.get(name))
        for name in op.carry
    }
    state[op.state] = {
        "ht": ht,
        "carried": carried,
        "rows": ctx.n,
        "encoded": _carried_encodings(ctx, op.carry),
    }


def _op_group_build(
    session: Session, ctx: _Ctx, op: GroupBuild, state: Dict
) -> None:
    keys = _read_keys(session, ctx, op.key_column, op.access)
    # +1 slot: the bookkeeping count column marking touched groups.
    ht = HashTable(
        expected_keys=max(keys.shape[0], 1), num_aggs=op.num_aggs + 1
    )
    K.ht_insert_keys(session, ht, keys)
    state[op.state] = {"ht": ht}


def _op_bitmap_build(
    session: Session, ctx: _Ctx, op: BitmapBuild, state: Dict
) -> None:
    mask = ctx.get_mask()
    nbytes = max(ctx.n // 8, 1)
    if op.mode == "mask":
        # Unconditional build: one sequential write of the whole map.
        session.tracer.emit(SeqWrite(n=nbytes, width=1, array="bitmap"))
    else:
        idx = _indices(session, ctx)
        session.tracer.emit(
            RandomAccess(
                n=int(idx.shape[0]), struct_bytes=nbytes, kind="bitmap_set"
            )
        )
    carried = {
        name: ctx.carried.get(name, ctx.view.get(name))
        for name in op.carry
    }
    state[op.state] = {
        "mask": mask.copy(),
        "rows": ctx.n,
        "carried": carried,
        "encoded": _carried_encodings(ctx, op.carry),
    }


def _op_hash_semi_probe(
    session: Session, ctx: _Ctx, op: HashSemiProbe, state: Dict
) -> None:
    ht = state[op.state]["ht"]
    mask = ctx.get_mask()
    if op.access == BRANCH:
        keys = K.conditional_read(
            session, ctx.view[op.fk_column], mask, op.fk_column
        )
        _decode(session, ctx, op.fk_column, int(keys.shape[0]))
        keys = keys.astype(np.int64)
        _, found = K.ht_lookup(session, ht, keys)
        k = int(keys.shape[0])
        taken = float(found.mean()) if k else 0.0
        session.tracer.emit(
            Branch(n=k, taken_fraction=taken, site=f"{op.state}-join")
        )
        new = mask.copy()
        new[mask] = found
    else:
        idx = _indices(session, ctx)
        keys = K.gather(
            session, ctx.view[op.fk_column], idx, op.fk_column
        )
        _decode(session, ctx, op.fk_column, int(keys.shape[0]))
        keys = keys.astype(np.int64)
        _, found = K.ht_lookup(session, ht, keys)
        session.tracer.emit(
            Compute(n=int(found.shape[0]), op="select", simd=False)
        )
        new = np.zeros(ctx.n, dtype=bool)
        new[idx[found]] = True
    session.tracer.emit(
        StatSample(
            kind="join_match",
            n=int(keys.shape[0]),
            value=float(found.sum()),
            site=f"{op.state}-join",
        )
    )
    if op.negate:
        new = ctx.get_mask() & ~new
    ctx.mask = new


def _op_bitmap_semi_probe(
    session: Session,
    ctx: _Ctx,
    op: BitmapSemiProbe,
    state: Dict,
    db: Database,
) -> None:
    built = state[op.state]
    offsets = _fk_offsets(db, ctx, op.fk_column)
    session.tracer.emit(
        SeqRead(n=ctx.n, width=8, array=f"fkindex({op.fk_column})")
    )
    session.tracer.emit(
        RandomAccess(
            n=ctx.n,
            struct_bytes=max(built["rows"] // 8, 1),
            kind="bitmap_test",
        )
    )
    session.tracer.emit(Compute(n=ctx.n, op="and", simd=True, width=1))
    hits = built["mask"][offsets]
    session.tracer.emit(
        StatSample(
            kind="join_match",
            n=ctx.n,
            value=float(hits.sum()),
            site=f"{op.state}-bitmap",
        )
    )
    ctx.narrow(hits)


def _op_column_materialize(
    session: Session, ctx: _Ctx, op: ColumnMaterialize, state: Dict
) -> None:
    emit_seq_reads(session, ctx.view, sorted(op.expr.columns()))
    if op.lut_entries:
        # Dictionary-driven LUT probes index by code — no decode: the
        # narrow code stream is the whole point of the access path.
        session.tracer.emit(
            RandomAccess(
                n=ctx.n, struct_bytes=op.lut_entries, kind="lut"
            )
        )
    else:
        _decode_cols(session, ctx, sorted(op.expr.columns()), ctx.n)
    values = np.asarray(op.expr.evaluate(ctx.view))
    out = values.view(np.uint8) if values.dtype == bool else values
    K.seq_write(session, out, op.column, resident=False)
    entry = state.setdefault(op.state, {"columns": {}, "rows": ctx.n})
    entry["columns"][op.column] = values


def _op_index_gather(
    session: Session,
    ctx: _Ctx,
    op: IndexGather,
    state: Dict,
    db: Database,
) -> None:
    built = state[op.state]
    offsets = _fk_offsets(db, ctx, op.fk_column)
    mask = ctx.get_mask()
    if op.access == BRANCH:
        K.conditional_read(
            session, ctx.view[op.fk_column], mask, op.fk_column
        )
        sel = np.flatnonzero(mask)
    else:
        sel = _indices(session, ctx)
        K.gather(session, offsets, sel, f"fkindex({op.fk_column})")
    session.tracer.emit(
        RandomAccess(
            n=int(sel.shape[0]),
            struct_bytes=built["rows"],
            kind="index_join",
        )
    )
    # Carried columns stay full morsel length; consumers index them with
    # whatever selection is live when they read them.
    for name in op.columns:
        ctx.carried[name] = built["columns"][name][offsets]


def _op_groupjoin_agg(
    session: Session, ctx: _Ctx, op: GroupJoinAgg, state: Dict
) -> Dict[str, np.ndarray]:
    ht = state[op.state]["ht"]
    mask = ctx.get_mask()
    base_cols = _base_cols(op.aggregates, ctx.view)
    if op.access == BRANCH:
        keys = K.conditional_read(
            session, ctx.view[op.fk_column], mask, op.fk_column
        )
        _decode(session, ctx, op.fk_column, int(keys.shape[0]))
        keys = keys.astype(np.int64)
        slots, found = K.ht_lookup(session, ht, keys)
        k = int(keys.shape[0])
        taken = float(found.mean()) if k else 0.0
        session.tracer.emit(
            Branch(n=k, taken_fraction=taken, site="join")
        )
        sel = np.flatnonzero(mask)[found]
        emit_cond_reads(session, ctx.view, base_cols, int(sel.shape[0]))
    else:
        idx = _indices(session, ctx)
        keys = K.gather(
            session, ctx.view[op.fk_column], idx, op.fk_column
        )
        _decode(session, ctx, op.fk_column, int(keys.shape[0]))
        keys = keys.astype(np.int64)
        slots, found = K.ht_lookup(session, ht, keys)
        session.tracer.emit(
            Compute(n=int(found.shape[0]), op="select", simd=False)
        )
        sel = idx[found]
        for col in base_cols:
            K.gather(session, ctx.view[col], sel, col)
    session.tracer.emit(
        StatSample(
            kind="join_match",
            n=int(keys.shape[0]),
            value=float(found.sum()),
            site="join",
        )
    )
    matched_slots = slots[found]
    kk = int(sel.shape[0])
    _decode_cols(session, ctx, base_cols, kk)
    sub = {c: ctx.view[c][sel] for c in base_cols}
    naggs = len(op.aggregates)
    for i, agg in enumerate(op.aggregates):
        deltas = _agg_deltas(session, agg, sub, kk, simd=False)
        K.ht_add_at(session, ht, matched_slots, i, deltas)
    K.ht_add_at(
        session, ht, matched_slots, naggs, np.ones(kk, dtype=np.int64)
    )
    out_keys, aggs = ht.items()
    touched = aggs[:, naggs] > 0
    session.tracer.emit(
        StatSample(
            kind="group_cardinality",
            n=ctx.n,
            value=float(int(touched.sum())),
        )
    )
    return grouped_result(out_keys[touched], aggs[touched, :naggs])


def _op_scalar_agg(
    session: Session, ctx: _Ctx, op: ScalarAgg
) -> Dict[str, Any]:
    if op.mode == PS.VALUE_MASK:
        return _scalar_value_mask(session, ctx, op)
    mask = ctx.get_mask()
    k = int(mask.sum())
    base_cols = _base_cols(op.aggregates, ctx.view)
    if op.mode == PS.CONDITIONAL:
        emit_cond_reads(session, ctx.view, base_cols, k)
        sel = np.flatnonzero(mask)
    elif op.mode == PS.GATHERED:
        sel = _indices(session, ctx)
        for col in base_cols:
            K.gather(session, ctx.view[col], sel, col)
    else:
        raise PlanError(f"unknown scalar aggregation mode {op.mode!r}")
    _decode_cols(session, ctx, base_cols, int(sel.shape[0]))
    sub = {c: ctx.view[c][sel] for c in base_cols}
    sub.update({name: vals[sel] for name, vals in ctx.carried.items()})
    result: Dict[str, Any] = {}
    for agg in op.aggregates:
        session.tracer.emit(Compute(n=k, op="add", simd=False))
        if agg.func == "count":
            result[agg.name] = k
            continue
        deltas = _agg_deltas(session, agg, sub, k, simd=False)
        result[agg.name] = int(np.sum(deltas, dtype=np.int64))
    return result


def _scalar_value_mask(
    session: Session, ctx: _Ctx, op: ScalarAgg
) -> Dict[str, Any]:
    """§III-A: unconditional sequential reads, masked accumulation."""
    view = ctx.view
    n = ctx.n
    mask = ctx.get_mask()
    mask_int = mask.astype(np.int64)
    emit_seq_reads(
        session,
        view,
        _base_cols(op.aggregates, view),
        already_read=ctx.already_read,
    )
    result: Dict[str, Any] = {}
    for agg in op.aggregates:
        if agg.func == "count":
            session.tracer.emit(Compute(n=n, op="add", simd=True))
            result[agg.name] = int(mask.sum())
            continue
        # Masked evaluation is unconditional, so encoded inputs decode
        # over the full stream before the arithmetic.
        _decode_cols(session, ctx, sorted(agg.expr.columns()), n)
        emit_expr_compute(session, agg.expr, n, simd=True)
        session.tracer.emit(Compute(n=n, op="mul", simd=True))  # masking
        session.tracer.emit(Compute(n=n, op="add", simd=True))  # accumulate
        values = np.asarray(agg.expr.evaluate(view), dtype=np.int64)
        result[agg.name] = int(np.sum(values * mask_int, dtype=np.int64))
    return result


def _op_group_agg(
    session: Session, ctx: _Ctx, op: GroupAgg
) -> Dict[str, np.ndarray]:
    if op.mode == PS.KEY_MASK:
        return _group_key_mask(session, ctx, op)
    if op.mode == PS.VALUE_MASK:
        return _group_value_mask(session, ctx, op)
    mask = ctx.get_mask()
    k = int(mask.sum())
    cols = sorted(
        (set(op.key.columns()) & set(ctx.view))
        | set(_base_cols(op.aggregates, ctx.view))
    )
    if op.mode == PS.CONDITIONAL:
        emit_cond_reads(session, ctx.view, cols, k)
        sel = np.flatnonzero(mask)
    elif op.mode == PS.GATHERED:
        sel = _indices(session, ctx)
        for col in cols:
            K.gather(session, ctx.view[col], sel, col)
    else:
        raise PlanError(f"unknown grouped aggregation mode {op.mode!r}")
    _decode_cols(session, ctx, cols, int(sel.shape[0]))
    sub = {c: ctx.view[c][sel] for c in cols}
    sub.update({name: vals[sel] for name, vals in ctx.carried.items()})
    keys = np.asarray(op.key.evaluate(sub), dtype=np.int64)
    table = HashTable(
        expected_keys=max(op.expected_groups, 1),
        num_aggs=len(op.aggregates),
    )
    _aggregate_into(
        session, table, keys, op.aggregates, sub, k, simd=False
    )
    out_keys, aggs = table.items()
    session.tracer.emit(
        StatSample(
            kind="group_cardinality",
            n=ctx.n,
            value=float(int(out_keys.shape[0])),
        )
    )
    return grouped_result(out_keys, aggs)


def _group_key_mask(
    session: Session, ctx: _Ctx, op: GroupAgg
) -> Dict[str, np.ndarray]:
    """§III-B: blend non-qualifying keys into the throwaway entry."""
    view = ctx.view
    n = ctx.n
    mask = ctx.get_mask()
    emit_seq_reads(
        session,
        view,
        sorted(op.key.columns()),
        already_read=ctx.already_read,
    )
    _decode_cols(session, ctx, sorted(op.key.columns()), n)
    emit_expr_compute(session, op.key, n, simd=True)
    raw_keys = np.asarray(op.key.evaluate(view), dtype=np.int64)
    keys = mask_keys(session, raw_keys, mask, op.key_name)
    emit_seq_reads(
        session,
        view,
        _base_cols(op.aggregates, view),
        already_read=ctx.already_read,
    )
    _decode_cols(session, ctx, _base_cols(op.aggregates, view), n)
    # +1 expected key: the NULL_KEY throwaway slot.
    table = HashTable(
        expected_keys=op.expected_groups + 1,
        num_aggs=len(op.aggregates),
    )
    _aggregate_into(
        session, table, keys, op.aggregates, view, n, simd=True
    )
    out_keys, aggs = table.items()
    keep = out_keys != NULL_KEY
    session.tracer.emit(
        StatSample(
            kind="group_cardinality",
            n=n,
            value=float(int(keep.sum())),
        )
    )
    return grouped_result(out_keys[keep], aggs[keep])


def _group_value_mask(
    session: Session, ctx: _Ctx, op: GroupAgg
) -> Dict[str, np.ndarray]:
    """§III-A grouped: real-key lookups, masked deltas, count column."""
    view = ctx.view
    n = ctx.n
    mask = ctx.get_mask()
    mask_int = mask.astype(np.int64)
    emit_seq_reads(
        session,
        view,
        sorted(op.key.columns()),
        already_read=ctx.already_read,
    )
    _decode_cols(session, ctx, sorted(op.key.columns()), n)
    emit_expr_compute(session, op.key, n, simd=True)
    keys = np.asarray(op.key.evaluate(view), dtype=np.int64)
    emit_seq_reads(
        session,
        view,
        _base_cols(op.aggregates, view),
        already_read=ctx.already_read,
    )
    _decode_cols(session, ctx, _base_cols(op.aggregates, view), n)
    naggs = len(op.aggregates)
    table = HashTable(
        expected_keys=max(op.expected_groups, 1), num_aggs=naggs + 1
    )
    slots = None
    for i, agg in enumerate(op.aggregates):
        if agg.func == "count":
            session.tracer.emit(Compute(n=n, op="add", simd=True))
            deltas = mask_int
        else:
            emit_expr_compute(session, agg.expr, n, simd=True)
            session.tracer.emit(Compute(n=n, op="mul", simd=True))
            deltas = (
                np.asarray(agg.expr.evaluate(view), dtype=np.int64)
                * mask_int
            )
        if slots is None:
            K.ht_aggregate(session, table, keys, deltas, agg=i)
            slots, _ = table.lookup(keys)
        else:
            K.ht_add_at(session, table, slots, i, deltas)
    K.ht_add_at(session, table, slots, naggs, mask_int)
    out_keys, aggs = table.items()
    valid = aggs[:, naggs] > 0
    session.tracer.emit(
        StatSample(
            kind="group_cardinality",
            n=n,
            value=float(int(valid.sum())),
        )
    )
    return grouped_result(out_keys[valid], aggs[valid, :naggs])


def _op_hash_join_carry_probe(
    session: Session,
    ctx: _Ctx,
    op: HashJoinCarryProbe,
    state: Dict,
    db: Database,
) -> None:
    built = state[op.state]
    ht = built["ht"]
    if ctx.mask is None:
        # First full-stream probe: the whole column is read sequentially
        # and this op drives the per-tuple loop.
        emit_seq_reads(session, ctx.view, [op.fk_column])
        _decode(session, ctx, op.fk_column, ctx.n)
        _, found = K.ht_lookup(
            session, ht, ctx.view[op.fk_column].astype(np.int64)
        )
        if op.access == BRANCH:
            taken = float(found.mean()) if ctx.n else 0.0
            session.tracer.emit(
                Branch(
                    n=ctx.n, taken_fraction=taken, site=f"{op.state}-join"
                )
            )
        else:
            session.tracer.emit(
                Compute(n=ctx.n, op="select", simd=False)
            )
        if not ctx.loop_charged:
            K.scalar_loop(session, ctx.n)
            ctx.loop_charged = True
        session.tracer.emit(
            StatSample(
                kind="join_match",
                n=ctx.n,
                value=float(found.sum()),
                site=f"{op.state}-join",
            )
        )
        ctx.narrow(found)
    else:
        mask = ctx.get_mask()
        if op.access == BRANCH:
            keys = K.conditional_read(
                session, ctx.view[op.fk_column], mask, op.fk_column
            )
            _decode(session, ctx, op.fk_column, int(keys.shape[0]))
            keys = keys.astype(np.int64)
            _, found = K.ht_lookup(session, ht, keys)
            k = int(keys.shape[0])
            taken = float(found.mean()) if k else 0.0
            session.tracer.emit(
                Branch(n=k, taken_fraction=taken, site=f"{op.state}-join")
            )
            new = mask.copy()
            new[mask] = found
        else:
            idx = _indices(session, ctx)
            keys = K.gather(
                session, ctx.view[op.fk_column], idx, op.fk_column
            )
            _decode(session, ctx, op.fk_column, int(keys.shape[0]))
            keys = keys.astype(np.int64)
            _, found = K.ht_lookup(session, ht, keys)
            session.tracer.emit(
                Compute(n=int(found.shape[0]), op="select", simd=False)
            )
            new = np.zeros(ctx.n, dtype=bool)
            new[idx[found]] = True
        session.tracer.emit(
            StatSample(
                kind="join_match",
                n=int(keys.shape[0]),
                value=float(found.sum()),
                site=f"{op.state}-join",
            )
        )
        ctx.mask = new
    offsets = _fk_offsets(db, ctx, op.fk_column)
    for name in op.carry:
        ctx.carried[name] = built["carried"][name][offsets]


def _op_carried_gather(
    session: Session,
    ctx: _Ctx,
    op: CarriedGather,
    state: Dict,
    db: Database,
) -> None:
    """Late materialization: pull build-side columns through the FK
    index for the surviving rows (priced), or silently compose them for
    a downstream build (unpriced — the consumer prices its own access)."""
    built = state[op.state]
    offsets = _fk_offsets(db, ctx, op.fk_column)
    encoded = built.get("encoded", {})
    if op.priced:
        sel = _indices(session, ctx)
        k = int(sel.shape[0])
        for name in op.columns:
            vals = built["carried"][name]
            session.tracer.emit(
                RandomAccess(
                    n=k,
                    struct_bytes=int(vals.shape[0]) * vals.dtype.itemsize,
                    kind=f"gather({name})",
                )
            )
            if name in encoded and k:
                session.tracer.emit(
                    Compute(
                        n=k, op="decode", simd=True, width=encoded[name]
                    )
                )
    for name in op.columns:
        ctx.carried[name] = built["carried"][name][offsets]


def _op_exists_bitmap_build(
    session: Session,
    ctx: _Ctx,
    op: ExistsBitmapBuild,
    state: Dict,
    db: Database,
) -> None:
    """SWOLE existential build: fold the FK side's qualifying rows into
    a positional bitmap over the probe table's primary-key domain."""
    offsets = _fk_offsets(db, ctx, op.fk_column)
    session.tracer.emit(
        SeqRead(n=ctx.n, width=8, array=f"fkindex({op.fk_column})")
    )
    session.tracer.emit(Compute(n=ctx.n, op="or", simd=True, width=1))
    probe_rows = db.table(op.probe_table).num_rows
    nbytes = max(probe_rows // 8, 1)
    if op.mode == "mask":
        session.tracer.emit(SeqWrite(n=nbytes, width=1, array="bitmap"))
    else:
        idx = _indices(session, ctx)
        session.tracer.emit(
            RandomAccess(
                n=int(idx.shape[0]), struct_bytes=nbytes, kind="bitmap_set"
            )
        )
    exists = np.zeros(probe_rows, dtype=bool)
    exists[offsets[ctx.get_mask()]] = True
    state[op.state] = {"exists": exists, "rows": probe_rows}


def _op_exists_bitmap_probe(
    session: Session, ctx: _Ctx, op: ExistsBitmapProbe, state: Dict
) -> None:
    built = state[op.state]
    session.tracer.emit(
        SeqRead(n=max(ctx.n // 8, 1), width=1, array="bitmap")
    )
    session.tracer.emit(Compute(n=ctx.n, op="and", simd=True, width=1))
    bit = built["exists"][ctx.lo : ctx.lo + ctx.n]
    hits = ~bit if op.anti else bit
    session.tracer.emit(
        StatSample(
            kind="join_match",
            n=ctx.n,
            value=float(hits.sum()),
            site=f"{op.state}-exists",
        )
    )
    ctx.narrow(hits)


def _op_outer_groupjoin_agg(
    session: Session,
    ctx: _Ctx,
    op: OuterGroupJoinAgg,
    state: Dict,
    db: Database,
) -> None:
    """Outer groupjoin (Q13): count qualifying probe rows per build key.
    Build rows that never match simply stay absent (or zero) here; the
    distribution op restores them as count-0 groups."""
    nc = db.table(op.build_table).num_rows
    fk = ctx.view[op.fk_column]
    mask = ctx.get_mask()
    if op.mode == PS.KEY_MASK:
        ht = HashTable(expected_keys=nc + 1, num_aggs=1)
        _decode(session, ctx, op.fk_column, ctx.n)
        keys = mask_keys(
            session, fk.astype(np.int64), mask, op.fk_column
        )
        K.ht_aggregate(session, ht, keys, np.ones(ctx.n, dtype=np.int64))
    elif op.mode == PS.VALUE_MASK:
        ht = HashTable(expected_keys=max(nc, 1), num_aggs=1)
        emit_seq_reads(
            session, ctx.view, [op.fk_column], already_read=ctx.already_read
        )
        _decode(session, ctx, op.fk_column, ctx.n)
        session.tracer.emit(Compute(n=ctx.n, op="mul", simd=True, width=8))
        K.ht_aggregate(
            session, ht, fk.astype(np.int64), mask.astype(np.int64)
        )
    elif op.mode == PS.CONDITIONAL:
        ht = HashTable(expected_keys=max(nc, 1), num_aggs=1)
        keys = K.conditional_read(session, fk, mask, op.fk_column)
        _decode(session, ctx, op.fk_column, int(keys.shape[0]))
        keys = keys.astype(np.int64)
        K.ht_aggregate(
            session, ht, keys, np.ones(keys.shape[0], dtype=np.int64)
        )
    elif op.mode == PS.GATHERED:
        ht = HashTable(expected_keys=max(nc, 1), num_aggs=1)
        sel = _indices(session, ctx)
        keys = K.gather(session, fk, sel, op.fk_column)
        _decode(session, ctx, op.fk_column, int(keys.shape[0]))
        keys = keys.astype(np.int64)
        K.ht_aggregate(
            session, ht, keys, np.ones(keys.shape[0], dtype=np.int64)
        )
    else:
        raise PlanError(f"unknown outer groupjoin mode {op.mode!r}")
    state[op.state] = {"ht": ht, "rows": nc}


def _op_group_distribution(
    session: Session, ctx: _Ctx, op: GroupDistribution, state: Dict
) -> Dict[str, np.ndarray]:
    """Second grouping over the groupjoin's per-key counts; unmatched
    build rows land in the zero bucket (outer-join semantics)."""
    built = state[op.state]
    ht = built["ht"]
    keys, aggs = ht.items()
    keep = keys != NULL_KEY
    per_key = aggs[keep, 0]
    session.tracer.emit(
        SeqRead(
            n=int(per_key.shape[0]), width=8, array=f"ht({op.key_name})"
        )
    )
    values, counts = np.unique(per_key, return_counts=True)
    buckets = dict(zip(values.tolist(), counts.tolist()))
    missing = int(built["rows"]) - int(per_key.shape[0])
    if missing:
        buckets[0] = buckets.get(0, 0) + missing
    table = HashTable(expected_keys=max(len(buckets), 1), num_aggs=1)
    K.ht_aggregate(
        session,
        table,
        np.asarray(list(buckets.keys()), dtype=np.int64),
        np.asarray(list(buckets.values()), dtype=np.int64),
    )
    out_keys, out = table.items()
    session.tracer.emit(
        StatSample(
            kind="group_cardinality",
            n=int(built["rows"]),
            value=float(int(out_keys.shape[0])),
        )
    )
    return grouped_result(out_keys, out)


def _op_multi_bitmap_build(
    session: Session, ctx: _Ctx, op: MultiBitmapBuild, state: Dict
) -> None:
    """Q19-style SWOLE build: one scan of the build table produces one
    positional bitmap per disjunct arm."""
    cols: Set[str] = set()
    total_cmps = 0
    for bp in op.disjuncts:
        cols |= bp.columns()
        total_cmps += compare_count(bp)
    emit_seq_reads(session, ctx.view, sorted(cols))
    session.tracer.emit(
        Compute(n=total_cmps * ctx.n, op="cmp", simd=True, width=4)
    )
    session.tracer.emit(
        SeqWrite(
            n=len(op.disjuncts) * max(ctx.n // 8, 1),
            width=1,
            array="bitmaps",
        )
    )
    masks = [
        np.asarray(bp.evaluate(ctx.view), dtype=bool)
        for bp in op.disjuncts
    ]
    state[op.state] = {"masks": masks, "rows": ctx.n}


def _op_disjunct_index_probe(
    session: Session,
    ctx: _Ctx,
    op: DisjunctIndexProbe,
    state: Dict,
    db: Database,
) -> None:
    """Tuple-at-a-time disjunction: index-join into the build table and
    evaluate every (build-pred AND probe-pred) arm per surviving row."""
    build = db.data(op.state)
    nparts = db.table(op.state).num_rows
    offsets = _fk_offsets(db, ctx, op.fk_column)
    mask = ctx.get_mask()
    k = int(mask.sum())
    probe_cols = sorted(
        set().union(*(pp.columns() for _, pp in op.disjuncts))
    )
    build_cols = sorted(
        set().union(*(bp.columns() for bp, _ in op.disjuncts))
    )
    width_sum = sum(build[c].dtype.itemsize for c in build_cols)
    if op.access == BRANCH:
        emit_cond_reads(session, ctx.view, probe_cols, k)
    else:
        sel = _indices(session, ctx)
        for col in probe_cols:
            K.gather(session, ctx.view[col], sel, col)
    session.tracer.emit(
        RandomAccess(
            n=k, struct_bytes=nparts * width_sum, kind="index_join"
        )
    )
    session.tracer.emit(
        Compute(n=3 * len(op.disjuncts) * k, op="cmp", simd=False)
    )
    build_rows = {c: build[c][offsets] for c in build_cols}
    hit = np.zeros(ctx.n, dtype=bool)
    for bp, pp in op.disjuncts:
        hit |= np.asarray(bp.evaluate(build_rows), dtype=bool) & np.asarray(
            pp.evaluate(ctx.view), dtype=bool
        )
    final = mask & hit
    if op.access == BRANCH:
        taken = (float(final.sum()) / k) if k else 0.0
        session.tracer.emit(
            Branch(n=k, taken_fraction=taken, site="disjunction")
        )
    else:
        session.tracer.emit(Compute(n=k, op="select", simd=False))
    session.tracer.emit(
        StatSample(
            kind="join_match",
            n=ctx.n,
            value=float(hit.sum()),
            site="disjunction",
        )
    )
    ctx.mask = final


def _op_disjunct_bitmap_probe(
    session: Session,
    ctx: _Ctx,
    op: DisjunctBitmapProbe,
    state: Dict,
    db: Database,
) -> None:
    """SWOLE disjunction: test each arm's positional bitmap through the
    FK index and AND it with that arm's probe-side predicate."""
    built = state[op.state]
    offsets = _fk_offsets(db, ctx, op.fk_column)
    probe_cols = sorted(
        set().union(*(pp.columns() for _, pp in op.disjuncts))
    )
    emit_seq_reads(
        session, ctx.view, probe_cols, already_read=ctx.already_read
    )
    total_cmps = sum(compare_count(pp) for _, pp in op.disjuncts)
    session.tracer.emit(
        Compute(n=total_cmps * ctx.n, op="cmp", simd=True, width=4)
    )
    sel = _indices(session, ctx)
    k = int(sel.shape[0])
    K.gather(session, offsets, sel, f"fkindex({op.fk_column})")
    session.tracer.emit(
        RandomAccess(
            n=len(op.disjuncts) * k,
            struct_bytes=max(built["rows"] // 8, 1),
            kind="bitmap_test",
        )
    )
    session.tracer.emit(
        Compute(n=2 * len(op.disjuncts) * k, op="and", simd=True, width=1)
    )
    hit = np.zeros(ctx.n, dtype=bool)
    for (_, pp), bm in zip(op.disjuncts, built["masks"]):
        hit |= bm[offsets] & np.asarray(pp.evaluate(ctx.view), dtype=bool)
    session.tracer.emit(
        StatSample(
            kind="join_match",
            n=ctx.n,
            value=float(hit.sum()),
            site="disjunction",
        )
    )
    ctx.narrow(hit)


# ---------------------------------------------------------------------------
# Pipeline / plan drivers
# ---------------------------------------------------------------------------


def _run_ops(
    session: Session,
    db: Database,
    pipe: Pipeline,
    state: Dict[str, Dict[str, Any]],
    ctx: _Ctx,
) -> Optional[Dict[str, Any]]:
    result: Optional[Dict[str, Any]] = None
    for op in pipe.ops:
        if isinstance(op, FilterStage):
            _op_filter(session, ctx, op)
        elif isinstance(op, SemiHashBuild):
            _op_semihash_build(session, ctx, op, state, db)
        elif isinstance(op, JoinBuild):
            _op_join_build(session, ctx, op, state)
        elif isinstance(op, GroupBuild):
            _op_group_build(session, ctx, op, state)
        elif isinstance(op, BitmapBuild):
            _op_bitmap_build(session, ctx, op, state)
        elif isinstance(op, MultiBitmapBuild):
            _op_multi_bitmap_build(session, ctx, op, state)
        elif isinstance(op, ExistsBitmapBuild):
            _op_exists_bitmap_build(session, ctx, op, state, db)
        elif isinstance(op, HashSemiProbe):
            _op_hash_semi_probe(session, ctx, op, state)
        elif isinstance(op, HashJoinCarryProbe):
            _op_hash_join_carry_probe(session, ctx, op, state, db)
        elif isinstance(op, BitmapSemiProbe):
            _op_bitmap_semi_probe(session, ctx, op, state, db)
        elif isinstance(op, ExistsBitmapProbe):
            _op_exists_bitmap_probe(session, ctx, op, state)
        elif isinstance(op, CarriedGather):
            _op_carried_gather(session, ctx, op, state, db)
        elif isinstance(op, DisjunctIndexProbe):
            _op_disjunct_index_probe(session, ctx, op, state, db)
        elif isinstance(op, DisjunctBitmapProbe):
            _op_disjunct_bitmap_probe(session, ctx, op, state, db)
        elif isinstance(op, ColumnMaterialize):
            _op_column_materialize(session, ctx, op, state)
        elif isinstance(op, IndexGather):
            _op_index_gather(session, ctx, op, state, db)
        elif isinstance(op, GroupJoinAgg):
            result = _op_groupjoin_agg(session, ctx, op, state)
        elif isinstance(op, OuterGroupJoinAgg):
            _op_outer_groupjoin_agg(session, ctx, op, state, db)
        elif isinstance(op, GroupDistribution):
            result = _op_group_distribution(session, ctx, op, state)
        elif isinstance(op, ScalarAgg):
            result = _op_scalar_agg(session, ctx, op)
        elif isinstance(op, GroupAgg):
            result = _op_group_agg(session, ctx, op)
        else:
            raise PlanError(f"cannot execute physical op {op!r}")
    return result


def run_pipeline(
    session: Session,
    db: Database,
    pipe: Pipeline,
    state: Dict[str, Dict[str, Any]],
    view: Dict[str, np.ndarray],
) -> Optional[Dict[str, Any]]:
    """Run one pipeline over ``view``; returns the terminal op's result
    (None for build pipelines)."""
    if len(pipe.ops) == 1 and isinstance(pipe.ops[0], EagerAggregate):
        # The eager kernels manage their own kernel/overlap scopes (they
        # are also the morsel-splittable parallel path).
        return eager_aggregation.groupjoin_pipeline(
            session, db, pipe.ops[0].query
        )
    if len(pipe.ops) == 1 and isinstance(pipe.ops[0], GroupDistribution):
        # The distribution pass re-reads the groupjoin hash table, not
        # the base columns; the hand-coded q13 runs it as a standalone
        # kernel with no access/compute overlap window.
        ctx = _Ctx(
            view,
            pipe.table,
            merged=bool(pipe.merged),
            encodings=pipe.encodings,
        )
        with session.tracer.kernel(pipe.label):
            return _run_ops(session, db, pipe, state, ctx)
    ctx = _Ctx(
        view,
        pipe.table,
        merged=bool(pipe.merged),
        encodings=pipe.encodings,
    )
    with session.tracer.kernel(pipe.label), session.tracer.overlap():
        return _run_ops(session, db, pipe, state, ctx)


def run_partial(
    session: Session,
    db: Database,
    pipe: Pipeline,
    view: Dict[str, np.ndarray],
    state: Optional[Dict[str, Dict[str, Any]]] = None,
    lo: int = 0,
) -> Optional[Dict[str, Any]]:
    """Run a partitionable pipeline over one morsel's row-range view.

    The morsel driver supplies its own kernel scope per morsel, so only
    the overlap window is opened here (mirroring the hand-coded
    strategies' parallel bodies). ``state`` carries hash tables and
    bitmaps built once in the setup phase; ``lo`` is the morsel's row
    offset so FK-index slices line up with the view.
    """
    ctx = _Ctx(
        view,
        pipe.table,
        merged=bool(pipe.merged),
        lo=lo,
        encodings=pipe.encodings,
    )
    with session.tracer.overlap():
        return _run_ops(
            session, db, pipe, state if state is not None else {}, ctx
        )


def execute_plan(
    plan: PhysicalPlan, db: Database, session: Session
) -> Dict[str, Any]:
    """Run every pipeline in order; the last one produces the answer."""
    if plan.interpreted:
        for pipe in plan.pipelines:
            K.interpreter_overhead(
                session, db.table(pipe.table).num_rows, 2
            )
    state: Dict[str, Dict[str, Any]] = {}
    result: Optional[Dict[str, Any]] = None
    for pipe in plan.pipelines:
        result = run_pipeline(
            session, db, pipe, state, db.scan_view(pipe.table, pipe.encodings)
        )
    if result is None:
        raise PlanError("physical plan produced no result")
    return result


__all__ = ["execute_plan", "run_partial", "run_pipeline"]
