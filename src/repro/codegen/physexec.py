"""Physical-plan executor: interpret pipelines into kernel programs.

The final stage of the staged pipeline (logical plan -> strategy passes
-> physical plan -> **kernel program**). :func:`execute_plan` walks a
:class:`~repro.plan.physical.PhysicalPlan` and, for every pipeline,
runs its operators against the base table's columns — doing the real
NumPy work *and* emitting the priced access events (SeqRead, CondRead,
RandomAccess, Branch, Compute), exactly like the hand-coded strategy
programs it replaces. The accounting deliberately reuses the shared
helpers in :mod:`repro.codegen.common` (``prepass_predicate``,
``datacentric_predicate``, ``emit_*``) so pipeline-compiled queries and
legacy strategy modules price identical access patterns identically.

Cross-pipeline state (hash tables, bitmaps, materialized columns) is
keyed by the producing pipeline's base table; lowering guarantees every
consumer runs after its producer.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

import numpy as np

from ..core import eager_aggregation
from ..core.key_masking import mask_keys
from ..engine import kernels as K
from ..engine.events import Branch, Compute, RandomAccess, SeqRead, SeqWrite
from ..engine.hashtable import NULL_KEY, HashTable
from ..engine.session import Session
from ..errors import PlanError
from ..plan import passes as PS
from ..plan.logical import AggSpec
from ..plan.physical import (
    BRANCH,
    BitmapBuild,
    BitmapSemiProbe,
    ColumnMaterialize,
    EagerAggregate,
    FilterStage,
    GroupAgg,
    GroupBuild,
    GroupJoinAgg,
    HashSemiProbe,
    IndexGather,
    PhysicalPlan,
    Pipeline,
    ScalarAgg,
    SemiHashBuild,
)
from ..storage.database import Database
from .common import (
    agg_exprs_columns,
    datacentric_predicate,
    emit_cond_reads,
    emit_expr_compute,
    emit_seq_reads,
    grouped_result,
    prepass_predicate,
    table_rows,
)


class _Ctx:
    """Mutable per-pipeline stream state."""

    __slots__ = (
        "view",
        "table",
        "n",
        "mask",
        "selvec_charged",
        "already_read",
        "carried",
    )

    def __init__(
        self,
        view: Dict[str, np.ndarray],
        table: str,
        merged: bool,
    ) -> None:
        self.view = view
        self.table = table
        self.n = table_rows(view)
        self.mask: Optional[np.ndarray] = None
        # The selection vector is built (and priced) once per pipeline;
        # later narrowing reuses it via plain flatnonzero, mirroring the
        # hand-coded programs.
        self.selvec_charged = False
        # Access merging (§III-C): the prepass records what it read so
        # the masked aggregation never re-reads a shared column.
        self.already_read: Optional[Set[str]] = set() if merged else None
        self.carried: Dict[str, np.ndarray] = {}

    def get_mask(self) -> np.ndarray:
        if self.mask is None:
            self.mask = np.ones(self.n, dtype=bool)
        return self.mask

    def narrow(self, new_mask: np.ndarray) -> None:
        self.mask = (
            new_mask if self.mask is None else (self.mask & new_mask)
        )


def _indices(session: Session, ctx: _Ctx) -> np.ndarray:
    """Selected row indexes; the selection-vector event fires once."""
    if not ctx.selvec_charged:
        ctx.selvec_charged = True
        return K.selection_vector(session, ctx.get_mask())
    return np.flatnonzero(ctx.get_mask())


def _base_cols(
    aggregates, view: Dict[str, np.ndarray]
) -> List[str]:
    """Aggregate input columns that live in the scanned table (carried
    columns arrive via the FK index instead)."""
    return [c for c in agg_exprs_columns(aggregates) if c in view]


def _agg_deltas(
    session: Session,
    agg: AggSpec,
    data: Dict[str, np.ndarray],
    n: int,
    simd: bool,
) -> np.ndarray:
    """Delta vector for one aggregate, with its arithmetic priced."""
    if agg.func == "count":
        return np.ones(n, dtype=np.int64)
    emit_expr_compute(session, agg.expr, n, simd=simd)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    return np.asarray(agg.expr.evaluate(data), dtype=np.int64)


def _aggregate_into(
    session: Session,
    table: HashTable,
    keys: np.ndarray,
    aggregates,
    data: Dict[str, np.ndarray],
    n: int,
    simd: bool,
) -> None:
    """Accumulate every aggregate: one priced hash access per tuple for
    the first column, resolved-slot adds for the rest."""
    slots = None
    for i, agg in enumerate(aggregates):
        session.tracer.emit(Compute(n=n, op="add", simd=simd))
        deltas = _agg_deltas(session, agg, data, n, simd)
        if slots is None:
            K.ht_aggregate(session, table, keys, deltas, agg=i)
            slots, _ = table.lookup(keys)
        else:
            K.ht_add_at(session, table, slots, i, deltas)


# ---------------------------------------------------------------------------
# Operator implementations
# ---------------------------------------------------------------------------


def _op_filter(session: Session, ctx: _Ctx, op: FilterStage) -> None:
    if op.mode == "branch":
        mask = datacentric_predicate(session, ctx.view, op.conjuncts)
    else:
        mask = prepass_predicate(
            session, ctx.view, op.conjuncts, already_read=ctx.already_read
        )
    ctx.narrow(mask)


def _read_keys(
    session: Session, ctx: _Ctx, column: str, access: str
) -> np.ndarray:
    """Selected key values under the op's access style."""
    if access == BRANCH:
        values = K.conditional_read(
            session, ctx.view[column], ctx.get_mask(), column
        )
    else:
        idx = _indices(session, ctx)
        values = K.gather(session, ctx.view[column], idx, column)
    return values.astype(np.int64)


def _op_semihash_build(
    session: Session, ctx: _Ctx, op: SemiHashBuild, state: Dict
) -> None:
    keys = _read_keys(session, ctx, op.key_column, op.access)
    ht = HashTable(expected_keys=max(keys.shape[0], 1), num_aggs=0)
    K.ht_insert_keys(session, ht, keys)
    state[op.state] = {"ht": ht}


def _op_group_build(
    session: Session, ctx: _Ctx, op: GroupBuild, state: Dict
) -> None:
    keys = _read_keys(session, ctx, op.key_column, op.access)
    # +1 slot: the bookkeeping count column marking touched groups.
    ht = HashTable(
        expected_keys=max(keys.shape[0], 1), num_aggs=op.num_aggs + 1
    )
    K.ht_insert_keys(session, ht, keys)
    state[op.state] = {"ht": ht}


def _op_bitmap_build(
    session: Session, ctx: _Ctx, op: BitmapBuild, state: Dict
) -> None:
    mask = ctx.get_mask()
    nbytes = max(ctx.n // 8, 1)
    if op.mode == "mask":
        # Unconditional build: one sequential write of the whole map.
        session.tracer.emit(SeqWrite(n=nbytes, width=1, array="bitmap"))
    else:
        idx = _indices(session, ctx)
        session.tracer.emit(
            RandomAccess(
                n=int(idx.shape[0]), struct_bytes=nbytes, kind="bitmap_set"
            )
        )
    state[op.state] = {"mask": mask.copy(), "rows": ctx.n}


def _op_hash_semi_probe(
    session: Session, ctx: _Ctx, op: HashSemiProbe, state: Dict
) -> None:
    ht = state[op.state]["ht"]
    mask = ctx.get_mask()
    if op.access == BRANCH:
        keys = K.conditional_read(
            session, ctx.view[op.fk_column], mask, op.fk_column
        ).astype(np.int64)
        _, found = K.ht_lookup(session, ht, keys)
        k = int(keys.shape[0])
        taken = float(found.mean()) if k else 0.0
        session.tracer.emit(
            Branch(n=k, taken_fraction=taken, site=f"{op.state}-join")
        )
        new = mask.copy()
        new[mask] = found
    else:
        idx = _indices(session, ctx)
        keys = K.gather(
            session, ctx.view[op.fk_column], idx, op.fk_column
        ).astype(np.int64)
        _, found = K.ht_lookup(session, ht, keys)
        session.tracer.emit(
            Compute(n=int(found.shape[0]), op="select", simd=False)
        )
        new = np.zeros(ctx.n, dtype=bool)
        new[idx[found]] = True
    ctx.mask = new


def _op_bitmap_semi_probe(
    session: Session,
    ctx: _Ctx,
    op: BitmapSemiProbe,
    state: Dict,
    db: Database,
) -> None:
    built = state[op.state]
    offsets = db.fk_index(ctx.table, op.fk_column).offsets
    session.tracer.emit(
        SeqRead(n=ctx.n, width=8, array=f"fkindex({op.fk_column})")
    )
    session.tracer.emit(
        RandomAccess(
            n=ctx.n,
            struct_bytes=max(built["rows"] // 8, 1),
            kind="bitmap_test",
        )
    )
    session.tracer.emit(Compute(n=ctx.n, op="and", simd=True, width=1))
    ctx.narrow(built["mask"][offsets])


def _op_column_materialize(
    session: Session, ctx: _Ctx, op: ColumnMaterialize, state: Dict
) -> None:
    emit_seq_reads(session, ctx.view, sorted(op.expr.columns()))
    if op.lut_entries:
        session.tracer.emit(
            RandomAccess(
                n=ctx.n, struct_bytes=op.lut_entries, kind="lut"
            )
        )
    values = np.asarray(op.expr.evaluate(ctx.view))
    out = values.view(np.uint8) if values.dtype == bool else values
    K.seq_write(session, out, op.column, resident=False)
    entry = state.setdefault(op.state, {"columns": {}, "rows": ctx.n})
    entry["columns"][op.column] = values


def _op_index_gather(
    session: Session,
    ctx: _Ctx,
    op: IndexGather,
    state: Dict,
    db: Database,
) -> None:
    built = state[op.state]
    offsets = db.fk_index(ctx.table, op.fk_column).offsets
    mask = ctx.get_mask()
    if op.access == BRANCH:
        K.conditional_read(
            session, ctx.view[op.fk_column], mask, op.fk_column
        )
        sel = np.flatnonzero(mask)
    else:
        sel = _indices(session, ctx)
        K.gather(session, offsets, sel, f"fkindex({op.fk_column})")
    session.tracer.emit(
        RandomAccess(
            n=int(sel.shape[0]),
            struct_bytes=built["rows"],
            kind="index_join",
        )
    )
    for name in op.columns:
        ctx.carried[name] = built["columns"][name][offsets[sel]]


def _op_groupjoin_agg(
    session: Session, ctx: _Ctx, op: GroupJoinAgg, state: Dict
) -> Dict[str, np.ndarray]:
    ht = state[op.state]["ht"]
    mask = ctx.get_mask()
    base_cols = _base_cols(op.aggregates, ctx.view)
    if op.access == BRANCH:
        keys = K.conditional_read(
            session, ctx.view[op.fk_column], mask, op.fk_column
        ).astype(np.int64)
        slots, found = K.ht_lookup(session, ht, keys)
        k = int(keys.shape[0])
        taken = float(found.mean()) if k else 0.0
        session.tracer.emit(
            Branch(n=k, taken_fraction=taken, site="join")
        )
        sel = np.flatnonzero(mask)[found]
        emit_cond_reads(session, ctx.view, base_cols, int(sel.shape[0]))
    else:
        idx = _indices(session, ctx)
        keys = K.gather(
            session, ctx.view[op.fk_column], idx, op.fk_column
        ).astype(np.int64)
        slots, found = K.ht_lookup(session, ht, keys)
        session.tracer.emit(
            Compute(n=int(found.shape[0]), op="select", simd=False)
        )
        sel = idx[found]
        for col in base_cols:
            K.gather(session, ctx.view[col], sel, col)
    matched_slots = slots[found]
    kk = int(sel.shape[0])
    sub = {c: ctx.view[c][sel] for c in base_cols}
    naggs = len(op.aggregates)
    for i, agg in enumerate(op.aggregates):
        deltas = _agg_deltas(session, agg, sub, kk, simd=False)
        K.ht_add_at(session, ht, matched_slots, i, deltas)
    K.ht_add_at(
        session, ht, matched_slots, naggs, np.ones(kk, dtype=np.int64)
    )
    out_keys, aggs = ht.items()
    touched = aggs[:, naggs] > 0
    return grouped_result(out_keys[touched], aggs[touched, :naggs])


def _op_scalar_agg(
    session: Session, ctx: _Ctx, op: ScalarAgg
) -> Dict[str, Any]:
    if op.mode == PS.VALUE_MASK:
        return _scalar_value_mask(session, ctx, op)
    mask = ctx.get_mask()
    k = int(mask.sum())
    base_cols = _base_cols(op.aggregates, ctx.view)
    if op.mode == PS.CONDITIONAL:
        emit_cond_reads(session, ctx.view, base_cols, k)
        sel = np.flatnonzero(mask)
    elif op.mode == PS.GATHERED:
        sel = _indices(session, ctx)
        for col in base_cols:
            K.gather(session, ctx.view[col], sel, col)
    else:
        raise PlanError(f"unknown scalar aggregation mode {op.mode!r}")
    sub = {c: ctx.view[c][sel] for c in base_cols}
    sub.update(ctx.carried)
    result: Dict[str, Any] = {}
    for agg in op.aggregates:
        session.tracer.emit(Compute(n=k, op="add", simd=False))
        if agg.func == "count":
            result[agg.name] = k
            continue
        deltas = _agg_deltas(session, agg, sub, k, simd=False)
        result[agg.name] = int(np.sum(deltas, dtype=np.int64))
    return result


def _scalar_value_mask(
    session: Session, ctx: _Ctx, op: ScalarAgg
) -> Dict[str, Any]:
    """§III-A: unconditional sequential reads, masked accumulation."""
    view = ctx.view
    n = ctx.n
    mask = ctx.get_mask()
    mask_int = mask.astype(np.int64)
    emit_seq_reads(
        session,
        view,
        _base_cols(op.aggregates, view),
        already_read=ctx.already_read,
    )
    result: Dict[str, Any] = {}
    for agg in op.aggregates:
        if agg.func == "count":
            session.tracer.emit(Compute(n=n, op="add", simd=True))
            result[agg.name] = int(mask.sum())
            continue
        emit_expr_compute(session, agg.expr, n, simd=True)
        session.tracer.emit(Compute(n=n, op="mul", simd=True))  # masking
        session.tracer.emit(Compute(n=n, op="add", simd=True))  # accumulate
        values = np.asarray(agg.expr.evaluate(view), dtype=np.int64)
        result[agg.name] = int(np.sum(values * mask_int, dtype=np.int64))
    return result


def _op_group_agg(
    session: Session, ctx: _Ctx, op: GroupAgg
) -> Dict[str, np.ndarray]:
    if op.mode == PS.KEY_MASK:
        return _group_key_mask(session, ctx, op)
    if op.mode == PS.VALUE_MASK:
        return _group_value_mask(session, ctx, op)
    mask = ctx.get_mask()
    k = int(mask.sum())
    cols = sorted(
        set(op.key.columns()) | set(_base_cols(op.aggregates, ctx.view))
    )
    if op.mode == PS.CONDITIONAL:
        emit_cond_reads(session, ctx.view, cols, k)
        sel = np.flatnonzero(mask)
    elif op.mode == PS.GATHERED:
        sel = _indices(session, ctx)
        for col in cols:
            K.gather(session, ctx.view[col], sel, col)
    else:
        raise PlanError(f"unknown grouped aggregation mode {op.mode!r}")
    sub = {c: ctx.view[c][sel] for c in cols}
    sub.update({name: vals for name, vals in ctx.carried.items()})
    keys = np.asarray(op.key.evaluate(sub), dtype=np.int64)
    table = HashTable(
        expected_keys=max(op.expected_groups, 1),
        num_aggs=len(op.aggregates),
    )
    _aggregate_into(
        session, table, keys, op.aggregates, sub, k, simd=False
    )
    out_keys, aggs = table.items()
    return grouped_result(out_keys, aggs)


def _group_key_mask(
    session: Session, ctx: _Ctx, op: GroupAgg
) -> Dict[str, np.ndarray]:
    """§III-B: blend non-qualifying keys into the throwaway entry."""
    view = ctx.view
    n = ctx.n
    mask = ctx.get_mask()
    emit_seq_reads(
        session,
        view,
        sorted(op.key.columns()),
        already_read=ctx.already_read,
    )
    emit_expr_compute(session, op.key, n, simd=True)
    raw_keys = np.asarray(op.key.evaluate(view), dtype=np.int64)
    keys = mask_keys(session, raw_keys, mask, op.key_name)
    emit_seq_reads(
        session,
        view,
        _base_cols(op.aggregates, view),
        already_read=ctx.already_read,
    )
    # +1 expected key: the NULL_KEY throwaway slot.
    table = HashTable(
        expected_keys=op.expected_groups + 1,
        num_aggs=len(op.aggregates),
    )
    _aggregate_into(
        session, table, keys, op.aggregates, view, n, simd=True
    )
    out_keys, aggs = table.items()
    keep = out_keys != NULL_KEY
    return grouped_result(out_keys[keep], aggs[keep])


def _group_value_mask(
    session: Session, ctx: _Ctx, op: GroupAgg
) -> Dict[str, np.ndarray]:
    """§III-A grouped: real-key lookups, masked deltas, count column."""
    view = ctx.view
    n = ctx.n
    mask = ctx.get_mask()
    mask_int = mask.astype(np.int64)
    emit_seq_reads(
        session,
        view,
        sorted(op.key.columns()),
        already_read=ctx.already_read,
    )
    emit_expr_compute(session, op.key, n, simd=True)
    keys = np.asarray(op.key.evaluate(view), dtype=np.int64)
    emit_seq_reads(
        session,
        view,
        _base_cols(op.aggregates, view),
        already_read=ctx.already_read,
    )
    naggs = len(op.aggregates)
    table = HashTable(
        expected_keys=max(op.expected_groups, 1), num_aggs=naggs + 1
    )
    slots = None
    for i, agg in enumerate(op.aggregates):
        if agg.func == "count":
            session.tracer.emit(Compute(n=n, op="add", simd=True))
            deltas = mask_int
        else:
            emit_expr_compute(session, agg.expr, n, simd=True)
            session.tracer.emit(Compute(n=n, op="mul", simd=True))
            deltas = (
                np.asarray(agg.expr.evaluate(view), dtype=np.int64)
                * mask_int
            )
        if slots is None:
            K.ht_aggregate(session, table, keys, deltas, agg=i)
            slots, _ = table.lookup(keys)
        else:
            K.ht_add_at(session, table, slots, i, deltas)
    K.ht_add_at(session, table, slots, naggs, mask_int)
    out_keys, aggs = table.items()
    valid = aggs[:, naggs] > 0
    return grouped_result(out_keys[valid], aggs[valid, :naggs])


# ---------------------------------------------------------------------------
# Pipeline / plan drivers
# ---------------------------------------------------------------------------


def _run_ops(
    session: Session,
    db: Database,
    pipe: Pipeline,
    state: Dict[str, Dict[str, Any]],
    ctx: _Ctx,
) -> Optional[Dict[str, Any]]:
    result: Optional[Dict[str, Any]] = None
    for op in pipe.ops:
        if isinstance(op, FilterStage):
            _op_filter(session, ctx, op)
        elif isinstance(op, SemiHashBuild):
            _op_semihash_build(session, ctx, op, state)
        elif isinstance(op, GroupBuild):
            _op_group_build(session, ctx, op, state)
        elif isinstance(op, BitmapBuild):
            _op_bitmap_build(session, ctx, op, state)
        elif isinstance(op, HashSemiProbe):
            _op_hash_semi_probe(session, ctx, op, state)
        elif isinstance(op, BitmapSemiProbe):
            _op_bitmap_semi_probe(session, ctx, op, state, db)
        elif isinstance(op, ColumnMaterialize):
            _op_column_materialize(session, ctx, op, state)
        elif isinstance(op, IndexGather):
            _op_index_gather(session, ctx, op, state, db)
        elif isinstance(op, GroupJoinAgg):
            result = _op_groupjoin_agg(session, ctx, op, state)
        elif isinstance(op, ScalarAgg):
            result = _op_scalar_agg(session, ctx, op)
        elif isinstance(op, GroupAgg):
            result = _op_group_agg(session, ctx, op)
        else:
            raise PlanError(f"cannot execute physical op {op!r}")
    return result


def run_pipeline(
    session: Session,
    db: Database,
    pipe: Pipeline,
    state: Dict[str, Dict[str, Any]],
    view: Dict[str, np.ndarray],
) -> Optional[Dict[str, Any]]:
    """Run one pipeline over ``view``; returns the terminal op's result
    (None for build pipelines)."""
    if len(pipe.ops) == 1 and isinstance(pipe.ops[0], EagerAggregate):
        # The eager kernels manage their own kernel/overlap scopes (they
        # are also the morsel-splittable parallel path).
        return eager_aggregation.groupjoin_pipeline(
            session, db, pipe.ops[0].query
        )
    ctx = _Ctx(view, pipe.table, merged=bool(pipe.merged))
    with session.tracer.kernel(pipe.label), session.tracer.overlap():
        return _run_ops(session, db, pipe, state, ctx)


def run_partial(
    session: Session,
    db: Database,
    pipe: Pipeline,
    view: Dict[str, np.ndarray],
) -> Optional[Dict[str, Any]]:
    """Run a partitionable pipeline over one morsel's row-range view.

    The morsel driver supplies its own kernel scope per morsel, so only
    the overlap window is opened here (mirroring the hand-coded
    strategies' parallel bodies).
    """
    ctx = _Ctx(view, pipe.table, merged=bool(pipe.merged))
    with session.tracer.overlap():
        return _run_ops(session, db, pipe, {}, ctx)


def execute_plan(
    plan: PhysicalPlan, db: Database, session: Session
) -> Dict[str, Any]:
    """Run every pipeline in order; the last one produces the answer."""
    if plan.interpreted:
        for pipe in plan.pipelines:
            K.interpreter_overhead(
                session, db.table(pipe.table).num_rows, 2
            )
    state: Dict[str, Dict[str, Any]] = {}
    result: Optional[Dict[str, Any]] = None
    for pipe in plan.pipelines:
        result = run_pipeline(
            session, db, pipe, state, db.data(pipe.table)
        )
    if result is None:
        raise PlanError("physical plan produced no result")
    return result


__all__ = ["execute_plan", "run_partial", "run_pipeline"]
